#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.h"
#include "util/rng.h"

namespace syrwatch::net {

/// A CIDR IPv4 subnet (network address + prefix length).
///
/// Invariant: the host bits of `network()` are zero — enforced at
/// construction by masking, so 84.229.12.7/16 normalizes to 84.229.0.0/16.
class Ipv4Subnet {
 public:
  constexpr Ipv4Subnet() noexcept = default;
  Ipv4Subnet(Ipv4Addr network, int prefix_len);

  Ipv4Addr network() const noexcept { return network_; }
  int prefix_len() const noexcept { return prefix_len_; }
  std::uint32_t mask() const noexcept;

  /// Number of addresses covered (2^(32-prefix)); capped for /0 handling.
  std::uint64_t size() const noexcept;

  bool contains(Ipv4Addr addr) const noexcept;

  /// Uniformly random address inside the subnet.
  Ipv4Addr sample(util::Rng& rng) const noexcept;

  /// "84.229.0.0/16" rendering.
  std::string to_string() const;

  /// Parses "a.b.c.d/len"; rejects invalid prefixes.
  static std::optional<Ipv4Subnet> parse(std::string_view text) noexcept;

  friend bool operator==(const Ipv4Subnet&, const Ipv4Subnet&) = default;

 private:
  Ipv4Addr network_{};
  int prefix_len_ = 32;
};

}  // namespace syrwatch::net
