#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace syrwatch::net {

/// An IPv4 address as a host-order 32-bit value with dotted-quad parsing
/// and rendering. A value type with no invariant beyond the representation,
/// so members are public per the Core Guidelines' struct rule.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t host_order) noexcept
      : value_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// "82.137.200.42" rendering.
  std::string to_string() const;

  /// Strict dotted-quad parse; rejects out-of-range octets, empty labels
  /// and trailing garbage.
  static std::optional<Ipv4Addr> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// True when `text` parses as a dotted-quad IPv4 literal — used to decide
/// whether a cs-host value is a hostname or a direct-IP request (the
/// paper's DIPv4 dataset).
bool looks_like_ipv4(std::string_view text) noexcept;

}  // namespace syrwatch::net
