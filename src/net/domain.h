#pragma once

#include <string>
#include <string_view>

namespace syrwatch::net {

/// Registrable domain ("eTLD+1") of a host, with a small built-in list of
/// two-level public suffixes covering the TLDs in this study (.co.uk,
/// .com.sy, .co.il, ...). IP literals and single-label hosts are returned
/// unchanged. This is what the paper means by "domain" in its top-domain
/// tables: www.facebook.com and ar-ar.facebook.com both count as
/// facebook.com.
std::string registrable_domain(std::string_view host);

}  // namespace syrwatch::net
