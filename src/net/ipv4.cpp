#include "net/ipv4.h"

#include <cstdio>

namespace syrwatch::net {

std::string Ipv4Addr::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  int octets = 0;
  std::size_t i = 0;
  while (octets < 4) {
    if (i >= text.size() || text[i] < '0' || text[i] > '9')
      return std::nullopt;
    std::uint32_t octet = 0;
    std::size_t digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      octet = octet * 10 + static_cast<std::uint32_t>(text[i] - '0');
      if (octet > 255 || ++digits > 3) return std::nullopt;
      ++i;
    }
    value = (value << 8) | octet;
    ++octets;
    if (octets < 4) {
      if (i >= text.size() || text[i] != '.') return std::nullopt;
      ++i;
    }
  }
  if (i != text.size()) return std::nullopt;
  return Ipv4Addr{value};
}

bool looks_like_ipv4(std::string_view text) noexcept {
  return Ipv4Addr::parse(text).has_value();
}

}  // namespace syrwatch::net
