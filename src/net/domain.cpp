#include "net/domain.h"

#include <array>

#include "net/ipv4.h"
#include "util/strings.h"

namespace syrwatch::net {

namespace {

// Second-level labels that act as public suffixes under country TLDs.
constexpr std::array<std::string_view, 6> kSecondLevelSuffixes = {
    "co", "com", "net", "org", "gov", "ac"};

bool is_second_level_suffix(std::string_view label) noexcept {
  for (const auto s : kSecondLevelSuffixes) {
    if (label == s) return true;
  }
  return false;
}

}  // namespace

std::string registrable_domain(std::string_view host) {
  if (looks_like_ipv4(host)) return std::string(host);
  const std::string lowered = util::to_lower(host);
  const auto labels = util::split(lowered, '.');
  if (labels.size() <= 2) return lowered;

  const std::string_view tld = labels[labels.size() - 1];
  const std::string_view second = labels[labels.size() - 2];
  // ccTLDs are two letters; "co.uk"-style suffixes take three labels.
  const bool two_level_suffix =
      tld.size() == 2 && is_second_level_suffix(second);
  const std::size_t keep = two_level_suffix ? 3 : 2;
  if (labels.size() <= keep) return lowered;

  std::string out;
  for (std::size_t i = labels.size() - keep; i < labels.size(); ++i) {
    if (!out.empty()) out.push_back('.');
    out += labels[i];
  }
  return out;
}

}  // namespace syrwatch::net
