#include "net/url.h"

#include "util/strings.h"

namespace syrwatch::net {

std::string_view to_string(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kHttp: return "http";
    case Scheme::kHttps: return "https";
    case Scheme::kTcp: return "tcp";
  }
  return "http";
}

std::optional<Scheme> parse_scheme(std::string_view text) noexcept {
  if (text == "http") return Scheme::kHttp;
  if (text == "https" || text == "ssl") return Scheme::kHttps;
  if (text == "tcp") return Scheme::kTcp;
  return std::nullopt;
}

std::uint16_t default_port(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kHttp: return 80;
    case Scheme::kHttps: return 443;
    case Scheme::kTcp: return 0;
  }
  return 0;
}

std::string Url::extension() const {
  const auto slash = path.rfind('/');
  const auto dot = path.rfind('.');
  if (dot == std::string::npos) return {};
  if (slash != std::string::npos && dot < slash) return {};
  return path.substr(dot + 1);
}

std::string Url::to_string() const {
  std::string out{syrwatch::net::to_string(scheme)};
  out += "://";
  out += host;
  if (port != default_port(scheme)) {
    out += ':';
    out += std::to_string(port);
  }
  out += path;
  if (!query.empty()) {
    out += '?';
    out += query;
  }
  return out;
}

std::string Url::filter_text() const {
  std::string out = host;
  out += path;
  if (!query.empty()) {
    out += '?';
    out += query;
  }
  return out;
}

std::optional<Url> Url::parse(std::string_view text) {
  Url url;
  const auto scheme_end = text.find("://");
  if (scheme_end != std::string_view::npos) {
    const auto scheme = parse_scheme(text.substr(0, scheme_end));
    if (!scheme) return std::nullopt;
    url.scheme = *scheme;
    text.remove_prefix(scheme_end + 3);
  }
  url.port = default_port(url.scheme);

  // Split authority from path/query. A query can follow the authority
  // directly ("host:81?a=b"), so split on either delimiter.
  const auto path_start = text.find_first_of("/?");
  std::string_view authority =
      path_start == std::string_view::npos ? text : text.substr(0, path_start);
  std::string_view rest =
      path_start == std::string_view::npos ? "" : text.substr(path_start);

  const auto colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    const auto port_text = authority.substr(colon + 1);
    if (port_text.empty() || port_text.size() > 5) return std::nullopt;
    std::uint32_t port = 0;
    for (char c : port_text) {
      if (c < '0' || c > '9') return std::nullopt;
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (port > 65535) return std::nullopt;
    url.port = static_cast<std::uint16_t>(port);
    authority = authority.substr(0, colon);
  }
  if (authority.empty()) return std::nullopt;
  url.host = util::to_lower(authority);

  const auto query_start = rest.find('?');
  if (query_start == std::string_view::npos) {
    url.path = std::string(rest);
  } else {
    url.path = std::string(rest.substr(0, query_start));
    url.query = std::string(rest.substr(query_start + 1));
    // "host?a=b": the query follows the authority with no path. HTTP has
    // no pathless request-target, so normalize to "/" — otherwise
    // filter_text() and path-anchored rules would see "hosta=b"-style text
    // with no separator. A bare "host" (no '?') keeps its empty path:
    // that is the CONNECT/tcp shape the log renders as '-'.
    if (url.path.empty()) url.path = "/";
  }
  return url;
}

}  // namespace syrwatch::net
