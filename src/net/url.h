#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace syrwatch::net {

/// URL scheme as seen in the cs-uri-scheme log field. `kTcp` covers raw
/// tunnelled connections (HTTP CONNECT / Tor onion traffic), which the
/// proxies log with only a host/IP and port.
enum class Scheme : std::uint8_t { kHttp, kHttps, kTcp };

std::string_view to_string(Scheme scheme) noexcept;
std::optional<Scheme> parse_scheme(std::string_view text) noexcept;

/// Default port for a scheme (http 80, https 443, tcp 0 = caller-supplied).
std::uint16_t default_port(Scheme scheme) noexcept;

/// Decomposed URL mirroring the Blue Coat log schema: the proxies log
/// cs-host, cs-uri-scheme, cs-uri-port, cs-uri-path, cs-uri-query and
/// cs-uri-ext as separate fields, and the censorship policy matches against
/// those fields — so the decomposed form *is* the canonical representation
/// and the string form is derived.
struct Url {
  Scheme scheme = Scheme::kHttp;
  std::string host;        // hostname or dotted-quad IP
  std::uint16_t port = 80;
  std::string path;        // starts with '/' when non-empty
  std::string query;       // without the leading '?'

  /// File extension of the path ("php", "flv", ...) — empty when none.
  std::string extension() const;

  /// "http://host:port/path?query" (port elided when default).
  std::string to_string() const;

  /// Host + path + "?" + query — the exact text the keyword filter scans
  /// (§5.4: string filtering relies on cs-host, cs-uri-path, cs-uri-query).
  std::string filter_text() const;

  /// Parses an absolute URL. Accepts missing scheme (defaults to http),
  /// empty path, and an optional port. Returns nullopt for empty host or
  /// malformed port.
  static std::optional<Url> parse(std::string_view text);

  friend bool operator==(const Url&, const Url&) = default;
};

}  // namespace syrwatch::net
