#include "net/subnet.h"

#include <stdexcept>

namespace syrwatch::net {

Ipv4Subnet::Ipv4Subnet(Ipv4Addr network, int prefix_len)
    : prefix_len_(prefix_len) {
  if (prefix_len < 0 || prefix_len > 32)
    throw std::invalid_argument("Ipv4Subnet: prefix length outside [0,32]");
  network_ = Ipv4Addr{network.value() & mask()};
}

std::uint32_t Ipv4Subnet::mask() const noexcept {
  return prefix_len_ == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_len_);
}

std::uint64_t Ipv4Subnet::size() const noexcept {
  return std::uint64_t{1} << (32 - prefix_len_);
}

bool Ipv4Subnet::contains(Ipv4Addr addr) const noexcept {
  return (addr.value() & mask()) == network_.value();
}

Ipv4Addr Ipv4Subnet::sample(util::Rng& rng) const noexcept {
  const std::uint64_t offset = rng.uniform(size());
  return Ipv4Addr{network_.value() | static_cast<std::uint32_t>(offset)};
}

std::string Ipv4Subnet::to_string() const {
  return network_.to_string() + "/" + std::to_string(prefix_len_);
}

std::optional<Ipv4Subnet> Ipv4Subnet::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const auto len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 2) return std::nullopt;
  int len = 0;
  for (char c : len_text) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 32) return std::nullopt;
  return Ipv4Subnet{*addr, len};
}

}  // namespace syrwatch::net
