#include "core/report.h"

#include <array>
#include <functional>
#include <string_view>

#include "analysis/anonymizer.h"
#include "analysis/bittorrent.h"
#include "analysis/category_dist.h"
#include "analysis/coverage.h"
#include "analysis/domain_dist.h"
#include "analysis/google_cache.h"
#include "analysis/https_audit.h"
#include "analysis/sampling.h"
#include "analysis/ip_censorship.h"
#include "analysis/osn.h"
#include "analysis/port_dist.h"
#include "analysis/redirects.h"
#include "analysis/social_plugins.h"
#include "analysis/string_discovery.h"
#include "analysis/tor_analysis.h"
#include "analysis/traffic_stats.h"
#include "analysis/user_stats.h"
#include "geo/world.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/simtime.h"
#include "util/strings.h"
#include "util/table.h"

namespace syrwatch::core {

namespace {

using util::percent;
using util::TextTable;
using util::titled_block;
using util::with_commas;

/// Suffix appended to the titles of tables computed from a log the fault
/// layer degraded; empty (no output change at all) for healthy runs.
std::string degraded_mark(bool degraded) {
  return degraded ? " [DEGRADED DATA — see coverage]" : "";
}

std::string dataset_sizes(const ReportSources& s, bool degraded) {
  TextTable table{{"Dataset", "# Requests"}};
  table.add_row({"Full", with_commas(s.full.rows())});
  table.add_row({"Sample (4%)", with_commas(s.sample.rows())});
  table.add_row({"User", with_commas(s.user.rows())});
  table.add_row({"Denied", with_commas(s.denied.rows())});
  return titled_block("Datasets (Table 1)" + degraded_mark(degraded), table);
}

std::string traffic_breakdown(const analysis::LogSource& full,
                              std::size_t threads, bool degraded) {
  const auto stats = analysis::traffic_stats(full, threads);
  TextTable table{{"Class", "# Requests", "%"}};
  table.add_row({"Allowed (OBSERVED)", with_commas(stats.observed),
                 percent(stats.share(stats.observed))});
  table.add_row({"Proxied", with_commas(stats.proxied),
                 percent(stats.share(stats.proxied))});
  table.add_row({"Denied", with_commas(stats.denied),
                 percent(stats.share(stats.denied))});
  for (std::size_t i = 1; i < proxy::kExceptionCount; ++i) {
    const auto id = static_cast<proxy::ExceptionId>(i);
    table.add_row({"  " + std::string(proxy::to_string(id)),
                   with_commas(stats.at(id)), percent(stats.share(stats.at(id)))});
  }
  table.add_row({"Censored (policy)", with_commas(stats.censored()),
                 percent(stats.share(stats.censored()))});
  return titled_block("Traffic classes (Table 3, Dfull)" +
                          degraded_mark(degraded),
                      table);
}

std::string top_domain_tables(const analysis::LogSource& full,
                              std::size_t threads, bool degraded) {
  std::string out;
  for (const auto cls :
       {proxy::TrafficClass::kAllowed, proxy::TrafficClass::kCensored}) {
    const auto top = analysis::top_domains(
        full, analysis::TopDomainsOptions{cls}, threads);
    TextTable table{{"Domain", "# Requests", "%"}};
    for (const auto& entry : top)
      table.add_row({entry.domain, with_commas(entry.count),
                     percent(entry.share)});
    out += titled_block(std::string("Top-10 ") +
                            std::string(proxy::to_string(cls)) +
                            " domains (Table 4)" + degraded_mark(degraded),
                        table);
  }
  return out;
}

/// Coverage table + gap/failover warnings, rendered only for studies whose
/// scenario carries a non-empty fault schedule: healthy runs keep their
/// pre-fault-layer report bytes.
std::string coverage_block(const Study& study,
                           const analysis::CoverageReport& coverage) {
  std::vector<std::string> header{"Day"};
  for (std::size_t p = 0; p < policy::kProxyCount; ++p)
    header.push_back(policy::proxy_name(p));
  TextTable table{header};
  for (const auto& day : coverage.days) {
    std::vector<std::string> row{util::format_date(day.day_start)};
    for (const std::uint64_t count : day.requests)
      row.push_back(with_commas(count));
    table.add_row(row);
  }
  std::string out =
      titled_block("Per-proxy/per-day coverage (fault injection)", table);

  TextTable gaps{{"Proxy", "Gap start", "Gap end", "Farm reqs in gap"}};
  for (const auto& gap : coverage.gaps) {
    gaps.add_row({policy::proxy_name(gap.proxy_index),
                  util::format_datetime(gap.start),
                  util::format_datetime(gap.end),
                  with_commas(gap.farm_requests)});
  }
  if (!coverage.gaps.empty())
    out += titled_block("DEGRADED DATA — coverage gaps", gaps);

  const auto& farm = study.scenario().farm();
  if (farm.failover_total() > 0) {
    TextTable failovers{{"Failover target", "# Redirected requests"}};
    for (std::size_t p = 0; p < farm.proxy_count(); ++p) {
      if (farm.failovers_to(p) == 0) continue;
      failovers.add_row(
          {policy::proxy_name(p), with_commas(farm.failovers_to(p))});
    }
    out += titled_block("Failover routing (" +
                            with_commas(farm.failover_total()) +
                            " requests diverted)",
                        failovers);
  }
  return out;
}

std::string ports_block(const analysis::LogSource& full,
                        std::size_t threads) {
  const auto ports = analysis::port_distribution(full, 8, threads);
  TextTable table{{"Port", "Allowed", "Censored"}};
  for (const auto& entry : ports)
    table.add_row({std::to_string(entry.port), with_commas(entry.allowed),
                   with_commas(entry.censored)});
  return titled_block("Destination ports (Fig. 1)", table);
}

std::string discovery_block(const analysis::DiscoveryResult& discovery) {
  TextTable table{{"Keyword", "Censored", "Proxied"}};
  for (const auto& kw : discovery.keywords)
    table.add_row({kw.text, with_commas(kw.censored),
                   with_commas(kw.proxied)});
  std::string out = titled_block("Censored keywords (Table 10)", table);

  TextTable domains{{"Domain", "Censored", "Proxied"}};
  for (std::size_t i = 0; i < discovery.domains.size() && i < 10; ++i)
    domains.add_row({discovery.domains[i].text,
                     with_commas(discovery.domains[i].censored),
                     with_commas(discovery.domains[i].proxied)});
  out += titled_block("Top suspected domains (Table 8, of " +
                          std::to_string(discovery.domains.size()) +
                          " discovered)",
                      domains);
  return out;
}

std::string countries_block(const analysis::LogSource& full,
                            const geo::GeoIpDb& geoip, std::size_t threads) {
  const auto countries = analysis::country_censorship(full, geoip, threads);
  TextTable table{{"Country", "Ratio (%)", "# Censored", "# Allowed"}};
  for (const auto& entry : countries)
    table.add_row({entry.country, percent(entry.ratio()),
                   with_commas(entry.censored), with_commas(entry.allowed)});
  return titled_block("Censorship ratio by country (Table 11)", table);
}

std::string osn_block(const analysis::LogSource& full, std::size_t threads) {
  const auto osns = analysis::osn_censorship(full, threads);
  TextTable table{{"OSN", "Censored", "Allowed", "Proxied"}};
  for (std::size_t i = 0; i < osns.size() && i < 10; ++i)
    table.add_row({osns[i].domain, with_commas(osns[i].censored),
                   with_commas(osns[i].allowed),
                   with_commas(osns[i].proxied)});
  std::string out = titled_block("Social networks (Table 13)", table);

  const auto pages = analysis::blocked_facebook_pages(full, threads);
  TextTable pages_table{{"Facebook page", "Censored", "Allowed", "Proxied"}};
  for (const auto& page : pages)
    pages_table.add_row({page.page, with_commas(page.censored),
                         with_commas(page.allowed),
                         with_commas(page.proxied)});
  out += titled_block("Blocked Facebook pages (Table 14)", pages_table);
  return out;
}

std::string tor_block(const analysis::LogSource& full,
                      const tor::RelayDirectory& relays,
                      std::size_t threads) {
  const auto tor = analysis::tor_stats(full, relays, threads);
  TextTable table{{"Metric", "Value"}};
  table.add_row({"Tor requests", with_commas(tor.requests)});
  table.add_row({"Unique relays", with_commas(tor.unique_relays)});
  table.add_row({"Torhttp share",
                 percent(tor.requests == 0
                             ? 0.0
                             : static_cast<double>(tor.http_requests) /
                                   static_cast<double>(tor.requests))});
  table.add_row({"Censored",
                 percent(tor.requests == 0
                             ? 0.0
                             : static_cast<double>(tor.censored) /
                                   static_cast<double>(tor.requests))});
  table.add_row({"TCP errors",
                 percent(tor.requests == 0
                             ? 0.0
                             : static_cast<double>(tor.tcp_errors) /
                                   static_cast<double>(tor.requests))});
  return titled_block("Tor traffic (Sec. 7.1)", table);
}

std::string bittorrent_block(const analysis::LogSource& full,
                             const workload::TorrentRegistry& torrents,
                             std::size_t threads) {
  const auto bt = analysis::bittorrent_stats(full, torrents, threads);
  TextTable table{{"Metric", "Value"}};
  table.add_row({"Announces", with_commas(bt.announces)});
  table.add_row({"Unique peers", with_commas(bt.unique_peers)});
  table.add_row({"Unique contents", with_commas(bt.unique_contents)});
  table.add_row({"Allowed share",
                 percent(bt.announces == 0
                             ? 0.0
                             : static_cast<double>(bt.allowed) /
                                   static_cast<double>(bt.announces))});
  return titled_block("BitTorrent (Sec. 7.3)", table);
}

std::string google_cache_block(const analysis::LogSource& full,
                               const analysis::DiscoveryResult& discovery,
                               std::size_t threads) {
  const auto cache =
      analysis::google_cache_stats(full, discovery.domain_names(), threads);
  TextTable table{{"Metric", "Value"}};
  table.add_row({"Cache requests", with_commas(cache.requests)});
  table.add_row({"Censored", with_commas(cache.censored)});
  table.add_row({"Censored sites served via cache",
                 std::to_string(cache.censored_sites_served.size())});
  return titled_block("Google cache (Sec. 7.4)", table);
}

std::string https_block(const analysis::LogSource& full,
                        std::size_t threads) {
  const auto https = analysis::https_stats(full, threads);
  TextTable table{{"Metric", "Value"}};
  table.add_row({"HTTPS share of traffic",
                 percent(https.share_of_traffic())});
  table.add_row({"Censored HTTPS", percent(https.censored_share())});
  table.add_row({"Censored HTTPS with IP destination",
                 percent(https.censored_ip_share())});
  table.add_row({"TLS interception evidence",
                 https.interception_evidence() ? "YES" : "none"});
  return titled_block("HTTPS traffic (Sec. 4)", table);
}

std::string sampling_block(const analysis::LogSource& full,
                           const analysis::LogSource& sample,
                           std::size_t threads) {
  const auto checks = analysis::sampling_audit(full, sample, 0.05, threads);
  TextTable table{{"Metric", "Dfull", "Dsample", "95% CI covers Dfull"}};
  for (const auto& check : checks) {
    table.add_row({check.metric, percent(check.full_proportion),
                   percent(check.sample_proportion),
                   check.covered ? "yes" : "NO"});
  }
  return titled_block("Dsample accuracy audit (Sec. 3.3)", table);
}

/// One report block with the stage name its wall time is recorded under
/// (when the sources carry an obs::Context).
struct NamedBlock {
  std::string_view stage;
  std::function<std::string()> render;
};

/// The overview's three blocks. `block_threads` parallelizes across the
/// blocks themselves (the Study path — analyzers then scan at s.threads
/// each); the rendered bytes are the same for any combination.
std::string overview_blocks(const ReportSources& s, bool degraded,
                            std::size_t block_threads) {
  std::array<std::string, 3> blocks;
  const std::array<NamedBlock, 3> tasks{{
      {"analysis.dataset_sizes", [&] { return dataset_sizes(s, degraded); }},
      {"analysis.traffic_stats",
       [&] { return traffic_breakdown(s.full, s.threads, degraded); }},
      {"analysis.top_domains",
       [&] { return top_domain_tables(s.full, s.threads, degraded); }},
  }};
  util::parallel_for(tasks.size(), block_threads, [&](std::size_t i) {
    const obs::Span span{s.obs, tasks[i].stage};
    blocks[i] = tasks[i].render();
  });
  std::string out;
  for (const std::string& block : blocks) out += block;
  return out;
}

/// The full report's block set, in paper order. Requires s.geoip,
/// s.relays, and s.torrents.
std::string full_report_blocks(const ReportSources& s, bool degraded,
                               std::size_t block_threads) {
  // Every analyzer below only reads the (prepared) sources, so they fan
  // out on the pool; the one data dependency — Google cache consumes the
  // discovered-domain list — runs after the fan-out. Output order stays
  // the paper's order regardless of completion order.
  analysis::DiscoveryResult discovery;
  std::array<std::string, 11> blocks;
  const std::array<NamedBlock, 11> tasks{{
      {"analysis.dataset_sizes", [&] { return dataset_sizes(s, degraded); }},
      {"analysis.traffic_stats",
       [&] { return traffic_breakdown(s.full, s.threads, degraded); }},
      {"analysis.top_domains",
       [&] { return top_domain_tables(s.full, s.threads, degraded); }},
      {"analysis.ports", [&] { return ports_block(s.full, s.threads); }},
      {"analysis.string_discovery",
       [&] {
         discovery =
             analysis::discover_censored_strings(s.full, {}, s.threads);
         return discovery_block(discovery);
       }},
      {"analysis.countries",
       [&] { return countries_block(s.full, *s.geoip, s.threads); }},
      {"analysis.osn", [&] { return osn_block(s.full, s.threads); }},
      {"analysis.tor",
       [&] { return tor_block(s.full, *s.relays, s.threads); }},
      {"analysis.bittorrent",
       [&] { return bittorrent_block(s.full, *s.torrents, s.threads); }},
      {"analysis.https", [&] { return https_block(s.full, s.threads); }},
      {"analysis.sampling_audit",
       [&] { return sampling_block(s.full, s.sample, s.threads); }},
  }};
  util::parallel_for(tasks.size(), block_threads, [&](std::size_t i) {
    const obs::Span span{s.obs, tasks[i].stage};
    blocks[i] = tasks[i].render();
  });

  std::string out;
  for (std::size_t i = 0; i < 9; ++i) out += blocks[i];
  {
    const obs::Span span{s.obs, "analysis.google_cache"};
    out += google_cache_block(s.full, discovery, s.threads);
  }
  out += blocks[9];   // HTTPS (§4)
  out += blocks[10];  // sampling audit (§3.3)
  return out;
}

/// The Study wrappers' sources: Dataset-backed views of the bundle plus
/// the scenario's resources, analyzers single-threaded (the wrappers
/// parallelize across blocks instead, as the pre-scan-layer report did).
ReportSources study_sources(const Study& study) {
  const auto& bundle = study.datasets();
  return ReportSources{bundle.full,
                       bundle.sample,
                       bundle.user,
                       bundle.denied,
                       &study.scenario().geoip(),
                       &study.scenario().relays(),
                       &study.scenario().torrents(),
                       /*threads=*/1,
                       study.obs_context()};
}

}  // namespace

std::string render_overview(const ReportSources& sources) {
  return overview_blocks(sources, /*degraded=*/false, /*block_threads=*/1);
}

std::string render_full_report(const ReportSources& sources) {
  return full_report_blocks(sources, /*degraded=*/false,
                            /*block_threads=*/1);
}

std::string render_overview(const Study& study) {
  obs::Context* ctx = study.obs_context();
  const std::size_t threads =
      util::resolve_threads(study.scenario().config().threads);
  const bool faulted = !study.scenario().faults().empty();
  analysis::CoverageReport coverage;
  if (faulted) {
    const obs::Span span{ctx, "analysis.coverage"};
    coverage = analysis::request_coverage(study.datasets().full);
  }
  const bool degraded = faulted && coverage.degraded();
  std::string out = overview_blocks(study_sources(study), degraded, threads);
  if (faulted) out += coverage_block(study, coverage);
  return out;
}

std::string render_full_report(const Study& study) {
  obs::Context* ctx = study.obs_context();
  const std::size_t threads =
      util::resolve_threads(study.scenario().config().threads);
  const bool faulted = !study.scenario().faults().empty();
  analysis::CoverageReport coverage;
  if (faulted) {
    const obs::Span span{ctx, "analysis.coverage"};
    coverage = analysis::request_coverage(study.datasets().full);
  }
  const bool degraded = faulted && coverage.degraded();
  std::string out;
  if (faulted) out += coverage_block(study, coverage);
  out += full_report_blocks(study_sources(study), degraded, threads);
  return out;
}

}  // namespace syrwatch::core
