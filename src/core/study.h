#pragma once

#include <cstdint>
#include <memory>

#include "analysis/dataset.h"
#include "workload/scenario.h"

namespace syrwatch::core {

/// End-to-end study driver: simulate the censorship ecosystem, capture the
/// "leaked" log, and derive the paper's four datasets. Analyses are the
/// free functions of syrwatch::analysis; `report.h` renders the complete
/// paper-style report.
class Study {
 public:
  explicit Study(workload::ScenarioConfig config = {});

  /// Generates the log and builds the datasets. Idempotent: re-running
  /// rebuilds the scenario and regenerates from scratch with the same
  /// seed, yielding the identical bundle.
  void run();

  bool has_run() const noexcept { return datasets_ != nullptr; }
  const workload::SyriaScenario& scenario() const noexcept {
    return *scenario_;
  }
  workload::SyriaScenario& scenario() noexcept { return *scenario_; }
  const analysis::DatasetBundle& datasets() const;

 private:
  workload::ScenarioConfig config_;
  std::unique_ptr<workload::SyriaScenario> scenario_;
  std::unique_ptr<analysis::DatasetBundle> datasets_;
};

}  // namespace syrwatch::core
