#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "obs/context.h"
#include "obs/export.h"
#include "util/cancel.h"
#include "workload/scenario.h"

namespace syrwatch::core {

/// Wall-clock accounting for one study run: one PhaseTiming per completed
/// phase ("simulate", "build_datasets"), in execution order. Purely
/// observational — nothing here feeds back into the simulation.
struct RunMetrics {
  std::vector<obs::PhaseTiming> phases;
  /// Records the scenario emitted into the pending log (post leak filter).
  std::uint64_t log_records = 0;

  double total_seconds() const noexcept;
};

/// What a completed run hands back: the derived datasets (owned by the
/// Study, valid until the next simulate()/run()) plus the run's metrics.
struct StudyResult {
  const analysis::DatasetBundle& datasets;
  RunMetrics metrics;
};

/// Durability/cancellation knobs for Study::simulate. The defaults
/// reproduce the plain uncheckpointed run exactly.
struct SimulateOptions {
  /// Cooperative cancellation (SIGINT handler, --deadline): polled by the
  /// generation parallel_for and at batch boundaries of the processing
  /// phase. Cancellation never truncates a batch — the log seen so far is
  /// always a whole number of batches.
  const util::CancelToken* cancel = nullptr;
  /// Non-empty enables batch-granular checkpointing (durable::
  /// run_checkpointed) under this directory.
  std::string checkpoint_dir;
  /// Resume the checkpoint in checkpoint_dir: verify its manifest, replay
  /// the committed spool prefix, regenerate only the missing batches. The
  /// final log is bit-identical to an uninterrupted run (any thread
  /// count).
  bool resume = false;
  /// Durable-commit cadence forwarded to the checkpointer (see
  /// durable::CheckpointOptions::commit_interval).
  std::size_t commit_interval = 1;
  /// Test hook forwarded to the checkpointer: runs after each batch's
  /// checkpoint is durable; throwing simulates a crash at that boundary.
  std::function<void(std::size_t committed_batch)> after_commit;
};

enum class SimulateStatus {
  kComplete,
  /// Cancellation stopped the run early. The partial log never becomes a
  /// pending dataset (build_datasets would silently analyze a truncated
  /// window); with a checkpoint_dir the progress is on disk and resumable.
  kInterrupted,
};

/// End-to-end study driver: simulate the censorship ecosystem, capture the
/// "leaked" log, and derive the paper's four datasets. Analyses are the
/// free functions of syrwatch::analysis; `report.h` renders the complete
/// paper-style report.
///
/// The run is structured as two explicit phases — simulate() generates the
/// log, build_datasets() derives the Table 1 bundle — with run() as the
/// do-both convenience. Each phase records a PhaseTiming into metrics();
/// attach an obs::Context beforehand for stage-level detail underneath.
class Study {
 public:
  explicit Study(workload::ScenarioConfig config = {});

  /// Attaches the observability layer: the scenario, farm, and proxies
  /// resolve their instruments against the context's registry, and the
  /// phase methods keep recording timings either way. A null context (the
  /// default) keeps everything on the pre-obs code path; the generated log
  /// is byte-identical attached or detached (DESIGN.md §4.7). The context
  /// must outlive the study.
  void set_obs(obs::Context* ctx);
  obs::Context* obs_context() const noexcept { return obs_; }

  /// Phase 1: rebuilds the scenario (so repeated runs start from identical
  /// generator state — the farm's caches and PRNGs advance during a run)
  /// and streams the "leaked" log into a pending dataset. Invalidates any
  /// previously derived bundle.
  void simulate();

  /// Controlled phase 1: cancellation, checkpointing, and resume per
  /// `options`. Only a kComplete run arms build_datasets().
  SimulateStatus simulate(const SimulateOptions& options);

  /// Phase 2: derives the four datasets from the pending log. Throws
  /// std::logic_error unless simulate() ran since the last derivation.
  StudyResult build_datasets();

  /// Both phases back to back. Idempotent: re-running regenerates from
  /// scratch with the same seed, yielding the identical bundle.
  StudyResult run();

  bool has_run() const noexcept { return datasets_ != nullptr; }
  const workload::SyriaScenario& scenario() const noexcept {
    return *scenario_;
  }
  workload::SyriaScenario& scenario() noexcept { return *scenario_; }
  const analysis::DatasetBundle& datasets() const;
  /// Phase timings of the most recent simulate()/build_datasets() pair.
  const RunMetrics& metrics() const noexcept { return metrics_; }

 private:
  workload::ScenarioConfig config_;
  std::unique_ptr<workload::SyriaScenario> scenario_;
  /// The finalized log awaiting derivation; set by simulate(), consumed
  /// by build_datasets().
  std::unique_ptr<analysis::Dataset> pending_;
  std::unique_ptr<analysis::DatasetBundle> datasets_;
  RunMetrics metrics_;
  obs::Context* obs_ = nullptr;
};

}  // namespace syrwatch::core
