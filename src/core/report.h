#pragma once

#include <cstddef>
#include <string>

#include "analysis/scan.h"
#include "core/study.h"
#include "geo/geoip.h"
#include "tor/relay_directory.h"
#include "workload/torrents.h"

namespace syrwatch::core {

/// Inputs for the source-based report renderers: the paper's four datasets
/// as scan-layer sources (analysis::LogSource — row Dataset or SYRCOL1
/// container, both render identically) plus the scenario resources some
/// analyzers consult. The sources and resources must outlive the render
/// call; `threads` fans each analyzer's scan out (the rendered bytes are
/// identical for any value), and a non-null `obs` records one
/// analysis.<name> stage span per report block.
struct ReportSources {
  analysis::LogSource full, sample, user, denied;
  const geo::GeoIpDb* geoip = nullptr;
  const tor::RelayDirectory* relays = nullptr;
  const workload::TorrentRegistry* torrents = nullptr;
  std::size_t threads = 1;
  obs::Context* obs = nullptr;
};

/// Renders the headline statistical overview (dataset sizes, Table 3
/// breakdown, top domains) as monospace text — the quick-look report used
/// by the audit example and `syrwatchctl report`.
std::string render_overview(const ReportSources& sources);

/// Renders every reproduced table/figure summary in paper order. Heavier
/// than render_overview (runs string discovery, Tor matching, etc.).
std::string render_full_report(const ReportSources& sources);

/// Study-backed wrappers: same bytes as rendering the study's dataset
/// bundle through the source API, plus the coverage/failover blocks when
/// the scenario carried a fault schedule.
std::string render_overview(const Study& study);
std::string render_full_report(const Study& study);

}  // namespace syrwatch::core
