#pragma once

#include <string>

#include "core/study.h"

namespace syrwatch::core {

/// Renders the headline statistical overview (dataset sizes, Table 3
/// breakdown, top domains, keyword table) as monospace text — the
/// quick-look report used by the audit example.
std::string render_overview(const Study& study);

/// Renders every reproduced table/figure summary in paper order. Heavier
/// than render_overview (runs string discovery, Tor matching, etc.).
std::string render_full_report(const Study& study);

}  // namespace syrwatch::core
