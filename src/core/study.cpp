#include "core/study.h"

#include <stdexcept>
#include <utility>

#include "durable/checkpoint.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace syrwatch::core {

double RunMetrics::total_seconds() const noexcept {
  double total = 0.0;
  for (const obs::PhaseTiming& phase : phases) total += phase.seconds;
  return total;
}

Study::Study(workload::ScenarioConfig config)
    : config_(config),
      scenario_(std::make_unique<workload::SyriaScenario>(config)) {}

void Study::set_obs(obs::Context* ctx) {
  obs_ = ctx;
  if (scenario_) scenario_->set_obs(ctx);
}

void Study::simulate() { simulate(SimulateOptions{}); }

SimulateStatus Study::simulate(const SimulateOptions& options) {
  scenario_ = std::make_unique<workload::SyriaScenario>(config_);
  scenario_->set_obs(obs_);
  metrics_ = RunMetrics{};
  datasets_.reset();
  pending_.reset();

  auto full = std::make_unique<analysis::Dataset>();
  const auto sink = [&full](const proxy::LogRecord& record) {
    full->add(record);
  };
  const std::uint64_t start = obs::monotonic_nanos();
  bool completed = false;
  if (options.checkpoint_dir.empty()) {
    workload::RunControl control;
    control.cancel = options.cancel;
    completed = scenario_->run(sink, control);
  } else {
    durable::CheckpointOptions checkpoint;
    checkpoint.directory = options.checkpoint_dir;
    checkpoint.resume = options.resume;
    checkpoint.cancel = options.cancel;
    checkpoint.commit_interval = options.commit_interval;
    checkpoint.after_commit = options.after_commit;
    completed = durable::run_checkpointed(*scenario_, checkpoint, sink)
                    .completed;
  }
  const double seconds =
      static_cast<double>(obs::monotonic_nanos() - start) * 1e-9;
  if (!completed) {
    // An interrupted window is a prefix, not a dataset — never arm
    // build_datasets() with it. The checkpoint (if any) holds the bytes.
    metrics_.phases.push_back({"simulate", seconds, full->size()});
    return SimulateStatus::kInterrupted;
  }
  full->finalize();
  metrics_.log_records = full->size();
  metrics_.phases.push_back({"simulate", seconds, metrics_.log_records});
  pending_ = std::move(full);
  return SimulateStatus::kComplete;
}

StudyResult Study::build_datasets() {
  if (!pending_)
    throw std::logic_error("Study::build_datasets: simulate() first");
  const std::uint64_t start = obs::monotonic_nanos();
  {
    const obs::Span span{obs_, "study.build_datasets"};
    datasets_ = std::make_unique<analysis::DatasetBundle>(
        analysis::DatasetBundle::derive(
            std::move(*pending_), config_.seed, 0.04,
            util::resolve_threads(config_.threads)));
  }
  pending_.reset();
  const double seconds =
      static_cast<double>(obs::monotonic_nanos() - start) * 1e-9;
  metrics_.phases.push_back(
      {"build_datasets", seconds,
       static_cast<std::uint64_t>(datasets_->full.size())});
  return StudyResult{*datasets_, metrics_};
}

StudyResult Study::run() {
  simulate();
  return build_datasets();
}

const analysis::DatasetBundle& Study::datasets() const {
  if (!datasets_) throw std::logic_error("Study::datasets: run() first");
  return *datasets_;
}

}  // namespace syrwatch::core
