#include "core/study.h"

#include <stdexcept>

#include "util/parallel.h"

namespace syrwatch::core {

Study::Study(workload::ScenarioConfig config)
    : config_(config),
      scenario_(std::make_unique<workload::SyriaScenario>(config)) {}

void Study::run() {
  // Rebuild the scenario so repeated runs start from identical generator
  // state (the farm's caches and PRNGs advance during a run).
  scenario_ = std::make_unique<workload::SyriaScenario>(config_);
  analysis::Dataset full;
  scenario_->run([&](const proxy::LogRecord& record) { full.add(record); });
  full.finalize();
  datasets_ = std::make_unique<analysis::DatasetBundle>(
      analysis::DatasetBundle::derive(std::move(full), config_.seed, 0.04,
                                      util::resolve_threads(config_.threads)));
}

const analysis::DatasetBundle& Study::datasets() const {
  if (!datasets_) throw std::logic_error("Study::datasets: run() first");
  return *datasets_;
}

}  // namespace syrwatch::core
