#include "core/study.h"

#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "util/parallel.h"

namespace syrwatch::core {

double RunMetrics::total_seconds() const noexcept {
  double total = 0.0;
  for (const obs::PhaseTiming& phase : phases) total += phase.seconds;
  return total;
}

Study::Study(workload::ScenarioConfig config)
    : config_(config),
      scenario_(std::make_unique<workload::SyriaScenario>(config)) {}

void Study::set_obs(obs::Context* ctx) {
  obs_ = ctx;
  if (scenario_) scenario_->set_obs(ctx);
}

void Study::simulate() {
  scenario_ = std::make_unique<workload::SyriaScenario>(config_);
  scenario_->set_obs(obs_);
  metrics_ = RunMetrics{};
  datasets_.reset();

  auto full = std::make_unique<analysis::Dataset>();
  const std::uint64_t start = obs::monotonic_nanos();
  scenario_->run(
      [&full](const proxy::LogRecord& record) { full->add(record); });
  full->finalize();
  const double seconds =
      static_cast<double>(obs::monotonic_nanos() - start) * 1e-9;
  metrics_.log_records = full->size();
  metrics_.phases.push_back({"simulate", seconds, metrics_.log_records});
  pending_ = std::move(full);
}

StudyResult Study::build_datasets() {
  if (!pending_)
    throw std::logic_error("Study::build_datasets: simulate() first");
  const std::uint64_t start = obs::monotonic_nanos();
  {
    const obs::Span span{obs_, "study.build_datasets"};
    datasets_ = std::make_unique<analysis::DatasetBundle>(
        analysis::DatasetBundle::derive(
            std::move(*pending_), config_.seed, 0.04,
            util::resolve_threads(config_.threads)));
  }
  pending_.reset();
  const double seconds =
      static_cast<double>(obs::monotonic_nanos() - start) * 1e-9;
  metrics_.phases.push_back(
      {"build_datasets", seconds,
       static_cast<std::uint64_t>(datasets_->full.size())});
  return StudyResult{*datasets_, metrics_};
}

StudyResult Study::run() {
  simulate();
  return build_datasets();
}

const analysis::DatasetBundle& Study::datasets() const {
  if (!datasets_) throw std::logic_error("Study::datasets: run() first");
  return *datasets_;
}

}  // namespace syrwatch::core
