#pragma once

#include <span>
#include <string>

#include "obs/metrics.h"

namespace syrwatch::obs {

/// One coarse run phase (e.g. Study's simulate / build_datasets) with its
/// wall time and the number of items it handled. Phases are the top level
/// of the metrics JSON; stages are the fine-grained breakdown beneath.
struct PhaseTiming {
  std::string name;
  double seconds = 0.0;
  std::uint64_t items = 0;
};

/// Renders the `syrwatch.metrics.v1` JSON document:
///
///   {
///     "schema": "syrwatch.metrics.v1",
///     "command": "<command>",
///     "counters": {"name": 123, ...},
///     "gauges": {"name": 1.5, ...},
///     "stages": {"name": {"count": N, "total_seconds": s,
///                          "min_seconds": s, "max_seconds": s}, ...},
///     "phases": [{"name": "...", "seconds": s, "items": N}, ...],
///     "total_seconds": s
///   }
///
/// `total_seconds` is the caller-measured wall time of the whole run; the
/// phase list should cover it (tools/ci-metrics-smoke.sh checks that the
/// phase sum approximates the total). Keys are emitted in sorted order, so
/// the document layout is deterministic for a given snapshot.
std::string to_json(const MetricsSnapshot& snapshot, std::string_view command,
                    std::span<const PhaseTiming> phases,
                    double total_seconds);

/// Renders the snapshot in the repo's `util::table` text format: a phase
/// table (when any), a stage wall-time breakdown, and a counter/gauge
/// table — the body of `syrwatchctl profile` and the bench metric blocks.
std::string render_text(const MetricsSnapshot& snapshot,
                        std::span<const PhaseTiming> phases,
                        double total_seconds);

}  // namespace syrwatch::obs
