#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

#include "util/strings.h"
#include "util/table.h"

namespace syrwatch::obs {

namespace {

/// JSON string escaping for the metric names we emit (ASCII identifiers in
/// practice, but correct for anything).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

std::string json_number(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  return buffer;
}

double seconds_of(std::uint64_t nanos) {
  return static_cast<double>(nanos) * 1e-9;
}

std::string millis_text(std::uint64_t nanos) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f",
                static_cast<double>(nanos) * 1e-6);
  return buffer;
}

std::string seconds_text(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", seconds);
  return buffer;
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot, std::string_view command,
                    std::span<const PhaseTiming> phases,
                    double total_seconds) {
  std::string out = "{\n  \"schema\": \"syrwatch.metrics.v1\",\n";
  out += "  \"command\": \"" + json_escape(command) + "\",\n";

  out += "  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    \"" + json_escape(snapshot.counters[i].name) +
           "\": " + json_number(snapshot.counters[i].value);
  }
  out += snapshot.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    \"" + json_escape(snapshot.gauges[i].name) +
           "\": " + json_number(snapshot.gauges[i].value);
  }
  out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"stages\": {";
  for (std::size_t i = 0; i < snapshot.stages.size(); ++i) {
    const auto& stage = snapshot.stages[i];
    if (i != 0) out += ',';
    out += "\n    \"" + json_escape(stage.name) + "\": {\"count\": " +
           json_number(stage.count) +
           ", \"total_seconds\": " + json_number(seconds_of(stage.total_nanos)) +
           ", \"min_seconds\": " + json_number(seconds_of(stage.min_nanos)) +
           ", \"max_seconds\": " + json_number(seconds_of(stage.max_nanos)) +
           "}";
  }
  out += snapshot.stages.empty() ? "},\n" : "\n  },\n";

  out += "  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out += ',';
    out += "\n    {\"name\": \"" + json_escape(phases[i].name) +
           "\", \"seconds\": " + json_number(phases[i].seconds) +
           ", \"items\": " + json_number(phases[i].items) + "}";
  }
  out += phases.empty() ? "],\n" : "\n  ],\n";

  out += "  \"total_seconds\": " + json_number(total_seconds) + "\n}\n";
  return out;
}

std::string render_text(const MetricsSnapshot& snapshot,
                        std::span<const PhaseTiming> phases,
                        double total_seconds) {
  std::string out;

  if (!phases.empty()) {
    util::TextTable table{{"Phase", "Wall (s)", "Share", "Items"}};
    for (const PhaseTiming& phase : phases) {
      table.add_row({phase.name, seconds_text(phase.seconds),
                     total_seconds > 0.0
                         ? util::percent(phase.seconds / total_seconds)
                         : "-",
                     util::with_commas(phase.items)});
    }
    table.add_row({"total", seconds_text(total_seconds), "-", "-"});
    out += util::titled_block("Run phases", table);
  }

  if (!snapshot.stages.empty()) {
    util::TextTable table{
        {"Stage", "Calls", "Total (ms)", "Mean (ms)", "Min (ms)", "Max (ms)"}};
    for (const auto& stage : snapshot.stages) {
      const std::uint64_t mean =
          stage.count == 0 ? 0 : stage.total_nanos / stage.count;
      table.add_row({stage.name, util::with_commas(stage.count),
                     millis_text(stage.total_nanos), millis_text(mean),
                     millis_text(stage.min_nanos),
                     millis_text(stage.max_nanos)});
    }
    out += util::titled_block("Stage wall-time breakdown", table);
  }

  if (!snapshot.counters.empty() || !snapshot.gauges.empty()) {
    util::TextTable table{{"Metric", "Value"}};
    for (const auto& counter : snapshot.counters)
      table.add_row({counter.name, util::with_commas(counter.value)});
    for (const auto& gauge : snapshot.gauges) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.4g", gauge.value);
      table.add_row({gauge.name, buffer});
    }
    out += util::titled_block("Counters", table);
  }

  return out;
}

}  // namespace syrwatch::obs
