#pragma once

#include <string_view>

#include "obs/metrics.h"

namespace syrwatch::obs {

/// The nullable handle the pipeline threads instrumentation through. Every
/// instrumented subsystem accepts an `obs::Context*` that defaults to
/// nullptr; a null context keeps each instrumentation site a single
/// pointer test on a cold branch, so the un-observed pipeline is
/// byte-identical to a build that predates the obs layer (verified by
/// tests/test_obs.cpp). The context never owns the registry — attach one
/// registry to as many contexts/subsystems as the run spans.
class Context {
 public:
  explicit Context(MetricsRegistry* registry) noexcept
      : registry_(registry) {}

  MetricsRegistry& registry() const noexcept { return *registry_; }

 private:
  MetricsRegistry* registry_;
};

/// Null-safe instrument resolution: hot paths call these once at attach
/// time, cache the returned pointer, and afterwards pay one branch plus
/// one relaxed atomic per event — or nothing at all when detached.
inline Counter* counter(Context* ctx, std::string_view name) {
  return ctx == nullptr ? nullptr : &ctx->registry().counter(name);
}

inline Gauge* gauge(Context* ctx, std::string_view name) {
  return ctx == nullptr ? nullptr : &ctx->registry().gauge(name);
}

inline StageStats* stage(Context* ctx, std::string_view name) {
  return ctx == nullptr ? nullptr : &ctx->registry().stage(name);
}

/// Null-safe counter bump.
inline void add(Counter* counter, std::uint64_t n = 1) noexcept {
  if (counter != nullptr) counter->add(n);
}

}  // namespace syrwatch::obs
