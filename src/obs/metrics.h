#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace syrwatch::obs {

/// Monotonic event counter. add() is a single relaxed atomic RMW, so
/// generation shards and per-proxy workers bump shared counters without
/// synchronizing — counters are statistics, never control flow, and they
/// must not perturb any RNG stream (the determinism contract of
/// DESIGN.md §4.7).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (e.g. a configured thread count or a hit rate
/// computed at the end of a phase).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated wall-time of one named pipeline stage: call count, total,
/// and min/max per call. record() is lock-free (relaxed adds plus CAS
/// loops for the extrema) so concurrent workers can time their own slice
/// of a stage; totals are exact, extrema race-free.
class StageStats {
 public:
  void record(std::uint64_t nanos) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_nanos() const noexcept {
    return total_nanos_.load(std::memory_order_relaxed);
  }
  /// 0 when nothing was recorded.
  std::uint64_t min_nanos() const noexcept;
  std::uint64_t max_nanos() const noexcept {
    return max_nanos_.load(std::memory_order_relaxed);
  }
  double total_seconds() const noexcept {
    return static_cast<double>(total_nanos()) * 1e-9;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_nanos_{0};
  std::atomic<std::uint64_t> min_nanos_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_nanos_{0};
};

/// Point-in-time copy of a registry, ordered by name (std::map iteration),
/// so two snapshots of identical state render identically.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct StageValue {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t total_nanos = 0;
    std::uint64_t min_nanos = 0;
    std::uint64_t max_nanos = 0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<StageValue> stages;
};

/// Thread-safe home of every named metric. Registration (the first lookup
/// of a name) takes a mutex; the returned references are stable for the
/// registry's lifetime (node-based storage), so hot paths resolve their
/// instruments once at attach time and afterwards touch only the atomics.
/// Nothing in the registry consumes randomness or orders work, so an
/// attached registry can never change simulated output — only observe it.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  StageStats& stage(std::string_view name);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // std::less<> enables string_view lookup without materializing a key.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, StageStats, std::less<>> stages_;
};

}  // namespace syrwatch::obs
