#include "obs/metrics.h"

namespace syrwatch::obs {

void StageStats::record(std::uint64_t nanos) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t seen = min_nanos_.load(std::memory_order_relaxed);
  while (nanos < seen &&
         !min_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
  seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

std::uint64_t StageStats::min_nanos() const noexcept {
  const std::uint64_t value = min_nanos_.load(std::memory_order_relaxed);
  return value == ~std::uint64_t{0} ? 0 : value;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

StageStats& MetricsRegistry::stage(std::string_view name) {
  std::lock_guard<std::mutex> lock{mutex_};
  const auto it = stages_.find(name);
  if (it != stages_.end()) return it->second;
  return stages_.try_emplace(std::string(name)).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock{mutex_};
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.push_back({name, counter.value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snap.gauges.push_back({name, gauge.value()});
  snap.stages.reserve(stages_.size());
  for (const auto& [name, stage] : stages_) {
    snap.stages.push_back({name, stage.count(), stage.total_nanos(),
                           stage.min_nanos(), stage.max_nanos()});
  }
  return snap;
}

}  // namespace syrwatch::obs
