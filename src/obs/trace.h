#pragma once

#include <cstdint>
#include <string_view>

#include "obs/context.h"
#include "obs/metrics.h"

namespace syrwatch::obs {

/// Monotonic wall-clock in nanoseconds (steady_clock). Timing is the one
/// observable that legitimately varies between runs; everything else a
/// registry records is deterministic in the seed.
std::uint64_t monotonic_nanos() noexcept;

/// RAII stage timer: records the elapsed wall time into a StageStats on
/// destruction (or at an explicit stop()). A null target makes both the
/// constructor and destructor no-ops, so timers can sit unconditionally in
/// the pipeline. Safe to construct on worker threads — StageStats
/// accumulation is lock-free.
class StageTimer {
 public:
  explicit StageTimer(StageStats* stats) noexcept : stats_(stats) {
    if (stats_ != nullptr) start_ = monotonic_nanos();
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() { stop(); }

  /// Records once; further calls (and the destructor) do nothing.
  void stop() noexcept {
    if (stats_ == nullptr) return;
    stats_->record(monotonic_nanos() - start_);
    stats_ = nullptr;
  }

 private:
  StageStats* stats_;
  std::uint64_t start_ = 0;
};

/// Named convenience over StageTimer: resolves the stage from a (nullable)
/// Context at construction. Use for per-phase / per-analyzer scopes; hot
/// per-request sites should resolve their StageStats once and reuse it.
class Span {
 public:
  Span(Context* ctx, std::string_view name) : timer_(stage(ctx, name)) {}

  void stop() noexcept { timer_.stop(); }

 private:
  StageTimer timer_;
};

}  // namespace syrwatch::obs
