#include "obs/trace.h"

#include <chrono>

namespace syrwatch::obs {

std::uint64_t monotonic_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace syrwatch::obs
