#include "durable/checkpoint.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/context.h"
#include "obs/trace.h"
#include "proxy/log_io.h"
#include "util/checksum.h"
#include "util/vfs.h"

namespace syrwatch::durable {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kStateFile = "farm_state.bin";
/// Second farm-state slot. Commits alternate between the two slots and the
/// manifest names the live one, so the previous snapshot is never clobbered
/// in place: a power cut between the state rename and the manifest rename
/// leaves the old manifest still pointing at its own intact slot, instead
/// of at a newer state file whose CRC it cannot match.
constexpr std::string_view kStateAltFile = "farm_state.alt.bin";
constexpr std::string_view kKeysFile = "merge_keys.bin";

/// The manifest's live farm-state artifact (by role — its path alternates
/// between the two slots), or nullptr before the first commit.
const ManifestArtifact* find_state_artifact(const RunManifest& manifest) {
  for (const ManifestArtifact& artifact : manifest.artifacts)
    if (artifact.role == "state") return &artifact;
  return nullptr;
}

[[noreturn]] void throw_io(const std::string& what) {
  const int code = errno;
  throw util::VfsError(what + ": " + std::strerror(code), code);
}

/// Closes a Vfs fd on scope exit; fds stay owned here for the whole run
/// (error paths unwind through it).
struct FdGuard {
  util::Vfs& vfs;
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) vfs.close(fd);
  }
};

void append_key_le(std::string& out, std::uint64_t key) {
  for (int shift = 0; shift < 64; shift += 8)
    out += static_cast<char>((key >> shift) & 0xFF);
}

void append_u64(std::string& out, std::string_view key, std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  out += key;
  out += '=';
  out += buffer;
  out += '\n';
}

void append_double(std::string& out, std::string_view key, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  out += key;
  out += '=';
  out += buffer;
  out += '\n';
}

void append_bool(std::string& out, std::string_view key, bool value) {
  out += key;
  out += value ? "=1\n" : "=0\n";
}

/// Streams the committed prefix of a spool file (header line + record
/// lines) back through the sink, strictly: a checkpointed record that
/// fails to parse means the artifact was damaged after its CRC check,
/// which is never recoverable. Returns the record count.
std::uint64_t replay_spool(const std::string& path, std::uint64_t limit,
                           const workload::LogCallback& sink) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("checkpoint: cannot open spool " + path);
  std::string line;
  std::uint64_t consumed = 0;
  std::uint64_t line_number = 0;
  std::uint64_t replayed = 0;
  while (consumed < limit && std::getline(in, line)) {
    ++line_number;
    consumed += line.size() + 1;  // getline consumed the '\n' too
    if (consumed > limit)
      throw std::runtime_error(
          "checkpoint: " + path +
          ": committed prefix does not end on a record boundary");
    if (line_number == 1) continue;  // csv header
    if (line.empty()) continue;
    const auto record = proxy::from_csv(line);
    if (!record)
      throw std::runtime_error("checkpoint: " + path + ": line " +
                               std::to_string(line_number) +
                               ": unparseable checkpointed record");
    sink(*record);
    ++replayed;
  }
  if (in.bad())
    throw std::runtime_error("checkpoint: read error on spool " + path);
  if (consumed != limit)
    throw std::runtime_error("checkpoint: " + path +
                             " is shorter than its manifest digest");
  return replayed;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad())
    throw std::runtime_error("checkpoint: read error on " + path);
  return std::move(buffer).str();
}

[[noreturn]] void refuse(const std::string& path, std::string_view why) {
  throw std::runtime_error("checkpoint: refusing to resume — " + path +
                           ": " + std::string(why));
}

/// Where a resume replays the log from: the spool while the checkpoint
/// still owns it, or the promoted output file after finalize_output.
struct ReplaySource {
  std::string path;
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
};

ReplaySource resolve_replay_source(const RunManifest& manifest,
                                   const fs::path& dir) {
  if (const ManifestArtifact* spool = manifest.find_artifact(kSpoolFile))
    return {(dir / kSpoolFile).string(), spool->bytes, spool->crc32};
  for (const ManifestArtifact& artifact : manifest.artifacts) {
    if (artifact.role != "output") continue;
    // Promoted output: recorded as the operator passed it; try as given,
    // then relative to the checkpoint directory (mirrors verify).
    std::error_code ec;
    if (fs::exists(artifact.path, ec) && !ec)
      return {artifact.path, artifact.bytes, artifact.crc32};
    return {(dir / artifact.path).string(), artifact.bytes, artifact.crc32};
  }
  throw std::runtime_error(
      "checkpoint: manifest lists neither a spool nor an output artifact — "
      "nothing to replay");
}

}  // namespace

std::string config_fingerprint(const workload::ScenarioConfig& config) {
  // Canonical key=value rendering, one semantic field per line, fixed
  // order. `threads` is excluded on purpose: the log is thread-count
  // invariant, so resume at a different worker count must fingerprint
  // identically. Extending ScenarioConfig means extending this list —
  // tests/test_durable.cpp pins the fingerprint of the default config.
  std::string canon = "syrwatch.scenario.v1\n";
  append_u64(canon, "seed", config.seed);
  append_u64(canon, "total_requests", config.total_requests);
  append_u64(canon, "user_population", config.user_population);
  append_u64(canon, "catalog_tail", config.catalog_tail);
  append_double(canon, "catalog_tail_weight", config.catalog_tail_weight);
  append_u64(canon, "relay_count", config.relay_count);
  append_u64(canon, "torrent_contents", config.torrent_contents);
  const proxy::SgProxyConfig& proxy = config.proxy_config;
  append_u64(canon, "proxy.cache_capacity", proxy.cache_capacity);
  append_u64(canon, "proxy.cache_ttl_seconds",
             static_cast<std::uint64_t>(proxy.cache_ttl_seconds));
  append_double(canon, "proxy.observed_admit_prob",
                proxy.observed_admit_prob);
  append_double(canon, "proxy.policy_admit_prob", proxy.policy_admit_prob);
  append_double(canon, "proxy.not_modified_prob", proxy.not_modified_prob);
  append_bool(canon, "proxy.intercept_https", proxy.intercept_https);
  const proxy::ErrorRates& rates = proxy.error_rates;
  append_double(canon, "proxy.err.tcp_error", rates.tcp_error);
  append_double(canon, "proxy.err.internal_error", rates.internal_error);
  append_double(canon, "proxy.err.invalid_request", rates.invalid_request);
  append_double(canon, "proxy.err.unsupported_protocol",
                rates.unsupported_protocol);
  append_double(canon, "proxy.err.dns_unresolved_hostname",
                rates.dns_unresolved_hostname);
  append_double(canon, "proxy.err.dns_server_failure",
                rates.dns_server_failure);
  append_double(canon, "proxy.err.unsupported_encoding",
                rates.unsupported_encoding);
  append_double(canon, "proxy.err.invalid_response", rates.invalid_response);
  append_bool(canon, "apply_leak_filter", config.apply_leak_filter);
  append_u64(canon, "slot_seconds",
             static_cast<std::uint64_t>(config.slot_seconds));
  append_bool(canon, "enable_affinity", config.enable_affinity);
  for (const auto& [name, boost] : config.share_boosts)  // map: sorted
    append_double(canon, "boost." + name, boost);
  canon += "fault_profile=" + config.fault_profile + "\n";
  return util::to_hex64(util::fnv1a64(canon));
}

CheckpointedRun run_checkpointed(workload::SyriaScenario& scenario,
                                 const CheckpointOptions& options,
                                 const workload::LogCallback& sink) {
  if (options.directory.empty())
    throw std::runtime_error("checkpoint: directory must not be empty");
  if (options.commit_interval == 0)
    throw std::runtime_error("checkpoint: commit_interval must be >= 1");
  const fs::path dir{options.directory};
  const std::string manifest_path = (dir / RunManifest::kFileName).string();
  const std::string spool_path = (dir / kSpoolFile).string();
  const std::string state_path = (dir / kStateFile).string();
  // Which slot holds the farm state this run resumes from / commits to
  // next; tracked through the manifest's "state" artifact (see
  // kStateAltFile).
  std::string active_state_path = state_path;
  const std::string keys_path = (dir / kKeysFile).string();
  const std::string fingerprint = config_fingerprint(scenario.config());
  const std::size_t total_batches = scenario.batch_count();

  obs::Context* const ctx = scenario.obs_context();
  obs::Counter* const obs_commits =
      obs::counter(ctx, "checkpoint.commits");
  obs::Counter* const obs_replayed =
      obs::counter(ctx, "checkpoint.records_replayed");
  obs::StageStats* const spool_stage =
      obs::stage(ctx, "checkpoint.append_spool");
  obs::StageStats* const state_stage =
      obs::stage(ctx, "checkpoint.write_state");

  CheckpointedRun result;
  RunManifest& manifest = result.manifest;

  std::error_code ec;
  const bool have_manifest = fs::exists(manifest_path, ec) && !ec;
  ReplaySource replay_from;
  if (options.resume) {
    if (!have_manifest)
      throw std::runtime_error("checkpoint: nothing to resume — no " +
                               std::string(RunManifest::kFileName) + " in " +
                               options.directory);
    manifest = RunManifest::load(manifest_path);
    if (manifest.command != options.command)
      throw std::runtime_error(
          "checkpoint: manifest records command \"" + manifest.command +
          "\", cannot resume it as \"" + options.command + "\"");
    if (manifest.config_fingerprint != fingerprint)
      throw std::runtime_error(
          "checkpoint: config fingerprint mismatch (manifest " +
          manifest.config_fingerprint + ", current " + fingerprint +
          ") — the checkpoint was written by a different configuration");
    if (manifest.total_batches != total_batches)
      throw std::runtime_error(
          "checkpoint: batch-count mismatch (manifest " +
          std::to_string(manifest.total_batches) + ", current " +
          std::to_string(total_batches) + ")");

    if (manifest.next_batch > 0 || manifest.complete()) {
      // Verify the log bytes we are about to trust: committed spool
      // prefix (a torn tail beyond it is legal — truncated below) and the
      // farm state snapshot.
      replay_from = resolve_replay_source(manifest, dir);
      std::error_code exists_ec;
      if (!fs::exists(replay_from.path, exists_ec) || exists_ec)
        refuse(replay_from.path, "MISSING");
      const util::FileDigest digest =
          util::crc32_file_prefix(replay_from.path, replay_from.bytes);
      if (digest.bytes != replay_from.bytes)
        refuse(replay_from.path, "SIZE MISMATCH (shorter than manifest)");
      if (digest.crc32 != replay_from.crc32)
        refuse(replay_from.path, "CRC MISMATCH");
      if (const ManifestArtifact* state = find_state_artifact(manifest);
          state != nullptr && !manifest.complete()) {
        active_state_path = (dir / state->path).string();
        std::error_code state_ec;
        if (!fs::exists(active_state_path, state_ec) || state_ec)
          refuse(active_state_path, "MISSING");
        const util::FileDigest state_digest =
            util::crc32_file(active_state_path);
        if (state_digest.bytes != state->bytes ||
            state_digest.crc32 != state->crc32)
          refuse(active_state_path, "CRC MISMATCH");
      }
      // Drop any torn tail a crashed append left beyond the committed
      // prefix, so the re-executed batches append onto clean bytes.
      if (manifest.find_artifact(kSpoolFile) != nullptr) {
        std::error_code size_ec;
        const std::uintmax_t on_disk =
            fs::file_size(replay_from.path, size_ec);
        if (!size_ec && on_disk > replay_from.bytes)
          fs::resize_file(replay_from.path, replay_from.bytes);
      }
      if (options.record_keys) {
        // The merge-key sidecar carries the same committed-prefix
        // semantics as the spool: verify, then truncate any torn tail.
        const ManifestArtifact* keys = manifest.find_artifact(kKeysFile);
        if (keys == nullptr)
          refuse(keys_path,
                 "manifest records no merge-key sidecar — the checkpoint "
                 "was not written by a shard worker");
        std::error_code keys_ec;
        if (!fs::exists(keys_path, keys_ec) || keys_ec)
          refuse(keys_path, "MISSING");
        const util::FileDigest keys_digest =
            util::crc32_file_prefix(keys_path, keys->bytes);
        if (keys_digest.bytes != keys->bytes)
          refuse(keys_path, "SIZE MISMATCH (shorter than manifest)");
        if (keys_digest.crc32 != keys->crc32)
          refuse(keys_path, "CRC MISMATCH");
        std::error_code size_ec;
        const std::uintmax_t on_disk = fs::file_size(keys_path, size_ec);
        if (!size_ec && on_disk > keys->bytes)
          fs::resize_file(keys_path, keys->bytes);
      }
    }
  } else {
    if (have_manifest)
      throw std::runtime_error(
          "checkpoint: " + options.directory + " already holds a " +
          std::string(RunManifest::kFileName) +
          " — pass --resume to continue it, or point --checkpoint-dir at "
          "an empty directory");
    const workload::ScenarioConfig& config = scenario.config();
    manifest.command = options.command;
    manifest.seed = config.seed;
    manifest.total_requests = config.total_requests;
    manifest.fault_profile = config.fault_profile;
    manifest.apply_leak_filter = config.apply_leak_filter;
    manifest.config_fingerprint = fingerprint;
    manifest.total_batches = total_batches;
  }

  fs::create_directories(dir, ec);
  if (ec)
    throw std::runtime_error("checkpoint: cannot create " + dir.string() +
                             ": " + ec.message());

  // Replay the committed prefix (also the whole run when the manifest is
  // already complete — re-running a finished checkpoint is idempotent).
  if (manifest.next_batch > 0 || manifest.complete())
    result.records_replayed =
        replay_spool(replay_from.path, replay_from.bytes, sink);
  result.batches_replayed = manifest.next_batch;
  obs::add(obs_replayed, result.records_replayed);

  if (manifest.complete()) {
    result.completed = true;
    return result;
  }

  if (manifest.next_batch > 0)
    scenario.farm().restore_state(read_file(active_state_path));

  // Open the spool for appending and seat the running CRC where the
  // committed prefix left it. A fresh run starts the spool with the csv
  // header line, so on completion the spool is the finished log verbatim.
  // All durable writes go through the injectable Vfs (DESIGN.md §4.13):
  // batches append via write_fully (short writes advanced, EINTR retries
  // capped) with no fsync — durability is bought only at commit
  // boundaries, where spool and keys are fsynced before the state and
  // manifest that describe them.
  util::Vfs& vfs = util::vfs_or_default(options.vfs);
  util::Crc32 spool_crc;
  std::uint64_t spool_bytes = 0;
  FdGuard spool{vfs};
  if (manifest.next_batch > 0) {
    const ManifestArtifact* artifact = manifest.find_artifact(kSpoolFile);
    spool.fd = vfs.open(spool_path, util::OpenMode::kAppend);
    if (spool.fd < 0)
      throw_io("checkpoint: cannot append to " + spool_path);
    spool_crc.resume(artifact->crc32);
    spool_bytes = artifact->bytes;
  } else {
    spool.fd = vfs.open(spool_path, util::OpenMode::kTruncate);
    if (spool.fd < 0) throw_io("checkpoint: cannot create " + spool_path);
    std::string header{proxy::log_csv_header()};
    header += '\n';
    // The header is fsynced immediately: the first manifest save below
    // records it as the committed prefix, and a manifest must never
    // describe bytes the disk could still lose.
    if (!util::write_fully(vfs, spool.fd, header) ||
        !util::fsync_fully(vfs, spool.fd))
      throw_io("checkpoint: write error on " + spool_path);
    spool_crc.update(header);
    spool_bytes = header.size();
    manifest.upsert_artifact({std::string(kSpoolFile), "spool",
                              spool_bytes, spool_crc.value(), -1});
  }

  // The merge-key sidecar mirrors the spool's open/append/resume dance.
  util::Crc32 keys_crc;
  std::uint64_t keys_bytes = 0;
  FdGuard keys{vfs};
  if (options.record_keys) {
    if (manifest.next_batch > 0) {
      const ManifestArtifact* artifact = manifest.find_artifact(kKeysFile);
      keys.fd = vfs.open(keys_path, util::OpenMode::kAppend);
      if (keys.fd < 0)
        throw_io("checkpoint: cannot append to " + keys_path);
      keys_crc.resume(artifact->crc32);
      keys_bytes = artifact->bytes;
    } else {
      keys.fd = vfs.open(keys_path, util::OpenMode::kTruncate);
      if (keys.fd < 0) throw_io("checkpoint: cannot create " + keys_path);
      manifest.upsert_artifact({std::string(kKeysFile), "keys", 0, 0, -1});
    }
  }

  manifest.state = "in_progress";
  manifest.threads = scenario.config().threads;
  manifest.save(manifest_path, &vfs);

  // Records serialize exactly once, straight into the pending append.
  std::string batch_text;
  std::string batch_keys;
  std::size_t batches_done = manifest.next_batch;
  std::size_t uncommitted = 0;

  const auto commit = [&]() {
    // Durability order: spool (and keys) bytes reach stable storage
    // before the state snapshot and manifest that describe them.
    if (!util::fsync_fully(vfs, spool.fd))
      throw_io("checkpoint: fsync of " + spool_path + " failed");
    if (options.record_keys && !util::fsync_fully(vfs, keys.fd))
      throw_io("checkpoint: fsync of " + keys_path + " failed");
    // The new snapshot goes to the slot the manifest does NOT currently
    // reference — the live slot stays intact until the manifest save below
    // durably switches over, so a power cut anywhere inside this commit
    // leaves the on-disk manifest paired with an on-disk state it matches.
    const ManifestArtifact* prev_state = find_state_artifact(manifest);
    const std::string_view target_slot =
        (prev_state != nullptr && prev_state->path == kStateFile)
            ? kStateAltFile
            : kStateFile;
    const std::string_view stale_slot =
        target_slot == kStateFile ? kStateAltFile : kStateFile;
    active_state_path = (dir / target_slot).string();
    util::ArtifactInfo state_info;
    {
      const obs::StageTimer timer{state_stage};
      state_info = util::atomic_write_file(
          active_state_path, scenario.farm().save_state(), &vfs);
    }
    manifest.upsert_artifact({std::string(kSpoolFile), "spool", spool_bytes,
                              spool_crc.value(),
                              static_cast<std::int64_t>(batches_done) - 1});
    if (options.record_keys)
      manifest.upsert_artifact({std::string(kKeysFile), "keys", keys_bytes,
                                keys_crc.value(),
                                static_cast<std::int64_t>(batches_done) - 1});
    std::erase_if(manifest.artifacts, [](const ManifestArtifact& artifact) {
      return artifact.role == "state";
    });
    manifest.upsert_artifact({std::string(target_slot), "state",
                              state_info.bytes, state_info.crc32, -1});
    manifest.next_batch = batches_done;
    manifest.save(manifest_path, &vfs);
    // The other slot is now one commit stale and unreferenced; drop it
    // (best-effort — on a full disk this is also what frees room for the
    // next snapshot).
    vfs.unlink((dir / stale_slot).string());
    uncommitted = 0;
    obs::add(obs_commits);
  };

  workload::RunControl control;
  control.cancel = options.cancel;
  control.start_batch = manifest.next_batch;
  control.proxy_mask = options.proxy_mask;
  if (options.record_keys)
    control.keyed_sink = [&](std::uint64_t key, const proxy::LogRecord&) {
      append_key_le(batch_keys, key);
    };
  control.on_batch = [&](std::size_t batch) {
    {
      const obs::StageTimer timer{spool_stage};
      if (!util::write_fully(vfs, spool.fd, batch_text))
        throw_io("checkpoint: write error on " + spool_path);
      if (options.record_keys) {
        // Keys append after the spool: a crash between the two leaves
        // more spool than keys on disk, and both beyond the committed
        // prefix — resume truncates each back to its manifest digest,
        // restoring the one-key-per-record invariant.
        if (!util::write_fully(vfs, keys.fd, batch_keys))
          throw_io("checkpoint: write error on " + keys_path);
      }
    }
    spool_crc.update(batch_text);
    spool_bytes += batch_text.size();
    batch_text.clear();
    if (options.record_keys) {
      keys_crc.update(batch_keys);
      keys_bytes += batch_keys.size();
      batch_keys.clear();
    }
    batches_done = batch + 1;
    ++uncommitted;
    ++result.batches_executed;
    if (uncommitted >= options.commit_interval ||
        batches_done == total_batches) {
      commit();
      if (options.after_commit) options.after_commit(batch);
    }
    if (options.on_progress) options.on_progress(batch);
  };

  const workload::LogCallback buffering_sink =
      [&](const proxy::LogRecord& record) {
        batch_text += proxy::to_csv(record);
        batch_text += '\n';
        sink(record);
      };

  bool finished = false;
  try {
    finished = scenario.run(buffering_sink, control);
    // A cancellation between commit boundaries still has durable spool
    // bytes — capture them so the resume re-executes nothing it has.
    if (!finished && uncommitted > 0) commit();
  } catch (const util::VfsError& error) {
    if (!error.out_of_space()) throw;
    // Graceful out-of-space degradation: truncate the uncommitted
    // spool/keys tail away — reclaiming real space on the full disk,
    // which is what lets the small "interrupted" manifest below land —
    // and stop cleanly at the last durable commit.
    result.stop_reason = std::string("disk full: ") + error.what();
    if (const ManifestArtifact* artifact = manifest.find_artifact(kSpoolFile))
      vfs.truncate(spool_path, artifact->bytes);
    if (options.record_keys)
      if (const ManifestArtifact* artifact = manifest.find_artifact(kKeysFile))
        vfs.truncate(keys_path, artifact->bytes);
  }
  manifest.state = finished ? "complete" : "interrupted";
  try {
    manifest.save(manifest_path, &vfs);
  } catch (const util::VfsError& error) {
    // Tolerable only while already degrading on a full disk: the last
    // committed manifest on disk still says "in_progress" and remains
    // fully consistent and resumable — we just could not restamp it.
    if (result.stop_reason.empty() || !error.out_of_space()) throw;
  }
  result.completed = finished;
  return result;
}

util::ArtifactInfo finalize_output(const std::string& directory,
                                   RunManifest& manifest,
                                   const std::string& out_path,
                                   util::Vfs* vfs_opt) {
  util::Vfs& vfs = util::vfs_or_default(vfs_opt);
  if (!manifest.complete())
    throw std::runtime_error(
        "checkpoint: cannot finalize output from an incomplete checkpoint "
        "(state \"" +
        manifest.state + "\")");
  const fs::path dir{directory};
  const std::string manifest_path = (dir / RunManifest::kFileName).string();
  const ManifestArtifact* spool = manifest.find_artifact(kSpoolFile);
  if (spool == nullptr) {
    // Already promoted on an earlier run: re-verify the recorded output.
    const ManifestArtifact* output = manifest.find_artifact(out_path);
    if (output == nullptr || output->role != "output")
      throw std::runtime_error(
          "checkpoint: manifest records no spool and no output at " +
          out_path);
    const util::FileDigest digest = util::crc32_file(out_path);
    if (digest.bytes != output->bytes || digest.crc32 != output->crc32)
      throw std::runtime_error("checkpoint: existing output " + out_path +
                               " does not match its manifest digest");
    return {output->bytes, output->crc32};
  }

  const util::ArtifactInfo info{spool->bytes, spool->crc32};
  const std::string spool_path = (dir / kSpoolFile).string();
  util::VfsStat spool_stat;
  if (!vfs.stat(spool_path, spool_stat)) {
    // Crash window: an earlier finalize renamed the spool onto out_path
    // and died before rewriting the manifest. If out_path carries exactly
    // the spool's digest, the promotion already happened — finish the
    // manifest swap instead of refusing.
    util::VfsStat out_stat;
    if (!vfs.stat(out_path, out_stat))
      throw std::runtime_error("checkpoint: spool " + spool_path +
                               " is missing and no output exists at " +
                               out_path);
    const util::FileDigest digest = util::crc32_file(out_path);
    if (digest.bytes != info.bytes || digest.crc32 != info.crc32)
      throw std::runtime_error("checkpoint: spool " + spool_path +
                               " is missing and " + out_path +
                               " does not match its manifest digest");
  } else if (vfs.rename(spool_path, out_path) == 0) {
    // Same filesystem: zero-copy promote. fsync the directory entry so
    // the rename itself survives power loss (best-effort; the data bytes
    // were fsynced at the final checkpoint commit).
    vfs.fsync_parent(out_path);
  } else {
    // Different filesystem (or an unwritable target dir entry): fall back
    // to a CRC-verified streaming copy, then drop the spool.
    const int src = vfs.open(spool_path, util::OpenMode::kRead);
    if (src < 0) throw_io("checkpoint: cannot open " + spool_path);
    const FdGuard src_guard{vfs, src};
    util::AtomicFileWriter writer{out_path, &vfs};
    char buffer[1 << 16];
    std::uint64_t offset = 0;
    for (;;) {
      const long got = vfs.read(src, buffer, sizeof buffer, offset);
      if (got < 0) {
        if (errno == EINTR) continue;
        throw_io("checkpoint: read error on " + spool_path);
      }
      if (got == 0) break;
      writer.write(std::string_view{buffer, static_cast<std::size_t>(got)});
      offset += static_cast<std::uint64_t>(got);
    }
    const util::ArtifactInfo copied = writer.commit();
    if (copied.bytes != info.bytes || copied.crc32 != info.crc32)
      throw std::runtime_error(
          "checkpoint: spool changed while being promoted to " + out_path);
    vfs.unlink(spool_path);
  }

  std::erase_if(manifest.artifacts, [](const ManifestArtifact& artifact) {
    return artifact.role == "spool";
  });
  manifest.upsert_artifact({out_path, "output", info.bytes, info.crc32, -1});
  manifest.save(manifest_path, &vfs);
  return info;
}

}  // namespace syrwatch::durable
