#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/atomic_io.h"

namespace syrwatch::durable {

/// The run manifest (`syrwatch.manifest.v1`): one JSON document per
/// checkpointed run recording what the run was (config fingerprint, seed,
/// fault profile), how far it got (state, next_batch), and the integrity
/// digest of every artifact it produced. `syrwatchctl verify` re-checks a
/// manifest against the files on disk; resume refuses to continue from a
/// manifest whose fingerprint does not match the requested config or
/// whose artifacts fail their checksums.

/// One durable file the run produced.
struct ManifestArtifact {
  /// Relative to the manifest's directory for checkpoint-internal files
  /// ("log_spool.csv", "farm_state.bin"); output artifacts keep the path
  /// the operator passed (verify also tries it as given when the
  /// manifest-relative resolution misses).
  std::string path;
  /// "spool" | "state" | "output" | "keys" | "shard" (extensible). Verify
  /// digests roles alike, except "spool" and "keys": their bytes/crc32
  /// describe the *committed prefix*, so a longer file (torn tail from a
  /// crashed append — resume truncates it) still verifies; only the
  /// prefix is checksummed. "keys" is the spool's 8-byte-per-record merge
  /// key sidecar (sharded runs); "shard" points a coordinator manifest at
  /// one worker's own manifest file.
  std::string role;
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
  /// Newest batch covered, for the spool; -1 for everything else.
  std::int64_t batch = -1;
};

struct RunManifest {
  static constexpr std::string_view kSchema = "syrwatch.manifest.v1";
  /// File name the checkpoint layer uses inside a checkpoint directory.
  static constexpr std::string_view kFileName = "manifest.json";

  /// "in_progress" (run underway or crashed without warning),
  /// "interrupted" (graceful cancel — checkpoint flushed, resumable), or
  /// "complete".
  std::string state = "in_progress";
  std::string command;           // e.g. "generate"
  std::uint64_t seed = 0;
  std::uint64_t total_requests = 0;
  std::string fault_profile = "none";
  bool apply_leak_filter = true;
  /// Worker threads of the writing run — informational only; resume at a
  /// different thread count is supported (and bit-identical), so this
  /// field is deliberately excluded from the fingerprint.
  std::uint64_t threads = 0;
  /// fnv1a64 (16 hex digits) over the canonical rendering of every
  /// semantic ScenarioConfig field (durable::config_fingerprint).
  std::string config_fingerprint;
  std::uint64_t next_batch = 0;
  std::uint64_t total_batches = 0;
  /// Worker-process count of a sharded coordinator run (syrwatchctl
  /// generate --workers N). 0 — and absent from the JSON — for ordinary
  /// single-process manifests; resume refuses a worker-count mismatch
  /// because the proxy→shard assignment depends on it.
  std::uint64_t workers = 0;
  /// Shards abandoned after their restart budget ("shard-02", ...): their
  /// contribution to the merged output is only the prefix their last
  /// durable commit covered. Non-empty means the output carries
  /// [DEGRADED DATA] — complete for every surviving shard, truncated for
  /// these. Serialized only when non-empty, so pre-shard manifests parse
  /// unchanged.
  std::vector<std::string> degraded_shards;
  std::vector<ManifestArtifact> artifacts;

  bool complete() const noexcept { return state == "complete"; }

  ManifestArtifact* find_artifact(std::string_view path);
  const ManifestArtifact* find_artifact(std::string_view path) const;
  /// Insert-or-replace by path.
  void upsert_artifact(ManifestArtifact artifact);

  std::string to_json() const;
  /// Strict inverse of to_json (schema tag checked). Throws
  /// std::runtime_error naming the offending field on malformed input.
  static RunManifest parse(std::string_view json);

  /// load/save at an explicit path; save writes atomically (temp → fsync
  /// → rename → parent fsync) through the given Vfs (default process Vfs).
  static RunManifest load(const std::string& path);
  void save(const std::string& path, util::Vfs* vfs = nullptr) const;
};

/// Result of checking one manifest-listed artifact against disk.
struct ArtifactCheck {
  ManifestArtifact expected;
  std::string resolved_path;  // where verify looked (or tried last)
  bool exists = false;
  bool bytes_match = false;
  bool crc_match = false;
  util::ArtifactInfo actual;  // valid when exists

  bool ok() const noexcept { return exists && bytes_match && crc_match; }
  /// "ok" | "MISSING" | "SIZE MISMATCH" | "CRC MISMATCH".
  std::string_view status() const noexcept;
};

struct VerifyReport {
  std::vector<ArtifactCheck> checks;
  bool ok() const noexcept;
};

/// Re-digests every artifact the manifest lists. Relative paths resolve
/// against `base_dir` (the manifest's directory); a path that misses there
/// is retried as given, so output artifacts recorded relative to the
/// operator's working directory still verify when run from that directory.
VerifyReport verify_artifacts(const RunManifest& manifest,
                              const std::string& base_dir);

}  // namespace syrwatch::durable
