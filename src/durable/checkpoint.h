#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "durable/manifest.h"
#include "util/atomic_io.h"
#include "util/cancel.h"
#include "workload/scenario.h"

namespace syrwatch::durable {

/// Batch-granular crash safety for a SyriaScenario run.
///
/// The checkpoint directory holds:
///   manifest.json   — syrwatch.manifest.v1 (state, progress, digests)
///   log_spool.csv   — header + record lines, append-only (the log itself)
///   farm_state.bin  — proxy-farm mutable state at the last commit boundary
///                     (alternates with farm_state.alt.bin: each commit
///                     snapshots into the slot the manifest does *not*
///                     reference, so a crash mid-commit never leaves the
///                     manifest pointing at a state it cannot match)
///   merge_keys.bin  — only with record_keys: one u64 LE merge key per
///                     spool record, same append/commit rhythm as the spool
///
/// The spool is the write-ahead log of the run: each batch's records are
/// appended (serialized exactly once) and flushed, and every
/// `commit_interval` batches the farm state is written atomically followed
/// by the manifest, which records the spool's committed prefix (byte count
/// + running CRC32). A crash at any instant leaves a manifest describing
/// only fully durable state — a torn spool tail beyond the committed
/// prefix is truncated away on resume, and at most `commit_interval - 1`
/// batches of work are re-executed (deterministically, to identical
/// bytes). A resumed run replays the verified spool prefix through the
/// sink, restores the farm, and continues at next_batch — producing a
/// final log bit-identical to an uninterrupted run at any thread count
/// (generation shards are pure in their ordinal; proxy state advances in
/// fixed batch order). On completion the spool *is* the finished log:
/// `finalize_output` promotes it to the operator's --out path by rename
/// (same filesystem — zero copy) or verified streaming copy.

/// Spool file name inside a checkpoint directory. Public so tail
/// consumers (`syrwatchctl watch DIR`) can resolve DIR -> DIR/log_spool.csv
/// without duplicating the literal.
inline constexpr std::string_view kSpoolFile = "log_spool.csv";

/// 16-hex fnv1a64 over the canonical rendering of every semantic
/// ScenarioConfig field. `threads` is deliberately excluded (resume at a
/// different thread count is supported and bit-identical); everything that
/// can change the emitted log is included, so a fingerprint match means the
/// reconstructed scenario will regenerate exactly the checkpointed run.
std::string config_fingerprint(const workload::ScenarioConfig& config);

struct CheckpointOptions {
  /// Checkpoint directory (created if absent on a fresh run). Required.
  std::string directory;
  /// Continue a previous run: load + verify the manifest, replay the
  /// committed spool prefix, restore farm state, execute only the
  /// remaining batches. Without this flag a directory that already holds a
  /// manifest is refused (never silently clobber a resumable run).
  bool resume = false;
  /// Cooperative cancellation (SIGINT, --deadline). A cancelled run
  /// commits its progress, marks the manifest "interrupted", and is
  /// resumable.
  const util::CancelToken* cancel = nullptr;
  /// Recorded in the manifest; resume refuses a command mismatch.
  std::string command = "generate";
  /// Durable-commit cadence: farm state + manifest are written every this
  /// many batches (and always when the run ends, completes, or is
  /// cancelled). 1 = maximum durability; larger values amortize the
  /// fixed per-commit cost (the farm state alone is megabytes) at the
  /// price of re-executing up to interval-1 batches after a crash.
  std::size_t commit_interval = 1;
  /// Test hook: invoked after each durable commit (spool prefix + state +
  /// manifest on disk) with the index of the newest committed batch. May
  /// throw — the exception propagates out of run_checkpointed exactly like
  /// a crash between commits, which is how the crash-injection tests abort
  /// mid-run.
  std::function<void(std::size_t committed_batch)> after_commit;
  /// Farm proxies this run owns (workload::RunControl::proxy_mask). The
  /// multi-process shard worker's knob: all-ones (the default) is the
  /// ordinary whole-farm run.
  std::uint64_t proxy_mask = ~std::uint64_t{0};
  /// Also maintain merge_keys.bin — the spool's 8-byte-LE-per-record merge
  /// key sidecar, committed in the same batch rhythm (a manifest always
  /// describes exactly as many keys as committed spool records). Shard
  /// workers set this so the coordinator can k-way merge their spools back
  /// into generation order; the spool itself stays plain CSV.
  bool record_keys = false;
  /// Invoked on the calling thread after each batch's bytes are durably
  /// appended (spool + keys flushed), whether or not that batch committed
  /// a manifest — the liveness hook a shard worker's heartbeat rides on.
  std::function<void(std::size_t batch)> on_progress;
  /// Storage layer for every durable write (spool, keys, farm state,
  /// manifest). nullptr = the process default Vfs. Tests inject a
  /// FaultyVfs here to exercise ENOSPC/short-write/fsync-failure paths.
  util::Vfs* vfs = nullptr;
};

struct CheckpointedRun {
  /// True when the full observation window reached the sink (manifest
  /// state "complete"); false when cancellation stopped the run early
  /// (state "interrupted", resumable).
  bool completed = false;
  std::size_t batches_replayed = 0;
  std::uint64_t records_replayed = 0;
  std::size_t batches_executed = 0;
  /// Why an incomplete run stopped, when the checkpoint layer knows:
  /// non-empty after a graceful out-of-space degradation ("disk full: …").
  /// Empty for ordinary cancellation. Completed runs never set it.
  std::string stop_reason;
  /// Final manifest as saved to disk.
  RunManifest manifest;
};

/// Runs `scenario` under checkpoint protection, streaming the (replayed +
/// freshly generated) log to `sink` in deterministic order. The scenario
/// must be freshly constructed (farm in its initial state) — resumption
/// restores the farm itself. Throws std::runtime_error on a refused
/// resume (fingerprint/command mismatch, failed artifact verification,
/// missing manifest) or on checkpoint I/O failure. Out-of-space is the
/// exception to fail-loud: the run degrades gracefully — uncommitted
/// spool/keys bytes are truncated away (reclaiming the space), the
/// manifest is marked "interrupted", and the result carries
/// completed=false with a stop_reason, so the operator can free disk and
/// `--resume` from exactly the last durable commit.
CheckpointedRun run_checkpointed(workload::SyriaScenario& scenario,
                                 const CheckpointOptions& options,
                                 const workload::LogCallback& sink);

/// Promotes a *complete* checkpoint's spool into the output file the
/// operator asked for: rename when out_path is on the same filesystem
/// (zero copy), else a CRC-verified streaming copy; then swaps the
/// manifest's spool artifact for an "output" artifact at out_path, so
/// `syrwatchctl verify` covers the delivered file. Idempotent: if the
/// spool was already promoted to out_path on an earlier run, the recorded
/// output is re-verified and its digest returned. Throws
/// std::runtime_error if the manifest is not complete or the artifact
/// fails verification. Crash-tolerant: a run that died between the
/// promote rename and the manifest update is recognized (spool gone,
/// out_path matching the spool digest) and finishes the manifest swap.
util::ArtifactInfo finalize_output(const std::string& directory,
                                   RunManifest& manifest,
                                   const std::string& out_path,
                                   util::Vfs* vfs = nullptr);

}  // namespace syrwatch::durable
