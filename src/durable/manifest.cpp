#include "durable/manifest.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "util/checksum.h"

namespace syrwatch::durable {

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string u64_text(std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  return buffer;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough for the documents this module writes
// (objects, arrays, strings, integers, booleans, null). Strict on schema
// errors, no external dependencies.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::int64_t integer = 0;  // numbers we emit are integers
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (cursor_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("manifest json: " + message + " (offset " +
                             std::to_string(cursor_) + ")");
  }

  void skip_ws() {
    while (cursor_ < text_.size() &&
           (text_[cursor_] == ' ' || text_[cursor_] == '\t' ||
            text_[cursor_] == '\n' || text_[cursor_] == '\r'))
      ++cursor_;
  }

  char peek() {
    if (cursor_ >= text_.size()) fail("unexpected end of document");
    return text_[cursor_];
  }

  void expect(char c) {
    if (peek() != c)
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    ++cursor_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(cursor_, literal.size()) != literal) return false;
    cursor_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      value.string = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      JsonValue value;
      value.kind = JsonValue::Kind::kBool;
      return value;
    }
    if (consume_literal("null")) return JsonValue{};
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (cursor_ >= text_.size()) fail("unterminated string");
      const char c = text_[cursor_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (cursor_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[cursor_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (cursor_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char digit = text_[cursor_++];
            code <<= 4;
            if (digit >= '0' && digit <= '9')
              code |= static_cast<unsigned>(digit - '0');
            else if (digit >= 'a' && digit <= 'f')
              code |= static_cast<unsigned>(digit - 'a' + 10);
            else if (digit >= 'A' && digit <= 'F')
              code |= static_cast<unsigned>(digit - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // We only ever emit \u for ASCII control characters; decode
          // those exactly and substitute anything wider.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = cursor_;
    if (peek() == '-') ++cursor_;
    while (cursor_ < text_.size() &&
           ((text_[cursor_] >= '0' && text_[cursor_] <= '9') ||
            text_[cursor_] == '.' || text_[cursor_] == 'e' ||
            text_[cursor_] == 'E' || text_[cursor_] == '+' ||
            text_[cursor_] == '-'))
      ++cursor_;
    const std::string token{text_.substr(start, cursor_ - start)};
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    try {
      std::size_t consumed = 0;
      value.integer = std::stoll(token, &consumed);
      if (consumed != token.size()) fail("non-integer number " + token);
    } catch (const std::exception&) {
      fail("bad number " + token);
    }
    return value;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++cursor_;
      return value;
    }
    for (;;) {
      value.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++cursor_;
      if (c == ']') return value;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++cursor_;
      return value;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++cursor_;
      if (c == '}') return value;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t cursor_ = 0;
};

// Typed field access with schema-error messages naming the field.

const JsonValue& field(const JsonValue& object, const std::string& name) {
  const auto it = object.object.find(name);
  if (it == object.object.end())
    throw std::runtime_error("manifest: missing field \"" + name + "\"");
  return it->second;
}

std::string get_string(const JsonValue& object, const std::string& name) {
  const JsonValue& value = field(object, name);
  if (value.kind != JsonValue::Kind::kString)
    throw std::runtime_error("manifest: field \"" + name +
                             "\" is not a string");
  return value.string;
}

std::uint64_t get_u64(const JsonValue& object, const std::string& name) {
  const JsonValue& value = field(object, name);
  if (value.kind != JsonValue::Kind::kNumber || value.integer < 0)
    throw std::runtime_error("manifest: field \"" + name +
                             "\" is not a non-negative integer");
  return static_cast<std::uint64_t>(value.integer);
}

std::int64_t get_i64(const JsonValue& object, const std::string& name) {
  const JsonValue& value = field(object, name);
  if (value.kind != JsonValue::Kind::kNumber)
    throw std::runtime_error("manifest: field \"" + name +
                             "\" is not an integer");
  return value.integer;
}

bool get_bool(const JsonValue& object, const std::string& name) {
  const JsonValue& value = field(object, name);
  if (value.kind != JsonValue::Kind::kBool)
    throw std::runtime_error("manifest: field \"" + name +
                             "\" is not a boolean");
  return value.boolean;
}

}  // namespace

ManifestArtifact* RunManifest::find_artifact(std::string_view path) {
  for (ManifestArtifact& artifact : artifacts)
    if (artifact.path == path) return &artifact;
  return nullptr;
}

const ManifestArtifact* RunManifest::find_artifact(
    std::string_view path) const {
  for (const ManifestArtifact& artifact : artifacts)
    if (artifact.path == path) return &artifact;
  return nullptr;
}

void RunManifest::upsert_artifact(ManifestArtifact artifact) {
  if (ManifestArtifact* existing = find_artifact(artifact.path)) {
    *existing = std::move(artifact);
    return;
  }
  artifacts.push_back(std::move(artifact));
}

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kSchema) + "\",\n";
  out += "  \"state\": \"" + json_escape(state) + "\",\n";
  out += "  \"command\": \"" + json_escape(command) + "\",\n";
  out += "  \"seed\": " + u64_text(seed) + ",\n";
  out += "  \"total_requests\": " + u64_text(total_requests) + ",\n";
  out += "  \"fault_profile\": \"" + json_escape(fault_profile) + "\",\n";
  out += std::string("  \"apply_leak_filter\": ") +
         (apply_leak_filter ? "true" : "false") + ",\n";
  out += "  \"threads\": " + u64_text(threads) + ",\n";
  out += "  \"config_fingerprint\": \"" + json_escape(config_fingerprint) +
         "\",\n";
  out += "  \"next_batch\": " + u64_text(next_batch) + ",\n";
  out += "  \"total_batches\": " + u64_text(total_batches) + ",\n";
  // Optional sharding fields: emitted only when set, so a single-process
  // manifest's JSON is byte-identical to what pre-shard builds wrote.
  if (workers != 0) out += "  \"workers\": " + u64_text(workers) + ",\n";
  if (!degraded_shards.empty()) {
    out += "  \"degraded_shards\": [";
    for (std::size_t i = 0; i < degraded_shards.size(); ++i) {
      if (i != 0) out += ", ";
      out += "\"" + json_escape(degraded_shards[i]) + "\"";
    }
    out += "],\n";
  }
  out += "  \"artifacts\": [";
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    const ManifestArtifact& artifact = artifacts[i];
    if (i != 0) out += ',';
    out += "\n    {\"path\": \"" + json_escape(artifact.path) +
           "\", \"role\": \"" + json_escape(artifact.role) +
           "\", \"bytes\": " + u64_text(artifact.bytes) +
           ", \"crc32\": \"" + util::to_hex32(artifact.crc32) +
           "\", \"batch\": " + std::to_string(artifact.batch) + "}";
  }
  out += artifacts.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

RunManifest RunManifest::parse(std::string_view json) {
  const JsonValue root = JsonParser{json}.parse();
  if (root.kind != JsonValue::Kind::kObject)
    throw std::runtime_error("manifest: document is not a JSON object");
  const std::string schema = get_string(root, "schema");
  if (schema != kSchema)
    throw std::runtime_error("manifest: unsupported schema \"" + schema +
                             "\" (expected " + std::string(kSchema) + ")");

  RunManifest manifest;
  manifest.state = get_string(root, "state");
  if (manifest.state != "in_progress" && manifest.state != "interrupted" &&
      manifest.state != "complete")
    throw std::runtime_error("manifest: unknown state \"" + manifest.state +
                             "\"");
  manifest.command = get_string(root, "command");
  manifest.seed = get_u64(root, "seed");
  manifest.total_requests = get_u64(root, "total_requests");
  manifest.fault_profile = get_string(root, "fault_profile");
  manifest.apply_leak_filter = get_bool(root, "apply_leak_filter");
  manifest.threads = get_u64(root, "threads");
  manifest.config_fingerprint = get_string(root, "config_fingerprint");
  manifest.next_batch = get_u64(root, "next_batch");
  manifest.total_batches = get_u64(root, "total_batches");
  if (root.object.count("workers")) manifest.workers = get_u64(root, "workers");
  if (const auto it = root.object.find("degraded_shards");
      it != root.object.end()) {
    if (it->second.kind != JsonValue::Kind::kArray)
      throw std::runtime_error("manifest: \"degraded_shards\" is not an array");
    for (const JsonValue& entry : it->second.array) {
      if (entry.kind != JsonValue::Kind::kString)
        throw std::runtime_error(
            "manifest: \"degraded_shards\" entry is not a string");
      manifest.degraded_shards.push_back(entry.string);
    }
  }

  const JsonValue& artifacts = field(root, "artifacts");
  if (artifacts.kind != JsonValue::Kind::kArray)
    throw std::runtime_error("manifest: \"artifacts\" is not an array");
  for (const JsonValue& entry : artifacts.array) {
    if (entry.kind != JsonValue::Kind::kObject)
      throw std::runtime_error("manifest: artifact entry is not an object");
    ManifestArtifact artifact;
    artifact.path = get_string(entry, "path");
    artifact.role = get_string(entry, "role");
    artifact.bytes = get_u64(entry, "bytes");
    const std::string crc = get_string(entry, "crc32");
    if (!util::parse_hex32(crc, artifact.crc32))
      throw std::runtime_error("manifest: artifact \"" + artifact.path +
                               "\" has malformed crc32 \"" + crc + "\"");
    artifact.batch = get_i64(entry, "batch");
    manifest.artifacts.push_back(std::move(artifact));
  }
  return manifest;
}

RunManifest RunManifest::load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in)
    throw std::runtime_error("manifest: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad())
    throw std::runtime_error("manifest: read error on " + path);
  try {
    return parse(buffer.str());
  } catch (const std::runtime_error& error) {
    throw std::runtime_error(path + ": " + error.what());
  }
}

void RunManifest::save(const std::string& path, util::Vfs* vfs) const {
  util::atomic_write_file(path, to_json(), vfs);
}

std::string_view ArtifactCheck::status() const noexcept {
  if (!exists) return "MISSING";
  if (!bytes_match) return "SIZE MISMATCH";
  if (!crc_match) return "CRC MISMATCH";
  return "ok";
}

bool VerifyReport::ok() const noexcept {
  for (const ArtifactCheck& check : checks)
    if (!check.ok()) return false;
  return true;
}

VerifyReport verify_artifacts(const RunManifest& manifest,
                              const std::string& base_dir) {
  VerifyReport report;
  for (const ManifestArtifact& artifact : manifest.artifacts) {
    ArtifactCheck check;
    check.expected = artifact;
    const std::filesystem::path listed{artifact.path};
    std::vector<std::string> candidates;
    if (listed.is_absolute()) {
      candidates.push_back(artifact.path);
    } else {
      candidates.push_back((std::filesystem::path{base_dir} / listed)
                               .string());
      candidates.push_back(artifact.path);  // as given (operator's cwd)
    }
    for (const std::string& candidate : candidates) {
      std::error_code ec;
      if (!std::filesystem::exists(candidate, ec) || ec) continue;
      check.resolved_path = candidate;
      check.exists = true;
      break;
    }
    if (!check.exists) {
      check.resolved_path = candidates.front();
      report.checks.push_back(std::move(check));
      continue;
    }
    if (artifact.role == "spool" || artifact.role == "keys") {
      // The spool's (and its merge-key sidecar's) digest describes the
      // committed prefix; a crashed append may have left a longer file
      // (resume truncates the tail), which still verifies.
      const util::FileDigest digest =
          util::crc32_file_prefix(check.resolved_path, artifact.bytes);
      check.actual = util::ArtifactInfo{digest.bytes, digest.crc32};
      check.bytes_match = digest.bytes == artifact.bytes;
      check.crc_match = digest.crc32 == artifact.crc32;
    } else {
      const util::FileDigest digest = util::crc32_file(check.resolved_path);
      check.actual = util::ArtifactInfo{digest.bytes, digest.crc32};
      check.bytes_match = digest.bytes == artifact.bytes;
      check.crc_match = digest.crc32 == artifact.crc32;
    }
    report.checks.push_back(std::move(check));
  }
  return report;
}

}  // namespace syrwatch::durable
