#pragma once

#include <array>
#include <cstdint>

#include "analysis/scan.h"

namespace syrwatch::analysis {

/// The Table 3 breakdown: filter results and per-exception denial counts
/// for one dataset.
struct TrafficStats {
  std::uint64_t total = 0;
  std::uint64_t observed = 0;   // sc-filter-result OBSERVED
  std::uint64_t proxied = 0;    // PROXIED
  std::uint64_t denied = 0;     // DENIED
  /// DENIED requests by exception id (indexed by ExceptionId).
  std::array<std::uint64_t, proxy::kExceptionCount> denied_by_exception{};

  std::uint64_t censored() const noexcept {
    return at(proxy::ExceptionId::kPolicyDenied) +
           at(proxy::ExceptionId::kPolicyRedirect);
  }
  std::uint64_t errors() const noexcept { return denied - censored(); }
  std::uint64_t at(proxy::ExceptionId id) const noexcept {
    return denied_by_exception[static_cast<std::size_t>(id)];
  }
  double share(std::uint64_t count) const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(count) / static_cast<double>(total);
  }
};

/// Computes the Table 3 column for a source (either backend, any thread
/// count — identical output).
TrafficStats traffic_stats(const LogSource& source, std::size_t threads = 1);

}  // namespace syrwatch::analysis
