#pragma once

#include <cstdint>
#include <vector>

#include "analysis/scan.h"

namespace syrwatch::analysis {

/// Fig. 1: requests per destination port, split into allowed and censored.
struct PortCount {
  std::uint16_t port = 0;
  std::uint64_t allowed = 0;
  std::uint64_t censored = 0;
};

/// Ports ranked by censored count (descending), ties by port number.
/// `k` bounds the result; pass 0 for all ports.
std::vector<PortCount> port_distribution(const LogSource& source,
                                         std::size_t k = 0,
                                         std::size_t threads = 1);

}  // namespace syrwatch::analysis
