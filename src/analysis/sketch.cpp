#include "analysis/sketch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/checksum.h"

namespace syrwatch::analysis {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0)
    throw std::invalid_argument("SpaceSaving: capacity must be positive");
  // Reserving up front keeps Entry::key storage stable, so the
  // string_view keys in index_ never dangle.
  entries_.reserve(capacity_);
  heap_.reserve(capacity_);
  pos_.reserve(capacity_);
  index_.reserve(capacity_ * 2);
}

bool SpaceSaving::less(std::uint32_t a, std::uint32_t b) const noexcept {
  const Entry& ea = entries_[a];
  const Entry& eb = entries_[b];
  if (ea.count != eb.count) return ea.count < eb.count;
  return ea.tick < eb.tick;  // ticks are unique: a strict total order
}

void SpaceSaving::sift_up(std::size_t slot) {
  while (slot > 0) {
    const std::size_t parent = (slot - 1) / 2;
    if (!less(heap_[slot], heap_[parent])) break;
    std::swap(heap_[slot], heap_[parent]);
    pos_[heap_[slot]] = static_cast<std::uint32_t>(slot);
    pos_[heap_[parent]] = static_cast<std::uint32_t>(parent);
    slot = parent;
  }
}

void SpaceSaving::sift_down(std::size_t slot) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = slot;
    const std::size_t left = 2 * slot + 1;
    const std::size_t right = left + 1;
    if (left < n && less(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && less(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == slot) break;
    std::swap(heap_[slot], heap_[smallest]);
    pos_[heap_[slot]] = static_cast<std::uint32_t>(slot);
    pos_[heap_[smallest]] = static_cast<std::uint32_t>(smallest);
    slot = smallest;
  }
}

void SpaceSaving::update(std::string_view key, std::uint64_t weight) {
  total_ += weight;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    e.count += weight;
    e.tick = ++tick_;
    sift_down(pos_[it->second]);  // count only grows
    return;
  }
  if (entries_.size() < capacity_) {
    const auto idx = static_cast<std::uint32_t>(entries_.size());
    entries_.push_back(Entry{std::string{key}, weight, 0, ++tick_});
    pos_.push_back(static_cast<std::uint32_t>(heap_.size()));
    heap_.push_back(idx);
    index_.emplace(entries_[idx].key, idx);
    sift_up(pos_[idx]);
    return;
  }
  // Saturated: the deterministic minimum inherits its count as the new
  // key's error bound.
  evicted_ = true;
  const std::uint32_t victim = heap_[0];
  Entry& e = entries_[victim];
  index_.erase(e.key);
  const std::uint64_t inherited = e.count;
  e.key.assign(key);
  e.count = inherited + weight;
  e.error = inherited;
  e.tick = ++tick_;
  index_.emplace(e.key, victim);
  sift_down(0);
}

std::vector<SpaceSaving::Item> SpaceSaving::top(std::size_t k) const {
  std::vector<Item> items;
  items.reserve(entries_.size());
  for (const Entry& e : entries_)
    items.push_back(Item{e.key, e.count, e.error});
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;  // the exact analyzers' tie-break
  });
  if (items.size() > k) items.resize(k);
  return items;
}

std::uint64_t SpaceSaving::min_count() const noexcept {
  if (!evicted_) return 0;  // exact regime: untracked keys never occurred
  return heap_.empty() ? 0 : entries_[heap_[0]].count;
}

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth) {
  if (width_ == 0 || depth_ == 0)
    throw std::invalid_argument("CountMinSketch: width/depth must be positive");
  rows_.assign(width_ * depth_, 0);
  seeds_.reserve(depth_);
  for (std::size_t i = 0; i < depth_; ++i)
    seeds_.push_back(util::mix64(seed ^ (0x9E3779B97F4A7C15ULL * (i + 1))));
}

std::size_t CountMinSketch::bucket(std::size_t row,
                                   std::string_view key) const noexcept {
  const std::uint64_t h = util::mix64(util::fnv1a64(key) ^ seeds_[row]);
  return static_cast<std::size_t>(h % width_);
}

void CountMinSketch::update(std::string_view key, std::uint64_t weight) {
  total_ += weight;
  for (std::size_t row = 0; row < depth_; ++row)
    rows_[row * width_ + bucket(row, key)] += weight;
}

std::uint64_t CountMinSketch::estimate(std::string_view key) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t row = 0; row < depth_; ++row)
    best = std::min(best, rows_[row * width_ + bucket(row, key)]);
  return best;
}

double CountMinSketch::epsilon() const noexcept {
  return std::exp(1.0) / static_cast<double>(width_);
}

double CountMinSketch::delta() const noexcept {
  return std::exp(-static_cast<double>(depth_));
}

double CountMinSketch::error_bound() const noexcept {
  return epsilon() * static_cast<double>(total_);
}

double CountMinSketch::fill() const noexcept {
  std::size_t nonzero = 0;
  for (const std::uint64_t c : rows_) nonzero += c != 0 ? 1 : 0;
  return rows_.empty() ? 0.0
                       : static_cast<double>(nonzero) /
                             static_cast<double>(rows_.size());
}

}  // namespace syrwatch::analysis
