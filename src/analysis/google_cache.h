#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/scan.h"

namespace syrwatch::analysis {

/// §7.4: Google cache as an accidental circumvention channel. Cache
/// fetches go to webcache.googleusercontent.com; the cached page's own URL
/// sits in the query, invisible to domain/IP rules — only keyword rules
/// can fire. The analysis extracts cached-target sites and checks which
/// otherwise-censored sites were successfully read through the cache.
struct GoogleCacheStats {
  std::uint64_t requests = 0;
  std::uint64_t allowed = 0;
  std::uint64_t censored = 0;
  /// Allowed cache fetches of sites that the proxies censor directly.
  struct CachedSite {
    std::string site;
    std::uint64_t allowed_fetches = 0;
  };
  std::vector<CachedSite> censored_sites_served;
};

/// `censored_site_suffixes`: host suffixes known to be censored directly
/// (e.g. from string discovery) to check against cached targets.
GoogleCacheStats google_cache_stats(
    const LogSource& source,
    std::span<const std::string> censored_site_suffixes,
    std::size_t threads = 1);

}  // namespace syrwatch::analysis
