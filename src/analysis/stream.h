#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "analysis/scan.h"
#include "analysis/stream_buffer.h"
#include "proxy/log_io.h"
#include "util/vfs.h"

namespace syrwatch::analysis {

/// Incremental consumption of the durable layer's CSV spool (DESIGN.md
/// §4.8): the spool is the run's write-ahead log — header + record lines,
/// append-only, flushed per batch — so tailing it is how the online mode
/// observes a run in flight (§4.12).
///
/// The tailing contract:
///  - poll() reads bytes appended since the last poll and parses every
///    *complete* line (ending in '\n'). Bytes after the last newline are
///    the torn-tail candidate — a write may land mid-line between polls —
///    and are buffered, never parsed, until a later poll completes them.
///    A crash that leaves the tail torn forever simply leaves those bytes
///    pending; everything durable before them was already delivered.
///  - offset() is always a line boundary: the byte offset of the first
///    unconsumed complete line (equivalently, the start of the pending
///    partial line). Construct-and-resume_at(offset()) on a fresh tail
///    replays nothing and misses nothing — byte-identical to having
///    cold-tailed the whole file (the resume contract tests assert).
///  - Malformed lines are skipped and tallied exactly like
///    proxy::read_log_lenient tallies them (stats()), so a damaged spool
///    degrades identically online and offline.
///  - A spool rotated (replaced: inode change) or truncated underneath
///    the tail does not wedge the watch loop: the tail reopens by path,
///    restarts from byte 0 of the new file, and counts a gap (gaps()) —
///    records written between the last poll and the rotation are gone,
///    which the watch report surfaces as [DEGRADED DATA].
class SpoolTail {
 public:
  explicit SpoolTail(std::string path, util::Vfs* vfs = nullptr)
      : vfs_(&util::vfs_or_default(vfs)), path_(std::move(path)) {}

  /// Drains newly appended complete lines into `sink`. Returns the
  /// record count delivered. A missing file is not an error (the run may
  /// not have created the spool yet): the poll simply delivers nothing.
  std::size_t poll(const std::function<void(const proxy::LogRecord&)>& sink);

  /// Resume point: consumed bytes up to the last complete line.
  std::uint64_t offset() const noexcept {
    return consumed_ - pending_.size();
  }
  /// Bytes consumed including the pending partial line.
  std::uint64_t consumed_bytes() const noexcept { return consumed_; }
  /// Size of the pending (torn-tail candidate) fragment.
  std::size_t pending_bytes() const noexcept { return pending_.size(); }

  /// Starts tailing at `offset` — which must be a line boundary offset a
  /// previous tail's offset() reported (0 = the file start). Only valid
  /// before the first poll().
  void resume_at(std::uint64_t offset);

  const proxy::LogReadStats& stats() const noexcept { return stats_; }
  const std::string& path() const noexcept { return path_; }
  /// Times the tailed file was rotated/truncated underneath us; each one
  /// is a window of records this tail can never deliver.
  std::uint64_t gaps() const noexcept { return gaps_; }

 private:
  void consume_line(std::string&& line,
                    const std::function<void(const proxy::LogRecord&)>& sink,
                    std::size_t& delivered);

  util::Vfs* vfs_;
  std::string path_;
  std::uint64_t consumed_ = 0;  // bytes read from the file so far
  std::uint64_t inode_ = 0;     // of the file last polled (0 = none yet)
  std::uint64_t gaps_ = 0;      // rotations/truncations survived
  std::string pending_;         // bytes after the last '\n'
  proxy::LogReadStats stats_;
  bool polled_ = false;
  bool expect_header_ = true;  // next complete line may be the header
};

/// SpoolTail + StreamBuffer glued together: the streaming LogSource
/// backend. Each poll() drains newly committed spool records into the
/// buffer; source() is a fresh LogSource view over everything ingested so
/// far, and scan_increment(source(), hw, fn) feeds analyzers only the
/// records new since their last high-water mark.
class StreamSource {
 public:
  explicit StreamSource(std::string spool_path, util::Vfs* vfs = nullptr)
      : tail_(std::move(spool_path), vfs) {}

  /// Drains the tail. Returns records appended to the buffer.
  std::size_t poll() {
    return tail_.poll(
        [this](const proxy::LogRecord& record) { buffer_.add(record); });
  }

  LogSource source() const { return LogSource{buffer_}; }
  const StreamBuffer& buffer() const noexcept { return buffer_; }
  SpoolTail& tail() noexcept { return tail_; }
  const SpoolTail& tail() const noexcept { return tail_; }

 private:
  SpoolTail tail_;
  StreamBuffer buffer_;
};

}  // namespace syrwatch::analysis
