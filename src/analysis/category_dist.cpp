#include "analysis/category_dist.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace syrwatch::analysis {

std::vector<CategoryCount> category_distribution(
    const Dataset& dataset, const category::Categorizer& categorizer,
    proxy::TrafficClass cls) {
  std::array<std::uint64_t, category::kCategoryCount> counts{};
  std::uint64_t total = 0;
  // Categorizer lookups lower-case and walk suffixes; cache per host id.
  std::unordered_map<util::StringPool::Id, category::Category> cache;
  for (const Row& row : dataset.rows()) {
    if (dataset.cls(row) != cls) continue;
    ++total;
    auto it = cache.find(row.host);
    if (it == cache.end()) {
      it = cache.emplace(row.host, categorizer.classify(dataset.host(row)))
               .first;
    }
    ++counts[static_cast<std::size_t>(it->second)];
  }
  std::vector<CategoryCount> out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    out.push_back({static_cast<category::Category>(i), counts[i],
                   total == 0 ? 0.0
                              : static_cast<double>(counts[i]) /
                                    static_cast<double>(total)});
  }
  std::sort(out.begin(), out.end(),
            [](const CategoryCount& a, const CategoryCount& b) {
              return a.requests > b.requests;
            });
  return out;
}

std::vector<DomainCategoryCount> categorize_domains(
    const Dataset& dataset, const category::Categorizer& categorizer,
    std::span<const std::string> domains) {
  std::array<DomainCategoryCount, category::kCategoryCount> acc{};
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i].category = static_cast<category::Category>(i);

  // Count censored requests per listed domain, then fold into categories.
  for (const std::string& domain : domains) {
    const category::Category cat = categorizer.classify(domain);
    ++acc[static_cast<std::size_t>(cat)].domains;
  }
  for (const Row& row : dataset.rows()) {
    if (dataset.cls(row) != proxy::TrafficClass::kCensored) continue;
    const auto host = dataset.host(row);
    for (const std::string& domain : domains) {
      if (util::host_matches_domain(host, domain)) {
        const category::Category cat = categorizer.classify(domain);
        ++acc[static_cast<std::size_t>(cat)].censored_requests;
        break;
      }
    }
  }

  std::vector<DomainCategoryCount> out;
  for (const DomainCategoryCount& entry : acc) {
    if (entry.domains != 0) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const DomainCategoryCount& a, const DomainCategoryCount& b) {
              return a.censored_requests > b.censored_requests;
            });
  return out;
}

}  // namespace syrwatch::analysis
