#include "analysis/category_dist.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace syrwatch::analysis {

std::vector<CategoryCount> category_distribution(
    const LogSource& source, const category::Categorizer& categorizer,
    proxy::TrafficClass cls, std::size_t threads) {
  struct Partial {
    std::array<std::uint64_t, category::kCategoryCount> counts{};
    std::uint64_t total = 0;
    // Categorizer lookups lower-case and walk suffixes; cache per host id
    // (backend-local, but only used as a cache key within the partial).
    std::unordered_map<std::uint32_t, category::Category> cache;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.cls != cls) return;
        ++p.total;
        auto it = p.cache.find(r.host_id);
        if (it == p.cache.end())
          it = p.cache.emplace(r.host_id, categorizer.classify(r.host)).first;
        ++p.counts[static_cast<std::size_t>(it->second)];
      });

  std::array<std::uint64_t, category::kCategoryCount> counts{};
  std::uint64_t total = 0;
  for (const Partial& p : partials) {
    total += p.total;
    for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += p.counts[i];
  }
  std::vector<CategoryCount> out;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    out.push_back({static_cast<category::Category>(i), counts[i],
                   total == 0 ? 0.0
                              : static_cast<double>(counts[i]) /
                                    static_cast<double>(total)});
  }
  std::sort(out.begin(), out.end(),
            [](const CategoryCount& a, const CategoryCount& b) {
              return a.requests > b.requests;
            });
  return out;
}

std::vector<DomainCategoryCount> categorize_domains(
    const LogSource& source, const category::Categorizer& categorizer,
    std::span<const std::string> domains, std::size_t threads) {
  std::array<DomainCategoryCount, category::kCategoryCount> acc{};
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i].category = static_cast<category::Category>(i);
  for (const std::string& domain : domains) {
    const category::Category cat = categorizer.classify(domain);
    ++acc[static_cast<std::size_t>(cat)].domains;
  }

  // Count censored requests per listed domain; the dense per-category array
  // folds by addition.
  using Partial = std::array<std::uint64_t, category::kCategoryCount>;
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.cls != proxy::TrafficClass::kCensored) return;
        for (const std::string& domain : domains) {
          if (util::host_matches_domain(r.host, domain)) {
            const category::Category cat = categorizer.classify(domain);
            ++p[static_cast<std::size_t>(cat)];
            break;
          }
        }
      });
  for (const Partial& p : partials)
    for (std::size_t i = 0; i < acc.size(); ++i)
      acc[i].censored_requests += p[i];

  std::vector<DomainCategoryCount> out;
  for (const DomainCategoryCount& entry : acc) {
    if (entry.domains != 0) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const DomainCategoryCount& a, const DomainCategoryCount& b) {
              return a.censored_requests > b.censored_requests;
            });
  return out;
}

}  // namespace syrwatch::analysis
