#include "analysis/bittorrent.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace syrwatch::analysis {

namespace {

/// Extracts a query parameter value (plain, not URL-decoded — the
/// generator emits bare hex/ASCII values as real 2011 trackers accepted).
std::string_view query_param(std::string_view query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    const auto amp = query.find('&', pos);
    const auto field =
        query.substr(pos, amp == std::string_view::npos ? query.size() - pos
                                                        : amp - pos);
    const auto eq = field.find('=');
    if (eq != std::string_view::npos && field.substr(0, eq) == key)
      return field.substr(eq + 1);
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return {};
}

struct Tool {
  const char* label;
  const char* needle;  // lower-case title substring
};
constexpr Tool kTools[] = {
    {"UltraSurf", "ultrasurf"},
    {"HideMyAss", "hidemyass"},
    {"Auto Hide IP", "hide ip"},
    {"Anonymous browsers", "anonymous"},
    {"Skype", "skype"},
    {"MSN Messenger", "msn messenger"},
    {"Yahoo Messenger", "yahoo messenger"},
};

}  // namespace

BitTorrentStats bittorrent_stats(const Dataset& dataset,
                                 const workload::TorrentRegistry& registry) {
  BitTorrentStats stats;
  std::unordered_set<std::string_view> peers;
  std::unordered_set<std::string_view> contents;
  std::unordered_map<std::string, std::uint64_t> tool_counts;

  for (const Row& row : dataset.rows()) {
    if (dataset.path(row) != "/announce") continue;
    const auto query = dataset.query(row);
    const auto info_hash = query_param(query, "info_hash");
    if (info_hash.empty()) continue;
    ++stats.announces;
    const auto cls = dataset.cls(row);
    if (cls == proxy::TrafficClass::kCensored) ++stats.censored;
    else if (cls == proxy::TrafficClass::kAllowed) ++stats.allowed;
    const auto peer_id = query_param(query, "peer_id");
    if (!peer_id.empty()) peers.insert(peer_id);
    contents.insert(info_hash);

    if (const auto title = registry.resolve(info_hash)) {
      const std::string lowered = util::to_lower(*title);
      for (const Tool& tool : kTools) {
        if (lowered.find(tool.needle) != std::string::npos)
          tool_counts[tool.label] += 1;
      }
    }
  }
  stats.unique_peers = peers.size();
  stats.unique_contents = contents.size();
  for (const auto hash : contents) {
    if (registry.resolve(hash)) ++stats.resolved_contents;
  }
  for (const Tool& tool : kTools) {
    const auto it = tool_counts.find(tool.label);
    stats.tool_announces.push_back(
        {tool.label, it == tool_counts.end() ? 0 : it->second});
  }
  std::sort(stats.tool_announces.begin(), stats.tool_announces.end(),
            [](const auto& a, const auto& b) {
              return a.announces > b.announces;
            });
  return stats;
}

}  // namespace syrwatch::analysis
