#include "analysis/bittorrent.h"

#include <algorithm>
#include <array>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.h"

namespace syrwatch::analysis {

namespace {

/// Extracts a query parameter value (plain, not URL-decoded — the
/// generator emits bare hex/ASCII values as real 2011 trackers accepted).
std::string_view query_param(std::string_view query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    const auto amp = query.find('&', pos);
    const auto field =
        query.substr(pos, amp == std::string_view::npos ? query.size() - pos
                                                        : amp - pos);
    const auto eq = field.find('=');
    if (eq != std::string_view::npos && field.substr(0, eq) == key)
      return field.substr(eq + 1);
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return {};
}

struct Tool {
  const char* label;
  const char* needle;  // lower-case title substring
};
constexpr Tool kTools[] = {
    {"UltraSurf", "ultrasurf"},
    {"HideMyAss", "hidemyass"},
    {"Auto Hide IP", "hide ip"},
    {"Anonymous browsers", "anonymous"},
    {"Skype", "skype"},
    {"MSN Messenger", "msn messenger"},
    {"Yahoo Messenger", "yahoo messenger"},
};
constexpr std::size_t kToolCount = std::size(kTools);

}  // namespace

BitTorrentStats bittorrent_stats(const LogSource& source,
                                 const workload::TorrentRegistry& registry,
                                 std::size_t threads) {
  struct Partial {
    std::uint64_t announces = 0, allowed = 0, censored = 0;
    std::unordered_set<std::string_view> peers;
    std::unordered_set<std::string_view> contents;
    std::array<std::uint64_t, kToolCount> tool_counts{};
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.path != "/announce") return;
        const auto info_hash = query_param(r.query, "info_hash");
        if (info_hash.empty()) return;
        ++p.announces;
        if (r.cls == proxy::TrafficClass::kCensored) ++p.censored;
        else if (r.cls == proxy::TrafficClass::kAllowed) ++p.allowed;
        const auto peer_id = query_param(r.query, "peer_id");
        if (!peer_id.empty()) p.peers.insert(peer_id);
        p.contents.insert(info_hash);

        if (const auto title = registry.resolve(info_hash)) {
          const std::string lowered = util::to_lower(*title);
          for (std::size_t t = 0; t < kToolCount; ++t) {
            if (lowered.find(kTools[t].needle) != std::string::npos)
              p.tool_counts[t] += 1;
          }
        }
      });

  BitTorrentStats stats;
  std::unordered_set<std::string_view> peers;
  std::unordered_set<std::string_view> contents;
  std::array<std::uint64_t, kToolCount> tool_counts{};
  for (const Partial& p : partials) {
    stats.announces += p.announces;
    stats.allowed += p.allowed;
    stats.censored += p.censored;
    peers.insert(p.peers.begin(), p.peers.end());
    contents.insert(p.contents.begin(), p.contents.end());
    for (std::size_t t = 0; t < kToolCount; ++t)
      tool_counts[t] += p.tool_counts[t];
  }
  stats.unique_peers = peers.size();
  stats.unique_contents = contents.size();
  for (const auto hash : contents) {
    if (registry.resolve(hash)) ++stats.resolved_contents;
  }
  for (std::size_t t = 0; t < kToolCount; ++t)
    stats.tool_announces.push_back({kTools[t].label, tool_counts[t]});
  std::sort(stats.tool_announces.begin(), stats.tool_announces.end(),
            [](const auto& a, const auto& b) {
              return a.announces > b.announces;
            });
  return stats;
}

}  // namespace syrwatch::analysis
