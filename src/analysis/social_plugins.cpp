#include "analysis/social_plugins.h"

#include <algorithm>

#include "util/strings.h"

namespace syrwatch::analysis {

const std::vector<std::string>& social_plugin_paths() {
  static const std::vector<std::string> paths = {
      "/plugins/like.php",        "/extern/login_status.php",
      "/plugins/likebox.php",     "/plugins/send.php",
      "/plugins/comments.php",    "/fbml/fbjs_ajax_proxy.php",
      "/connect/canvas_proxy.php", "/ajax/proxy.php",
      "/platform/page_proxy.php", "/plugins/facepile.php",
  };
  return paths;
}

SocialPluginStats social_plugin_stats(const LogSource& source,
                                      std::size_t threads) {
  const auto& paths = social_plugin_paths();

  // Dense per-path counters in the fixed endpoint order: addition folds.
  struct Partial {
    std::vector<SocialPluginStats::Element> elements;
    std::uint64_t facebook_censored = 0;
    std::uint64_t plugin_censored = 0;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.elements.empty()) {
          p.elements.reserve(paths.size());
          for (const std::string& path : paths) p.elements.push_back({path});
        }
        if (!util::host_matches_domain(r.host, "facebook.com")) return;
        if (r.cls == proxy::TrafficClass::kCensored) ++p.facebook_censored;
        for (auto& element : p.elements) {
          if (r.path != element.path) continue;
          switch (r.cls) {
            case proxy::TrafficClass::kCensored:
              ++element.censored;
              ++p.plugin_censored;
              break;
            case proxy::TrafficClass::kAllowed: ++element.allowed; break;
            case proxy::TrafficClass::kProxied: ++element.proxied; break;
            case proxy::TrafficClass::kError: break;
          }
          break;
        }
      });

  SocialPluginStats stats;
  stats.elements.reserve(paths.size());
  for (const std::string& path : paths) stats.elements.push_back({path});
  for (const Partial& p : partials) {
    stats.facebook_censored += p.facebook_censored;
    stats.plugin_censored += p.plugin_censored;
    if (p.elements.empty()) continue;
    for (std::size_t i = 0; i < stats.elements.size(); ++i) {
      stats.elements[i].censored += p.elements[i].censored;
      stats.elements[i].allowed += p.elements[i].allowed;
      stats.elements[i].proxied += p.elements[i].proxied;
    }
  }
  for (auto& element : stats.elements) {
    element.censored_share =
        stats.facebook_censored == 0
            ? 0.0
            : static_cast<double>(element.censored) /
                  static_cast<double>(stats.facebook_censored);
  }
  std::sort(stats.elements.begin(), stats.elements.end(),
            [](const auto& a, const auto& b) {
              return a.censored > b.censored;
            });
  return stats;
}

}  // namespace syrwatch::analysis
