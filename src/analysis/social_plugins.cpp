#include "analysis/social_plugins.h"

#include <algorithm>

#include "util/strings.h"

namespace syrwatch::analysis {

const std::vector<std::string>& social_plugin_paths() {
  static const std::vector<std::string> paths = {
      "/plugins/like.php",        "/extern/login_status.php",
      "/plugins/likebox.php",     "/plugins/send.php",
      "/plugins/comments.php",    "/fbml/fbjs_ajax_proxy.php",
      "/connect/canvas_proxy.php", "/ajax/proxy.php",
      "/platform/page_proxy.php", "/plugins/facepile.php",
  };
  return paths;
}

SocialPluginStats social_plugin_stats(const Dataset& dataset) {
  SocialPluginStats stats;
  const auto& paths = social_plugin_paths();
  stats.elements.reserve(paths.size());
  for (const std::string& path : paths) stats.elements.push_back({path});

  for (const Row& row : dataset.rows()) {
    if (!util::host_matches_domain(dataset.host(row), "facebook.com"))
      continue;
    const auto cls = dataset.cls(row);
    if (cls == proxy::TrafficClass::kCensored) ++stats.facebook_censored;
    const auto path = dataset.path(row);
    for (auto& element : stats.elements) {
      if (path != element.path) continue;
      switch (cls) {
        case proxy::TrafficClass::kCensored:
          ++element.censored;
          ++stats.plugin_censored;
          break;
        case proxy::TrafficClass::kAllowed: ++element.allowed; break;
        case proxy::TrafficClass::kProxied: ++element.proxied; break;
        case proxy::TrafficClass::kError: break;
      }
      break;
    }
  }
  for (auto& element : stats.elements) {
    element.censored_share =
        stats.facebook_censored == 0
            ? 0.0
            : static_cast<double>(element.censored) /
                  static_cast<double>(stats.facebook_censored);
  }
  std::sort(stats.elements.begin(), stats.elements.end(),
            [](const auto& a, const auto& b) {
              return a.censored > b.censored;
            });
  return stats;
}

}  // namespace syrwatch::analysis
