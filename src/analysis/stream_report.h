#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/coverage.h"
#include "analysis/options.h"
#include "analysis/scan.h"
#include "analysis/sketch.h"
#include "obs/context.h"
#include "policy/syria.h"
#include "tor/relay_directory.h"
#include "util/stats.h"

namespace syrwatch::analysis {

/// The online analysis mode's driver (DESIGN.md §4.12): one StreamAnalyzer
/// ingests records incrementally (fed through scan_increment) and can
/// render a rolling report at any moment. Every analyzer family the
/// offline report computes exactly has a bounded-memory streaming
/// counterpart here, each annotated [APPROX] with its stated error bound:
///
///   top censored domains    SpaceSaving    count ≤ truth + item.error
///   censored keyword table  SpaceSaving    over censored URL tokens
///   per-category counts     Count-Min      ≤ truth + ε·N, P ≥ 1 − δ
///   Dsample                 Reservoir      exact uniform k-of-n
///   traffic / RCV series    WindowRing     exact within the window
///   request coverage        WindowRing     exact within the window
///   Rfilter                 WindowRing     exact within the window
///
/// Whole-log-window exactness: when the window spans the entire log and
/// no sketch saturated, every figure equals the exact analyzer's output
/// byte for byte (the replay tests assert this).
struct StreamReportOptions {
  /// SpaceSaving counters per table. While distinct keys fit, the tables
  /// are exact.
  std::size_t top_capacity = 1024;
  std::size_t top_k = 10;
  /// Count-Min geometry: ε = e/width, δ = e^-depth.
  std::size_t cm_width = 2048;
  std::size_t cm_depth = 4;
  std::uint64_t cm_seed = 0;
  /// Reservoir (streaming Dsample) size and draw seed.
  std::size_t reservoir_k = 1024;
  std::uint64_t sample_seed = 42;
  /// Sliding-window geometry shared by the series/coverage/Rfilter rings.
  BinSpec bin{300};
  std::size_t window_bins = 288;  // 24 h of 5-minute bins
  /// Coverage gap gate, as in CoverageOptions.
  std::uint64_t min_farm_bin_requests = 25;
  /// Rfilter scope: the Tor-censoring proxy, restricted to relay
  /// endpoints when a directory is supplied (tor_endpoint matching);
  /// without one, all direct-to-IP requests on the proxy count.
  std::size_t rfilter_proxy = policy::kTorCensorProxy;
  const tor::RelayDirectory* relays = nullptr;
  /// Censored-URL keyword tokens shorter than this are noise.
  std::size_t min_token_length = 4;
};

/// One point-in-time rendering of the stream's state. Everything needed
/// to print or serialize the report (including each sketch's error
/// regime) is materialized here, so render/serialization are pure.
struct RollingReport {
  std::uint64_t records = 0;
  std::int64_t first_time = 0;
  std::int64_t last_time = 0;
  /// §3.3 class totals over everything ingested (exact).
  std::array<std::uint64_t, 4> class_totals{};

  struct TopEntry {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;  // 0 in the exact regime
  };
  std::vector<TopEntry> top_censored_domains;
  bool domains_exact = true;
  std::uint64_t domains_error_bound = 0;  // max over-estimate of any entry
  std::vector<TopEntry> censored_keywords;
  bool keywords_exact = true;
  std::uint64_t keywords_error_bound = 0;

  struct CategoryEstimate {
    std::string label;  // cs-categories as the proxies log it
    std::uint64_t estimate = 0;
  };
  /// Censored requests per proxy-logged category label (ranked estimate
  /// desc, label asc). Estimates over-count by at most category_error
  /// with probability ≥ 1 − category_delta.
  std::vector<CategoryEstimate> categories;
  std::uint64_t category_total = 0;
  double category_epsilon = 0.0;
  double category_delta = 0.0;
  double category_error = 0.0;  // ε·N in requests

  /// Streaming Dsample: k-of-n uniform reservoir.
  std::uint64_t sample_seen = 0;
  std::uint64_t sample_size = 0;
  std::uint64_t sample_censored = 0;
  /// Wilson 95% interval for the censored share, estimated from the
  /// sample — the streaming stand-in for Dsample's table row.
  util::ProportionInterval sample_censored_share{};

  /// Sliding-window series (exact within the window). origin = start of
  /// the oldest retained bin; vectors run oldest → newest.
  std::int64_t window_origin = 0;
  std::int64_t bin_seconds = 0;
  std::size_t window_capacity_bins = 0;
  std::uint64_t window_evicted_bins = 0;
  std::uint64_t window_late_drops = 0;
  std::vector<std::uint64_t> censored_series;
  std::vector<std::uint64_t> allowed_series;
  std::vector<std::uint64_t> total_series;
  std::vector<double> rcv;  // censored/total per bin, 0 for empty bins

  /// Windowed request coverage (same gap semantics as request_coverage).
  std::uint64_t coverage_active_bins = 0;
  std::array<std::uint64_t, policy::kProxyCount> covered_bins{};
  std::vector<CoverageGap> gaps;

  /// Windowed Rfilter over the scoped proxy (see
  /// StreamReportOptions::rfilter_proxy/relays). The censored set is
  /// everything censored *so far* — at whole-log replay it equals the
  /// exact analyzer's unwindowed set.
  std::vector<double> rfilter;
  std::vector<std::uint8_t> rfilter_has_traffic;
  std::uint64_t censored_relay_count = 0;

  /// Spool-tail health, filled in by the watch driver (0/false when the
  /// report is driven from a complete file).
  std::uint64_t spool_offset = 0;
  std::uint64_t spool_pending_bytes = 0;
  std::uint64_t spool_skipped_lines = 0;
  /// Times the tailed spool was rotated/truncated underneath the watch
  /// (SpoolTail::gaps()); non-zero marks the report [DEGRADED DATA].
  std::uint64_t spool_gaps = 0;
};

/// The incremental analyzer. Feed it records in stream order:
///
///   hw = scan_increment(stream.source(), hw,
///                       [&](const Record& r) { analyzer.ingest(r); });
///
/// then snapshot() at every reporting interval. Deterministic: identical
/// record sequences produce identical reports, so a replayed complete log
/// reproduces a live tail bit-for-bit.
class StreamAnalyzer {
 public:
  explicit StreamAnalyzer(const StreamReportOptions& options = {},
                          obs::Context* obs = nullptr);

  void ingest(const Record& r);
  std::uint64_t records() const noexcept { return records_; }

  /// Assembles the rolling report and refreshes the obs gauges
  /// (stream.* fill/evicted levels).
  RollingReport snapshot();

  const StreamReportOptions& options() const noexcept { return options_; }

 private:
  struct TrafficBin {
    std::uint64_t censored = 0;
    std::uint64_t allowed = 0;
    std::uint64_t total = 0;
  };
  struct CoverageBin {
    std::array<std::uint64_t, policy::kProxyCount> by_proxy{};
    std::uint64_t total = 0;
  };
  struct RfilterBin {
    std::unordered_set<std::uint32_t> allowed_ips;
    bool has_traffic = false;
  };
  struct SampleItem {
    std::uint64_t ordinal = 0;
    proxy::TrafficClass cls = proxy::TrafficClass::kAllowed;
  };

  bool rfilter_scoped(const Record& r) const;

  StreamReportOptions options_;
  std::uint64_t records_ = 0;
  std::int64_t first_time_ = 0;
  std::int64_t last_time_ = 0;
  std::array<std::uint64_t, 4> class_totals_{};

  SpaceSaving top_domains_;
  SpaceSaving keywords_;
  CountMinSketch categories_;
  /// The proxies log a fixed label vocabulary (§5.2), so tracking the
  /// observed labels exactly is bounded; Count-Min carries the counts.
  std::vector<std::string> category_labels_;   // first-sight order
  std::unordered_set<std::string> label_seen_;
  Reservoir<SampleItem> sample_;
  WindowRing<TrafficBin> traffic_;
  WindowRing<CoverageBin> coverage_;
  WindowRing<RfilterBin> rfilter_;
  std::unordered_set<std::uint32_t> censored_relay_ips_;

  obs::Counter* records_counter_ = nullptr;
  obs::Counter* late_counter_ = nullptr;
  obs::Gauge* domains_fill_ = nullptr;
  obs::Gauge* keywords_fill_ = nullptr;
  obs::Gauge* cm_fill_ = nullptr;
  obs::Gauge* window_fill_ = nullptr;
  obs::Gauge* window_evicted_ = nullptr;
  obs::Gauge* reservoir_seen_ = nullptr;
};

/// Text rendering with [APPROX] annotations and the stated bounds.
std::string render_stream_report(const RollingReport& report);

/// JSON document ("syrwatch.stream.v1") for dashboards / the CI smoke
/// leg. Deterministic key order.
std::string stream_report_json(const RollingReport& report);

}  // namespace syrwatch::analysis
