#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/options.h"
#include "analysis/scan.h"
#include "policy/syria.h"
#include "tor/relay_directory.h"
#include "util/histogram.h"

namespace syrwatch::analysis {

/// §7.1: Tor traffic identified by matching <IP, port> against the relay
/// directory — the same triplet-matching the paper performs against the
/// Tor metrics archives.
struct TorStats {
  std::uint64_t requests = 0;
  std::uint64_t http_requests = 0;   // Torhttp: directory fetches
  std::uint64_t onion_requests = 0;  // Toronion: circuit traffic
  std::uint64_t unique_relays = 0;
  std::uint64_t censored = 0;
  std::uint64_t tcp_errors = 0;
  std::uint64_t censored_http = 0;
  std::uint64_t censored_onion = 0;
  /// Censored Tor requests per proxy (the SG-44 specialization).
  std::array<std::uint64_t, policy::kProxyCount> censored_by_proxy{};
  std::array<std::uint64_t, policy::kProxyCount> requests_by_proxy{};
};

TorStats tor_stats(const LogSource& source, const tor::RelayDirectory& relays,
                   std::size_t threads = 1);

/// Fig. 8a's binning: hourly by default, adjustable for finer views.
struct TorHourlyOptions {
  TimeRange range;
  BinSpec bin{3600};
};

/// Fig. 8a: Tor requests per bin over a window.
util::BinnedCounter tor_hourly_series(const LogSource& source,
                                      const tor::RelayDirectory& relays,
                                      const TorHourlyOptions& options,
                                      std::size_t threads = 1);

/// Fig. 9: Rfilter(k) — per time bin, 1 - |Censored ∩ Allowed(k)| /
/// |Censored|, where Censored is the set of relay IPs ever censored by the
/// proxy and Allowed(k) the relay IPs allowed in bin k. 1 means every
/// previously-censored relay stayed blocked in that bin; 0 means all were
/// re-allowed (or the bin saw none of them).
struct RfilterSeries {
  std::int64_t origin = 0;
  std::int64_t bin_seconds = 0;
  std::vector<double> rfilter;
  std::vector<bool> has_traffic;  // bins with any Tor traffic on the proxy
  std::uint64_t censored_relay_count = 0;
};

RfilterSeries rfilter_series(const LogSource& source,
                             const tor::RelayDirectory& relays,
                             std::size_t proxy_index, std::int64_t start,
                             std::int64_t end,
                             std::int64_t bin_seconds = 3600,
                             std::size_t threads = 1);

/// Fig. 8b: one proxy's share of *all* censored traffic per bin, next to
/// its censored-Tor request count — the view showing SG-44's Tor blocking
/// varying more than its overall censorship.
struct ProxyCensoredSeries {
  std::int64_t origin = 0;
  std::int64_t bin_seconds = 0;
  std::vector<double> censored_share;        // of all censored traffic
  std::vector<std::uint64_t> tor_censored;   // censored Tor requests
};

ProxyCensoredSeries proxy_censored_series(const LogSource& source,
                                          const tor::RelayDirectory& relays,
                                          std::size_t proxy_index,
                                          std::int64_t start,
                                          std::int64_t end,
                                          std::int64_t bin_seconds = 3600,
                                          std::size_t threads = 1);

}  // namespace syrwatch::analysis
