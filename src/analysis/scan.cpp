#include "analysis/scan.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <utility>

namespace syrwatch::analysis {

LogSource::TimeBounds LogSource::time_bounds(std::size_t threads) const {
  if (mask_) return {first_time_, last_time_};
  if (stream_ != nullptr)
    return {stream_->first_time(), stream_->last_time()};
  if (columnar_ == nullptr)
    return {dataset_->rows().front().time, dataset_->rows().back().time};
  struct Bounds {
    std::int64_t first = 0, last = 0;
    bool any = false;
  };
  std::vector<Bounds> partials(partitions());
  util::parallel_for(partitions(), threads, [&](std::size_t p) {
    scan_partition(p, [&](const Record& r) {
      Bounds& b = partials[p];
      if (!b.any) {
        b.first = b.last = r.time;
        b.any = true;
        return;
      }
      if (r.time < b.first) b.first = r.time;
      if (r.time > b.last) b.last = r.time;
    });
  });
  TimeBounds bounds;
  bool seen = false;
  for (const Bounds& b : partials) {
    if (!b.any) continue;
    if (!seen) {
      bounds = {b.first, b.last};
      seen = true;
      continue;
    }
    bounds.first = std::min(bounds.first, b.first);
    bounds.last = std::max(bounds.last, b.last);
  }
  return bounds;
}

namespace {

/// Row count and time bounds of a freshly masked view, resolved with one
/// parallel scan (per-partition partials folded in order, like any other
/// analyzer — identical for any thread count).
struct ViewStats {
  std::uint64_t count = 0;
  std::int64_t first = 0;
  std::int64_t last = 0;
  bool any = false;
};

}  // namespace

LogSource LogSource::masked(
    std::shared_ptr<const std::vector<std::uint8_t>> mask,
    std::size_t threads) const {
  LogSource out = *this;
  if (mask_) {
    // Compose with the existing selection: a view of a view keeps the
    // base's ordinal space, so the masks simply AND together.
    auto combined = std::make_shared<std::vector<std::uint8_t>>(*mask_);
    for (std::size_t i = 0; i < combined->size(); ++i)
      (*combined)[i] = static_cast<std::uint8_t>((*combined)[i] != 0 &&
                                                 (*mask)[i] != 0);
    out.mask_ = std::move(combined);
  } else {
    out.mask_ = std::move(mask);
  }

  prepare(threads);
  std::vector<ViewStats> partials(out.partitions());
  util::parallel_for(out.partitions(), threads, [&](std::size_t p) {
    out.scan_partition(p, [&](const Record& r) {
      ViewStats& s = partials[p];
      ++s.count;
      if (!s.any) {
        s.first = s.last = r.time;
        s.any = true;
        return;
      }
      s.first = std::min(s.first, r.time);
      s.last = std::max(s.last, r.time);
    });
  });
  out.rows_ = 0;
  out.first_time_ = 0;
  out.last_time_ = 0;
  bool seen = false;
  for (const ViewStats& s : partials) {
    if (!s.any) continue;
    out.rows_ += s.count;
    if (!seen) {
      out.first_time_ = s.first;
      out.last_time_ = s.last;
      seen = true;
      continue;
    }
    out.first_time_ = std::min(out.first_time_, s.first);
    out.last_time_ = std::max(out.last_time_, s.last);
  }
  return out;
}

LogSource LogSource::filtered(const std::function<bool(const Record&)>& keep,
                              std::size_t threads) const {
  auto mask = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<std::size_t>(base_rows()), std::uint8_t{0});
  prepare(threads);
  // Each worker sets bits only at its own partition's ordinals, so the
  // writes never alias and the resulting mask is thread-count invariant.
  util::parallel_for(partitions(), threads, [&](std::size_t p) {
    scan_partition(p, [&](const Record& r) {
      if (keep(r))
        (*mask)[static_cast<std::size_t>(r.ordinal)] = 1;
    });
  });
  return masked(std::move(mask), threads);
}

std::string_view to_string(SourceOpenErrorCode code) noexcept {
  switch (code) {
    case SourceOpenErrorCode::kNotFound:
      return "not found";
    case SourceOpenErrorCode::kBadMagic:
      return "bad magic";
    case SourceOpenErrorCode::kUnsupportedVersion:
      return "unsupported version";
    case SourceOpenErrorCode::kTornTail:
      return "torn tail";
    case SourceOpenErrorCode::kMalformed:
      return "malformed";
  }
  return "unknown";
}

namespace {

[[noreturn]] void refuse(SourceOpenErrorCode code, const std::string& path,
                         const std::string& detail) {
  throw SourceOpenError(code, path + ": " + detail + " (" +
                                   std::string{to_string(code)} + ")");
}

/// Last byte of the file, or nullopt for an empty/unreadable one.
std::optional<char> last_byte(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  if (!in) return std::nullopt;
  const std::streamoff size = in.tellg();
  if (size <= 0) return std::nullopt;
  in.seekg(size - 1);
  char c = 0;
  if (!in.get(c)) return std::nullopt;
  return c;
}

void open_columnar(const std::string& path, const SourceOptions& options,
                   OpenedSource& out, std::unique_ptr<ColumnarLog>& columnar,
                   colfmt::RecoveryStats& recovery) {
  // Classify the version before the strict open so an operator-facing
  // "from a newer writer" refusal never reads as generic corruption. The
  // version lives in the footer; a file too short for one (or with a
  // damaged footer) falls through to the torn-tail/recovery logic below.
  {
    std::ifstream in{path, std::ios::binary | std::ios::ate};
    const std::streamoff size = in ? static_cast<std::streamoff>(in.tellg())
                                   : std::streamoff{0};
    const auto footer_span =
        static_cast<std::streamoff>(colfmt::kFooterBytes);
    if (in && size >= footer_span + 8) {
      char footer[colfmt::kFooterBytes];
      in.seekg(size - footer_span);
      if (in.read(footer, footer_span) &&
          std::string_view(footer + 52, 8) == colfmt::kMagic) {
        std::uint64_t version = 0;
        for (int i = 7; i >= 0; --i)
          version = (version << 8) |
                    static_cast<unsigned char>(footer[40 + i]);
        if (version != colfmt::kVersion)
          refuse(SourceOpenErrorCode::kUnsupportedVersion, path,
                 "container version " + std::to_string(version) +
                     " (this build reads version " +
                     std::to_string(colfmt::kVersion) + ")");
      }
    }
  }
  if (options.lenient) {
    columnar = std::make_unique<ColumnarLog>(
        colfmt::Reader::open_lenient(path, &recovery), options.threads);
    return;
  }
  try {
    columnar = std::make_unique<ColumnarLog>(colfmt::Reader::open(path),
                                             options.threads);
  } catch (const SourceOpenError&) {
    throw;
  } catch (const std::exception& error) {
    // Distinguish a torn tail (recoverable: the damage is at the end,
    // intact leading blocks survive a lenient probe) from deeper damage.
    colfmt::RecoveryStats probe;
    try {
      (void)colfmt::Reader::open_lenient(path, &probe);
    } catch (const std::exception&) {
      refuse(SourceOpenErrorCode::kMalformed, path, error.what());
    }
    refuse(probe.truncated_tail ? SourceOpenErrorCode::kTornTail
                                : SourceOpenErrorCode::kMalformed,
           path, error.what());
  }
  (void)out;
}

void open_csv(const std::string& path, const SourceOptions& options,
              std::unique_ptr<Dataset>& dataset,
              proxy::LogReadStats& read_stats) {
  std::ifstream in{path};
  if (!in) refuse(SourceOpenErrorCode::kNotFound, path, "cannot open");
  dataset = std::make_unique<Dataset>();
  if (options.lenient) {
    auto log = proxy::read_log_lenient(in);
    read_stats = log.stats;
    for (const auto& record : log.records) dataset->add(record);
    dataset->finalize();
    return;
  }
  // Strict: typed refusals instead of read_log's untyped throw. Writers
  // in this codebase always end logs with a newline, so a missing one is
  // the signature of a crash-truncated artifact — refuse it as a torn
  // tail *before* parsing, pointing the operator at --lenient.
  const auto tail = last_byte(path);
  if (!tail.has_value())
    refuse(SourceOpenErrorCode::kBadMagic, path, "empty file, no header");
  if (*tail != '\n')
    refuse(SourceOpenErrorCode::kTornTail, path,
           "final line lacks a newline (truncated write?)");
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1) {
      if (line != proxy::log_csv_header())
        refuse(SourceOpenErrorCode::kBadMagic, path,
               "first line is not the log CSV header");
      continue;
    }
    proxy::ParseDiagnosis diagnosis;
    const auto record = proxy::from_csv(line, &diagnosis);
    if (!record.has_value())
      refuse(SourceOpenErrorCode::kMalformed, path,
             "line " + std::to_string(line_no) + ": " +
                 std::string{proxy::to_string(diagnosis.error)});
    dataset->add(*record);
  }
  if (line_no == 0)
    refuse(SourceOpenErrorCode::kBadMagic, path, "empty file, no header");
  dataset->finalize();
}

}  // namespace

OpenedSource open_source(const std::string& path,
                         const SourceOptions& options) {
  if (options.format != "auto" && options.format != "csv" &&
      options.format != "col")
    throw std::invalid_argument(
        "open_source: format must be auto, csv, or col (got \"" +
        options.format + "\")");
  OpenedSource out;
  const bool exists = static_cast<bool>(std::ifstream{path});
  if (!exists) refuse(SourceOpenErrorCode::kNotFound, path, "cannot open");
  const bool is_col =
      options.format == "col" ||
      (options.format == "auto" && colfmt::file_looks_like_container(path));
  if (is_col) {
    if (options.format == "col" && !colfmt::file_looks_like_container(path))
      refuse(SourceOpenErrorCode::kBadMagic, path,
             "not a SYRCOL1 container");
    open_columnar(path, options, out, out.columnar_, out.recovery_);
    return out;
  }
  open_csv(path, options, out.dataset_, out.read_stats_);
  return out;
}

}  // namespace syrwatch::analysis
