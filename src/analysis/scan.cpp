#include "analysis/scan.h"

#include <algorithm>
#include <utility>

namespace syrwatch::analysis {

LogSource::TimeBounds LogSource::time_bounds(std::size_t threads) const {
  if (mask_) return {first_time_, last_time_};
  if (columnar_ == nullptr)
    return {dataset_->rows().front().time, dataset_->rows().back().time};
  struct Bounds {
    std::int64_t first = 0, last = 0;
    bool any = false;
  };
  std::vector<Bounds> partials(partitions());
  util::parallel_for(partitions(), threads, [&](std::size_t p) {
    scan_partition(p, [&](const Record& r) {
      Bounds& b = partials[p];
      if (!b.any) {
        b.first = b.last = r.time;
        b.any = true;
        return;
      }
      if (r.time < b.first) b.first = r.time;
      if (r.time > b.last) b.last = r.time;
    });
  });
  TimeBounds bounds;
  bool seen = false;
  for (const Bounds& b : partials) {
    if (!b.any) continue;
    if (!seen) {
      bounds = {b.first, b.last};
      seen = true;
      continue;
    }
    bounds.first = std::min(bounds.first, b.first);
    bounds.last = std::max(bounds.last, b.last);
  }
  return bounds;
}

namespace {

/// Row count and time bounds of a freshly masked view, resolved with one
/// parallel scan (per-partition partials folded in order, like any other
/// analyzer — identical for any thread count).
struct ViewStats {
  std::uint64_t count = 0;
  std::int64_t first = 0;
  std::int64_t last = 0;
  bool any = false;
};

}  // namespace

LogSource LogSource::masked(
    std::shared_ptr<const std::vector<std::uint8_t>> mask,
    std::size_t threads) const {
  LogSource out = *this;
  if (mask_) {
    // Compose with the existing selection: a view of a view keeps the
    // base's ordinal space, so the masks simply AND together.
    auto combined = std::make_shared<std::vector<std::uint8_t>>(*mask_);
    for (std::size_t i = 0; i < combined->size(); ++i)
      (*combined)[i] = static_cast<std::uint8_t>((*combined)[i] != 0 &&
                                                 (*mask)[i] != 0);
    out.mask_ = std::move(combined);
  } else {
    out.mask_ = std::move(mask);
  }

  prepare(threads);
  std::vector<ViewStats> partials(out.partitions());
  util::parallel_for(out.partitions(), threads, [&](std::size_t p) {
    out.scan_partition(p, [&](const Record& r) {
      ViewStats& s = partials[p];
      ++s.count;
      if (!s.any) {
        s.first = s.last = r.time;
        s.any = true;
        return;
      }
      s.first = std::min(s.first, r.time);
      s.last = std::max(s.last, r.time);
    });
  });
  out.rows_ = 0;
  out.first_time_ = 0;
  out.last_time_ = 0;
  bool seen = false;
  for (const ViewStats& s : partials) {
    if (!s.any) continue;
    out.rows_ += s.count;
    if (!seen) {
      out.first_time_ = s.first;
      out.last_time_ = s.last;
      seen = true;
      continue;
    }
    out.first_time_ = std::min(out.first_time_, s.first);
    out.last_time_ = std::max(out.last_time_, s.last);
  }
  return out;
}

LogSource LogSource::filtered(const std::function<bool(const Record&)>& keep,
                              std::size_t threads) const {
  const std::uint64_t base_rows =
      columnar_ != nullptr ? columnar_->rows() : dataset_->size();
  auto mask = std::make_shared<std::vector<std::uint8_t>>(
      static_cast<std::size_t>(base_rows), std::uint8_t{0});
  prepare(threads);
  // Each worker sets bits only at its own partition's ordinals, so the
  // writes never alias and the resulting mask is thread-count invariant.
  util::parallel_for(partitions(), threads, [&](std::size_t p) {
    scan_partition(p, [&](const Record& r) {
      if (keep(r))
        (*mask)[static_cast<std::size_t>(r.ordinal)] = 1;
    });
  });
  return masked(std::move(mask), threads);
}

}  // namespace syrwatch::analysis
