#include "analysis/domain_dist.h"

#include <unordered_map>
#include <vector>

#include "util/histogram.h"
#include "util/stats.h"

namespace syrwatch::analysis {

DomainDistribution domain_distribution(const LogSource& source,
                                       proxy::TrafficClass cls,
                                       std::size_t threads) {
  using Partial = std::unordered_map<std::string_view, std::uint64_t>;
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.cls != cls) return;
        ++p[r.domain];
      });

  // Everything downstream (frequency-of-frequencies, the regression) only
  // sees the per-domain totals, never the map order.
  std::unordered_map<std::string_view, std::uint64_t> per_domain;
  for (const Partial& p : partials)
    for (const auto& [domain, count] : p) per_domain[domain] += count;

  std::vector<std::uint64_t> counts;
  counts.reserve(per_domain.size());
  DomainDistribution dist;
  for (const auto& [domain, count] : per_domain) {
    counts.push_back(count);
    dist.max_requests = std::max(dist.max_requests, count);
  }
  dist.unique_domains = per_domain.size();
  dist.domains_by_request_count = util::frequency_of_frequencies(counts);

  // Fig. 2 plots #requests (y) against #domains receiving that many (x);
  // the slope of that relation on log-log axes characterizes the power law.
  std::vector<double> xs, ys;
  for (const auto& [request_count, domain_count] :
       dist.domains_by_request_count) {
    xs.push_back(static_cast<double>(domain_count));
    ys.push_back(static_cast<double>(request_count));
  }
  dist.loglog_slope = util::loglog_slope(xs, ys);
  return dist;
}

}  // namespace syrwatch::analysis
