#include "analysis/domain_dist.h"

#include <unordered_map>
#include <vector>

#include "util/histogram.h"
#include "util/stats.h"

namespace syrwatch::analysis {

DomainDistribution domain_distribution(const Dataset& dataset,
                                       proxy::TrafficClass cls) {
  std::unordered_map<std::string_view, std::uint64_t> per_domain;
  for (const Row& row : dataset.rows()) {
    if (dataset.cls(row) != cls) continue;
    ++per_domain[dataset.domain(row)];
  }

  std::vector<std::uint64_t> counts;
  counts.reserve(per_domain.size());
  DomainDistribution dist;
  for (const auto& [domain, count] : per_domain) {
    counts.push_back(count);
    dist.max_requests = std::max(dist.max_requests, count);
  }
  dist.unique_domains = per_domain.size();
  dist.domains_by_request_count = util::frequency_of_frequencies(counts);

  // Fig. 2 plots #requests (y) against #domains receiving that many (x);
  // the slope of that relation on log-log axes characterizes the power law.
  std::vector<double> xs, ys;
  for (const auto& [request_count, domain_count] :
       dist.domains_by_request_count) {
    xs.push_back(static_cast<double>(domain_count));
    ys.push_back(static_cast<double>(request_count));
  }
  dist.loglog_slope = util::loglog_slope(xs, ys);
  return dist;
}

}  // namespace syrwatch::analysis
