#include "analysis/https_audit.h"

#include "net/ipv4.h"

namespace syrwatch::analysis {

HttpsStats https_stats(const LogSource& source, std::size_t threads) {
  const auto partials = scan_partials<HttpsStats>(
      source, threads, [](HttpsStats& p, const Record& r) {
        if (r.scheme != net::Scheme::kHttps) return;
        ++p.total;
        if (!r.path.empty() || !r.query.empty()) ++p.with_uri_fields;
        if (r.cls != proxy::TrafficClass::kCensored) return;
        ++p.censored;
        if (net::looks_like_ipv4(r.host)) ++p.censored_ip_dest;
      });
  HttpsStats stats;
  stats.all_records = source.rows();
  for (const HttpsStats& p : partials) {
    stats.total += p.total;
    stats.censored += p.censored;
    stats.censored_ip_dest += p.censored_ip_dest;
    stats.with_uri_fields += p.with_uri_fields;
  }
  return stats;
}

}  // namespace syrwatch::analysis
