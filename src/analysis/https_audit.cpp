#include "analysis/https_audit.h"

#include "net/ipv4.h"

namespace syrwatch::analysis {

HttpsStats https_stats(const Dataset& dataset) {
  HttpsStats stats;
  stats.all_records = dataset.size();
  for (const Row& row : dataset.rows()) {
    if (row.scheme != net::Scheme::kHttps) continue;
    ++stats.total;
    if (!dataset.path(row).empty() || !dataset.query(row).empty())
      ++stats.with_uri_fields;
    if (dataset.cls(row) != proxy::TrafficClass::kCensored) continue;
    ++stats.censored;
    if (net::looks_like_ipv4(dataset.host(row))) ++stats.censored_ip_dest;
  }
  return stats;
}

}  // namespace syrwatch::analysis
