#include "analysis/columnar.h"

#include "analysis/testing/compat.h"

#include <utility>

#include "net/domain.h"
#include "net/ipv4.h"
#include "util/parallel.h"

namespace syrwatch::analysis {

ColumnarLog::ColumnarLog(colfmt::Reader reader, std::size_t threads)
    : reader_(std::move(reader)) {
  const auto ids = static_cast<std::size_t>(reader_.dict_size());
  domain_by_id_.resize(ids);
  ip_by_id_.assign(ids, 0);
  is_ip_.assign(ids, 0);
  // Id 0 ("") is implicit in the format and belongs to no block's delta.
  if (ids > 0) domain_by_id_[0] = net::registrable_domain("");
  // One grain per block's dictionary delta (colfmt::Reader::dict_entries):
  // each worker resolves exactly the strings born in its block, so the
  // precompute parallelizes along the same block axis the scans use.
  util::parallel_for(reader_.block_count(), threads, [&](std::size_t b) {
    const colfmt::DictDelta delta = reader_.dict_entries(b);
    for (std::uint32_t i = 0; i < delta.count; ++i) {
      const auto id = static_cast<std::size_t>(delta.base + i);
      const std::string_view text = delta.entries[i];
      domain_by_id_[id] = net::registrable_domain(text);
      if (const auto ip = net::Ipv4Addr::parse(text)) {
        ip_by_id_[id] = ip->value();
        is_ip_[id] = 1;
      }
    }
  });
}

Dataset to_dataset_compat(const colfmt::Reader& reader) {
  Dataset dataset;
  for (std::size_t i = 0; i < reader.block_count(); ++i) {
    const colfmt::DecodedBlock block = reader.decode(i);
    for (std::size_t r = 0; r < block.rows; ++r)
      dataset.add(reader.record(block, r));
  }
  dataset.finalize();
  return dataset;
}

}  // namespace syrwatch::analysis
