#include "analysis/columnar.h"

#include <algorithm>
#include <array>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "net/domain.h"
#include "net/ipv4.h"
#include "util/parallel.h"
#include "util/simtime.h"
#include "util/stats.h"

namespace syrwatch::analysis {

namespace {

using colfmt::DecodedBlock;

/// Scans every block into its own slot of a pre-sized partial vector, then
/// hands the partials back for an in-order merge. The scan function sees
/// (partial, decoded block) and must not touch anything shared.
template <typename Partial, typename Scan>
std::vector<Partial> scan_blocks(const ColumnarLog& log, std::size_t threads,
                                 const Scan& scan) {
  std::vector<Partial> partials(log.block_count());
  util::parallel_for(log.block_count(), threads, [&](std::size_t i) {
    const DecodedBlock block = log.reader().decode(i);
    scan(partials[i], block);
  });
  return partials;
}

}  // namespace

ColumnarLog::ColumnarLog(colfmt::Reader reader, std::size_t threads)
    : reader_(std::move(reader)) {
  const auto ids = static_cast<std::size_t>(reader_.dict_size());
  domain_by_id_.resize(ids);
  ip_by_id_.assign(ids, 0);
  is_ip_.assign(ids, 0);
  util::parallel_for(ids, threads, [&](std::size_t id) {
    const auto text = reader_.view(static_cast<std::uint32_t>(id));
    domain_by_id_[id] = net::registrable_domain(text);
    if (const auto ip = net::Ipv4Addr::parse(text)) {
      ip_by_id_[id] = ip->value();
      is_ip_[id] = 1;
    }
  });
}

std::vector<DomainCount> top_domains(const ColumnarLog& log,
                                     const TopDomainsOptions& options,
                                     std::size_t threads) {
  struct Partial {
    std::uint64_t class_total = 0;
    std::unordered_map<std::uint32_t, std::uint64_t> host_counts;
  };
  const auto partials = scan_blocks<Partial>(
      log, threads, [&](Partial& p, const DecodedBlock& b) {
        for (std::size_t r = 0; r < b.rows; ++r) {
          if (options.window && !options.window->contains(b.time[r]))
            continue;
          if (ColumnarLog::cls(b.filter_result[r], b.exception[r]) !=
              options.cls)
            continue;
          ++p.class_total;
          ++p.host_counts[b.host[r]];
        }
      });

  // Host-id counts fold into domain counts here (several hosts can share a
  // registrable domain); ranking below is a total order on (count, domain),
  // so the map iteration order cannot show through.
  std::unordered_map<std::string_view, std::uint64_t> counts;
  std::uint64_t class_total = 0;
  for (const Partial& p : partials) {
    class_total += p.class_total;
    for (const auto& [host_id, count] : p.host_counts)
      counts[log.domain(host_id)] += count;
  }
  std::vector<DomainCount> ranked;
  ranked.reserve(counts.size());
  for (const auto& [domain, count] : counts)
    ranked.push_back({std::string(domain), count,
                      class_total == 0
                          ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(class_total)});
  std::sort(ranked.begin(), ranked.end(),
            [](const DomainCount& a, const DomainCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.domain < b.domain;
            });
  if (ranked.size() > options.k) ranked.resize(options.k);
  return ranked;
}

TrafficTimeSeries traffic_time_series(const ColumnarLog& log,
                                      const TrafficSeriesOptions& options,
                                      std::size_t threads) {
  const std::size_t bins = options.bin.bins_over(options.range);
  struct Partial {
    std::vector<std::uint64_t> censored, allowed;
    std::uint64_t censored_overflow = 0, allowed_overflow = 0;
  };
  const auto partials = scan_blocks<Partial>(
      log, threads, [&](Partial& p, const DecodedBlock& b) {
        p.censored.assign(bins, 0);
        p.allowed.assign(bins, 0);
        for (std::size_t r = 0; r < b.rows; ++r) {
          const auto cls =
              ColumnarLog::cls(b.filter_result[r], b.exception[r]);
          std::vector<std::uint64_t>* series = nullptr;
          std::uint64_t* overflow = nullptr;
          if (cls == proxy::TrafficClass::kCensored) {
            series = &p.censored;
            overflow = &p.censored_overflow;
          } else if (cls == proxy::TrafficClass::kAllowed) {
            series = &p.allowed;
            overflow = &p.allowed_overflow;
          } else {
            continue;
          }
          const std::int64_t t = b.time[r];
          if (t < options.range.start) {
            ++*overflow;
            continue;
          }
          const auto bin = static_cast<std::uint64_t>(
              (t - options.range.start) / options.bin.seconds);
          if (bin >= bins)
            ++*overflow;
          else
            ++(*series)[static_cast<std::size_t>(bin)];
        }
      });

  TrafficTimeSeries series{
      util::BinnedCounter{options.range.start, options.bin.seconds, bins},
      util::BinnedCounter{options.range.start, options.bin.seconds, bins},
  };
  for (const Partial& p : partials) {
    for (std::size_t b = 0; b < bins; ++b) {
      if (!p.censored.empty() && p.censored[b] != 0)
        series.censored.add(series.censored.bin_start(b), p.censored[b]);
      if (!p.allowed.empty() && p.allowed[b] != 0)
        series.allowed.add(series.allowed.bin_start(b), p.allowed[b]);
    }
    if (p.censored_overflow != 0)
      series.censored.add(options.range.start - 1, p.censored_overflow);
    if (p.allowed_overflow != 0)
      series.allowed.add(options.range.start - 1, p.allowed_overflow);
  }
  return series;
}

RcvSeries rcv_series(const ColumnarLog& log, const RcvOptions& options,
                     std::size_t threads) {
  const std::size_t bins = options.bin.bins_over(options.range);
  struct Partial {
    std::vector<std::uint64_t> censored, total;
  };
  const auto partials = scan_blocks<Partial>(
      log, threads, [&](Partial& p, const DecodedBlock& b) {
        p.censored.assign(bins, 0);
        p.total.assign(bins, 0);
        for (std::size_t r = 0; r < b.rows; ++r) {
          const std::int64_t t = b.time[r];
          if (t < options.range.start) continue;
          const auto bin = static_cast<std::uint64_t>(
              (t - options.range.start) / options.bin.seconds);
          if (bin >= bins) continue;
          ++p.total[static_cast<std::size_t>(bin)];
          if (ColumnarLog::cls(b.filter_result[r], b.exception[r]) ==
              proxy::TrafficClass::kCensored)
            ++p.censored[static_cast<std::size_t>(bin)];
        }
      });

  std::vector<std::uint64_t> censored(bins, 0), total(bins, 0);
  for (const Partial& p : partials) {
    if (p.total.empty()) continue;
    for (std::size_t b = 0; b < bins; ++b) {
      censored[b] += p.censored[b];
      total[b] += p.total[b];
    }
  }
  RcvSeries series{options.range.start, options.bin.seconds,
                   std::vector<double>(bins, 0.0)};
  for (std::size_t i = 0; i < bins; ++i) {
    if (total[i] != 0)
      series.rcv[i] = static_cast<double>(censored[i]) /
                      static_cast<double>(total[i]);
  }
  return series;
}

CoverageReport request_coverage(const ColumnarLog& log,
                                std::int64_t bin_seconds,
                                std::uint64_t min_farm_bin_requests,
                                const colfmt::RecoveryStats* recovery,
                                std::size_t threads) {
  CoverageReport report;
  report.bin_seconds = bin_seconds;
  if (recovery != nullptr) report.truncated_tail = recovery->truncated_tail;
  if (log.rows() == 0) return report;

  // The container is required to be time-ordered (same order Dataset's
  // finalize establishes), so the observation window is the first row of
  // the first block and the last row of the last block.
  const std::int64_t first =
      log.reader().decode(0).time.front();
  const std::int64_t last =
      log.reader().decode(log.block_count() - 1).time.back();
  const std::int64_t origin = first - (first % util::kSecondsPerDay);
  if (last < first)
    throw std::runtime_error(
        "columnar request_coverage: container rows are not time-ordered");
  const auto bin_count =
      static_cast<std::size_t>((last - origin) / bin_seconds + 1);

  struct Partial {
    std::map<std::size_t, std::array<std::uint64_t, policy::kProxyCount>>
        bins;
    std::map<std::int64_t, std::array<std::uint64_t, policy::kProxyCount>>
        days;
    std::array<std::uint64_t, policy::kProxyCount> totals{};
    std::uint64_t total = 0;
  };
  const auto partials = scan_blocks<Partial>(
      log, threads, [&](Partial& p, const DecodedBlock& b) {
        for (std::size_t r = 0; r < b.rows; ++r) {
          const std::int64_t t = b.time[r];
          if (t < origin)
            throw std::runtime_error(
                "columnar request_coverage: container rows are not "
                "time-ordered");
          const auto bin = static_cast<std::size_t>((t - origin) /
                                                    bin_seconds);
          if (bin >= bin_count)
            throw std::runtime_error(
                "columnar request_coverage: container rows are not "
                "time-ordered");
          ++p.bins[bin][b.proxy_index[r]];
          const std::int64_t day_start = t - (t % util::kSecondsPerDay);
          ++p.days[day_start][b.proxy_index[r]];
          ++p.totals[b.proxy_index[r]];
          ++p.total;
        }
      });

  std::vector<std::array<std::uint64_t, policy::kProxyCount>> bins(
      bin_count, std::array<std::uint64_t, policy::kProxyCount>{});
  std::map<std::int64_t, std::array<std::uint64_t, policy::kProxyCount>>
      day_counts;
  for (const Partial& p : partials) {
    for (const auto& [bin, counts] : p.bins)
      for (std::size_t i = 0; i < policy::kProxyCount; ++i)
        bins[bin][i] += counts[i];
    for (const auto& [day, counts] : p.days)
      for (std::size_t i = 0; i < policy::kProxyCount; ++i)
        day_counts[day][i] += counts[i];
    for (std::size_t i = 0; i < policy::kProxyCount; ++i)
      report.totals[i] += p.totals[i];
    report.total_requests += p.total;
  }
  report.days.reserve(day_counts.size());
  for (const auto& [day_start, requests] : day_counts)
    report.days.push_back({day_start, requests});

  // Gap scan — the same merge of consecutive farm-active holes the row
  // path performs (coverage.cpp); the merged bins are identical, so the
  // resulting gaps are too.
  std::array<bool, policy::kProxyCount> in_gap{};
  std::array<CoverageGap, policy::kProxyCount> open{};
  for (std::size_t b = 0; b < bin_count; ++b) {
    std::uint64_t farm_total = 0;
    for (const std::uint64_t count : bins[b]) farm_total += count;
    const bool active = farm_total >= min_farm_bin_requests;
    if (active) ++report.active_bins;
    const std::int64_t bin_start =
        origin + static_cast<std::int64_t>(b) * bin_seconds;
    for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
      if (active && bins[b][p] > 0) ++report.covered_bins[p];
      const bool hole = active && bins[b][p] == 0;
      if (hole) {
        if (!in_gap[p]) {
          in_gap[p] = true;
          open[p] = {static_cast<std::uint8_t>(p), bin_start, 0, 0};
        }
        open[p].end = bin_start + bin_seconds;
        open[p].farm_requests += farm_total;
      } else if (in_gap[p] && active) {
        in_gap[p] = false;
        report.gaps.push_back(open[p]);
      }
    }
  }
  for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
    if (in_gap[p]) report.gaps.push_back(open[p]);
  }
  std::sort(report.gaps.begin(), report.gaps.end(),
            [](const CoverageGap& a, const CoverageGap& b) {
              if (a.proxy_index != b.proxy_index)
                return a.proxy_index < b.proxy_index;
              return a.start < b.start;
            });
  return report;
}

ProxySimilarity censored_domain_similarity(const ColumnarLog& log,
                                           std::int64_t start,
                                           std::int64_t end,
                                           std::size_t threads) {
  struct Partial {
    // Domains in first-appearance order within the block, with per-proxy
    // counts per local index.
    std::vector<std::string_view> order;
    std::unordered_map<std::string_view, std::size_t> local_index;
    std::vector<std::array<std::uint64_t, policy::kProxyCount>> counts;
  };
  const auto partials = scan_blocks<Partial>(
      log, threads, [&](Partial& p, const DecodedBlock& b) {
        for (std::size_t r = 0; r < b.rows; ++r) {
          if (b.time[r] < start || b.time[r] >= end) continue;
          if (ColumnarLog::cls(b.filter_result[r], b.exception[r]) !=
              proxy::TrafficClass::kCensored)
            continue;
          const auto domain = log.domain(b.host[r]);
          const auto [it, inserted] =
              p.local_index.emplace(domain, p.order.size());
          if (inserted) {
            p.order.push_back(domain);
            p.counts.emplace_back();
          }
          ++p.counts[it->second][b.proxy_index[r]];
        }
      });

  // Merging in block order reproduces the sequential scan's first-seen
  // domain index assignment, so the cosine sums below run over the same
  // vectors in the same slot order — bit-identical doubles.
  std::unordered_map<std::string_view, std::size_t> domain_index;
  std::array<std::vector<double>, policy::kProxyCount> vectors;
  for (const Partial& p : partials) {
    for (std::size_t local = 0; local < p.order.size(); ++local) {
      const auto [it, inserted] =
          domain_index.emplace(p.order[local], domain_index.size());
      const std::size_t idx = it->second;
      for (auto& vec : vectors) {
        if (vec.size() <= idx) vec.resize(domain_index.size(), 0.0);
      }
      for (std::size_t proxy = 0; proxy < policy::kProxyCount; ++proxy) {
        if (p.counts[local][proxy] != 0)
          vectors[proxy][idx] +=
              static_cast<double>(p.counts[local][proxy]);
      }
    }
  }
  for (auto& vec : vectors) vec.resize(domain_index.size(), 0.0);

  ProxySimilarity similarity;
  for (std::size_t a = 0; a < policy::kProxyCount; ++a) {
    for (std::size_t b = 0; b < policy::kProxyCount; ++b) {
      similarity.matrix[a][b] =
          a == b ? 1.0 : util::cosine_similarity(vectors[a], vectors[b]);
    }
  }
  return similarity;
}

RfilterSeries rfilter_series(const ColumnarLog& log,
                             const tor::RelayDirectory& relays,
                             std::size_t proxy_index, std::int64_t start,
                             std::int64_t end, std::int64_t bin_seconds,
                             std::size_t threads) {
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);

  struct Partial {
    std::unordered_set<std::uint32_t> censored_ips;
    std::vector<std::unordered_set<std::uint32_t>> allowed;
    std::vector<std::uint8_t> traffic;
  };
  const auto partials = scan_blocks<Partial>(
      log, threads, [&](Partial& p, const DecodedBlock& b) {
        p.allowed.resize(bins);
        p.traffic.assign(bins, 0);
        for (std::size_t r = 0; r < b.rows; ++r) {
          if (b.proxy_index[r] != proxy_index) continue;
          if (!log.host_is_ip(b.host[r])) continue;
          if (!relays.contains(net::Ipv4Addr{log.host_ip(b.host[r])},
                               b.port[r]))
            continue;
          const auto cls =
              ColumnarLog::cls(b.filter_result[r], b.exception[r]);
          // Pass 1 of the row path: censored relay IPs, no time window.
          if (cls == proxy::TrafficClass::kCensored)
            p.censored_ips.insert(log.host_ip(b.host[r]));
          // Pass 2: per-bin allowed relay IPs inside the window.
          if (b.time[r] < start || b.time[r] >= end) continue;
          const auto bin =
              static_cast<std::size_t>((b.time[r] - start) / bin_seconds);
          p.traffic[bin] = 1;
          if (cls == proxy::TrafficClass::kAllowed)
            p.allowed[bin].insert(log.host_ip(b.host[r]));
        }
      });

  std::unordered_set<std::uint32_t> censored_ips;
  std::vector<std::unordered_set<std::uint32_t>> allowed_per_bin(bins);
  std::vector<bool> has_traffic(bins, false);
  for (const Partial& p : partials) {
    censored_ips.insert(p.censored_ips.begin(), p.censored_ips.end());
    if (p.allowed.empty()) continue;
    for (std::size_t b = 0; b < bins; ++b) {
      if (p.traffic[b] != 0) has_traffic[b] = true;
      allowed_per_bin[b].insert(p.allowed[b].begin(), p.allowed[b].end());
    }
  }

  RfilterSeries series;
  series.origin = start;
  series.bin_seconds = bin_seconds;
  series.rfilter.assign(bins, 0.0);
  series.has_traffic = std::move(has_traffic);
  series.censored_relay_count = censored_ips.size();
  if (censored_ips.empty()) return series;
  for (std::size_t k = 0; k < bins; ++k) {
    std::size_t overlap = 0;
    for (const std::uint32_t ip : allowed_per_bin[k]) {
      if (censored_ips.count(ip) != 0) ++overlap;
    }
    series.rfilter[k] = 1.0 - static_cast<double>(overlap) /
                                  static_cast<double>(censored_ips.size());
  }
  return series;
}

Dataset to_dataset(const colfmt::Reader& reader) {
  Dataset dataset;
  for (std::size_t i = 0; i < reader.block_count(); ++i) {
    const DecodedBlock block = reader.decode(i);
    for (std::size_t r = 0; r < block.rows; ++r)
      dataset.add(reader.record(block, r));
  }
  dataset.finalize();
  return dataset;
}

}  // namespace syrwatch::analysis
