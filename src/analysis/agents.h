#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scan.h"

namespace syrwatch::analysis {

/// §4's user-agent observation: some "users" are software on a retry loop
/// against a censored endpoint (Skype clients hammering skype.com), which
/// inflates censored-request counts. This analyzer splits traffic by
/// cs-user-agent and ranks agents by how censored their traffic is.
struct AgentStats {
  std::string agent;
  std::uint64_t requests = 0;
  std::uint64_t censored = 0;
  double censored_share() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(censored) /
                               static_cast<double>(requests);
  }
};

/// Agents ranked by censored count (descending); `min_requests` drops
/// one-off agents. Software agents (Skype/5.3, GoogleToolbarBB, ...) stand
/// out with censored shares near 100%.
std::vector<AgentStats> agent_stats(const LogSource& source,
                                    std::uint64_t min_requests = 10,
                                    std::size_t threads = 1);

}  // namespace syrwatch::analysis
