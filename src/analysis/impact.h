#pragma once

#include <cstdint>
#include <vector>

#include "analysis/options.h"
#include "analysis/scan.h"
#include "analysis/top_domains.h"
#include "policy/custom_category.h"
#include "policy/engine.h"

namespace syrwatch::analysis {

/// What-if re-screening: replay every logged URL through a *hypothetical*
/// policy and compare its decisions against the observed ones — the tool
/// behind §8's cost/benefit discussion (how much more or less would a
/// different ruleset block, and whom).
struct PolicyImpact {
  std::uint64_t evaluated = 0;
  std::uint64_t censored_observed = 0;      // censored in the log
  std::uint64_t censored_hypothetical = 0;  // censored by the new policy
  std::uint64_t newly_censored = 0;         // allowed -> censored
  std::uint64_t newly_allowed = 0;          // censored -> allowed
  /// Domains with the most newly censored requests — the collateral the
  /// hypothetical policy would create.
  std::vector<DomainCount> top_newly_censored;

  double observed_rate() const noexcept {
    return evaluated == 0 ? 0.0
                          : static_cast<double>(censored_observed) /
                                static_cast<double>(evaluated);
  }
  double hypothetical_rate() const noexcept {
    return evaluated == 0 ? 0.0
                          : static_cast<double>(censored_hypothetical) /
                                static_cast<double>(evaluated);
  }
};

/// Re-screens the source's allowed/censored rows (errors and proxied rows
/// are skipped: their outcomes were not policy decisions). Scheduled rules
/// evaluate at each row's own timestamp with a fixed-seed generator that
/// consumes draws in row order, so the result is deterministic at any
/// thread count.
PolicyImpact policy_impact(const LogSource& source,
                           const policy::PolicyEngine& engine,
                           const policy::CustomCategoryList& custom_categories,
                           const PolicyImpactOptions& options = {},
                           std::size_t threads = 1);

}  // namespace syrwatch::analysis
