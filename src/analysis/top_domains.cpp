#include "analysis/top_domains.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace syrwatch::analysis {

std::vector<DomainCount> top_domains(const LogSource& source,
                                     const TopDomainsOptions& options,
                                     std::size_t threads) {
  struct Partial {
    std::uint64_t class_total = 0;
    std::unordered_map<std::string_view, std::uint64_t> counts;
  };
  const auto& window = options.window;
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (window && !window->contains(r.time)) return;
        if (r.cls != options.cls) return;
        ++p.class_total;
        ++p.counts[r.domain];
      });

  // Ranking below is a total order on (count, domain), so the map
  // iteration order cannot show through the fold.
  std::unordered_map<std::string_view, std::uint64_t> counts;
  std::uint64_t class_total = 0;
  for (const Partial& p : partials) {
    class_total += p.class_total;
    for (const auto& [domain, count] : p.counts) counts[domain] += count;
  }
  std::vector<DomainCount> ranked;
  ranked.reserve(counts.size());
  for (const auto& [domain, count] : counts)
    ranked.push_back({std::string(domain), count,
                      class_total == 0
                          ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(class_total)});
  std::sort(ranked.begin(), ranked.end(),
            [](const DomainCount& a, const DomainCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.domain < b.domain;
            });
  if (ranked.size() > options.k) ranked.resize(options.k);
  return ranked;
}

std::vector<DomainClassCounts> domain_class_counts(
    const LogSource& source, std::span<const std::string> domains,
    std::size_t threads) {
  std::vector<DomainClassCounts> out;
  out.reserve(domains.size());
  for (const std::string& domain : domains) out.push_back({domain, 0, 0, 0});

  // Fixed input order in, fixed order out: each partial is the same dense
  // array, and addition folds it.
  using Partial = std::vector<DomainClassCounts>;
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.empty()) p = out;
        for (DomainClassCounts& entry : p) {
          if (!util::host_matches_domain(r.host, entry.domain)) continue;
          switch (r.cls) {
            case proxy::TrafficClass::kCensored: ++entry.censored; break;
            case proxy::TrafficClass::kAllowed: ++entry.allowed; break;
            case proxy::TrafficClass::kProxied: ++entry.proxied; break;
            case proxy::TrafficClass::kError: break;
          }
        }
      });
  for (const Partial& p : partials) {
    if (p.empty()) continue;
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].censored += p[i].censored;
      out[i].allowed += p[i].allowed;
      out[i].proxied += p[i].proxied;
    }
  }
  return out;
}

}  // namespace syrwatch::analysis
