#include "analysis/top_domains.h"

#include <algorithm>
#include <unordered_map>

#include "util/strings.h"

namespace syrwatch::analysis {

std::vector<DomainCount> top_domains(const Dataset& dataset,
                                     const TopDomainsOptions& options) {
  const auto& window = options.window;
  std::unordered_map<std::string_view, std::uint64_t> counts;
  std::uint64_t class_total = 0;
  for (const Row& row : dataset.rows()) {
    if (window && !window->contains(row.time)) continue;
    if (dataset.cls(row) != options.cls) continue;
    ++class_total;
    ++counts[dataset.domain(row)];
  }
  std::vector<DomainCount> ranked;
  ranked.reserve(counts.size());
  for (const auto& [domain, count] : counts)
    ranked.push_back({std::string(domain), count,
                      class_total == 0
                          ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(class_total)});
  std::sort(ranked.begin(), ranked.end(),
            [](const DomainCount& a, const DomainCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.domain < b.domain;
            });
  if (ranked.size() > options.k) ranked.resize(options.k);
  return ranked;
}

std::vector<DomainClassCounts> domain_class_counts(
    const Dataset& dataset, std::span<const std::string> domains) {
  std::vector<DomainClassCounts> out;
  out.reserve(domains.size());
  for (const std::string& domain : domains) out.push_back({domain, 0, 0, 0});

  for (const Row& row : dataset.rows()) {
    const auto host = dataset.host(row);
    for (DomainClassCounts& entry : out) {
      if (!util::host_matches_domain(host, entry.domain)) continue;
      switch (dataset.cls(row)) {
        case proxy::TrafficClass::kCensored: ++entry.censored; break;
        case proxy::TrafficClass::kAllowed: ++entry.allowed; break;
        case proxy::TrafficClass::kProxied: ++entry.proxied; break;
        case proxy::TrafficClass::kError: break;
      }
    }
  }
  return out;
}

}  // namespace syrwatch::analysis
