#include "analysis/google_cache.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace syrwatch::analysis {

namespace {

/// Pulls the cached target host out of "q=cache:<token>:<host>/<path>".
std::string_view cached_target(std::string_view query) {
  const auto cache_pos = query.find("cache:");
  if (cache_pos == std::string_view::npos) return {};
  auto rest = query.substr(cache_pos + 6);
  const auto colon = rest.find(':');
  if (colon != std::string_view::npos) rest = rest.substr(colon + 1);
  const auto end = rest.find_first_of("/&");
  return end == std::string_view::npos ? rest : rest.substr(0, end);
}

}  // namespace

GoogleCacheStats google_cache_stats(
    const LogSource& source,
    std::span<const std::string> censored_site_suffixes,
    std::size_t threads) {
  struct Partial {
    std::uint64_t requests = 0, allowed = 0, censored = 0;
    std::map<std::string, std::uint64_t> served;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.host != "webcache.googleusercontent.com") return;
        ++p.requests;
        if (r.cls == proxy::TrafficClass::kCensored) {
          ++p.censored;
          return;
        }
        if (r.cls != proxy::TrafficClass::kAllowed) return;
        ++p.allowed;
        const auto target = cached_target(r.query);
        if (target.empty()) return;
        for (const std::string& suffix : censored_site_suffixes) {
          if (util::host_matches_domain(target, suffix)) {
            ++p.served[std::string(target)];
            break;
          }
        }
      });

  GoogleCacheStats stats;
  std::map<std::string, std::uint64_t> served;
  for (const Partial& p : partials) {
    stats.requests += p.requests;
    stats.allowed += p.allowed;
    stats.censored += p.censored;
    for (const auto& [site, count] : p.served) served[site] += count;
  }
  for (auto& [site, count] : served)
    stats.censored_sites_served.push_back({site, count});
  std::sort(stats.censored_sites_served.begin(),
            stats.censored_sites_served.end(),
            [](const auto& a, const auto& b) {
              return a.allowed_fetches > b.allowed_fetches;
            });
  return stats;
}

}  // namespace syrwatch::analysis
