#include "analysis/google_cache.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace syrwatch::analysis {

namespace {

/// Pulls the cached target host out of "q=cache:<token>:<host>/<path>".
std::string_view cached_target(std::string_view query) {
  const auto cache_pos = query.find("cache:");
  if (cache_pos == std::string_view::npos) return {};
  auto rest = query.substr(cache_pos + 6);
  const auto colon = rest.find(':');
  if (colon != std::string_view::npos) rest = rest.substr(colon + 1);
  const auto end = rest.find_first_of("/&");
  return end == std::string_view::npos ? rest : rest.substr(0, end);
}

}  // namespace

GoogleCacheStats google_cache_stats(
    const Dataset& dataset,
    std::span<const std::string> censored_site_suffixes) {
  GoogleCacheStats stats;
  std::map<std::string, std::uint64_t> served;
  for (const Row& row : dataset.rows()) {
    if (dataset.host(row) != "webcache.googleusercontent.com") continue;
    ++stats.requests;
    const auto cls = dataset.cls(row);
    if (cls == proxy::TrafficClass::kCensored) {
      ++stats.censored;
      continue;
    }
    if (cls != proxy::TrafficClass::kAllowed) continue;
    ++stats.allowed;
    const auto target = cached_target(dataset.query(row));
    if (target.empty()) continue;
    for (const std::string& suffix : censored_site_suffixes) {
      if (util::host_matches_domain(target, suffix)) {
        ++served[std::string(target)];
        break;
      }
    }
  }
  for (auto& [site, count] : served)
    stats.censored_sites_served.push_back({site, count});
  std::sort(stats.censored_sites_served.begin(),
            stats.censored_sites_served.end(),
            [](const auto& a, const auto& b) {
              return a.allowed_fetches > b.allowed_fetches;
            });
  return stats;
}

}  // namespace syrwatch::analysis
