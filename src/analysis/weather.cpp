#include "analysis/weather.h"

#include <stdexcept>

#include "util/strings.h"

namespace syrwatch::analysis {

double KeywordWeather::intensity(std::size_t bin) const {
  if (bin >= matched.size() || matched[bin] == 0) return 0.0;
  return static_cast<double>(censored[bin]) /
         static_cast<double>(matched[bin]);
}

std::size_t KeywordWeather::active_bins() const {
  std::size_t count = 0;
  for (const auto m : matched) count += m != 0;
  return count;
}

std::size_t KeywordWeather::fully_enforced_bins() const {
  std::size_t count = 0;
  for (std::size_t bin = 0; bin < matched.size(); ++bin)
    count += matched[bin] != 0 && censored[bin] == matched[bin];
  return count;
}

std::vector<KeywordWeather> keyword_weather(
    const LogSource& source, std::span<const std::string> keywords,
    const WeatherOptions& options, std::size_t threads) {
  const std::int64_t start = options.range.start;
  const std::int64_t end = options.range.end;
  const std::int64_t bin_seconds = options.bin.seconds;
  if (end <= start || bin_seconds <= 0)
    throw std::invalid_argument("keyword_weather: bad window");
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);

  std::vector<KeywordWeather> reports;
  reports.reserve(keywords.size());
  for (const auto& keyword : keywords) {
    KeywordWeather report;
    report.keyword = util::to_lower(keyword);
    report.origin = start;
    report.bin_seconds = bin_seconds;
    report.censored.assign(bins, 0);
    report.matched.assign(bins, 0);
    reports.push_back(std::move(report));
  }

  // Dense per-keyword/per-bin counters; addition folds.
  struct KeywordBins {
    std::vector<std::uint64_t> censored, matched;
  };
  using Partial = std::vector<KeywordBins>;
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.empty()) {
          p.resize(reports.size());
          for (auto& kb : p) {
            kb.censored.assign(bins, 0);
            kb.matched.assign(bins, 0);
          }
        }
        if (r.time < start || r.time >= end) return;
        if (r.cls != proxy::TrafficClass::kCensored &&
            r.cls != proxy::TrafficClass::kAllowed)
          return;
        const std::string text = util::to_lower(r.filter_text());
        const auto bin =
            static_cast<std::size_t>((r.time - start) / bin_seconds);
        for (std::size_t k = 0; k < reports.size(); ++k) {
          if (text.find(reports[k].keyword) == std::string::npos) continue;
          ++p[k].matched[bin];
          if (r.cls == proxy::TrafficClass::kCensored) ++p[k].censored[bin];
        }
      });

  for (const Partial& p : partials) {
    if (p.empty()) continue;
    for (std::size_t k = 0; k < reports.size(); ++k) {
      for (std::size_t bin = 0; bin < bins; ++bin) {
        reports[k].censored[bin] += p[k].censored[bin];
        reports[k].matched[bin] += p[k].matched[bin];
      }
    }
  }
  return reports;
}

}  // namespace syrwatch::analysis
