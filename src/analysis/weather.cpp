#include "analysis/weather.h"

#include <stdexcept>

#include "util/strings.h"

namespace syrwatch::analysis {

double KeywordWeather::intensity(std::size_t bin) const {
  if (bin >= matched.size() || matched[bin] == 0) return 0.0;
  return static_cast<double>(censored[bin]) /
         static_cast<double>(matched[bin]);
}

std::size_t KeywordWeather::active_bins() const {
  std::size_t count = 0;
  for (const auto m : matched) count += m != 0;
  return count;
}

std::size_t KeywordWeather::fully_enforced_bins() const {
  std::size_t count = 0;
  for (std::size_t bin = 0; bin < matched.size(); ++bin)
    count += matched[bin] != 0 && censored[bin] == matched[bin];
  return count;
}

std::vector<KeywordWeather> keyword_weather(
    const Dataset& dataset, std::span<const std::string> keywords,
    std::int64_t start, std::int64_t end, std::int64_t bin_seconds) {
  if (end <= start || bin_seconds <= 0)
    throw std::invalid_argument("keyword_weather: bad window");
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);

  std::vector<KeywordWeather> reports;
  reports.reserve(keywords.size());
  for (const auto& keyword : keywords) {
    KeywordWeather report;
    report.keyword = util::to_lower(keyword);
    report.origin = start;
    report.bin_seconds = bin_seconds;
    report.censored.assign(bins, 0);
    report.matched.assign(bins, 0);
    reports.push_back(std::move(report));
  }

  for (const Row& row : dataset.rows()) {
    if (row.time < start || row.time >= end) continue;
    const auto cls = dataset.cls(row);
    if (cls != proxy::TrafficClass::kCensored &&
        cls != proxy::TrafficClass::kAllowed)
      continue;
    const std::string text = util::to_lower(dataset.filter_text(row));
    const auto bin =
        static_cast<std::size_t>((row.time - start) / bin_seconds);
    for (auto& report : reports) {
      if (text.find(report.keyword) == std::string::npos) continue;
      ++report.matched[bin];
      if (cls == proxy::TrafficClass::kCensored) ++report.censored[bin];
    }
  }
  return reports;
}

}  // namespace syrwatch::analysis
