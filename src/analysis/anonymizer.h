#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scan.h"
#include "category/categorizer.h"
#include "util/stats.h"

namespace syrwatch::analysis {

/// §7.2: web proxies and VPN endpoints, identified (as in the paper) by
/// the external categorizer labelling hosts "Anonymizer".
struct AnonymizerStats {
  std::uint64_t hosts = 0;
  std::uint64_t requests = 0;
  std::uint64_t never_filtered_hosts = 0;
  std::uint64_t never_filtered_requests = 0;
  std::uint64_t filtered_hosts = 0;

  /// Fig. 10a input: requests per never-filtered host.
  std::vector<double> requests_per_clean_host;
  /// Fig. 10b input: allowed/censored ratio per filtered host.
  std::vector<double> allowed_censored_ratio;

  double never_filtered_host_share() const noexcept {
    return hosts == 0 ? 0.0
                      : static_cast<double>(never_filtered_hosts) /
                            static_cast<double>(hosts);
  }
  double never_filtered_request_share() const noexcept {
    return requests == 0 ? 0.0
                         : static_cast<double>(never_filtered_requests) /
                               static_cast<double>(requests);
  }
  /// Share of filtered hosts whose allowed count exceeds their censored
  /// count (the paper: >50%).
  double mostly_allowed_share() const;
};

AnonymizerStats anonymizer_stats(const LogSource& source,
                                 const category::Categorizer& categorizer,
                                 std::size_t threads = 1);

}  // namespace syrwatch::analysis
