#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scan.h"
#include "geo/geoip.h"
#include "net/subnet.h"

namespace syrwatch::analysis {

/// §5.4's IP-based censorship analysis over DIPv4 — the subset of requests
/// whose cs-host is an IPv4 literal.

/// Table 11: per-country censored/allowed counts and censorship ratio.
struct CountryCensorship {
  std::string country;
  std::uint64_t censored = 0;
  std::uint64_t allowed = 0;
  double ratio() const noexcept {
    const double total = static_cast<double>(censored + allowed);
    return total == 0.0 ? 0.0 : static_cast<double>(censored) / total;
  }
};

/// Countries ranked by censorship ratio (descending). Unlocatable IPs are
/// dropped, as with the paper's GeoIP lookups.
std::vector<CountryCensorship> country_censorship(const LogSource& source,
                                                  const geo::GeoIpDb& geoip,
                                                  std::size_t threads = 1);

/// Table 12: per-subnet request and distinct-IP counts by traffic class.
struct SubnetCensorship {
  net::Ipv4Subnet subnet;
  std::uint64_t censored_requests = 0;
  std::uint64_t allowed_requests = 0;
  std::uint64_t proxied_requests = 0;
  std::uint64_t censored_ips = 0;
  std::uint64_t allowed_ips = 0;
  std::uint64_t proxied_ips = 0;
};

std::vector<SubnetCensorship> subnet_censorship(
    const LogSource& source, std::span<const net::Ipv4Subnet> subnets,
    std::size_t threads = 1);

/// Number of direct-IP requests (the DIPv4 dataset size).
std::uint64_t direct_ip_requests(const LogSource& source,
                                 std::size_t threads = 1);

}  // namespace syrwatch::analysis
