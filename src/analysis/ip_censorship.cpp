#include "analysis/ip_censorship.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "net/ipv4.h"

namespace syrwatch::analysis {

namespace {

std::optional<net::Ipv4Addr> row_ip(const Dataset& dataset, const Row& row) {
  // DIPv4 keys on the cs-host field being an IP literal.
  return net::Ipv4Addr::parse(dataset.host(row));
}

}  // namespace

std::vector<CountryCensorship> country_censorship(const Dataset& dataset,
                                                  const geo::GeoIpDb& geoip) {
  std::map<std::string, CountryCensorship> by_country;
  for (const Row& row : dataset.rows()) {
    const auto ip = row_ip(dataset, row);
    if (!ip) continue;
    const auto country = geoip.lookup(*ip);
    if (!country) continue;
    const auto cls = dataset.cls(row);
    if (cls != proxy::TrafficClass::kCensored &&
        cls != proxy::TrafficClass::kAllowed)
      continue;
    CountryCensorship& entry = by_country[std::string(*country)];
    entry.country = *country;
    if (cls == proxy::TrafficClass::kCensored) ++entry.censored;
    else ++entry.allowed;
  }
  std::vector<CountryCensorship> out;
  out.reserve(by_country.size());
  for (auto& [name, entry] : by_country) out.push_back(std::move(entry));
  std::sort(out.begin(), out.end(),
            [](const CountryCensorship& a, const CountryCensorship& b) {
              return a.ratio() > b.ratio();
            });
  return out;
}

std::vector<SubnetCensorship> subnet_censorship(
    const Dataset& dataset, std::span<const net::Ipv4Subnet> subnets) {
  std::vector<SubnetCensorship> out;
  out.reserve(subnets.size());
  std::vector<std::unordered_set<std::uint32_t>> censored_ips(subnets.size()),
      allowed_ips(subnets.size()), proxied_ips(subnets.size());
  for (const auto& subnet : subnets) out.push_back({subnet});

  for (const Row& row : dataset.rows()) {
    const auto ip = row_ip(dataset, row);
    if (!ip) continue;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (!out[i].subnet.contains(*ip)) continue;
      switch (dataset.cls(row)) {
        case proxy::TrafficClass::kCensored:
          ++out[i].censored_requests;
          censored_ips[i].insert(ip->value());
          break;
        case proxy::TrafficClass::kAllowed:
          ++out[i].allowed_requests;
          allowed_ips[i].insert(ip->value());
          break;
        case proxy::TrafficClass::kProxied:
          ++out[i].proxied_requests;
          proxied_ips[i].insert(ip->value());
          break;
        case proxy::TrafficClass::kError:
          break;
      }
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].censored_ips = censored_ips[i].size();
    out[i].allowed_ips = allowed_ips[i].size();
    out[i].proxied_ips = proxied_ips[i].size();
  }
  return out;
}

std::uint64_t direct_ip_requests(const Dataset& dataset) {
  std::uint64_t count = 0;
  for (const Row& row : dataset.rows()) {
    if (row_ip(dataset, row)) ++count;
  }
  return count;
}

}  // namespace syrwatch::analysis
