#include "analysis/ip_censorship.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "net/ipv4.h"

namespace syrwatch::analysis {

std::vector<CountryCensorship> country_censorship(const LogSource& source,
                                                  const geo::GeoIpDb& geoip,
                                                  std::size_t threads) {
  // std::map keyed by country name: identical partial order per backend,
  // additive fold.
  using Partial = std::map<std::string, CountryCensorship>;
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (!r.host_is_ip) return;
        const auto country = geoip.lookup(net::Ipv4Addr{r.host_ip});
        if (!country) return;
        if (r.cls != proxy::TrafficClass::kCensored &&
            r.cls != proxy::TrafficClass::kAllowed)
          return;
        CountryCensorship& entry = p[std::string(*country)];
        entry.country = *country;
        if (r.cls == proxy::TrafficClass::kCensored) ++entry.censored;
        else ++entry.allowed;
      });

  std::map<std::string, CountryCensorship> by_country;
  for (const Partial& p : partials) {
    for (const auto& [name, entry] : p) {
      CountryCensorship& merged = by_country[name];
      merged.country = name;
      merged.censored += entry.censored;
      merged.allowed += entry.allowed;
    }
  }
  std::vector<CountryCensorship> out;
  out.reserve(by_country.size());
  for (auto& [name, entry] : by_country) out.push_back(std::move(entry));
  std::sort(out.begin(), out.end(),
            [](const CountryCensorship& a, const CountryCensorship& b) {
              return a.ratio() > b.ratio();
            });
  return out;
}

std::vector<SubnetCensorship> subnet_censorship(
    const LogSource& source, std::span<const net::Ipv4Subnet> subnets,
    std::size_t threads) {
  struct Partial {
    std::vector<SubnetCensorship> out;
    std::vector<std::unordered_set<std::uint32_t>> censored_ips, allowed_ips,
        proxied_ips;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.out.empty()) {
          p.out.reserve(subnets.size());
          for (const auto& subnet : subnets) p.out.push_back({subnet});
          p.censored_ips.resize(subnets.size());
          p.allowed_ips.resize(subnets.size());
          p.proxied_ips.resize(subnets.size());
        }
        if (!r.host_is_ip) return;
        const net::Ipv4Addr ip{r.host_ip};
        for (std::size_t i = 0; i < p.out.size(); ++i) {
          if (!p.out[i].subnet.contains(ip)) continue;
          switch (r.cls) {
            case proxy::TrafficClass::kCensored:
              ++p.out[i].censored_requests;
              p.censored_ips[i].insert(ip.value());
              break;
            case proxy::TrafficClass::kAllowed:
              ++p.out[i].allowed_requests;
              p.allowed_ips[i].insert(ip.value());
              break;
            case proxy::TrafficClass::kProxied:
              ++p.out[i].proxied_requests;
              p.proxied_ips[i].insert(ip.value());
              break;
            case proxy::TrafficClass::kError:
              break;
          }
        }
      });

  std::vector<SubnetCensorship> out;
  out.reserve(subnets.size());
  for (const auto& subnet : subnets) out.push_back({subnet});
  std::vector<std::unordered_set<std::uint32_t>> censored_ips(subnets.size()),
      allowed_ips(subnets.size()), proxied_ips(subnets.size());
  for (const Partial& p : partials) {
    if (p.out.empty()) continue;
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].censored_requests += p.out[i].censored_requests;
      out[i].allowed_requests += p.out[i].allowed_requests;
      out[i].proxied_requests += p.out[i].proxied_requests;
      censored_ips[i].insert(p.censored_ips[i].begin(), p.censored_ips[i].end());
      allowed_ips[i].insert(p.allowed_ips[i].begin(), p.allowed_ips[i].end());
      proxied_ips[i].insert(p.proxied_ips[i].begin(), p.proxied_ips[i].end());
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].censored_ips = censored_ips[i].size();
    out[i].allowed_ips = allowed_ips[i].size();
    out[i].proxied_ips = proxied_ips[i].size();
  }
  return out;
}

std::uint64_t direct_ip_requests(const LogSource& source,
                                 std::size_t threads) {
  const auto partials = scan_partials<std::uint64_t>(
      source, threads, [](std::uint64_t& p, const Record& r) {
        if (r.host_is_ip) ++p;
      });
  std::uint64_t count = 0;
  for (const std::uint64_t p : partials) count += p;
  return count;
}

}  // namespace syrwatch::analysis
