#include "analysis/agents.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

namespace syrwatch::analysis {

std::vector<AgentStats> agent_stats(const LogSource& source,
                                    std::uint64_t min_requests,
                                    std::size_t threads) {
  struct Acc {
    std::uint64_t requests = 0;
    std::uint64_t censored = 0;
  };
  // Keyed by agent text so partials merge across backends; the ranking is a
  // total order, so map iteration order never shows through.
  using Partial = std::unordered_map<std::string_view, Acc>;
  const auto partials = scan_partials<Partial>(
      source, threads, [](Partial& p, const Record& r) {
        Acc& acc = p[r.agent];
        ++acc.requests;
        if (r.cls == proxy::TrafficClass::kCensored) ++acc.censored;
      });

  std::unordered_map<std::string_view, Acc> by_agent;
  for (const Partial& p : partials) {
    for (const auto& [agent, acc] : p) {
      Acc& merged = by_agent[agent];
      merged.requests += acc.requests;
      merged.censored += acc.censored;
    }
  }

  std::vector<AgentStats> out;
  out.reserve(by_agent.size());
  for (const auto& [agent, acc] : by_agent) {
    if (acc.requests < min_requests) continue;
    out.push_back({std::string(agent), acc.requests, acc.censored});
  }
  std::sort(out.begin(), out.end(),
            [](const AgentStats& a, const AgentStats& b) {
              if (a.censored != b.censored) return a.censored > b.censored;
              return a.agent < b.agent;
            });
  return out;
}

}  // namespace syrwatch::analysis
