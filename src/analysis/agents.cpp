#include "analysis/agents.h"

#include <algorithm>
#include <unordered_map>

namespace syrwatch::analysis {

std::vector<AgentStats> agent_stats(const Dataset& dataset,
                                    std::uint64_t min_requests) {
  struct Acc {
    std::uint64_t requests = 0;
    std::uint64_t censored = 0;
  };
  std::unordered_map<util::StringPool::Id, Acc> by_agent;
  for (const Row& row : dataset.rows()) {
    Acc& acc = by_agent[row.agent];
    ++acc.requests;
    if (dataset.cls(row) == proxy::TrafficClass::kCensored) ++acc.censored;
  }

  std::vector<AgentStats> out;
  out.reserve(by_agent.size());
  for (const auto& [agent_id, acc] : by_agent) {
    if (acc.requests < min_requests) continue;
    out.push_back({std::string(dataset.view(agent_id)), acc.requests,
                   acc.censored});
  }
  std::sort(out.begin(), out.end(),
            [](const AgentStats& a, const AgentStats& b) {
              if (a.censored != b.censored) return a.censored > b.censored;
              return a.agent < b.agent;
            });
  return out;
}

}  // namespace syrwatch::analysis
