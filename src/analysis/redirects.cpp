#include "analysis/redirects.h"

#include <algorithm>
#include <unordered_map>

namespace syrwatch::analysis {

std::vector<RedirectHost> redirect_hosts(const Dataset& dataset,
                                         std::size_t k) {
  std::unordered_map<std::string_view, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const Row& row : dataset.rows()) {
    if (row.exception != proxy::ExceptionId::kPolicyRedirect) continue;
    ++total;
    ++counts[dataset.host(row)];
  }
  std::vector<RedirectHost> out;
  out.reserve(counts.size());
  for (const auto& [host, count] : counts)
    out.push_back({std::string(host), count,
                   total == 0 ? 0.0
                              : static_cast<double>(count) /
                                    static_cast<double>(total)});
  std::sort(out.begin(), out.end(),
            [](const RedirectHost& a, const RedirectHost& b) {
              if (a.requests != b.requests) return a.requests > b.requests;
              return a.host < b.host;
            });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

std::uint64_t redirect_followups(const Dataset& dataset,
                                 std::int64_t window_seconds) {
  // Rows are time-sorted after finalize(); scan forward from each redirect
  // looking for any same-user request inside the window.
  const auto& rows = dataset.rows();
  std::uint64_t followups = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    if (row.exception != proxy::ExceptionId::kPolicyRedirect) continue;
    if (row.user_hash == 0) continue;  // unattributable
    for (std::size_t j = i + 1; j < rows.size(); ++j) {
      if (rows[j].time > row.time + window_seconds) break;
      if (rows[j].user_hash == row.user_hash && rows[j].host != row.host) {
        ++followups;
        break;
      }
    }
  }
  return followups;
}

}  // namespace syrwatch::analysis
