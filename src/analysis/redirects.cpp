#include "analysis/redirects.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

namespace syrwatch::analysis {

std::vector<RedirectHost> redirect_hosts(const LogSource& source,
                                         const RedirectHostsOptions& options,
                                         std::size_t threads) {
  const std::size_t k = options.k;
  struct Partial {
    std::uint64_t total = 0;
    std::unordered_map<std::string_view, std::uint64_t> counts;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [](Partial& p, const Record& r) {
        if (r.exception != proxy::ExceptionId::kPolicyRedirect) return;
        ++p.total;
        ++p.counts[r.host];
      });

  std::unordered_map<std::string_view, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const Partial& p : partials) {
    total += p.total;
    for (const auto& [host, count] : p.counts) counts[host] += count;
  }
  std::vector<RedirectHost> out;
  out.reserve(counts.size());
  for (const auto& [host, count] : counts)
    out.push_back({std::string(host), count,
                   total == 0 ? 0.0
                              : static_cast<double>(count) /
                                    static_cast<double>(total)});
  std::sort(out.begin(), out.end(),
            [](const RedirectHost& a, const RedirectHost& b) {
              if (a.requests != b.requests) return a.requests > b.requests;
              return a.host < b.host;
            });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

namespace {

struct PendingRedirect {
  std::int64_t deadline = 0;  // last timestamp that can still resolve it
  std::uint64_t user = 0;
  std::string_view host;
};

struct HeadRow {
  std::int64_t time = 0;
  std::uint64_t user = 0;
  std::string_view host;
};

}  // namespace

std::uint64_t redirect_followups(const LogSource& source,
                                 const RedirectFollowupOptions& options,
                                 std::size_t threads) {
  const std::int64_t window_seconds = options.window_seconds;
  // Records are time-sorted, so "a same-user request to a different host
  // within the window" is a forward scan. Each partition resolves what it
  // can locally; redirects whose window crosses the partition end become
  // pendings, and each partition also keeps its head rows (time within
  // window_seconds of its first row) — since times are non-decreasing, any
  // row that can resolve an earlier partition's pending lies in that head.
  struct Partial {
    std::uint64_t resolved = 0;
    std::vector<PendingRedirect> pendings;
    std::vector<HeadRow> heads;
    std::int64_t first_time = 0;
    std::int64_t last_time = 0;
    bool has_rows = false;
  };
  auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (!p.has_rows) {
          p.has_rows = true;
          p.first_time = r.time;
        }
        p.last_time = r.time;
        if (r.time <= p.first_time + window_seconds)
          p.heads.push_back({r.time, r.user_hash, r.host});
        // A row past a pending's deadline expires it; a matching row within
        // the deadline resolves it. Order against step below keeps the
        // original i+1 semantics: a redirect never resolves itself.
        std::erase_if(p.pendings, [&](const PendingRedirect& pending) {
          if (r.time > pending.deadline) return true;  // unresolved
          if (r.user_hash == pending.user && r.host != pending.host) {
            ++p.resolved;
            return true;
          }
          return false;
        });
        if (r.exception == proxy::ExceptionId::kPolicyRedirect &&
            r.user_hash != 0)
          p.pendings.push_back(
              {r.time + window_seconds, r.user_hash, r.host});
      });

  std::uint64_t resolved = 0;
  std::vector<PendingRedirect> carry;
  for (Partial& p : partials) {
    resolved += p.resolved;
    if (p.has_rows) {
      for (const HeadRow& row : p.heads) {
        std::erase_if(carry, [&](const PendingRedirect& pending) {
          if (row.time > pending.deadline) return true;  // unresolved
          if (row.user == pending.user && row.host != pending.host) {
            ++resolved;
            return true;
          }
          return false;
        });
      }
      // Rows beyond the head all sit past any carried deadline; a pending
      // that this partition's tail outruns can never resolve later either.
      std::erase_if(carry, [&](const PendingRedirect& pending) {
        return pending.deadline < p.last_time;
      });
    }
    carry.insert(carry.end(), p.pendings.begin(), p.pendings.end());
  }
  return resolved;
}

}  // namespace syrwatch::analysis
