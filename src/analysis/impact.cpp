#include "analysis/impact.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "net/ipv4.h"

namespace syrwatch::analysis {

PolicyImpact policy_impact(const LogSource& source,
                           const policy::PolicyEngine& engine,
                           const policy::CustomCategoryList& custom_categories,
                           const PolicyImpactOptions& options,
                           std::size_t threads) {
  // The engine's generator feeds scheduled rules, and draws must happen in
  // row order for determinism. The parallel phase therefore only collects
  // candidates (plus the RNG-free custom-category classification); the
  // evaluation loop itself runs sequentially over the partitions in order.
  struct Candidate {
    std::int64_t time = 0;
    std::string_view host, path, query, domain;
    std::uint32_t dest_ip = 0;
    std::uint16_t port = 0;
    net::Scheme scheme;
    std::string_view custom_category;  // view into the list's storage
    bool has_dest_ip = false;
    bool was_censored = false;
  };
  using Partial = std::vector<Candidate>;
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.cls != proxy::TrafficClass::kAllowed &&
            r.cls != proxy::TrafficClass::kCensored)
          return;
        Candidate candidate;
        candidate.time = r.time;
        candidate.host = r.host;
        candidate.path = r.path;
        candidate.query = r.query;
        candidate.domain = r.domain;
        candidate.dest_ip = r.dest_ip;
        candidate.port = r.port;
        candidate.scheme = r.scheme;
        candidate.has_dest_ip = r.has_dest_ip;
        candidate.was_censored = r.cls == proxy::TrafficClass::kCensored;
        net::Url url;
        url.scheme = r.scheme;
        url.host = std::string(r.host);
        url.port = r.port;
        url.path = std::string(r.path);
        url.query = std::string(r.query);
        candidate.custom_category = custom_categories.classify(url);
        p.push_back(candidate);
      });

  PolicyImpact impact;
  util::Rng rng{0x1A7AC7 ^ 0x5EED};
  std::unordered_map<std::string_view, std::uint64_t> newly_censored;
  for (const Partial& p : partials) {
    for (const Candidate& candidate : p) {
      ++impact.evaluated;
      if (candidate.was_censored) ++impact.censored_observed;

      net::Url url;
      url.scheme = candidate.scheme;
      url.host = std::string(candidate.host);
      url.port = candidate.port;
      url.path = std::string(candidate.path);
      url.query = std::string(candidate.query);

      policy::FilterRequest request;
      request.url = &url;
      request.time = candidate.time;
      if (candidate.has_dest_ip)
        request.dest_ip = net::Ipv4Addr{candidate.dest_ip};
      request.custom_category = candidate.custom_category;

      const bool now_censored = engine.evaluate(request, rng).censored();
      if (now_censored) ++impact.censored_hypothetical;
      if (now_censored && !candidate.was_censored) {
        ++impact.newly_censored;
        ++newly_censored[candidate.domain];
      } else if (!now_censored && candidate.was_censored) {
        ++impact.newly_allowed;
      }
    }
  }

  std::vector<DomainCount> ranked;
  ranked.reserve(newly_censored.size());
  for (const auto& [domain, count] : newly_censored) {
    ranked.push_back({std::string(domain), count,
                      impact.newly_censored == 0
                          ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(impact.newly_censored)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const DomainCount& a, const DomainCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.domain < b.domain;
            });
  if (ranked.size() > options.top_k) ranked.resize(options.top_k);
  impact.top_newly_censored = std::move(ranked);
  return impact;
}

}  // namespace syrwatch::analysis
