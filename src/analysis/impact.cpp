#include "analysis/impact.h"

#include <algorithm>
#include <unordered_map>

#include "net/ipv4.h"

namespace syrwatch::analysis {

PolicyImpact policy_impact(const Dataset& dataset,
                           const policy::PolicyEngine& engine,
                           const policy::CustomCategoryList& custom_categories,
                           std::size_t top_k) {
  PolicyImpact impact;
  util::Rng rng{0x1A7AC7 ^ 0x5EED};
  std::unordered_map<std::string_view, std::uint64_t> newly_censored;

  for (const Row& row : dataset.rows()) {
    const auto cls = dataset.cls(row);
    if (cls != proxy::TrafficClass::kAllowed &&
        cls != proxy::TrafficClass::kCensored)
      continue;
    ++impact.evaluated;
    const bool was_censored = cls == proxy::TrafficClass::kCensored;
    if (was_censored) ++impact.censored_observed;

    net::Url url;
    url.scheme = row.scheme;
    url.host = std::string(dataset.host(row));
    url.port = row.port;
    url.path = std::string(dataset.path(row));
    url.query = std::string(dataset.query(row));

    policy::FilterRequest request;
    request.url = &url;
    request.time = row.time;
    if (row.has_dest_ip) request.dest_ip = net::Ipv4Addr{row.dest_ip};
    request.custom_category = custom_categories.classify(url);

    const bool now_censored = engine.evaluate(request, rng).censored();
    if (now_censored) ++impact.censored_hypothetical;
    if (now_censored && !was_censored) {
      ++impact.newly_censored;
      ++newly_censored[dataset.domain(row)];
    } else if (!now_censored && was_censored) {
      ++impact.newly_allowed;
    }
  }

  std::vector<DomainCount> ranked;
  ranked.reserve(newly_censored.size());
  for (const auto& [domain, count] : newly_censored) {
    ranked.push_back({std::string(domain), count,
                      impact.newly_censored == 0
                          ? 0.0
                          : static_cast<double>(count) /
                                static_cast<double>(impact.newly_censored)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const DomainCount& a, const DomainCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.domain < b.domain;
            });
  if (ranked.size() > top_k) ranked.resize(top_k);
  impact.top_newly_censored = std::move(ranked);
  return impact;
}

}  // namespace syrwatch::analysis
