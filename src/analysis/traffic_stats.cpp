#include "analysis/traffic_stats.h"

namespace syrwatch::analysis {

TrafficStats traffic_stats(const Dataset& dataset) {
  TrafficStats stats;
  stats.total = dataset.size();
  for (const Row& row : dataset.rows()) {
    switch (row.result) {
      case proxy::FilterResult::kObserved:
        ++stats.observed;
        break;
      case proxy::FilterResult::kProxied:
        ++stats.proxied;
        break;
      case proxy::FilterResult::kDenied:
        ++stats.denied;
        ++stats.denied_by_exception[static_cast<std::size_t>(row.exception)];
        break;
    }
  }
  return stats;
}

}  // namespace syrwatch::analysis
