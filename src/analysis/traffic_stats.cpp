#include "analysis/traffic_stats.h"

namespace syrwatch::analysis {

TrafficStats traffic_stats(const LogSource& source, std::size_t threads) {
  // Pure counters: the fold is addition, so any partition order works.
  const auto partials = scan_partials<TrafficStats>(
      source, threads, [](TrafficStats& p, const Record& r) {
        switch (r.result) {
          case proxy::FilterResult::kObserved:
            ++p.observed;
            break;
          case proxy::FilterResult::kProxied:
            ++p.proxied;
            break;
          case proxy::FilterResult::kDenied:
            ++p.denied;
            ++p.denied_by_exception[static_cast<std::size_t>(r.exception)];
            break;
        }
      });
  TrafficStats stats;
  stats.total = source.rows();
  for (const TrafficStats& p : partials) {
    stats.observed += p.observed;
    stats.proxied += p.proxied;
    stats.denied += p.denied;
    for (std::size_t i = 0; i < stats.denied_by_exception.size(); ++i)
      stats.denied_by_exception[i] += p.denied_by_exception[i];
  }
  return stats;
}

}  // namespace syrwatch::analysis
