#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/options.h"
#include "analysis/scan.h"

namespace syrwatch::analysis {

/// A ranked domain with its request count and share of the ranked class.
struct DomainCount {
  std::string domain;
  std::uint64_t count = 0;
  double share = 0.0;
};

/// Pre-options name for the shared half-open range; kept so existing code
/// (and the windowed analyzers that tabulate one) keeps compiling.
using TimeWindow = TimeRange;

/// What to rank: the traffic class, the cut-off, and an optional time
/// restriction (Table 5 ranks inside one-hour windows of a peak day).
struct TopDomainsOptions {
  proxy::TrafficClass cls = proxy::TrafficClass::kAllowed;
  std::size_t k = 10;
  std::optional<TimeRange> window;
};

/// Top-k registrable domains among records of the selected class — Table 4
/// (allowed/censored) and, with a window, Table 5's peak analysis.
std::vector<DomainCount> top_domains(const LogSource& source,
                                     const TopDomainsOptions& options,
                                     std::size_t threads = 1);

/// Per-domain counts split into the three classes the paper tabulates
/// next to each other (Tables 8/10/13).
struct DomainClassCounts {
  std::string domain;
  std::uint64_t censored = 0;
  std::uint64_t allowed = 0;
  std::uint64_t proxied = 0;
};

/// Counts for an explicit list of domains (suffix matching, so ".il"
/// aggregates the whole TLD). Order of the result follows the input.
std::vector<DomainClassCounts> domain_class_counts(
    const LogSource& source, std::span<const std::string> domains,
    std::size_t threads = 1);

}  // namespace syrwatch::analysis
