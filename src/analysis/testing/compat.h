#pragma once

#include "analysis/columnar.h"
#include "analysis/dataset.h"
#include "colfmt/container.h"

namespace syrwatch::analysis {

/// Materializes a container into a row Dataset (decode -> LogRecord ->
/// add, then finalize), producing exactly the Dataset the same log's CSV
/// would. Test-only bridge: every analyzer runs natively on the container
/// through analysis::LogSource, so nothing on the report or CLI hot path
/// may call this — it lives under testing/ for differential tests and the
/// bridge benchmarks, and is deliberately absent from the public
/// columnar.h surface.
Dataset to_dataset_compat(const colfmt::Reader& reader);

}  // namespace syrwatch::analysis
