#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/coverage.h"
#include "analysis/dataset.h"
#include "analysis/proxy_compare.h"
#include "analysis/temporal.h"
#include "analysis/top_domains.h"
#include "analysis/tor_analysis.h"
#include "colfmt/container.h"
#include "tor/relay_directory.h"

namespace syrwatch::analysis {

/// Columnar analysis: the row analyzers re-expressed as block scans over a
/// colfmt container, so a 10M-request log is analyzed straight out of the
/// mmap without ever materializing LogRecord rows. Every function here is
/// the exact computation of its Dataset counterpart — for a container whose
/// rows are time-ordered (which `generate` and `convert` produce), output
/// is byte-identical to loading the CSV into a Dataset and running the row
/// analyzer, at any thread count. Parallelism is per block: each worker
/// decodes and scans whole blocks into its own slot of a partial vector,
/// and the partials are merged sequentially in block order, so
/// order-sensitive state (first-seen domain indices, day append order)
/// reproduces the sequential row scan.

/// A colfmt::Reader plus the per-dictionary-id derived values the
/// analyzers need: registrable domain of every string and its IPv4 parse.
/// Both are resolved once per *dictionary entry* instead of once per row —
/// the columnar counterpart of Dataset's domain cache, but immutable after
/// construction and therefore freely shared across scan threads.
class ColumnarLog {
 public:
  /// `threads` parallelizes the dictionary precomputation (the result is
  /// identical for any value).
  explicit ColumnarLog(colfmt::Reader reader, std::size_t threads = 1);

  const colfmt::Reader& reader() const noexcept { return reader_; }
  std::uint64_t rows() const noexcept { return reader_.rows(); }
  std::size_t block_count() const noexcept { return reader_.block_count(); }

  /// Registrable domain of dictionary id `host_id` (eTLD+1, same
  /// net::registrable_domain the Dataset path uses).
  std::string_view domain(std::uint32_t host_id) const {
    return domain_by_id_[host_id];
  }

  /// Dotted-quad parse of the dictionary string, when it is one.
  bool host_is_ip(std::uint32_t host_id) const noexcept {
    return is_ip_[host_id] != 0;
  }
  std::uint32_t host_ip(std::uint32_t host_id) const noexcept {
    return ip_by_id_[host_id];
  }

  /// §3.3 class from the packed outcome columns — Dataset::cls.
  static proxy::TrafficClass cls(std::uint8_t filter_result,
                                 std::uint8_t exception) noexcept {
    if (static_cast<proxy::FilterResult>(filter_result) ==
        proxy::FilterResult::kProxied)
      return proxy::TrafficClass::kProxied;
    return proxy::classify_by_exception(
        static_cast<proxy::FilterResult>(filter_result),
        static_cast<proxy::ExceptionId>(exception));
  }

 private:
  colfmt::Reader reader_;
  std::vector<std::string> domain_by_id_;
  std::vector<std::uint32_t> ip_by_id_;
  std::vector<std::uint8_t> is_ip_;
};

/// Table 4/5 ranking over column pages.
std::vector<DomainCount> top_domains(const ColumnarLog& log,
                                     const TopDomainsOptions& options,
                                     std::size_t threads = 1);

/// Fig. 5 series over column pages.
TrafficTimeSeries traffic_time_series(const ColumnarLog& log,
                                      const TrafficSeriesOptions& options,
                                      std::size_t threads = 1);

/// Fig. 6 RCV over column pages.
RcvSeries rcv_series(const ColumnarLog& log, const RcvOptions& options,
                     std::size_t threads = 1);

/// Per-proxy/per-day coverage over column pages. Requires a time-ordered
/// container (throws std::runtime_error otherwise — the Dataset path
/// sorts, so an unordered container cannot reproduce it block-wise). Pass
/// the RecoveryStats of a lenient open so a truncated container surfaces
/// as a coverage degradation, mirroring the CSV reader's torn-tail signal.
CoverageReport request_coverage(const ColumnarLog& log,
                                std::int64_t bin_seconds = 3600,
                                std::uint64_t min_farm_bin_requests = 25,
                                const colfmt::RecoveryStats* recovery =
                                    nullptr,
                                std::size_t threads = 1);

/// Table 6 cosine similarity over column pages. The shared domain index is
/// assigned in first-seen order across blocks in block order — the same
/// order the sequential row scan produces — so the floating-point cosine
/// sums are bit-identical.
ProxySimilarity censored_domain_similarity(const ColumnarLog& log,
                                           std::int64_t start,
                                           std::int64_t end,
                                           std::size_t threads = 1);

/// Fig. 9 Rfilter over column pages.
RfilterSeries rfilter_series(const ColumnarLog& log,
                             const tor::RelayDirectory& relays,
                             std::size_t proxy_index, std::int64_t start,
                             std::int64_t end,
                             std::int64_t bin_seconds = 3600,
                             std::size_t threads = 1);

/// Materializes the container into a row Dataset (decode → LogRecord →
/// add, then finalize) — the bridge for analyses that have no columnar
/// port yet. Produces exactly the Dataset the same log's CSV would.
Dataset to_dataset(const colfmt::Reader& reader);

}  // namespace syrwatch::analysis
