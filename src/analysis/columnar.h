#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/dataset.h"
#include "colfmt/container.h"

namespace syrwatch::analysis {

/// A colfmt::Reader plus the per-dictionary-id derived values the
/// analyzers need: registrable domain of every string and its IPv4 parse.
/// Both are resolved once per *dictionary entry* instead of once per row —
/// the columnar counterpart of Dataset's domain cache, but immutable after
/// construction and therefore freely shared across scan threads. This is
/// the columnar backend of analysis::LogSource (scan.h); the analyzers
/// themselves are written once against the LogSource cursor.
class ColumnarLog {
 public:
  /// `threads` parallelizes the dictionary precomputation, one grain per
  /// block's dictionary delta (the result is identical for any value).
  explicit ColumnarLog(colfmt::Reader reader, std::size_t threads = 1);

  const colfmt::Reader& reader() const noexcept { return reader_; }
  std::uint64_t rows() const noexcept { return reader_.rows(); }
  std::size_t block_count() const noexcept { return reader_.block_count(); }

  /// Registrable domain of dictionary id `host_id` (eTLD+1, same
  /// net::registrable_domain the Dataset path uses).
  std::string_view domain(std::uint32_t host_id) const {
    return domain_by_id_[host_id];
  }

  /// Dotted-quad parse of the dictionary string, when it is one.
  bool host_is_ip(std::uint32_t host_id) const noexcept {
    return is_ip_[host_id] != 0;
  }
  std::uint32_t host_ip(std::uint32_t host_id) const noexcept {
    return ip_by_id_[host_id];
  }

  /// §3.3 class from the packed outcome columns — Dataset::cls.
  static proxy::TrafficClass cls(std::uint8_t filter_result,
                                 std::uint8_t exception) noexcept {
    if (static_cast<proxy::FilterResult>(filter_result) ==
        proxy::FilterResult::kProxied)
      return proxy::TrafficClass::kProxied;
    return proxy::classify_by_exception(
        static_cast<proxy::FilterResult>(filter_result),
        static_cast<proxy::ExceptionId>(exception));
  }

 private:
  colfmt::Reader reader_;
  std::vector<std::string> domain_by_id_;
  std::vector<std::uint32_t> ip_by_id_;
  std::vector<std::uint8_t> is_ip_;
};

}  // namespace syrwatch::analysis
