#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/scan.h"
#include "category/categorizer.h"

namespace syrwatch::analysis {

/// Fig. 3: censored requests labelled through the external categorizer
/// (our stand-in for McAfee TrustedSource, which the paper used because
/// the proxies' own category database was absent).
struct CategoryCount {
  category::Category category = category::Category::kUncategorized;
  std::uint64_t requests = 0;
  double share = 0.0;  // of the classified class total
};

/// Per-category request counts for one traffic class, ranked descending.
std::vector<CategoryCount> category_distribution(
    const LogSource& source, const category::Categorizer& categorizer,
    proxy::TrafficClass cls, std::size_t threads = 1);

/// Table 9: the categories of an explicit domain list, with the number of
/// domains and of censored requests per category.
struct DomainCategoryCount {
  category::Category category = category::Category::kUncategorized;
  std::uint32_t domains = 0;
  std::uint64_t censored_requests = 0;
};

std::vector<DomainCategoryCount> categorize_domains(
    const LogSource& source, const category::Categorizer& categorizer,
    std::span<const std::string> domains, std::size_t threads = 1);

}  // namespace syrwatch::analysis
