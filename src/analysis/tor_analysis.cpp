#include "analysis/tor_analysis.h"

#include <unordered_set>

#include "net/ipv4.h"
#include "tor/relay_directory.h"

namespace syrwatch::analysis {

namespace {

/// A record is Tor traffic when its destination <IP, port> is a known relay
/// endpoint. The IP comes from the host literal (the proxies log tunnelled
/// connections by address); the scan layer pre-parses it.
bool tor_endpoint(const Record& r, const tor::RelayDirectory& relays) {
  return r.host_is_ip && relays.contains(net::Ipv4Addr{r.host_ip}, r.port);
}

bool is_torhttp(const Record& r) { return tor::is_directory_path(r.path); }

}  // namespace

TorStats tor_stats(const LogSource& source, const tor::RelayDirectory& relays,
                   std::size_t threads) {
  struct Partial {
    TorStats stats;
    std::unordered_set<std::uint32_t> relay_ips;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (!tor_endpoint(r, relays)) return;
        ++p.stats.requests;
        ++p.stats.requests_by_proxy[r.proxy_index];
        p.relay_ips.insert(r.host_ip);
        const bool http = is_torhttp(r);
        if (http) ++p.stats.http_requests;
        else ++p.stats.onion_requests;
        if (r.cls == proxy::TrafficClass::kCensored) {
          ++p.stats.censored;
          ++p.stats.censored_by_proxy[r.proxy_index];
          if (http) ++p.stats.censored_http;
          else ++p.stats.censored_onion;
        }
        if (r.exception == proxy::ExceptionId::kTcpError) ++p.stats.tcp_errors;
      });

  TorStats stats;
  std::unordered_set<std::uint32_t> relay_ips;
  for (const Partial& p : partials) {
    stats.requests += p.stats.requests;
    stats.http_requests += p.stats.http_requests;
    stats.onion_requests += p.stats.onion_requests;
    stats.censored += p.stats.censored;
    stats.tcp_errors += p.stats.tcp_errors;
    stats.censored_http += p.stats.censored_http;
    stats.censored_onion += p.stats.censored_onion;
    for (std::size_t i = 0; i < policy::kProxyCount; ++i) {
      stats.censored_by_proxy[i] += p.stats.censored_by_proxy[i];
      stats.requests_by_proxy[i] += p.stats.requests_by_proxy[i];
    }
    relay_ips.insert(p.relay_ips.begin(), p.relay_ips.end());
  }
  stats.unique_relays = relay_ips.size();
  return stats;
}

util::BinnedCounter tor_hourly_series(const LogSource& source,
                                      const tor::RelayDirectory& relays,
                                      const TorHourlyOptions& options,
                                      std::size_t threads) {
  const std::size_t bins = options.bin.bins_over(options.range);
  struct Partial {
    std::vector<std::uint64_t> counts;
    std::uint64_t overflow = 0;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.counts.empty()) p.counts.assign(bins, 0);
        if (!tor_endpoint(r, relays)) return;
        if (r.time < options.range.start) {
          ++p.overflow;
          return;
        }
        const auto bin = static_cast<std::uint64_t>(
            (r.time - options.range.start) / options.bin.seconds);
        if (bin >= bins) ++p.overflow;
        else ++p.counts[static_cast<std::size_t>(bin)];
      });

  util::BinnedCounter series{options.range.start, options.bin.seconds, bins};
  for (const Partial& p : partials) {
    for (std::size_t b = 0; b < p.counts.size(); ++b) {
      if (p.counts[b] != 0) series.add(series.bin_start(b), p.counts[b]);
    }
    if (p.overflow != 0) series.add(options.range.start - 1, p.overflow);
  }
  return series;
}

ProxyCensoredSeries proxy_censored_series(const LogSource& source,
                                          const tor::RelayDirectory& relays,
                                          std::size_t proxy_index,
                                          std::int64_t start,
                                          std::int64_t end,
                                          std::int64_t bin_seconds,
                                          std::size_t threads) {
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);
  struct Partial {
    std::vector<std::uint64_t> censored_all, censored_here, tor_censored;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.censored_all.empty()) {
          p.censored_all.assign(bins, 0);
          p.censored_here.assign(bins, 0);
          p.tor_censored.assign(bins, 0);
        }
        if (r.time < start || r.time >= end) return;
        if (r.cls != proxy::TrafficClass::kCensored) return;
        const auto bin = static_cast<std::size_t>((r.time - start) / bin_seconds);
        ++p.censored_all[bin];
        if (r.proxy_index != proxy_index) return;
        ++p.censored_here[bin];
        if (tor_endpoint(r, relays)) ++p.tor_censored[bin];
      });

  std::vector<std::uint64_t> censored_all(bins, 0), censored_here(bins, 0);
  ProxyCensoredSeries series;
  series.origin = start;
  series.bin_seconds = bin_seconds;
  series.censored_share.assign(bins, 0.0);
  series.tor_censored.assign(bins, 0);
  for (const Partial& p : partials) {
    if (p.censored_all.empty()) continue;
    for (std::size_t b = 0; b < bins; ++b) {
      censored_all[b] += p.censored_all[b];
      censored_here[b] += p.censored_here[b];
      series.tor_censored[b] += p.tor_censored[b];
    }
  }
  for (std::size_t bin = 0; bin < bins; ++bin) {
    if (censored_all[bin] != 0) {
      series.censored_share[bin] =
          static_cast<double>(censored_here[bin]) /
          static_cast<double>(censored_all[bin]);
    }
  }
  return series;
}

RfilterSeries rfilter_series(const LogSource& source,
                             const tor::RelayDirectory& relays,
                             std::size_t proxy_index, std::int64_t start,
                             std::int64_t end, std::int64_t bin_seconds,
                             std::size_t threads) {
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);

  // One scan collects both passes of the sequential version: the unwindowed
  // censored-relay set and the windowed per-bin allowed sets. Set unions
  // fold in any order.
  struct Partial {
    std::unordered_set<std::uint32_t> censored_ips;
    std::vector<std::unordered_set<std::uint32_t>> allowed_per_bin;
    std::vector<std::uint8_t> has_traffic;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.proxy_index != proxy_index) return;
        if (!tor_endpoint(r, relays)) return;
        if (r.cls == proxy::TrafficClass::kCensored)
          p.censored_ips.insert(r.host_ip);
        if (r.time < start || r.time >= end) return;
        if (p.allowed_per_bin.empty()) {
          p.allowed_per_bin.resize(bins);
          p.has_traffic.assign(bins, 0);
        }
        const auto bin = static_cast<std::size_t>((r.time - start) / bin_seconds);
        p.has_traffic[bin] = 1;
        if (r.cls == proxy::TrafficClass::kAllowed)
          p.allowed_per_bin[bin].insert(r.host_ip);
      });

  std::unordered_set<std::uint32_t> censored_ips;
  std::vector<std::unordered_set<std::uint32_t>> allowed_per_bin(bins);
  std::vector<bool> has_traffic(bins, false);
  for (const Partial& p : partials) {
    censored_ips.insert(p.censored_ips.begin(), p.censored_ips.end());
    if (p.allowed_per_bin.empty()) continue;
    for (std::size_t b = 0; b < bins; ++b) {
      allowed_per_bin[b].insert(p.allowed_per_bin[b].begin(),
                                p.allowed_per_bin[b].end());
      if (p.has_traffic[b] != 0) has_traffic[b] = true;
    }
  }

  RfilterSeries series;
  series.origin = start;
  series.bin_seconds = bin_seconds;
  series.rfilter.assign(bins, 0.0);
  series.has_traffic = std::move(has_traffic);
  series.censored_relay_count = censored_ips.size();
  if (censored_ips.empty()) return series;
  for (std::size_t k = 0; k < bins; ++k) {
    std::size_t overlap = 0;
    for (const std::uint32_t ip : allowed_per_bin[k]) {
      if (censored_ips.count(ip) != 0) ++overlap;
    }
    series.rfilter[k] = 1.0 - static_cast<double>(overlap) /
                                  static_cast<double>(censored_ips.size());
  }
  return series;
}

}  // namespace syrwatch::analysis
