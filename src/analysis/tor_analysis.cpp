#include "analysis/tor_analysis.h"

#include <unordered_set>

#include "net/ipv4.h"
#include "tor/relay_directory.h"

namespace syrwatch::analysis {

namespace {

/// A row is Tor traffic when its destination <IP, port> is a known relay
/// endpoint. The IP comes from the host literal (the proxies log tunnelled
/// connections by address).
std::optional<net::Ipv4Addr> tor_endpoint(const Dataset& dataset,
                                          const Row& row,
                                          const tor::RelayDirectory& relays) {
  const auto ip = net::Ipv4Addr::parse(dataset.host(row));
  if (!ip || !relays.contains(*ip, row.port)) return std::nullopt;
  return ip;
}

bool is_torhttp(const Dataset& dataset, const Row& row) {
  return tor::is_directory_path(dataset.path(row));
}

}  // namespace

TorStats tor_stats(const Dataset& dataset,
                   const tor::RelayDirectory& relays) {
  TorStats stats;
  std::unordered_set<std::uint32_t> relay_ips;
  for (const Row& row : dataset.rows()) {
    const auto ip = tor_endpoint(dataset, row, relays);
    if (!ip) continue;
    ++stats.requests;
    ++stats.requests_by_proxy[row.proxy_index];
    relay_ips.insert(ip->value());
    const bool http = is_torhttp(dataset, row);
    if (http) ++stats.http_requests;
    else ++stats.onion_requests;
    if (dataset.cls(row) == proxy::TrafficClass::kCensored) {
      ++stats.censored;
      ++stats.censored_by_proxy[row.proxy_index];
      if (http) ++stats.censored_http;
      else ++stats.censored_onion;
    }
    if (row.exception == proxy::ExceptionId::kTcpError) ++stats.tcp_errors;
  }
  stats.unique_relays = relay_ips.size();
  return stats;
}

util::BinnedCounter tor_hourly_series(const Dataset& dataset,
                                      const tor::RelayDirectory& relays,
                                      const TorHourlyOptions& options) {
  const std::size_t bins = options.bin.bins_over(options.range);
  util::BinnedCounter series{options.range.start, options.bin.seconds, bins};
  for (const Row& row : dataset.rows()) {
    if (tor_endpoint(dataset, row, relays)) series.add(row.time);
  }
  return series;
}

ProxyCensoredSeries proxy_censored_series(const Dataset& dataset,
                                          const tor::RelayDirectory& relays,
                                          std::size_t proxy_index,
                                          std::int64_t start,
                                          std::int64_t end,
                                          std::int64_t bin_seconds) {
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);
  std::vector<std::uint64_t> censored_all(bins, 0), censored_here(bins, 0);
  ProxyCensoredSeries series;
  series.origin = start;
  series.bin_seconds = bin_seconds;
  series.censored_share.assign(bins, 0.0);
  series.tor_censored.assign(bins, 0);

  for (const Row& row : dataset.rows()) {
    if (row.time < start || row.time >= end) continue;
    if (dataset.cls(row) != proxy::TrafficClass::kCensored) continue;
    const auto bin =
        static_cast<std::size_t>((row.time - start) / bin_seconds);
    ++censored_all[bin];
    if (row.proxy_index != proxy_index) continue;
    ++censored_here[bin];
    if (tor_endpoint(dataset, row, relays)) ++series.tor_censored[bin];
  }
  for (std::size_t bin = 0; bin < bins; ++bin) {
    if (censored_all[bin] != 0) {
      series.censored_share[bin] =
          static_cast<double>(censored_here[bin]) /
          static_cast<double>(censored_all[bin]);
    }
  }
  return series;
}

RfilterSeries rfilter_series(const Dataset& dataset,
                             const tor::RelayDirectory& relays,
                             std::size_t proxy_index, std::int64_t start,
                             std::int64_t end, std::int64_t bin_seconds) {
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);

  // Pass 1: the set of relay IPs the proxy ever censored.
  std::unordered_set<std::uint32_t> censored_ips;
  for (const Row& row : dataset.rows()) {
    if (row.proxy_index != proxy_index) continue;
    if (dataset.cls(row) != proxy::TrafficClass::kCensored) continue;
    const auto ip = tor_endpoint(dataset, row, relays);
    if (ip) censored_ips.insert(ip->value());
  }

  // Pass 2: per-bin allowed relay IPs on the proxy.
  std::vector<std::unordered_set<std::uint32_t>> allowed_per_bin(bins);
  std::vector<bool> has_traffic(bins, false);
  for (const Row& row : dataset.rows()) {
    if (row.proxy_index != proxy_index) continue;
    if (row.time < start || row.time >= end) continue;
    const auto ip = tor_endpoint(dataset, row, relays);
    if (!ip) continue;
    const auto bin =
        static_cast<std::size_t>((row.time - start) / bin_seconds);
    has_traffic[bin] = true;
    if (dataset.cls(row) == proxy::TrafficClass::kAllowed)
      allowed_per_bin[bin].insert(ip->value());
  }

  RfilterSeries series;
  series.origin = start;
  series.bin_seconds = bin_seconds;
  series.rfilter.assign(bins, 0.0);
  series.has_traffic = std::move(has_traffic);
  series.censored_relay_count = censored_ips.size();
  if (censored_ips.empty()) return series;
  for (std::size_t k = 0; k < bins; ++k) {
    std::size_t overlap = 0;
    for (const std::uint32_t ip : allowed_per_bin[k]) {
      if (censored_ips.count(ip) != 0) ++overlap;
    }
    series.rfilter[k] = 1.0 - static_cast<double>(overlap) /
                                  static_cast<double>(censored_ips.size());
  }
  return series;
}

}  // namespace syrwatch::analysis
