#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scan.h"

namespace syrwatch::analysis {

/// Table 15: Facebook social-plugin endpoints by traffic class, plus each
/// endpoint's share of the censored facebook.com traffic — the evidence
/// that facebook's censored volume is keyword collateral, not political
/// filtering.
struct SocialPluginStats {
  struct Element {
    std::string path;
    std::uint64_t censored = 0;
    std::uint64_t allowed = 0;
    std::uint64_t proxied = 0;
    double censored_share = 0.0;  // of censored facebook.com requests
  };
  std::vector<Element> elements;          // ranked by censored count
  std::uint64_t facebook_censored = 0;    // all censored facebook.com rows
  std::uint64_t plugin_censored = 0;      // censored rows on listed paths
};

/// The plugin endpoints of Table 15.
const std::vector<std::string>& social_plugin_paths();

SocialPluginStats social_plugin_stats(const LogSource& source,
                                      std::size_t threads = 1);

}  // namespace syrwatch::analysis
