#include "analysis/user_stats.h"

#include <algorithm>
#include <unordered_map>

namespace syrwatch::analysis {

namespace {

double share_above(const std::vector<double>& sorted, double threshold) {
  if (sorted.empty()) return 0.0;
  const auto it =
      std::upper_bound(sorted.begin(), sorted.end(), threshold);
  return static_cast<double>(sorted.end() - it) /
         static_cast<double>(sorted.size());
}

}  // namespace

double UserStats::active_share_censored(double threshold) const {
  return share_above(requests_per_censored_user, threshold);
}

double UserStats::active_share_clean(double threshold) const {
  return share_above(requests_per_clean_user, threshold);
}

UserStats user_stats(const LogSource& duser, std::size_t threads) {
  struct PerUser {
    std::uint64_t requests = 0;
    std::uint64_t censored = 0;
  };
  // The paper's user key is (c-ip, cs-user-agent). agent_id is backend-local
  // but bijective with the agent string, and every output below is either a
  // sorted vector, a std::map, or a count — grouping is all that matters.
  using Partial = std::unordered_map<std::uint64_t, PerUser>;
  const auto partials = scan_partials<Partial>(
      duser, threads, [](Partial& p, const Record& r) {
        if (r.user_hash == 0) return;  // suppressed ids can't be attributed
        const std::uint64_t key =
            r.user_hash ^ (0x9E3779B97F4A7C15ULL * (r.agent_id + 1));
        PerUser& user = p[key];
        ++user.requests;
        if (r.cls == proxy::TrafficClass::kCensored) ++user.censored;
      });

  std::unordered_map<std::uint64_t, PerUser> users;
  for (const Partial& p : partials) {
    for (const auto& [key, partial_user] : p) {
      PerUser& user = users[key];
      user.requests += partial_user.requests;
      user.censored += partial_user.censored;
    }
  }

  UserStats stats;
  stats.total_users = users.size();
  for (const auto& [key, user] : users) {
    if (user.censored > 0) {
      ++stats.censored_users;
      ++stats.users_by_censored_count[user.censored];
      stats.requests_per_censored_user.push_back(
          static_cast<double>(user.requests));
    } else {
      stats.requests_per_clean_user.push_back(
          static_cast<double>(user.requests));
    }
  }
  std::sort(stats.requests_per_censored_user.begin(),
            stats.requests_per_censored_user.end());
  std::sort(stats.requests_per_clean_user.begin(),
            stats.requests_per_clean_user.end());
  return stats;
}

}  // namespace syrwatch::analysis
