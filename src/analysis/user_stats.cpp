#include "analysis/user_stats.h"

#include <algorithm>
#include <unordered_map>

namespace syrwatch::analysis {

namespace {

double share_above(const std::vector<double>& sorted, double threshold) {
  if (sorted.empty()) return 0.0;
  const auto it =
      std::upper_bound(sorted.begin(), sorted.end(), threshold);
  return static_cast<double>(sorted.end() - it) /
         static_cast<double>(sorted.size());
}

}  // namespace

double UserStats::active_share_censored(double threshold) const {
  return share_above(requests_per_censored_user, threshold);
}

double UserStats::active_share_clean(double threshold) const {
  return share_above(requests_per_clean_user, threshold);
}

UserStats user_stats(const Dataset& duser) {
  struct PerUser {
    std::uint64_t requests = 0;
    std::uint64_t censored = 0;
  };
  // The paper's user key is (c-ip, cs-user-agent).
  std::unordered_map<std::uint64_t, PerUser> users;
  for (const Row& row : duser.rows()) {
    if (row.user_hash == 0) continue;  // suppressed ids can't be attributed
    const std::uint64_t key =
        row.user_hash ^ (0x9E3779B97F4A7C15ULL * (row.agent + 1));
    PerUser& user = users[key];
    ++user.requests;
    if (duser.cls(row) == proxy::TrafficClass::kCensored) ++user.censored;
  }

  UserStats stats;
  stats.total_users = users.size();
  for (const auto& [key, user] : users) {
    if (user.censored > 0) {
      ++stats.censored_users;
      ++stats.users_by_censored_count[user.censored];
      stats.requests_per_censored_user.push_back(
          static_cast<double>(user.requests));
    } else {
      stats.requests_per_clean_user.push_back(
          static_cast<double>(user.requests));
    }
  }
  std::sort(stats.requests_per_censored_user.begin(),
            stats.requests_per_censored_user.end());
  std::sort(stats.requests_per_clean_user.begin(),
            stats.requests_per_clean_user.end());
  return stats;
}

}  // namespace syrwatch::analysis
