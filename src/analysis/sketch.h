#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace syrwatch::analysis {

/// Streaming summaries for the online analysis mode (DESIGN.md §4.12).
/// Each sketch is a bounded-memory substitute for one exact analyzer
/// family, with a *stated* error bound the rolling report prints next to
/// every approximate figure:
///
///   SpaceSaving     top-domains / keyword tables   over-estimate ≤ e.error
///   CountMinSketch  per-category counters          over-estimate ≤ ε·N
///   Reservoir       Dsample (uniform sample)       exact k-of-n uniformity
///   WindowRing      traffic/RCV/Rfilter/coverage   exact within the window
///
/// All four are deterministic: identical update sequences produce
/// identical state (hashes and the reservoir's generator are seeded, never
/// randomized per process), so a replayed log reproduces a live tail
/// bit-for-bit — the property every sketch↔exact test leans on.

/// Metwally et al.'s SpaceSaving heavy-hitters over string keys.
///
/// Holds at most `capacity` counters. While distinct keys fit, every
/// count is exact (`exact()` stays true and every error field is 0) — the
/// regime that makes whole-log sketch output byte-identical to the exact
/// top-domains analyzer. Once saturated, the minimum counter is evicted
/// on each new key and its count inherited, so for every tracked key
///
///   true_count  ≤  count  ≤  true_count + error,   error ≤ min_count()
///
/// and any key with true frequency > total()/capacity is guaranteed to be
/// tracked. Eviction picks the minimum of the deterministic total order
/// (count, last-update tick), so saturated contents are a pure function
/// of the update sequence.
class SpaceSaving {
 public:
  struct Item {
    std::string key;
    std::uint64_t count = 0;  ///< estimate; an upper bound on the truth
    std::uint64_t error = 0;  ///< max over-estimate inherited at eviction
  };

  explicit SpaceSaving(std::size_t capacity);

  void update(std::string_view key, std::uint64_t weight = 1);

  /// The k heaviest tracked keys ranked exactly like the exact analyzers
  /// rank theirs: count descending, then key ascending. Fewer than k when
  /// fewer keys are tracked.
  std::vector<Item> top(std::size_t k) const;

  /// No eviction has happened: every tracked count is exact and every key
  /// ever updated is still tracked.
  bool exact() const noexcept { return !evicted_; }

  /// Smallest tracked count — the count any *untracked* key is bounded
  /// by, and the largest possible over-estimate of a tracked one. 0 while
  /// the sketch is exact.
  std::uint64_t min_count() const noexcept;

  std::uint64_t total() const noexcept { return total_; }
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  double fill() const noexcept {
    return capacity_ == 0 ? 0.0
                          : static_cast<double>(entries_.size()) /
                                static_cast<double>(capacity_);
  }

 private:
  struct Entry {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
    std::uint64_t tick = 0;  // last-update ordinal: unique ⇒ total order
  };

  bool less(std::uint32_t a, std::uint32_t b) const noexcept;
  void sift_up(std::size_t slot);
  void sift_down(std::size_t slot);

  std::size_t capacity_;
  std::vector<Entry> entries_;      // stable: reserved once, never shrunk
  std::vector<std::uint32_t> heap_;  // entry indices, min at heap_[0]
  std::vector<std::uint32_t> pos_;   // entry index -> heap slot
  std::unordered_map<std::string_view, std::uint32_t> index_;
  std::uint64_t total_ = 0;
  std::uint64_t tick_ = 0;
  bool evicted_ = false;
};

/// Cormode & Muthukrishnan's Count-Min sketch over string keys.
///
/// depth × width counters; estimate(key) never under-counts, and
/// over-counts by more than ε·total() with probability at most δ, where
/// ε = e/width and δ = e^-depth. Row hashes derive deterministically from
/// the seed, so two sketches with equal parameters fed the same updates
/// are bit-identical.
class CountMinSketch {
 public:
  CountMinSketch(std::size_t width, std::size_t depth,
                 std::uint64_t seed = 0);

  void update(std::string_view key, std::uint64_t weight = 1);
  std::uint64_t estimate(std::string_view key) const;

  std::uint64_t total() const noexcept { return total_; }
  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }
  /// ε: estimate ≤ truth + ε·total() with probability ≥ 1 − δ.
  double epsilon() const noexcept;
  double delta() const noexcept;
  /// The additive bound ε·total() in request units.
  double error_bound() const noexcept;
  /// Fraction of non-zero counters — the saturation gauge obs exports.
  double fill() const noexcept;

 private:
  std::size_t bucket(std::size_t row, std::string_view key) const noexcept;

  std::size_t width_;
  std::size_t depth_;
  std::vector<std::uint64_t> rows_;   // depth × width, row-major
  std::vector<std::uint64_t> seeds_;  // per-row hash stream
  std::uint64_t total_ = 0;
};

/// Vitter's Algorithm R: a uniform k-of-n sample maintained in one pass.
/// Every offered item ends up in the sample with probability k/n exactly;
/// the draw sequence comes from a seeded util::Rng, so the sample is a
/// deterministic function of (seed, offer sequence) — the streaming
/// stand-in for Dsample's Bernoulli derivation.
template <typename T>
class Reservoir {
 public:
  Reservoir(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void offer(const T& item) {
    if (capacity_ == 0) {
      ++seen_;
      return;
    }
    ++seen_;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      return;
    }
    const std::uint64_t j = rng_.uniform(seen_);
    if (j < capacity_) items_[static_cast<std::size_t>(j)] = item;
  }

  const std::vector<T>& items() const noexcept { return items_; }
  std::uint64_t seen() const noexcept { return seen_; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<T> items_;
  std::uint64_t seen_ = 0;
  util::Rng rng_;
};

/// Sliding window of `bins` fixed-width time bins, bin-aligned to absolute
/// time (bin index = floor(t / bin_seconds), so two rings with equal
/// parameters agree on boundaries regardless of when they started). Within
/// the window every per-bin payload is *exact*; approximation enters only
/// through eviction, which the ring counts. Records older than the
/// retained window are dropped (and counted) rather than corrupting a
/// recycled slot.
template <typename Bin>
class WindowRing {
 public:
  WindowRing(std::int64_t bin_seconds, std::size_t bins)
      : bin_seconds_(bin_seconds), ring_(bins) {}

  /// The payload for time `t`, advancing (and evicting) as needed.
  /// nullptr when t falls before the oldest retained bin.
  Bin* at(std::int64_t t) {
    const std::int64_t idx = bin_index(t);
    if (!have_) {
      have_ = true;
      newest_ = idx;
      oldest_ = idx;
      ring_[slot(idx)] = Bin{};
      return &ring_[slot(idx)];
    }
    if (idx > newest_) {
      const auto bins = static_cast<std::int64_t>(ring_.size());
      // Slots entering the window hold data from >= `bins` bins ago.
      const std::int64_t lo = std::max(newest_ + 1, idx - bins + 1);
      for (std::int64_t i = lo; i <= idx; ++i) ring_[slot(i)] = Bin{};
      const std::int64_t new_oldest = std::max(oldest_, idx - bins + 1);
      evicted_ += static_cast<std::uint64_t>(new_oldest - oldest_);
      oldest_ = new_oldest;
      newest_ = idx;
    } else if (idx < oldest_) {
      ++late_drops_;
      return nullptr;
    }
    return &ring_[slot(idx)];
  }

  /// fn(bin_start_time, const Bin&) over every retained bin, oldest
  /// first. Bins the window spans but no record touched are included
  /// (default-constructed), exactly like an exact series' empty bins.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (!have_) return;
    for (std::int64_t i = oldest_; i <= newest_; ++i)
      fn(i * bin_seconds_, ring_[slot(i)]);
  }

  bool empty() const noexcept { return !have_; }
  std::int64_t bin_seconds() const noexcept { return bin_seconds_; }
  std::size_t bins() const noexcept { return ring_.size(); }
  /// Retained bins (<= bins()).
  std::size_t active_bins() const noexcept {
    return have_ ? static_cast<std::size_t>(newest_ - oldest_ + 1) : 0;
  }
  /// Start time of the oldest retained bin. Meaningless while empty().
  std::int64_t window_start() const noexcept { return oldest_ * bin_seconds_; }
  /// End time (exclusive) of the newest bin. Meaningless while empty().
  std::int64_t window_end() const noexcept {
    return (newest_ + 1) * bin_seconds_;
  }
  std::uint64_t evicted_bins() const noexcept { return evicted_; }
  std::uint64_t late_drops() const noexcept { return late_drops_; }
  double fill() const noexcept {
    return ring_.empty() ? 0.0
                         : static_cast<double>(active_bins()) /
                               static_cast<double>(ring_.size());
  }

 private:
  std::int64_t bin_index(std::int64_t t) const noexcept {
    // Floor division, correct for pre-epoch times too.
    return t >= 0 ? t / bin_seconds_
                  : -((-t + bin_seconds_ - 1) / bin_seconds_);
  }
  std::size_t slot(std::int64_t idx) const noexcept {
    const auto bins = static_cast<std::int64_t>(ring_.size());
    return static_cast<std::size_t>(((idx % bins) + bins) % bins);
  }

  std::int64_t bin_seconds_;
  std::vector<Bin> ring_;
  std::int64_t oldest_ = 0;
  std::int64_t newest_ = 0;
  bool have_ = false;
  std::uint64_t evicted_ = 0;
  std::uint64_t late_drops_ = 0;
};

}  // namespace syrwatch::analysis
