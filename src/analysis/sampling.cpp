#include "analysis/sampling.h"

#include "analysis/traffic_stats.h"

namespace syrwatch::analysis {

std::vector<SamplingCheck> sampling_audit(const LogSource& full,
                                          const LogSource& sample,
                                          double alpha, std::size_t threads) {
  const TrafficStats full_stats = traffic_stats(full, threads);
  const TrafficStats sample_stats = traffic_stats(sample, threads);

  struct Metric {
    const char* name;
    std::uint64_t full_count;
    std::uint64_t sample_count;
  };
  const Metric metrics[] = {
      {"allowed", full_stats.observed, sample_stats.observed},
      {"proxied", full_stats.proxied, sample_stats.proxied},
      {"denied", full_stats.denied, sample_stats.denied},
      {"censored", full_stats.censored(), sample_stats.censored()},
      {"errors", full_stats.errors(), sample_stats.errors()},
  };

  std::vector<SamplingCheck> checks;
  checks.reserve(std::size(metrics));
  for (const Metric& metric : metrics) {
    SamplingCheck check;
    check.metric = metric.name;
    check.full_proportion = full_stats.share(metric.full_count);
    check.sample_proportion = sample_stats.share(metric.sample_count);
    // Wilson rather than the plain normal approximation: the rare classes
    // (proxied, censored) can have 0 sampled successes, where the normal
    // interval degenerates to a point.
    check.interval = util::wilson_confidence(metric.sample_count,
                                             sample_stats.total, alpha);
    check.covered = check.full_proportion >= check.interval.lo &&
                    check.full_proportion <= check.interval.hi;
    checks.push_back(std::move(check));
  }
  return checks;
}

}  // namespace syrwatch::analysis
