#include "analysis/anonymizer.h"

#include <algorithm>
#include <unordered_map>

namespace syrwatch::analysis {

double AnonymizerStats::mostly_allowed_share() const {
  if (allowed_censored_ratio.empty()) return 0.0;
  std::uint64_t above = 0;
  for (double ratio : allowed_censored_ratio) {
    if (ratio > 1.0) ++above;
  }
  return static_cast<double>(above) /
         static_cast<double>(allowed_censored_ratio.size());
}

AnonymizerStats anonymizer_stats(const Dataset& dataset,
                                 const category::Categorizer& categorizer) {
  struct PerHost {
    std::uint64_t allowed = 0;
    std::uint64_t censored = 0;
    std::uint64_t other = 0;
  };
  std::unordered_map<std::string_view, PerHost> hosts;
  std::unordered_map<util::StringPool::Id, bool> is_anon_cache;
  for (const Row& row : dataset.rows()) {
    auto cached = is_anon_cache.find(row.host);
    if (cached == is_anon_cache.end()) {
      cached = is_anon_cache
                   .emplace(row.host,
                            categorizer.is_anonymizer(dataset.host(row)))
                   .first;
    }
    if (!cached->second) continue;
    PerHost& host = hosts[dataset.host(row)];
    switch (dataset.cls(row)) {
      case proxy::TrafficClass::kAllowed: ++host.allowed; break;
      case proxy::TrafficClass::kCensored: ++host.censored; break;
      default: ++host.other; break;
    }
  }

  AnonymizerStats stats;
  stats.hosts = hosts.size();
  for (const auto& [name, host] : hosts) {
    const std::uint64_t total = host.allowed + host.censored + host.other;
    stats.requests += total;
    if (host.censored == 0) {
      ++stats.never_filtered_hosts;
      stats.never_filtered_requests += total;
      stats.requests_per_clean_host.push_back(static_cast<double>(total));
    } else {
      ++stats.filtered_hosts;
      stats.allowed_censored_ratio.push_back(
          host.censored == 0
              ? 0.0
              : static_cast<double>(host.allowed) /
                    static_cast<double>(host.censored));
    }
  }
  std::sort(stats.requests_per_clean_host.begin(),
            stats.requests_per_clean_host.end());
  std::sort(stats.allowed_censored_ratio.begin(),
            stats.allowed_censored_ratio.end());
  return stats;
}

}  // namespace syrwatch::analysis
