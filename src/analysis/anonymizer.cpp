#include "analysis/anonymizer.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

namespace syrwatch::analysis {

double AnonymizerStats::mostly_allowed_share() const {
  if (allowed_censored_ratio.empty()) return 0.0;
  std::uint64_t above = 0;
  for (double ratio : allowed_censored_ratio) {
    if (ratio > 1.0) ++above;
  }
  return static_cast<double>(above) /
         static_cast<double>(allowed_censored_ratio.size());
}

AnonymizerStats anonymizer_stats(const LogSource& source,
                                 const category::Categorizer& categorizer,
                                 std::size_t threads) {
  struct PerHost {
    std::uint64_t allowed = 0;
    std::uint64_t censored = 0;
    std::uint64_t other = 0;
  };
  struct Partial {
    std::unordered_map<std::string_view, PerHost> hosts;
    std::unordered_map<std::uint32_t, bool> is_anon_cache;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        auto cached = p.is_anon_cache.find(r.host_id);
        if (cached == p.is_anon_cache.end()) {
          cached = p.is_anon_cache
                       .emplace(r.host_id, categorizer.is_anonymizer(r.host))
                       .first;
        }
        if (!cached->second) return;
        PerHost& host = p.hosts[r.host];
        switch (r.cls) {
          case proxy::TrafficClass::kAllowed: ++host.allowed; break;
          case proxy::TrafficClass::kCensored: ++host.censored; break;
          default: ++host.other; break;
        }
      });

  std::unordered_map<std::string_view, PerHost> hosts;
  for (const Partial& p : partials) {
    for (const auto& [name, host] : p.hosts) {
      PerHost& merged = hosts[name];
      merged.allowed += host.allowed;
      merged.censored += host.censored;
      merged.other += host.other;
    }
  }

  AnonymizerStats stats;
  stats.hosts = hosts.size();
  for (const auto& [name, host] : hosts) {
    const std::uint64_t total = host.allowed + host.censored + host.other;
    stats.requests += total;
    if (host.censored == 0) {
      ++stats.never_filtered_hosts;
      stats.never_filtered_requests += total;
      stats.requests_per_clean_host.push_back(static_cast<double>(total));
    } else {
      ++stats.filtered_hosts;
      stats.allowed_censored_ratio.push_back(
          host.censored == 0
              ? 0.0
              : static_cast<double>(host.allowed) /
                    static_cast<double>(host.censored));
    }
  }
  std::sort(stats.requests_per_clean_host.begin(),
            stats.requests_per_clean_host.end());
  std::sort(stats.allowed_censored_ratio.begin(),
            stats.allowed_censored_ratio.end());
  return stats;
}

}  // namespace syrwatch::analysis
