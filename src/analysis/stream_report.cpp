#include "analysis/stream_report.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/simtime.h"

namespace syrwatch::analysis {

StreamAnalyzer::StreamAnalyzer(const StreamReportOptions& options,
                               obs::Context* obs)
    : options_(options),
      top_domains_(options.top_capacity),
      keywords_(options.top_capacity),
      categories_(options.cm_width, options.cm_depth, options.cm_seed),
      sample_(options.reservoir_k, options.sample_seed),
      traffic_(options.bin.seconds, options.window_bins),
      coverage_(options.bin.seconds, options.window_bins),
      rfilter_(options.bin.seconds, options.window_bins),
      records_counter_(obs::counter(obs, "stream.records")),
      late_counter_(obs::counter(obs, "stream.window.late_drops")),
      domains_fill_(obs::gauge(obs, "stream.sketch.domains.fill")),
      keywords_fill_(obs::gauge(obs, "stream.sketch.keywords.fill")),
      cm_fill_(obs::gauge(obs, "stream.sketch.categories.fill")),
      window_fill_(obs::gauge(obs, "stream.window.fill")),
      window_evicted_(obs::gauge(obs, "stream.window.evicted_bins")),
      reservoir_seen_(obs::gauge(obs, "stream.sample.seen")) {}

bool StreamAnalyzer::rfilter_scoped(const Record& r) const {
  if (static_cast<std::size_t>(r.proxy_index) != options_.rfilter_proxy ||
      !r.host_is_ip)
    return false;
  if (options_.relays != nullptr &&
      !options_.relays->contains(net::Ipv4Addr{r.host_ip}, r.port))
    return false;
  return true;
}

void StreamAnalyzer::ingest(const Record& r) {
  if (records_ == 0 || r.time < first_time_) first_time_ = r.time;
  if (records_ == 0 || r.time > last_time_) last_time_ = r.time;
  ++records_;
  obs::add(records_counter_);
  ++class_totals_[static_cast<std::size_t>(r.cls)];

  sample_.offer(SampleItem{r.ordinal, r.cls});

  if (r.cls == proxy::TrafficClass::kCensored) {
    top_domains_.update(r.domain);
    // Keyword table: lowercased alphanumeric runs of the text the filter
    // scanned, skipping short noise tokens.
    const std::string text = r.filter_text();
    std::string token;
    for (std::size_t i = 0; i <= text.size(); ++i) {
      const char c = i < text.size() ? text[i] : '\0';
      if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
        token.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
        continue;
      }
      if (token.size() >= options_.min_token_length) keywords_.update(token);
      token.clear();
    }
    // Per-category counts keyed by the proxies' own cs-categories label.
    const std::string label{r.categories};
    categories_.update(label);
    if (label_seen_.insert(label).second) category_labels_.push_back(label);
  }

  // Sliding windows.
  if (TrafficBin* bin = traffic_.at(r.time)) {
    ++bin->total;
    if (r.cls == proxy::TrafficClass::kCensored) ++bin->censored;
    if (r.cls == proxy::TrafficClass::kAllowed) ++bin->allowed;
  } else {
    obs::add(late_counter_);
  }
  if (CoverageBin* bin = coverage_.at(r.time)) {
    ++bin->by_proxy[r.proxy_index];
    ++bin->total;
  }
  if (rfilter_scoped(r)) {
    if (r.cls == proxy::TrafficClass::kCensored)
      censored_relay_ips_.insert(r.host_ip);
    if (RfilterBin* bin = rfilter_.at(r.time)) {
      bin->has_traffic = true;
      if (r.cls == proxy::TrafficClass::kAllowed)
        bin->allowed_ips.insert(r.host_ip);
    }
  }
}

RollingReport StreamAnalyzer::snapshot() {
  RollingReport report;
  report.records = records_;
  report.first_time = first_time_;
  report.last_time = last_time_;
  report.class_totals = class_totals_;

  auto fill_top = [](const SpaceSaving& sketch, std::size_t k,
                     std::vector<RollingReport::TopEntry>& out, bool& exact,
                     std::uint64_t& bound) {
    exact = sketch.exact();
    bound = 0;
    for (const SpaceSaving::Item& item : sketch.top(k)) {
      bound = std::max(bound, item.error);
      out.push_back({item.key, item.count, item.error});
    }
  };
  fill_top(top_domains_, options_.top_k, report.top_censored_domains,
           report.domains_exact, report.domains_error_bound);
  fill_top(keywords_, options_.top_k, report.censored_keywords,
           report.keywords_exact, report.keywords_error_bound);

  report.category_total = categories_.total();
  report.category_epsilon = categories_.epsilon();
  report.category_delta = categories_.delta();
  report.category_error = categories_.error_bound();
  for (const std::string& label : category_labels_)
    report.categories.push_back({label, categories_.estimate(label)});
  std::sort(report.categories.begin(), report.categories.end(),
            [](const RollingReport::CategoryEstimate& a,
               const RollingReport::CategoryEstimate& b) {
              if (a.estimate != b.estimate) return a.estimate > b.estimate;
              return a.label < b.label;
            });

  report.sample_seen = sample_.seen();
  report.sample_size = sample_.items().size();
  for (const SampleItem& item : sample_.items())
    report.sample_censored +=
        item.cls == proxy::TrafficClass::kCensored ? 1 : 0;
  if (report.sample_size > 0)
    report.sample_censored_share = util::wilson_confidence(
        report.sample_censored, report.sample_size, 0.05);

  report.bin_seconds = traffic_.bin_seconds();
  report.window_capacity_bins = traffic_.bins();
  report.window_evicted_bins = traffic_.evicted_bins();
  report.window_late_drops = traffic_.late_drops();
  if (!traffic_.empty()) {
    report.window_origin = traffic_.window_start();
    traffic_.for_each([&](std::int64_t, const TrafficBin& bin) {
      report.censored_series.push_back(bin.censored);
      report.allowed_series.push_back(bin.allowed);
      report.total_series.push_back(bin.total);
      report.rcv.push_back(bin.total == 0
                               ? 0.0
                               : static_cast<double>(bin.censored) /
                                     static_cast<double>(bin.total));
    });
  }

  // Windowed coverage: the gap scan of coverage_core over the retained
  // bins (gaps still open at the window's newest bin are reported open).
  if (!coverage_.empty()) {
    std::array<bool, policy::kProxyCount> in_gap{};
    std::array<CoverageGap, policy::kProxyCount> open{};
    coverage_.for_each([&](std::int64_t bin_start, const CoverageBin& bin) {
      const bool active = bin.total >= options_.min_farm_bin_requests;
      if (active) ++report.coverage_active_bins;
      for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
        if (active && bin.by_proxy[p] > 0) ++report.covered_bins[p];
        const bool hole = active && bin.by_proxy[p] == 0;
        if (hole) {
          if (!in_gap[p]) {
            in_gap[p] = true;
            open[p] = {static_cast<std::uint8_t>(p), bin_start, 0, 0};
          }
          open[p].end = bin_start + coverage_.bin_seconds();
          open[p].farm_requests += bin.total;
        } else if (in_gap[p] && active) {
          in_gap[p] = false;
          report.gaps.push_back(open[p]);
        }
      }
    });
    for (std::size_t p = 0; p < policy::kProxyCount; ++p)
      if (in_gap[p]) report.gaps.push_back(open[p]);
    std::sort(report.gaps.begin(), report.gaps.end(),
              [](const CoverageGap& a, const CoverageGap& b) {
                if (a.proxy_index != b.proxy_index)
                  return a.proxy_index < b.proxy_index;
                return a.start < b.start;
              });
  }

  report.censored_relay_count = censored_relay_ips_.size();
  if (!rfilter_.empty()) {
    rfilter_.for_each([&](std::int64_t, const RfilterBin& bin) {
      report.rfilter_has_traffic.push_back(bin.has_traffic ? 1 : 0);
      if (censored_relay_ips_.empty()) {
        report.rfilter.push_back(0.0);
        return;
      }
      std::size_t overlap = 0;
      for (const std::uint32_t ip : bin.allowed_ips)
        if (censored_relay_ips_.count(ip) != 0) ++overlap;
      report.rfilter.push_back(
          1.0 - static_cast<double>(overlap) /
                    static_cast<double>(censored_relay_ips_.size()));
    });
  }

  if (domains_fill_ != nullptr) domains_fill_->set(top_domains_.fill());
  if (keywords_fill_ != nullptr) keywords_fill_->set(keywords_.fill());
  if (cm_fill_ != nullptr) cm_fill_->set(categories_.fill());
  if (window_fill_ != nullptr) window_fill_->set(traffic_.fill());
  if (window_evicted_ != nullptr)
    window_evicted_->set(static_cast<double>(traffic_.evicted_bins()));
  if (reservoir_seen_ != nullptr)
    reservoir_seen_->set(static_cast<double>(sample_.seen()));

  return report;
}

namespace {

const char* class_name(std::size_t i) {
  switch (static_cast<proxy::TrafficClass>(i)) {
    case proxy::TrafficClass::kAllowed:
      return "allowed";
    case proxy::TrafficClass::kCensored:
      return "censored";
    case proxy::TrafficClass::kError:
      return "error";
    case proxy::TrafficClass::kProxied:
      return "proxied";
  }
  return "?";
}

void render_top_table(std::ostringstream& out, const char* title,
                      const std::vector<RollingReport::TopEntry>& entries,
                      bool exact, std::uint64_t bound) {
  out << title;
  if (exact)
    out << " (exact)\n";
  else
    out << " [APPROX] (counts over-estimate by <= " << bound << ")\n";
  for (const auto& e : entries) {
    out << "  " << e.key << "  " << e.count;
    if (e.error > 0) out << " (+<=" << e.error << ")";
    out << "\n";
  }
  if (entries.empty()) out << "  (none)\n";
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void json_escape(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string render_stream_report(const RollingReport& report) {
  std::ostringstream out;
  out << "=== rolling report @ " << util::format_datetime(report.last_time)
      << " ===\n";
  out << "records " << report.records;
  if (report.records > 0)
    out << "  span " << util::format_datetime(report.first_time) << " .. "
        << util::format_datetime(report.last_time);
  out << "\n";
  out << "classes";
  for (std::size_t i = 0; i < report.class_totals.size(); ++i)
    out << "  " << class_name(i) << " " << report.class_totals[i];
  out << "\n";
  if (report.spool_pending_bytes > 0 || report.spool_offset > 0) {
    out << "spool offset " << report.spool_offset << " pending "
        << report.spool_pending_bytes << " bytes";
    if (report.spool_skipped_lines > 0)
      out << "  skipped " << report.spool_skipped_lines << " lines";
    out << "\n";
  }
  if (report.spool_gaps > 0)
    out << "[DEGRADED DATA] spool rotated/truncated " << report.spool_gaps
        << " time(s) under the watch — records between rotations were "
           "never observed\n";

  render_top_table(out, "top censored domains", report.top_censored_domains,
                   report.domains_exact, report.domains_error_bound);
  render_top_table(out, "censored keywords", report.censored_keywords,
                   report.keywords_exact, report.keywords_error_bound);

  out << "censored categories [APPROX] (over-estimate <= "
      << fmt_double(report.category_error) << " = eps "
      << fmt_double(report.category_epsilon) << " * N "
      << report.category_total << ", P >= "
      << fmt_double(1.0 - report.category_delta) << ")\n";
  for (const auto& c : report.categories)
    out << "  " << (c.label.empty() ? "-" : c.label) << "  " << c.estimate
        << "\n";
  if (report.categories.empty()) out << "  (none)\n";

  out << "sample (reservoir) " << report.sample_size << " of "
      << report.sample_seen;
  if (report.sample_size > 0)
    out << "  censored share " << fmt_double(report.sample_censored_share.lo)
        << " .. " << fmt_double(report.sample_censored_share.hi)
        << " (95% Wilson)";
  out << "\n";

  const std::size_t bins = report.total_series.size();
  out << "window " << bins << "/" << report.window_capacity_bins << " bins x "
      << report.bin_seconds << "s";
  if (bins > 0) out << " from " << util::format_datetime(report.window_origin);
  if (report.window_evicted_bins > 0)
    out << "  [APPROX: " << report.window_evicted_bins
        << " older bins evicted]";
  if (report.window_late_drops > 0)
    out << "  (" << report.window_late_drops << " late records dropped)";
  out << "\n";
  if (bins > 0) {
    std::uint64_t censored = 0, total = 0;
    for (std::size_t i = 0; i < bins; ++i) {
      censored += report.censored_series[i];
      total += report.total_series[i];
    }
    double peak = 0.0;
    std::size_t peak_bin = 0;
    for (std::size_t i = 0; i < bins; ++i) {
      if (report.rcv[i] > peak) {
        peak = report.rcv[i];
        peak_bin = i;
      }
    }
    out << "  windowed RCV "
        << fmt_double(total == 0 ? 0.0
                                 : static_cast<double>(censored) /
                                       static_cast<double>(total))
        << "  peak " << fmt_double(peak) << " @ "
        << util::format_datetime(report.window_origin +
                                 static_cast<std::int64_t>(peak_bin) *
                                     report.bin_seconds)
        << "\n";
  }

  out << "coverage: active bins " << report.coverage_active_bins
      << ", gaps " << report.gaps.size() << "\n";
  for (const CoverageGap& gap : report.gaps)
    out << "  SG-" << 42 + static_cast<int>(gap.proxy_index) << "  "
        << util::format_datetime(gap.start) << " .. "
        << util::format_datetime(gap.end) << "\n";

  if (!report.rfilter.empty()) {
    double latest = 0.0;
    bool any = false;
    for (std::size_t i = report.rfilter.size(); i-- > 0;) {
      if (report.rfilter_has_traffic[i] != 0) {
        latest = report.rfilter[i];
        any = true;
        break;
      }
    }
    out << "Rfilter (censored set so far: " << report.censored_relay_count
        << " IPs): latest active bin "
        << (any ? fmt_double(latest) : std::string{"n/a"}) << "\n";
  }
  return out.str();
}

std::string stream_report_json(const RollingReport& report) {
  std::ostringstream out;
  out << "{\"schema\":\"syrwatch.stream.v1\"";
  out << ",\"records\":" << report.records;
  out << ",\"first_time\":" << report.first_time;
  out << ",\"last_time\":" << report.last_time;
  out << ",\"classes\":{";
  for (std::size_t i = 0; i < report.class_totals.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << class_name(i) << "\":" << report.class_totals[i];
  }
  out << "}";

  auto top_table = [&](const char* key,
                       const std::vector<RollingReport::TopEntry>& entries,
                       bool exact, std::uint64_t bound) {
    out << ",\"" << key << "\":{\"exact\":" << (exact ? "true" : "false")
        << ",\"error_bound\":" << bound << ",\"entries\":[";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i > 0) out << ',';
      out << "{\"key\":";
      json_escape(out, entries[i].key);
      out << ",\"count\":" << entries[i].count
          << ",\"error\":" << entries[i].error << "}";
    }
    out << "]}";
  };
  top_table("top_censored_domains", report.top_censored_domains,
            report.domains_exact, report.domains_error_bound);
  top_table("censored_keywords", report.censored_keywords,
            report.keywords_exact, report.keywords_error_bound);

  out << ",\"categories\":{\"approx\":true,\"epsilon\":"
      << fmt_double(report.category_epsilon)
      << ",\"delta\":" << fmt_double(report.category_delta)
      << ",\"error_bound\":" << fmt_double(report.category_error)
      << ",\"total\":" << report.category_total << ",\"entries\":[";
  for (std::size_t i = 0; i < report.categories.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"label\":";
    json_escape(out, report.categories[i].label);
    out << ",\"estimate\":" << report.categories[i].estimate << "}";
  }
  out << "]}";

  out << ",\"sample\":{\"seen\":" << report.sample_seen
      << ",\"size\":" << report.sample_size
      << ",\"censored\":" << report.sample_censored
      << ",\"censored_share_lo\":"
      << fmt_double(report.sample_censored_share.lo)
      << ",\"censored_share_hi\":"
      << fmt_double(report.sample_censored_share.hi) << "}";

  out << ",\"window\":{\"origin\":" << report.window_origin
      << ",\"bin_seconds\":" << report.bin_seconds
      << ",\"capacity_bins\":" << report.window_capacity_bins
      << ",\"evicted_bins\":" << report.window_evicted_bins
      << ",\"late_drops\":" << report.window_late_drops;
  auto series = [&](const char* key, const std::vector<std::uint64_t>& v) {
    out << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (i > 0) out << ',';
      out << v[i];
    }
    out << ']';
  };
  series("censored", report.censored_series);
  series("allowed", report.allowed_series);
  series("total", report.total_series);
  out << ",\"rcv\":[";
  for (std::size_t i = 0; i < report.rcv.size(); ++i) {
    if (i > 0) out << ',';
    out << fmt_double(report.rcv[i]);
  }
  out << "]}";

  out << ",\"coverage\":{\"active_bins\":" << report.coverage_active_bins
      << ",\"covered_bins\":[";
  for (std::size_t p = 0; p < report.covered_bins.size(); ++p) {
    if (p > 0) out << ',';
    out << report.covered_bins[p];
  }
  out << "],\"gaps\":[";
  for (std::size_t i = 0; i < report.gaps.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"proxy\":" << static_cast<int>(report.gaps[i].proxy_index)
        << ",\"start\":" << report.gaps[i].start
        << ",\"end\":" << report.gaps[i].end << "}";
  }
  out << "]}";

  out << ",\"rfilter\":{\"censored_ips\":" << report.censored_relay_count
      << ",\"series\":[";
  for (std::size_t i = 0; i < report.rfilter.size(); ++i) {
    if (i > 0) out << ',';
    out << fmt_double(report.rfilter[i]);
  }
  out << "],\"has_traffic\":[";
  for (std::size_t i = 0; i < report.rfilter_has_traffic.size(); ++i) {
    if (i > 0) out << ',';
    out << (report.rfilter_has_traffic[i] != 0 ? "true" : "false");
  }
  out << "]}";

  out << ",\"spool\":{\"offset\":" << report.spool_offset
      << ",\"pending_bytes\":" << report.spool_pending_bytes
      << ",\"skipped_lines\":" << report.spool_skipped_lines
      << ",\"gaps\":" << report.spool_gaps << "}";
  out << "}";
  return out.str();
}

}  // namespace syrwatch::analysis
