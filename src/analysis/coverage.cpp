#include "analysis/coverage.h"

#include <algorithm>

#include "util/simtime.h"

namespace syrwatch::analysis {

CoverageReport request_coverage(const Dataset& dataset,
                                std::int64_t bin_seconds,
                                std::uint64_t min_farm_bin_requests,
                                const proxy::LogReadStats* read_stats) {
  CoverageReport report;
  report.bin_seconds = bin_seconds;
  if (read_stats != nullptr) report.truncated_tail = read_stats->truncated_tail;
  if (dataset.size() == 0) return report;

  // Rows are time-sorted (Dataset::finalize), so the observation window is
  // the first/last row. Bins are anchored at the first row's midnight so
  // bin and day boundaries line up.
  const std::int64_t origin =
      dataset.rows().front().time -
      (dataset.rows().front().time % util::kSecondsPerDay);
  const std::int64_t last = dataset.rows().back().time;
  const auto bin_count = static_cast<std::size_t>(
      (last - origin) / bin_seconds + 1);

  // (bin, proxy) counts in one pass; per-day counts fold whole days.
  std::vector<std::array<std::uint64_t, policy::kProxyCount>> bins(
      bin_count, std::array<std::uint64_t, policy::kProxyCount>{});
  std::vector<DayCoverage> days;
  for (const Row& row : dataset.rows()) {
    const auto bin = static_cast<std::size_t>((row.time - origin) /
                                              bin_seconds);
    ++bins[bin][row.proxy_index];
    const std::int64_t day_start =
        row.time - (row.time % util::kSecondsPerDay);
    if (days.empty() || days.back().day_start != day_start) {
      // Rows are time-sorted, so new days only ever append.
      days.push_back({day_start, {}});
    }
    ++days.back().requests[row.proxy_index];
    ++report.totals[row.proxy_index];
    ++report.total_requests;
  }
  report.days = std::move(days);

  // Gap scan: per proxy, merge consecutive farm-active bins it missed.
  std::array<bool, policy::kProxyCount> in_gap{};
  std::array<CoverageGap, policy::kProxyCount> open{};
  for (std::size_t b = 0; b < bin_count; ++b) {
    std::uint64_t farm_total = 0;
    for (const std::uint64_t count : bins[b]) farm_total += count;
    const bool active = farm_total >= min_farm_bin_requests;
    if (active) ++report.active_bins;
    const std::int64_t bin_start =
        origin + static_cast<std::int64_t>(b) * bin_seconds;
    for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
      if (active && bins[b][p] > 0) ++report.covered_bins[p];
      const bool hole = active && bins[b][p] == 0;
      if (hole) {
        if (!in_gap[p]) {
          in_gap[p] = true;
          open[p] = {static_cast<std::uint8_t>(p), bin_start, 0, 0};
        }
        open[p].end = bin_start + bin_seconds;
        open[p].farm_requests += farm_total;
      } else if (in_gap[p] && active) {
        // Only a bin the proxy demonstrably served closes its gap;
        // inactive bins (nothing to miss) leave the gap open.
        in_gap[p] = false;
        report.gaps.push_back(open[p]);
      }
    }
  }
  for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
    if (in_gap[p]) report.gaps.push_back(open[p]);
  }
  std::sort(report.gaps.begin(), report.gaps.end(),
            [](const CoverageGap& a, const CoverageGap& b) {
              if (a.proxy_index != b.proxy_index)
                return a.proxy_index < b.proxy_index;
              return a.start < b.start;
            });
  return report;
}

}  // namespace syrwatch::analysis
