#include "analysis/coverage.h"

#include <algorithm>
#include <map>

#include "util/simtime.h"

namespace syrwatch::analysis {

namespace {

CoverageReport coverage_core(const LogSource& source, std::int64_t bin_seconds,
                             std::uint64_t min_farm_bin_requests,
                             bool truncated_tail, std::size_t threads) {
  CoverageReport report;
  report.bin_seconds = bin_seconds;
  report.truncated_tail = truncated_tail;
  if (source.rows() == 0) return report;

  // The observation window is the source's true time bounds (the scan
  // layer computes them even for emission-order containers, which are
  // only approximately time-sorted). Bins are anchored at the earliest
  // record's midnight so bin and day boundaries line up; every tally
  // below is order-independent, so any row order bins identically.
  const auto [first, last] = source.time_bounds(threads);
  const std::int64_t origin = first - (first % util::kSecondsPerDay);
  const auto bin_count =
      static_cast<std::size_t>((last - origin) / bin_seconds + 1);

  struct Partial {
    std::vector<std::array<std::uint64_t, policy::kProxyCount>> bins;
    std::map<std::int64_t, std::array<std::uint64_t, policy::kProxyCount>>
        days;
    std::array<std::uint64_t, policy::kProxyCount> totals{};
    std::uint64_t total_requests = 0;
    bool has_rows = false;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (!p.has_rows) {
          p.has_rows = true;
          p.bins.resize(bin_count);
        }
        const auto bin =
            static_cast<std::size_t>((r.time - origin) / bin_seconds);
        ++p.bins[bin][r.proxy_index];
        const std::int64_t day_start =
            r.time - (r.time % util::kSecondsPerDay);
        ++p.days[day_start][r.proxy_index];
        ++p.totals[r.proxy_index];
        ++p.total_requests;
      });

  std::vector<std::array<std::uint64_t, policy::kProxyCount>> bins(
      bin_count, std::array<std::uint64_t, policy::kProxyCount>{});
  std::map<std::int64_t, std::array<std::uint64_t, policy::kProxyCount>> days;
  for (const Partial& p : partials) {
    if (!p.has_rows) continue;
    for (std::size_t b = 0; b < bin_count; ++b)
      for (std::size_t proxy = 0; proxy < policy::kProxyCount; ++proxy)
        bins[b][proxy] += p.bins[b][proxy];
    for (const auto& [day_start, counts] : p.days) {
      auto& merged = days[day_start];
      for (std::size_t proxy = 0; proxy < policy::kProxyCount; ++proxy)
        merged[proxy] += counts[proxy];
    }
    for (std::size_t proxy = 0; proxy < policy::kProxyCount; ++proxy)
      report.totals[proxy] += p.totals[proxy];
    report.total_requests += p.total_requests;
  }
  report.days.reserve(days.size());
  for (const auto& [day_start, counts] : days)
    report.days.push_back({day_start, counts});

  // Gap scan: per proxy, merge consecutive farm-active bins it missed.
  std::array<bool, policy::kProxyCount> in_gap{};
  std::array<CoverageGap, policy::kProxyCount> open{};
  for (std::size_t b = 0; b < bin_count; ++b) {
    std::uint64_t farm_total = 0;
    for (const std::uint64_t count : bins[b]) farm_total += count;
    const bool active = farm_total >= min_farm_bin_requests;
    if (active) ++report.active_bins;
    const std::int64_t bin_start =
        origin + static_cast<std::int64_t>(b) * bin_seconds;
    for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
      if (active && bins[b][p] > 0) ++report.covered_bins[p];
      const bool hole = active && bins[b][p] == 0;
      if (hole) {
        if (!in_gap[p]) {
          in_gap[p] = true;
          open[p] = {static_cast<std::uint8_t>(p), bin_start, 0, 0};
        }
        open[p].end = bin_start + bin_seconds;
        open[p].farm_requests += farm_total;
      } else if (in_gap[p] && active) {
        // Only a bin the proxy demonstrably served closes its gap;
        // inactive bins (nothing to miss) leave the gap open.
        in_gap[p] = false;
        report.gaps.push_back(open[p]);
      }
    }
  }
  for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
    if (in_gap[p]) report.gaps.push_back(open[p]);
  }
  std::sort(report.gaps.begin(), report.gaps.end(),
            [](const CoverageGap& a, const CoverageGap& b) {
              if (a.proxy_index != b.proxy_index)
                return a.proxy_index < b.proxy_index;
              return a.start < b.start;
            });
  return report;
}

}  // namespace

CoverageReport request_coverage(const LogSource& source,
                                const CoverageOptions& options,
                                std::size_t threads) {
  const bool torn =
      (options.read_stats != nullptr && options.read_stats->truncated_tail) ||
      (options.recovery != nullptr && options.recovery->truncated_tail);
  return coverage_core(source, options.bin.seconds,
                       options.min_farm_bin_requests, torn, threads);
}

}  // namespace syrwatch::analysis
