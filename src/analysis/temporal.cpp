#include "analysis/temporal.h"

#include <algorithm>
#include <stdexcept>

namespace syrwatch::analysis {

namespace {

std::vector<double> normalize(const util::BinnedCounter& counter) {
  const double total = static_cast<double>(counter.total());
  std::vector<double> out(counter.bin_count());
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<double>(counter.at(i)) / total;
  return out;
}

}  // namespace

std::vector<double> TrafficTimeSeries::normalized_censored() const {
  return normalize(censored);
}

std::vector<double> TrafficTimeSeries::normalized_allowed() const {
  return normalize(allowed);
}

TrafficTimeSeries traffic_time_series(const Dataset& dataset,
                                      const TrafficSeriesOptions& options) {
  const std::size_t bins = options.bin.bins_over(options.range);
  TrafficTimeSeries series{
      util::BinnedCounter{options.range.start, options.bin.seconds, bins},
      util::BinnedCounter{options.range.start, options.bin.seconds, bins},
  };
  for (const Row& row : dataset.rows()) {
    const auto cls = dataset.cls(row);
    if (cls == proxy::TrafficClass::kCensored)
      series.censored.add(row.time);
    else if (cls == proxy::TrafficClass::kAllowed)
      series.allowed.add(row.time);
  }
  return series;
}

std::size_t RcvSeries::peak_bin() const {
  if (rcv.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(rcv.begin(), rcv.end()) - rcv.begin());
}

RcvSeries rcv_series(const Dataset& dataset, const RcvOptions& options) {
  const std::size_t bins = options.bin.bins_over(options.range);
  util::BinnedCounter censored{options.range.start, options.bin.seconds, bins};
  util::BinnedCounter total{options.range.start, options.bin.seconds, bins};
  for (const Row& row : dataset.rows()) {
    total.add(row.time);
    if (dataset.cls(row) == proxy::TrafficClass::kCensored)
      censored.add(row.time);
  }
  RcvSeries series{options.range.start, options.bin.seconds,
                   std::vector<double>(bins, 0.0)};
  for (std::size_t i = 0; i < bins; ++i) {
    if (total.at(i) != 0)
      series.rcv[i] = static_cast<double>(censored.at(i)) /
                      static_cast<double>(total.at(i));
  }
  return series;
}

std::vector<WindowedTopDomains> windowed_top_censored(
    const Dataset& dataset, const WindowedTopOptions& options) {
  std::vector<WindowedTopDomains> out;
  out.reserve(options.windows.size());
  for (const TimeRange& window : options.windows) {
    out.push_back(
        {window,
         top_domains(dataset, TopDomainsOptions{
                                  proxy::TrafficClass::kCensored, options.k,
                                  window})});
  }
  return out;
}

}  // namespace syrwatch::analysis
