#include "analysis/temporal.h"

#include <algorithm>

namespace syrwatch::analysis {

namespace {

std::vector<double> normalize(const util::BinnedCounter& counter) {
  const double total = static_cast<double>(counter.total());
  std::vector<double> out(counter.bin_count());
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<double>(counter.at(i)) / total;
  return out;
}

}  // namespace

std::vector<double> TrafficTimeSeries::normalized_censored() const {
  return normalize(censored);
}

std::vector<double> TrafficTimeSeries::normalized_allowed() const {
  return normalize(allowed);
}

TrafficTimeSeries traffic_time_series(const LogSource& source,
                                      const TrafficSeriesOptions& options,
                                      std::size_t threads) {
  const std::size_t bins = options.bin.bins_over(options.range);
  struct Partial {
    std::vector<std::uint64_t> censored, allowed;
    std::uint64_t censored_overflow = 0, allowed_overflow = 0;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.censored.empty()) {
          p.censored.assign(bins, 0);
          p.allowed.assign(bins, 0);
        }
        std::vector<std::uint64_t>* series = nullptr;
        std::uint64_t* overflow = nullptr;
        if (r.cls == proxy::TrafficClass::kCensored) {
          series = &p.censored;
          overflow = &p.censored_overflow;
        } else if (r.cls == proxy::TrafficClass::kAllowed) {
          series = &p.allowed;
          overflow = &p.allowed_overflow;
        } else {
          return;
        }
        if (r.time < options.range.start) {
          ++*overflow;
          return;
        }
        const auto bin = static_cast<std::uint64_t>(
            (r.time - options.range.start) / options.bin.seconds);
        if (bin >= bins)
          ++*overflow;
        else
          ++(*series)[static_cast<std::size_t>(bin)];
      });

  TrafficTimeSeries series{
      util::BinnedCounter{options.range.start, options.bin.seconds, bins},
      util::BinnedCounter{options.range.start, options.bin.seconds, bins},
  };
  for (const Partial& p : partials) {
    for (std::size_t b = 0; b < p.censored.size(); ++b) {
      if (p.censored[b] != 0)
        series.censored.add(series.censored.bin_start(b), p.censored[b]);
      if (p.allowed[b] != 0)
        series.allowed.add(series.allowed.bin_start(b), p.allowed[b]);
    }
    // Out-of-range adds land in the counters' overflow, exactly as the
    // sequential row scan's add(time) calls would have.
    if (p.censored_overflow != 0)
      series.censored.add(options.range.start - 1, p.censored_overflow);
    if (p.allowed_overflow != 0)
      series.allowed.add(options.range.start - 1, p.allowed_overflow);
  }
  return series;
}

std::size_t RcvSeries::peak_bin() const {
  if (rcv.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(rcv.begin(), rcv.end()) - rcv.begin());
}

RcvSeries rcv_series(const LogSource& source, const RcvOptions& options,
                     std::size_t threads) {
  const std::size_t bins = options.bin.bins_over(options.range);
  struct Partial {
    std::vector<std::uint64_t> censored, total;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.total.empty()) {
          p.censored.assign(bins, 0);
          p.total.assign(bins, 0);
        }
        if (r.time < options.range.start) return;
        const auto bin = static_cast<std::uint64_t>(
            (r.time - options.range.start) / options.bin.seconds);
        if (bin >= bins) return;
        ++p.total[static_cast<std::size_t>(bin)];
        if (r.cls == proxy::TrafficClass::kCensored)
          ++p.censored[static_cast<std::size_t>(bin)];
      });

  std::vector<std::uint64_t> censored(bins, 0), total(bins, 0);
  for (const Partial& p : partials) {
    for (std::size_t b = 0; b < p.total.size(); ++b) {
      censored[b] += p.censored[b];
      total[b] += p.total[b];
    }
  }
  RcvSeries series{options.range.start, options.bin.seconds,
                   std::vector<double>(bins, 0.0)};
  for (std::size_t i = 0; i < bins; ++i) {
    if (total[i] != 0)
      series.rcv[i] = static_cast<double>(censored[i]) /
                      static_cast<double>(total[i]);
  }
  return series;
}

std::vector<WindowedTopDomains> windowed_top_censored(
    const LogSource& source, const WindowedTopOptions& options,
    std::size_t threads) {
  std::vector<WindowedTopDomains> out;
  out.reserve(options.windows.size());
  for (const TimeRange& window : options.windows) {
    out.push_back(
        {window,
         top_domains(source,
                     TopDomainsOptions{proxy::TrafficClass::kCensored,
                                       options.k, window},
                     threads)});
  }
  return out;
}

}  // namespace syrwatch::analysis
