#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "analysis/dataset.h"
#include "net/domain.h"
#include "net/ipv4.h"
#include "proxy/log_record.h"
#include "util/string_pool.h"

namespace syrwatch::analysis {

/// The streaming backend's row store (DESIGN.md §4.12): an append-only,
/// *arrival-order* Row vector over a shared StringPool — the in-memory
/// shape a spool tail accumulates into. Unlike Dataset it never sorts
/// (the stream is consumed in WAL order, and incremental ordinals must be
/// stable), and unlike Dataset's lazy caches its per-host derived values
/// (registrable domain, IPv4 parse) resolve *eagerly at add()*, so scans
/// of already-ingested rows are pure reads at any thread count with no
/// warm-up step.
///
/// Concurrency contract: add() and scans must not overlap. The intended
/// driver is a single poll loop — drain the tail, then scan; analyzers
/// may parallelize each scan freely (reads only).
class StreamBuffer {
 public:
  StreamBuffer() : pool_(std::make_shared<util::StringPool>()) {
    // Id 0 = "" is pre-interned by the pool.
    domain_by_host_.push_back(util::StringPool::kEmpty);
    ip_state_.push_back(1);  // "" is not an IP
    ip_by_host_.push_back(0);
  }

  void add(const proxy::LogRecord& record) {
    Row row;
    row.time = record.time;
    row.user_hash = record.user_hash;
    row.host = pool_->intern(record.url.host);
    row.path = pool_->intern(record.url.path);
    row.query = pool_->intern(record.url.query);
    row.agent = pool_->intern(record.user_agent);
    row.categories = pool_->intern(record.categories);
    row.method = pool_->intern(record.method);
    if (record.dest_ip) {
      row.dest_ip = record.dest_ip->value();
      row.has_dest_ip = true;
    }
    row.port = record.url.port;
    row.status = record.status;
    row.proxy_index = record.proxy_index;
    row.scheme = record.url.scheme;
    row.result = record.filter_result;
    row.exception = record.exception;
    resolve_host(row.host);
    if (rows_.empty() || row.time < first_time_) first_time_ = row.time;
    if (rows_.empty() || row.time > last_time_) last_time_ = row.time;
    rows_.push_back(row);
  }

  std::size_t size() const noexcept { return rows_.size(); }
  const std::vector<Row>& rows() const noexcept { return rows_; }
  const std::shared_ptr<util::StringPool>& pool() const noexcept {
    return pool_;
  }

  std::string_view view(util::StringPool::Id id) const {
    return pool_->view(id);
  }
  std::string_view domain(const Row& row) const {
    return pool_->view(domain_by_host_[row.host]);
  }
  bool host_is_ip(const Row& row) const noexcept {
    return ip_state_[row.host] == 2;
  }
  std::uint32_t host_ip(const Row& row) const noexcept {
    return ip_by_host_[row.host];
  }

  /// §3.3 class of the row — Dataset::cls.
  proxy::TrafficClass cls(const Row& row) const noexcept {
    if (row.result == proxy::FilterResult::kProxied)
      return proxy::TrafficClass::kProxied;
    return proxy::classify_by_exception(row.result, row.exception);
  }

  /// Min/max timestamps over everything ingested so far, tracked at
  /// add() — the stream is only approximately time-ordered (WAL order),
  /// so first_time() can move backwards across polls. Meaningless while
  /// empty.
  std::int64_t first_time() const noexcept { return first_time_; }
  std::int64_t last_time() const noexcept { return last_time_; }

 private:
  void resolve_host(util::StringPool::Id host) {
    if (host < domain_by_host_.size()) return;  // seen before
    // Pool ids are dense and issued in order, so at most one new host
    // per add() — but interning path/query/etc. may have minted ids
    // between hosts; fill every gap so indexing stays O(1).
    while (domain_by_host_.size() < pool_->size()) {
      const auto id =
          static_cast<util::StringPool::Id>(domain_by_host_.size());
      const std::string_view s = pool_->view(id);
      domain_by_host_.push_back(pool_->intern(net::registrable_domain(s)));
      if (const auto ip = net::Ipv4Addr::parse(s)) {
        ip_state_.push_back(2);
        ip_by_host_.push_back(ip->value());
      } else {
        ip_state_.push_back(1);
        ip_by_host_.push_back(0);
      }
    }
  }

  std::shared_ptr<util::StringPool> pool_;
  std::vector<Row> rows_;
  // pool id -> derived values, resolved eagerly (indexed by *any* pool
  // id; only host ids are ever queried).
  std::vector<util::StringPool::Id> domain_by_host_;
  std::vector<std::uint8_t> ip_state_;  // 1 = not an ip, 2 = ip
  std::vector<std::uint32_t> ip_by_host_;
  std::int64_t first_time_ = 0;
  std::int64_t last_time_ = 0;
};

}  // namespace syrwatch::analysis
