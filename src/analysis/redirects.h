#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/options.h"
#include "analysis/scan.h"

namespace syrwatch::analysis {

/// Table 7: hosts (full hostnames, not registrable domains — the paper
/// lists www.facebook.com and ar-ar.facebook.com separately) raising
/// policy_redirect, ranked by request count. PROXIED replays of redirect
/// decisions count too, as they do in the leak.
struct RedirectHost {
  std::string host;
  std::uint64_t requests = 0;
  double share = 0.0;
};

std::vector<RedirectHost> redirect_hosts(
    const LogSource& source, const RedirectHostsOptions& options = {},
    std::size_t threads = 1);

/// §5.3's negative finding: redirected clients never re-appear with a
/// follow-up request within `window_seconds`, implying the redirect target
/// bypasses the logged proxies. Returns the number of redirects for which
/// a same-user request to a *different* host follows within the window.
std::uint64_t redirect_followups(
    const LogSource& source, const RedirectFollowupOptions& options = {},
    std::size_t threads = 1);

}  // namespace syrwatch::analysis
