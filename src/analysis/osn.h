#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scan.h"
#include "analysis/top_domains.h"

namespace syrwatch::analysis {

/// §6's social-media study.

/// The representative OSN set the paper examines (top networks plus three
/// popular in Arabic-speaking countries).
const std::vector<std::string>& studied_social_networks();

/// Table 13: per-OSN censored/allowed/proxied counts, ranked by censored.
std::vector<DomainClassCounts> osn_censorship(const LogSource& source,
                                              std::size_t threads = 1);

/// Table 14: Facebook pages touched by the "Blocked sites" custom
/// category, with per-page censored/allowed/proxied counts. A page is
/// "blocked" when at least one request to it carries the custom category
/// label; pages whose requests are all default-categorized never appear —
/// the paper's narrow-targeting finding.
struct FacebookPage {
  std::string page;  // path without the leading '/'
  std::uint64_t censored = 0;
  std::uint64_t allowed = 0;
  std::uint64_t proxied = 0;
};

std::vector<FacebookPage> blocked_facebook_pages(const LogSource& source,
                                                 std::size_t threads = 1);

}  // namespace syrwatch::analysis
