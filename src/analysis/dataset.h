#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/url.h"
#include "proxy/log_record.h"
#include "util/string_pool.h"

namespace syrwatch::analysis {

/// One log record in columnar/interned form (~56 bytes). Host, path,
/// query, agent, category and method strings live in the dataset's shared
/// StringPool, so millions of records fit comfortably in memory.
struct Row {
  std::int64_t time = 0;
  std::uint64_t user_hash = 0;
  util::StringPool::Id host = util::StringPool::kEmpty;
  util::StringPool::Id path = util::StringPool::kEmpty;
  util::StringPool::Id query = util::StringPool::kEmpty;
  util::StringPool::Id agent = util::StringPool::kEmpty;
  util::StringPool::Id categories = util::StringPool::kEmpty;
  util::StringPool::Id method = util::StringPool::kEmpty;
  std::uint32_t dest_ip = 0;
  std::uint16_t port = 0;
  std::uint16_t status = 0;
  std::uint8_t proxy_index = 0;
  net::Scheme scheme = net::Scheme::kHttp;
  proxy::FilterResult result = proxy::FilterResult::kObserved;
  proxy::ExceptionId exception = proxy::ExceptionId::kNone;
  bool has_dest_ip = false;
};

/// An analyzable log collection — the in-memory analogue of one of the
/// paper's datasets (Table 1). Datasets derived from the same source share
/// one string pool, so Dsample/Duser/Ddenied cost only their row vectors.
class Dataset {
 public:
  Dataset();
  explicit Dataset(std::shared_ptr<util::StringPool> pool);

  void add(const proxy::LogRecord& record);

  /// Sorts rows by time. Call once after the last add().
  void finalize();

  std::size_t size() const noexcept { return rows_.size(); }
  const std::vector<Row>& rows() const noexcept { return rows_; }
  const std::shared_ptr<util::StringPool>& pool() const noexcept {
    return pool_;
  }

  std::string_view view(util::StringPool::Id id) const {
    return pool_->view(id);
  }
  std::string_view host(const Row& row) const { return view(row.host); }
  std::string_view path(const Row& row) const { return view(row.path); }
  std::string_view query(const Row& row) const { return view(row.query); }

  /// Registrable domain of the row's host (cached per host id). The cache
  /// fills lazily, so the *first* call for a host mutates shared state:
  /// call warm_domain_cache() before handing the dataset to concurrent
  /// readers (DatasetBundle::derive does this for all four datasets).
  std::string_view domain(const Row& row) const;

  /// Dotted-quad parse of the row's host (cached per host id, same lazy
  /// contract as domain()). The columnar backend precomputes the identical
  /// values per dictionary id, so the scan layer sees one surface.
  bool host_is_ip(const Row& row) const;
  std::uint32_t host_ip(const Row& row) const;

  /// Pre-resolves the registrable domain and IPv4 parse of every row so
  /// that subsequent domain()/host_is_ip()/host_ip() calls are pure reads,
  /// making the dataset safe to share across analyzer threads. Idempotent;
  /// warmed() reports whether it already ran (the scan layer checks it
  /// before fanning a parallel scan out over the rows).
  void warm_domain_cache() const;
  bool warmed() const noexcept { return warmed_; }

  /// §3.3 class of the row.
  proxy::TrafficClass cls(const Row& row) const noexcept {
    if (row.result == proxy::FilterResult::kProxied)
      return proxy::TrafficClass::kProxied;
    return proxy::classify_by_exception(row.result, row.exception);
  }

  /// host + path + "?query" — the text the keyword filter scanned.
  std::string filter_text(const Row& row) const;

  /// New dataset (sharing this pool) with the rows matching the predicate.
  Dataset filter(const std::function<bool(const Row&)>& predicate) const;

 private:
  std::shared_ptr<util::StringPool> pool_;
  std::vector<Row> rows_;
  // host pool id -> registrable-domain pool id, filled lazily.
  mutable std::vector<util::StringPool::Id> domain_cache_;
  // host pool id -> IPv4 parse, filled lazily (0 = unknown, 1 = not an
  // ip, 2 = ip with the value in ip_cache_).
  mutable std::vector<std::uint8_t> ip_state_;
  mutable std::vector<std::uint32_t> ip_cache_;
  mutable bool warmed_ = false;
};

/// The paper's four datasets (Table 1), derived from one generated log.
struct DatasetBundle {
  Dataset full;    // Dfull: everything the leak contains
  Dataset sample;  // Dsample: 4% uniform sample of Dfull
  Dataset user;    // Duser: SG-42, July 22-23, hashed client ids
  Dataset denied;  // Ddenied: x-exception-id != '-'

  /// Derives sample/user/denied from a finalized `full` and warms every
  /// dataset's domain cache so the bundle is safe for concurrent
  /// analyzers. `threads` parallelizes the three derivations (the result
  /// is identical for any value).
  static DatasetBundle derive(Dataset full, std::uint64_t sample_seed,
                              double sample_rate = 0.04,
                              std::size_t threads = 1);
};

}  // namespace syrwatch::analysis
