#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/columnar.h"
#include "analysis/dataset.h"
#include "analysis/stream_buffer.h"
#include "proxy/log_io.h"
#include "util/parallel.h"

namespace syrwatch::analysis {

/// The unified scan layer (DESIGN.md §4.11). Every analyzer is written
/// once against LogSource — a record cursor with three backends, the row
/// Dataset, the mmap'd SYRCOL1 container (ColumnarLog), and the streaming
/// StreamBuffer (§4.12) — and runs as a partitioned parallel scan: each
/// worker fills a private Partial from one partition's records in row
/// order, and the analyzer's fold merges the partials in partition order.
/// Because folds are required to be partition-layout independent
/// (columnar partitions are container blocks, dataset and stream
/// partitions are fixed row ranges) and to reproduce the sequential row
/// scan's observable state, every analyzer's output is byte-identical
/// across backends and thread counts.

/// One log record as the scan layer presents it: scalar columns plus
/// zero-copy views into the backend's string storage (the Dataset's pool
/// or the container's mapping — both outlive any scan). `host_id` and
/// `agent_id` are backend-local interned ids: equal ids ⇔ equal strings
/// within one source, so analyzers may group by them but must never let
/// the id *values* reach their output.
struct Record {
  std::uint64_t ordinal = 0;  ///< global row index in the base source
  std::int64_t time = 0;
  std::uint64_t user_hash = 0;
  std::string_view method, host, path, query, agent, categories;
  std::string_view domain;  ///< registrable domain of host (eTLD+1)
  std::uint32_t host_id = 0;
  std::uint32_t agent_id = 0;
  std::uint32_t dest_ip = 0;
  std::uint32_t host_ip = 0;  ///< dotted-quad parse, valid when host_is_ip
  std::uint16_t port = 0;
  std::uint16_t status = 0;
  std::uint8_t proxy_index = 0;
  net::Scheme scheme = net::Scheme::kHttp;
  proxy::FilterResult result = proxy::FilterResult::kObserved;
  proxy::ExceptionId exception = proxy::ExceptionId::kNone;
  proxy::TrafficClass cls = proxy::TrafficClass::kAllowed;
  bool has_dest_ip = false;
  bool host_is_ip = false;

  /// host + path + "?query" — the text the keyword filter scanned
  /// (Dataset::filter_text).
  std::string filter_text() const {
    std::string text{host};
    text += path;
    if (!query.empty()) {
      text += '?';
      text += query;
    }
    return text;
  }
};

/// A source of records: a cheap, copyable view over one backend, plus an
/// optional row mask for derived datasets (Dsample/Duser/Ddenied carved
/// out of a file-backed Dfull without materializing rows). Constructed
/// implicitly from either backend, so one analyzer signature
/// `f(const LogSource&, …, threads)` serves both call styles.
class LogSource {
 public:
  /// Rows per dataset partition. Fixed — never derived from the thread
  /// count — so the partial sequence an analyzer folds is the same for
  /// every `threads` value. (Columnar partitions are container blocks,
  /// whose size the writer fixed; folds must not assume the two layouts
  /// align.)
  static constexpr std::size_t kRowsPerPartition = 64 * 1024;

  LogSource(const Dataset& dataset)  // NOLINT(google-explicit-constructor)
      : dataset_(&dataset), rows_(dataset.size()) {}
  LogSource(const ColumnarLog& log)  // NOLINT(google-explicit-constructor)
      : columnar_(&log), rows_(log.rows()) {}
  LogSource(const StreamBuffer& buf)  // NOLINT(google-explicit-constructor)
      : stream_(&buf), rows_(buf.size()) {}

  /// Records this source yields (after any mask).
  std::uint64_t rows() const noexcept { return rows_; }

  /// Records of the *underlying backend*, before any mask — the ordinal
  /// space Record::ordinal and masks index, and scan_increment's
  /// high-water domain. For the streaming backend this is live (the
  /// buffer may have grown since this view was constructed).
  std::uint64_t base_rows() const noexcept {
    if (columnar_ != nullptr) return columnar_->rows();
    if (stream_ != nullptr) return stream_->size();
    return dataset_->size();
  }

  /// Scan partitions. Contiguous, in row order; a masked source keeps its
  /// base's partition layout and simply yields fewer records.
  std::size_t partitions() const noexcept {
    if (columnar_ != nullptr) return columnar_->block_count();
    const std::size_t n =
        stream_ != nullptr ? stream_->size() : dataset_->size();
    return (n + kRowsPerPartition - 1) / kRowsPerPartition;
  }

  /// One past the last base ordinal partition `p` covers — the bound
  /// scan_increment uses to skip fully-consumed partitions.
  std::uint64_t partition_base_end(std::size_t p) const noexcept {
    if (columnar_ != nullptr) {
      const colfmt::BlockInfo& b = columnar_->reader().blocks()[p];
      return b.row_base + b.rows;
    }
    const std::uint64_t end = (p + 1) * kRowsPerPartition;
    return std::min<std::uint64_t>(end, base_rows());
  }

  /// True min/max record timestamps. Precondition: rows() > 0. The
  /// Dataset backend answers from its sorted rows; containers preserve
  /// emission order — which is only approximately time-sorted — so the
  /// columnar backend computes the bounds with one parallel scan
  /// (identical result for any `threads`); masked views resolved theirs
  /// at construction.
  struct TimeBounds {
    std::int64_t first = 0;
    std::int64_t last = 0;
  };
  TimeBounds time_bounds(std::size_t threads = 1) const;

  /// Derived source yielding only the records `keep` accepts — the scan
  /// layer's replacement for materializing Dataset::filter copies. The
  /// mask is resolved eagerly (deterministically, for any `threads`), so
  /// scanning the view afterwards is pure reads.
  LogSource filtered(const std::function<bool(const Record&)>& keep,
                     std::size_t threads = 1) const;

  /// Derived source selecting records by base ordinal (mask[ordinal] != 0)
  /// — the hook for selections that are not per-record predicates, e.g.
  /// Dsample's sequential Bernoulli draw. `threads` parallelizes the
  /// view's row-count/time-bounds resolution (identical for any value).
  LogSource masked(std::shared_ptr<const std::vector<std::uint8_t>> mask,
                   std::size_t threads = 1) const;

  /// Makes a subsequent multi-threaded scan safe: warms the Dataset
  /// backend's lazy caches (no-op when already warm, or columnar /
  /// stream — their per-id tables are resolved eagerly).
  void prepare(std::size_t threads) const {
    if (threads > 1 && dataset_ != nullptr && !dataset_->warmed())
      dataset_->warm_domain_cache();
  }

  /// Invokes `fn(const Record&)` for every record of partition `p`, in row
  /// order. Thread-safe after prepare() (or single-threaded anyway: the
  /// Dataset backend's lazy caches then fill exactly as the old row
  /// analyzers did).
  template <typename Fn>
  void scan_partition(std::size_t p, Fn&& fn) const {
    if (columnar_ != nullptr) {
      const colfmt::DecodedBlock block = columnar_->reader().decode(p);
      const std::uint64_t base = columnar_->reader().blocks()[p].row_base;
      for (std::size_t r = 0; r < block.rows; ++r) {
        const std::uint64_t ordinal = base + r;
        if (mask_ && (*mask_)[static_cast<std::size_t>(ordinal)] == 0)
          continue;
        fn(from_block(block, r, ordinal));
      }
      return;
    }
    if (stream_ != nullptr) {
      const auto& rows = stream_->rows();
      const std::size_t begin = p * kRowsPerPartition;
      const std::size_t end =
          std::min(rows.size(), begin + kRowsPerPartition);
      for (std::size_t i = begin; i < end; ++i) {
        if (mask_ && (*mask_)[i] == 0) continue;
        fn(from_stream_row(rows[i], i));
      }
      return;
    }
    const auto& rows = dataset_->rows();
    const std::size_t begin = p * kRowsPerPartition;
    const std::size_t end = std::min(rows.size(), begin + kRowsPerPartition);
    for (std::size_t i = begin; i < end; ++i) {
      if (mask_ && (*mask_)[i] == 0) continue;
      fn(from_row(rows[i], i));
    }
  }

 private:
  Record from_row(const Row& row, std::uint64_t ordinal) const {
    const Dataset& d = *dataset_;
    Record r;
    r.ordinal = ordinal;
    r.time = row.time;
    r.user_hash = row.user_hash;
    r.method = d.view(row.method);
    r.host = d.view(row.host);
    r.path = d.view(row.path);
    r.query = d.view(row.query);
    r.agent = d.view(row.agent);
    r.categories = d.view(row.categories);
    r.domain = d.domain(row);
    r.host_id = row.host;
    r.agent_id = row.agent;
    r.dest_ip = row.dest_ip;
    r.host_is_ip = d.host_is_ip(row);
    r.host_ip = r.host_is_ip ? d.host_ip(row) : 0;
    r.port = row.port;
    r.status = row.status;
    r.proxy_index = row.proxy_index;
    r.scheme = row.scheme;
    r.result = row.result;
    r.exception = row.exception;
    r.cls = d.cls(row);
    r.has_dest_ip = row.has_dest_ip;
    return r;
  }

  Record from_block(const colfmt::DecodedBlock& b, std::size_t i,
                    std::uint64_t ordinal) const {
    const ColumnarLog& log = *columnar_;
    const colfmt::Reader& reader = log.reader();
    Record r;
    r.ordinal = ordinal;
    r.time = b.time[i];
    r.user_hash = b.user_hash[i];
    r.method = reader.view(b.method[i]);
    r.host = reader.view(b.host[i]);
    r.path = reader.view(b.path[i]);
    r.query = reader.view(b.query[i]);
    r.agent = reader.view(b.agent[i]);
    r.categories = reader.view(b.categories[i]);
    r.domain = log.domain(b.host[i]);
    r.host_id = b.host[i];
    r.agent_id = b.agent[i];
    r.dest_ip = b.has_dest[i] != 0 ? b.dest_ip[i] : 0;
    r.host_is_ip = log.host_is_ip(b.host[i]);
    r.host_ip = r.host_is_ip ? log.host_ip(b.host[i]) : 0;
    r.port = b.port[i];
    r.status = b.status[i];
    r.proxy_index = b.proxy_index[i];
    r.scheme = static_cast<net::Scheme>(b.scheme[i]);
    r.result = static_cast<proxy::FilterResult>(b.filter_result[i]);
    r.exception = static_cast<proxy::ExceptionId>(b.exception[i]);
    r.cls = ColumnarLog::cls(b.filter_result[i], b.exception[i]);
    r.has_dest_ip = b.has_dest[i] != 0;
    return r;
  }

  Record from_stream_row(const Row& row, std::uint64_t ordinal) const {
    const StreamBuffer& s = *stream_;
    Record r;
    r.ordinal = ordinal;
    r.time = row.time;
    r.user_hash = row.user_hash;
    r.method = s.view(row.method);
    r.host = s.view(row.host);
    r.path = s.view(row.path);
    r.query = s.view(row.query);
    r.agent = s.view(row.agent);
    r.categories = s.view(row.categories);
    r.domain = s.domain(row);
    r.host_id = row.host;
    r.agent_id = row.agent;
    r.dest_ip = row.dest_ip;
    r.host_is_ip = s.host_is_ip(row);
    r.host_ip = r.host_is_ip ? s.host_ip(row) : 0;
    r.port = row.port;
    r.status = row.status;
    r.proxy_index = row.proxy_index;
    r.scheme = row.scheme;
    r.result = row.result;
    r.exception = row.exception;
    r.cls = s.cls(row);
    r.has_dest_ip = row.has_dest_ip;
    return r;
  }

  const Dataset* dataset_ = nullptr;
  const ColumnarLog* columnar_ = nullptr;
  const StreamBuffer* stream_ = nullptr;
  /// Base-ordinal keep mask of a derived view; null = all records.
  std::shared_ptr<const std::vector<std::uint8_t>> mask_;
  std::uint64_t rows_ = 0;
  /// Cached time bounds of a masked view (the base backends answer from
  /// their own storage).
  std::int64_t first_time_ = 0;
  std::int64_t last_time_ = 0;
};

/// The scan driver: fills one default-constructed Partial per partition —
/// each from its partition's records, in row order, on whichever worker
/// claims it — and returns the partials in partition order for the
/// analyzer's fold. `scan(Partial&, const Record&)` must touch nothing
/// shared. threads <= 1 runs inline and is the reference execution.
template <typename Partial, typename Scan>
std::vector<Partial> scan_partials(const LogSource& source,
                                   std::size_t threads, const Scan& scan) {
  source.prepare(threads);
  std::vector<Partial> partials(source.partitions());
  util::parallel_for(source.partitions(), threads, [&](std::size_t p) {
    source.scan_partition(p,
                          [&](const Record& r) { scan(partials[p], r); });
  });
  return partials;
}

/// scan_partials + fold in one call: `fold(std::vector<Partial>&&)`
/// produces the analyzer's result. The fold runs sequentially over the
/// partials in partition order; to be backend- and thread-count-invariant
/// it must depend only on the concatenated record sequence (see DESIGN.md
/// §4.11 for the determinism rules).
template <typename Partial, typename Scan, typename Fold>
auto parallel_scan(const LogSource& source, std::size_t threads,
                   const Scan& scan, Fold&& fold) {
  return fold(scan_partials<Partial>(source, threads, scan));
}

/// The incremental-emission API beside scan_partials (DESIGN.md §4.12):
/// invokes `fn(const Record&)` for every record whose *base ordinal* is
/// in [from, base_rows()), in row order, and returns the new high-water
/// mark. Feeding a growing source (the streaming backend between polls,
/// or any backend being replayed into a streaming analyzer) is then
///
///   hw = scan_increment(source, hw, [&](const Record& r) { ... });
///
/// Emission is sequential by design — streaming consumers are
/// order-dependent (reservoirs, saturated sketches) — and visits masked
/// sources' surviving records only, though the returned mark always
/// advances over the full base ordinal space.
template <typename Fn>
std::uint64_t scan_increment(const LogSource& source, std::uint64_t from,
                             Fn&& fn) {
  const std::uint64_t end = source.base_rows();
  if (from >= end) return end;
  const std::size_t parts = source.partitions();
  for (std::size_t p = 0; p < parts; ++p) {
    if (source.partition_base_end(p) <= from) continue;
    source.scan_partition(p, [&](const Record& r) {
      if (r.ordinal >= from) fn(r);
    });
  }
  return end;
}

/// Why open_source refused an input.
enum class SourceOpenErrorCode : std::uint8_t {
  kNotFound,            ///< path missing or unreadable
  kBadMagic,            ///< neither a SYRCOL1 container nor a CSV log
  kUnsupportedVersion,  ///< container magic with an unknown version
  kTornTail,            ///< file ends mid-record (strict mode refuses)
  kMalformed,           ///< a record failed validation (strict mode)
};

std::string_view to_string(SourceOpenErrorCode code) noexcept;

/// Typed failure from open_source: what() carries the path and detail,
/// code() the machine-readable reason (the CLI maps kTornTail to "re-run
/// with --lenient", tests assert on it).
class SourceOpenError : public std::runtime_error {
 public:
  SourceOpenError(SourceOpenErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  SourceOpenErrorCode code() const noexcept { return code_; }

 private:
  SourceOpenErrorCode code_;
};

struct SourceOptions {
  /// "auto" (sniff the first bytes), "csv", or "col".
  std::string format = "auto";
  /// Recover damaged inputs (torn tails truncated, malformed rows
  /// skipped and tallied) instead of throwing.
  bool lenient = false;
  /// Parallelizes the columnar dictionary precomputation (identical
  /// result for any value).
  std::size_t threads = 1;
};

/// An on-disk log opened for analysis: whichever backend the bytes
/// called for (row Dataset for CSV, mmap'd ColumnarLog for SYRCOL1),
/// plus the recovery stats a lenient open produced. LogSource views
/// handed to analyzers stay valid as long as this object lives.
class OpenedSource {
 public:
  LogSource source() const {
    return columnar_ ? LogSource{*columnar_} : LogSource{*dataset_};
  }
  std::uint64_t rows() const { return source().rows(); }
  bool is_columnar() const noexcept { return columnar_ != nullptr; }
  /// The container backend; only valid when is_columnar().
  const ColumnarLog& columnar() const { return *columnar_; }
  /// CSV lenient-parse stats (zeroed for containers / strict opens).
  const proxy::LogReadStats& read_stats() const noexcept {
    return read_stats_;
  }
  /// Container lenient-recovery stats (zeroed for CSV / strict opens).
  const colfmt::RecoveryStats& recovery() const noexcept {
    return recovery_;
  }

 private:
  friend OpenedSource open_source(const std::string&, const SourceOptions&);
  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<ColumnarLog> columnar_;
  proxy::LogReadStats read_stats_;
  colfmt::RecoveryStats recovery_{};
};

/// The one format-sniffing open path every consumer shares — promoted
/// from syrwatchctl's tool-local loader. Throws SourceOpenError with a
/// typed code on refusal (std::invalid_argument for a bad
/// SourceOptions::format value).
OpenedSource open_source(const std::string& path,
                         const SourceOptions& options = {});

}  // namespace syrwatch::analysis
