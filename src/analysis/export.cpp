#include "analysis/export.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "policy/syria.h"
#include "util/atomic_io.h"
#include "util/stats.h"
#include "workload/diurnal.h"

namespace syrwatch::analysis {

void export_port_distribution(std::ostream& out,
                              const std::vector<PortCount>& ports) {
  out << "#port\tallowed\tcensored\n";
  for (const auto& entry : ports)
    out << entry.port << '\t' << entry.allowed << '\t' << entry.censored
        << '\n';
}

void export_domain_distribution(std::ostream& out,
                                const DomainDistribution& dist) {
  out << "#domains_with_count\trequest_count\n";
  for (const auto& [requests, domains] : dist.domains_by_request_count)
    out << domains << '\t' << requests << '\n';
}

void export_user_activity_cdf(std::ostream& out, const UserStats& stats) {
  out << "#requests\tcdf_censored\tcdf_clean\n";
  auto share_below = [](const std::vector<double>& sorted, double x) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    return sorted.empty() ? 0.0
                          : static_cast<double>(it - sorted.begin()) /
                                static_cast<double>(sorted.size());
  };
  // Merged support of both groups, deduplicated.
  std::vector<double> support = stats.requests_per_censored_user;
  support.insert(support.end(), stats.requests_per_clean_user.begin(),
                 stats.requests_per_clean_user.end());
  std::sort(support.begin(), support.end());
  support.erase(std::unique(support.begin(), support.end()), support.end());
  for (const double x : support) {
    out << x << '\t' << share_below(stats.requests_per_censored_user, x)
        << '\t' << share_below(stats.requests_per_clean_user, x) << '\n';
  }
}

void export_time_series(std::ostream& out, const TrafficTimeSeries& series) {
  out << "#unix_time\tallowed\tcensored\n";
  for (std::size_t bin = 0; bin < series.allowed.bin_count(); ++bin) {
    out << series.allowed.bin_start(bin) << '\t' << series.allowed.at(bin)
        << '\t' << series.censored.at(bin) << '\n';
  }
}

void export_rcv(std::ostream& out, const RcvSeries& series) {
  out << "#unix_time\trcv\n";
  for (std::size_t bin = 0; bin < series.rcv.size(); ++bin) {
    out << series.origin + static_cast<std::int64_t>(bin) * series.bin_seconds
        << '\t' << series.rcv[bin] << '\n';
  }
}

void export_proxy_load(std::ostream& out, const ProxyLoadSeries& series,
                       bool censored) {
  out << "#unix_time";
  for (std::size_t p = 0; p < policy::kProxyCount; ++p)
    out << '\t' << policy::proxy_name(p);
  out << '\n';
  for (std::size_t bin = 0; bin < series.bin_count(); ++bin) {
    out << series.origin +
               static_cast<std::int64_t>(bin) * series.bin_seconds;
    for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
      out << '\t'
          << (censored ? series.censored_share(p, bin)
                       : series.total_share(p, bin));
    }
    out << '\n';
  }
}

void export_hourly(std::ostream& out, const util::BinnedCounter& series) {
  out << "#unix_time\trequests\n";
  for (std::size_t bin = 0; bin < series.bin_count(); ++bin)
    out << series.bin_start(bin) << '\t' << series.at(bin) << '\n';
}

void export_rfilter(std::ostream& out, const RfilterSeries& series) {
  out << "#unix_time\trfilter\thas_traffic\n";
  for (std::size_t bin = 0; bin < series.rfilter.size(); ++bin) {
    out << series.origin + static_cast<std::int64_t>(bin) * series.bin_seconds
        << '\t' << series.rfilter[bin] << '\t'
        << (series.has_traffic[bin] ? 1 : 0) << '\n';
  }
}

void export_cdf(std::ostream& out, std::vector<double> samples) {
  out << "#x\tcdf\n";
  for (const auto& point : util::empirical_cdf(std::move(samples)))
    out << point.x << '\t' << point.y << '\n';
}

std::size_t export_all_figures(const std::string& directory,
                               const LogSource& full, const LogSource& user,
                               const category::Categorizer& categorizer,
                               const tor::RelayDirectory& relays,
                               std::size_t threads) {
  std::size_t written = 0;
  // Each figure renders into memory and lands on disk via temp + rename:
  // a crash or full disk can never leave a torn half-figure behind, and a
  // write failure aborts the export with the failing path in the message
  // rather than silently shrinking the figure count.
  auto commit = [&](const char* name, const std::ostringstream& body) {
    util::atomic_write_file(directory + "/" + name, body.str());
    ++written;
  };

  {
    std::ostringstream out;
    export_port_distribution(out, port_distribution(full, 0, threads));
    commit("fig1_ports.tsv", out);
  }
  for (const auto& [name, cls] :
       {std::pair{"fig2_allowed.tsv", proxy::TrafficClass::kAllowed},
        std::pair{"fig2_censored.tsv", proxy::TrafficClass::kCensored},
        std::pair{"fig2_denied.tsv", proxy::TrafficClass::kError}}) {
    std::ostringstream out;
    export_domain_distribution(out, domain_distribution(full, cls, threads));
    commit(name, out);
  }
  {
    std::ostringstream out;
    export_user_activity_cdf(out, user_stats(user, threads));
    commit("fig4b_user_activity.tsv", out);
  }
  {
    std::ostringstream out;
    export_time_series(
        out, traffic_time_series(
                 full,
                 TrafficSeriesOptions{
                     {workload::at(8, 1), workload::at(8, 7)}, {300}},
                 threads));
    commit("fig5_timeseries.tsv", out);
  }
  {
    std::ostringstream out;
    export_rcv(out,
               rcv_series(full,
                          RcvOptions{
                              {workload::at(8, 3), workload::at(8, 4)},
                              {300}},
                          threads));
    commit("fig6_rcv.tsv", out);
  }
  {
    const auto load = proxy_load_series(
        full, {{workload::at(8, 3), workload::at(8, 5)}, {3600}}, threads);
    std::ostringstream out_total;
    export_proxy_load(out_total, load, /*censored=*/false);
    commit("fig7_load_total.tsv", out_total);
    std::ostringstream out_censored;
    export_proxy_load(out_censored, load, /*censored=*/true);
    commit("fig7_load_censored.tsv", out_censored);
  }
  {
    std::ostringstream out;
    export_hourly(
        out, tor_hourly_series(
                 full, relays,
                 TorHourlyOptions{{workload::at(8, 1), workload::at(8, 7)}},
                 threads));
    commit("fig8a_tor_hourly.tsv", out);
  }
  {
    std::ostringstream out;
    export_rfilter(out, rfilter_series(full, relays, policy::kTorCensorProxy,
                                       workload::at(8, 1), workload::at(8, 7),
                                       3600, threads));
    commit("fig9_rfilter.tsv", out);
  }
  {
    const auto anon = anonymizer_stats(full, categorizer, threads);
    std::ostringstream out_a;
    export_cdf(out_a, anon.requests_per_clean_host);
    commit("fig10a_clean_host_requests.tsv", out_a);
    std::ostringstream out_b;
    export_cdf(out_b, anon.allowed_censored_ratio);
    commit("fig10b_allowed_censored_ratio.tsv", out_b);
  }
  return written;
}

}  // namespace syrwatch::analysis
