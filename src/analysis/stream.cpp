#include "analysis/stream.h"

#include <cerrno>
#include <stdexcept>
#include <utility>

namespace syrwatch::analysis {

namespace {

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

void SpoolTail::resume_at(std::uint64_t offset) {
  if (polled_)
    throw std::logic_error("SpoolTail::resume_at after the first poll");
  consumed_ = offset;
  // The header is the first line of the file; a resumed tail positioned
  // past byte 0 will only ever see record lines.
  expect_header_ = offset == 0;
}

void SpoolTail::consume_line(
    std::string&& line,
    const std::function<void(const proxy::LogRecord&)>& sink,
    std::size_t& delivered) {
  ++stats_.lines;
  strip_cr(line);
  if (expect_header_) {
    expect_header_ = false;
    if (line == proxy::log_csv_header()) {
      stats_.header_present = true;
      return;
    }
    // Headerless spool: fall through and try the line as data, exactly
    // like read_log_lenient.
  }
  if (line.empty()) {
    ++stats_.empty_lines;
    return;
  }
  ++stats_.data_lines;
  proxy::ParseDiagnosis diagnosis;
  if (auto record = proxy::from_csv(line, &diagnosis)) {
    ++stats_.recovered;
    sink(*record);
    ++delivered;
    return;
  }
  const auto reason = static_cast<std::size_t>(diagnosis.error);
  ++stats_.skipped[reason];
  if (stats_.first_error_line[reason] == 0)
    stats_.first_error_line[reason] = stats_.lines;
}

std::size_t SpoolTail::poll(
    const std::function<void(const proxy::LogRecord&)>& sink) {
  polled_ = true;
  util::VfsStat st;
  if (!vfs_->stat(path_, st)) return 0;  // spool not created yet

  // Rotation/truncation detection: a different inode means the file was
  // replaced (rotated) under us; a size below our position means it was
  // truncated in place. Either way the bytes we were positioned in are
  // gone — reopen from the top of the new content and record the gap
  // rather than wedging the watch loop forever.
  if ((inode_ != 0 && st.inode != inode_) || st.size < consumed_) {
    ++gaps_;
    consumed_ = 0;
    pending_.clear();
    expect_header_ = true;
  }
  inode_ = st.inode;

  const int fd = vfs_->open(path_, util::OpenMode::kRead);
  if (fd < 0) return 0;  // raced an unlink between stat and open

  std::size_t delivered = 0;
  char chunk[64 * 1024];
  int retries = 0;
  for (;;) {
    const long got = vfs_->read(fd, chunk, sizeof(chunk), consumed_);
    if (got < 0) {
      if (errno == EINTR && ++retries <= util::kMaxTransientRetries)
        continue;
      break;  // transient read failure: deliver what we have, next poll
    }
    if (got == 0) break;  // EOF
    retries = 0;
    const auto size = static_cast<std::size_t>(got);
    consumed_ += size;
    std::size_t start = 0;
    for (std::size_t i = 0; i < size; ++i) {
      if (chunk[i] != '\n') continue;
      pending_.append(chunk + start, i - start);
      consume_line(std::move(pending_), sink, delivered);
      pending_.clear();
      start = i + 1;
    }
    pending_.append(chunk + start, size - start);
  }
  vfs_->close(fd);
  // Whatever is left in pending_ is the torn-tail candidate: it stays
  // buffered until a later append completes the line.
  return delivered;
}

}  // namespace syrwatch::analysis
