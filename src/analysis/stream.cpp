#include "analysis/stream.h"

#include <fstream>
#include <stdexcept>
#include <utility>

namespace syrwatch::analysis {

namespace {

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

}  // namespace

void SpoolTail::resume_at(std::uint64_t offset) {
  if (polled_)
    throw std::logic_error("SpoolTail::resume_at after the first poll");
  consumed_ = offset;
  // The header is the first line of the file; a resumed tail positioned
  // past byte 0 will only ever see record lines.
  expect_header_ = offset == 0;
}

void SpoolTail::consume_line(
    std::string&& line,
    const std::function<void(const proxy::LogRecord&)>& sink,
    std::size_t& delivered) {
  ++stats_.lines;
  strip_cr(line);
  if (expect_header_) {
    expect_header_ = false;
    if (line == proxy::log_csv_header()) {
      stats_.header_present = true;
      return;
    }
    // Headerless spool: fall through and try the line as data, exactly
    // like read_log_lenient.
  }
  if (line.empty()) {
    ++stats_.empty_lines;
    return;
  }
  ++stats_.data_lines;
  proxy::ParseDiagnosis diagnosis;
  if (auto record = proxy::from_csv(line, &diagnosis)) {
    ++stats_.recovered;
    sink(*record);
    ++delivered;
    return;
  }
  const auto reason = static_cast<std::size_t>(diagnosis.error);
  ++stats_.skipped[reason];
  if (stats_.first_error_line[reason] == 0)
    stats_.first_error_line[reason] = stats_.lines;
}

std::size_t SpoolTail::poll(
    const std::function<void(const proxy::LogRecord&)>& sink) {
  polled_ = true;
  std::ifstream in{path_, std::ios::binary};
  if (!in) return 0;  // spool not created yet
  in.seekg(static_cast<std::streamoff>(consumed_));
  if (!in) return 0;

  std::size_t delivered = 0;
  char chunk[64 * 1024];
  for (;;) {
    in.read(chunk, sizeof(chunk));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    consumed_ += got;
    std::size_t start = 0;
    for (std::size_t i = 0; i < got; ++i) {
      if (chunk[i] != '\n') continue;
      pending_.append(chunk + start, i - start);
      consume_line(std::move(pending_), sink, delivered);
      pending_.clear();
      start = i + 1;
    }
    pending_.append(chunk + start, got - start);
    if (!in) break;  // EOF mid-chunk
  }
  // Whatever is left in pending_ is the torn-tail candidate: it stays
  // buffered until a later append completes the line.
  return delivered;
}

}  // namespace syrwatch::analysis
