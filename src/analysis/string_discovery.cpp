#include "analysis/string_discovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "net/domain.h"
#include "net/ipv4.h"
#include "util/strings.h"

namespace syrwatch::analysis {

namespace {

constexpr std::size_t kMinTokenLength = 5;

bool all_digits(std::string_view s) noexcept {
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return !s.empty();
}

/// Splits a URL-ish text into lower-case alphanumeric tokens.
template <typename Fn>
void for_each_token(std::string_view text, Fn&& fn) {
  std::size_t start = 0;
  auto is_word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9');
  };
  while (start < text.size()) {
    while (start < text.size() && !is_word(text[start])) ++start;
    std::size_t end = start;
    while (end < text.size() && is_word(text[end])) ++end;
    if (end > start) fn(text.substr(start, end - start));
    start = end;
  }
}

struct CensoredRow {
  std::string filter_text;   // lower-cased host+path?query
  std::string host;          // lower-cased
  std::string domain;        // registrable
  std::string path_query;    // lower-cased path + query (token eligibility)
  bool anchor = false;       // bare-domain request (paper's §5.4 rule)
  bool alive = true;
};

}  // namespace

std::vector<std::string> DiscoveryResult::domain_names() const {
  std::vector<std::string> names;
  names.reserve(domains.size());
  for (const auto& d : domains) names.push_back(d.text);
  return names;
}

DiscoveryResult discover_censored_strings(const LogSource& source,
                                          const DiscoveryOptions& options,
                                          std::size_t threads) {
  DiscoveryResult result;

  // ---- Materialize the censored set C and the allowed reference A -------
  // This is the hot phase. Candidate maps downstream iterate in insertion
  // order, so the fold concatenates censored rows in partition order to
  // keep the global row order; the allowed sets/corpus are only ever
  // membership-tested, so union order is free.
  struct Partial {
    std::vector<CensoredRow> censored;
    std::unordered_set<std::string> allowed_domains;
    std::unordered_set<std::string> allowed_hosts;
    std::unordered_set<std::string> allowed_tokens;
    std::string allowed_corpus;  // '\n'-joined, for exact substring checks
    std::vector<std::string> proxied_texts;
  };
  auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.cls == proxy::TrafficClass::kCensored) {
          CensoredRow cr;
          cr.host = util::to_lower(r.host);
          if (net::looks_like_ipv4(cr.host)) return;  // IP filtering: §5.4's
                                                      // separate analysis
          cr.domain = net::registrable_domain(cr.host);
          const std::string path = util::to_lower(r.path);
          const std::string query = util::to_lower(r.query);
          cr.path_query = path + (query.empty() ? "" : "?" + query);
          cr.filter_text = cr.host + cr.path_query;
          cr.anchor = query.empty() && (path.empty() || path == "/");
          p.censored.push_back(std::move(cr));
        } else if (r.cls == proxy::TrafficClass::kAllowed) {
          const std::string text = util::to_lower(r.filter_text());
          const std::string host = util::to_lower(r.host);
          p.allowed_hosts.insert(host);
          p.allowed_domains.insert(net::registrable_domain(host));
          for_each_token(text, [&](std::string_view token) {
            if (token.size() >= kMinTokenLength && !all_digits(token))
              p.allowed_tokens.emplace(token);
          });
          p.allowed_corpus += text;
          p.allowed_corpus += '\n';
        } else if (r.cls == proxy::TrafficClass::kProxied) {
          p.proxied_texts.push_back(util::to_lower(r.filter_text()));
        }
      });

  std::vector<CensoredRow> censored;
  std::unordered_set<std::string> allowed_domains;
  std::unordered_set<std::string> allowed_hosts;
  std::unordered_set<std::string> allowed_tokens;
  std::string allowed_corpus;
  std::vector<std::string> proxied_texts;
  for (Partial& p : partials) {
    censored.insert(censored.end(),
                    std::make_move_iterator(p.censored.begin()),
                    std::make_move_iterator(p.censored.end()));
    allowed_domains.merge(p.allowed_domains);
    allowed_hosts.merge(p.allowed_hosts);
    allowed_tokens.merge(p.allowed_tokens);
    allowed_corpus += p.allowed_corpus;
    proxied_texts.insert(proxied_texts.end(),
                         std::make_move_iterator(p.proxied_texts.begin()),
                         std::make_move_iterator(p.proxied_texts.end()));
  }
  partials.clear();

  result.censored_requests_total = censored.size();
  const std::uint64_t threshold = std::max<std::uint64_t>(
      options.min_count,
      static_cast<std::uint64_t>(options.min_support *
                                 static_cast<double>(censored.size())));

  auto never_allowed_domain = [&](const std::string& domain) {
    return allowed_domains.count(domain) == 0;
  };
  auto never_allowed_host = [&](const std::string& host) {
    return allowed_hosts.count(host) == 0;
  };
  auto in_allowed = [&](const std::string& needle) {
    // Token-set prefilter, then the authoritative substring scan.
    if (allowed_tokens.count(needle) != 0) return true;
    return allowed_corpus.find(needle) != std::string::npos;
  };
  auto count_proxied = [&](const std::string& text, bool is_domain) {
    std::uint64_t count = 0;
    for (const std::string& pt : proxied_texts) {
      if (is_domain) {
        const auto slash = pt.find('/');
        const std::string_view host =
            slash == std::string::npos ? std::string_view{pt}
                                       : std::string_view{pt}.substr(0, slash);
        if (util::host_matches_domain(host, text)) ++count;
      } else if (pt.find(text) != std::string::npos) {
        ++count;
      }
    }
    return count;
  };

  std::unordered_set<std::string> rejected_tokens;
  std::unordered_set<std::string> rejected_domains;

  // ---- The iterative loop of §5.4 ---------------------------------------
  while (result.keywords.size() + result.domains.size() <
         options.max_strings) {
    // Candidate generation over the live rows.
    std::unordered_map<std::string, std::uint64_t> anchor_domains;
    std::unordered_map<std::string, std::uint64_t> token_counts;
    std::unordered_map<std::string, std::uint64_t> token_pathquery_counts;
    for (const CensoredRow& row : censored) {
      if (!row.alive) continue;
      if (row.anchor && rejected_domains.count(row.domain) == 0)
        ++anchor_domains[row.domain];
      std::unordered_set<std::string_view> seen;  // count once per request
      for_each_token(row.filter_text, [&](std::string_view token) {
        if (token.size() < kMinTokenLength || all_digits(token)) return;
        if (!seen.insert(token).second) return;
        const std::string key{token};
        if (rejected_tokens.count(key) != 0) return;
        ++token_counts[key];
        if (row.path_query.find(token) != std::string::npos)
          ++token_pathquery_counts[key];
      });
    }

    // Anchor-domain support = total live rows on the domain (the anchor
    // only disambiguates, as in the paper; the count is the domain's).
    std::unordered_map<std::string, std::uint64_t> domain_counts;
    for (const CensoredRow& row : censored) {
      if (!row.alive) continue;
      if (anchor_domains.count(row.domain) != 0) ++domain_counts[row.domain];
    }

    // Pick the globally most frequent candidate.
    std::string best;
    std::uint64_t best_count = 0;
    bool best_is_domain = false;
    for (const auto& [domain, count] : domain_counts) {
      if (count > best_count) {
        best = domain;
        best_count = count;
        best_is_domain = true;
      }
    }
    for (const auto& [token, count] : token_counts) {
      // Tokens must occur in paths/queries, not only inside hostnames —
      // host-only strings are the domain generator's business.
      const auto pq = token_pathquery_counts.find(token);
      if (pq == token_pathquery_counts.end() || pq->second < 3) continue;
      if (count > best_count) {
        best = token;
        best_count = count;
        best_is_domain = false;
      }
    }
    if (best_count < threshold) break;

    auto remove_by_domain = [&](const std::string& domain) {
      std::uint64_t removed = 0;
      for (CensoredRow& row : censored) {
        if (row.alive && util::host_matches_domain(row.host, domain)) {
          row.alive = false;
          ++removed;
        }
      }
      return removed;
    };
    auto remove_by_keyword = [&](const std::string& keyword) {
      std::uint64_t removed = 0;
      for (CensoredRow& row : censored) {
        if (row.alive &&
            row.filter_text.find(keyword) != std::string::npos) {
          row.alive = false;
          ++removed;
        }
      }
      return removed;
    };

    if (best_is_domain) {
      if (!never_allowed_domain(best)) {
        rejected_domains.insert(best);
        continue;
      }
      const std::uint64_t removed = remove_by_domain(best);
      result.domains.push_back(
          {best, true, removed, count_proxied(best, true)});
      result.censored_requests_explained += removed;
      continue;
    }

    // Token candidate: the NA = 0 test against the allowed set.
    if (in_allowed(best)) {
      rejected_tokens.insert(best);
      continue;
    }
    // Attribution: a token confined to a single never-allowed domain (or
    // host) is really URL filtering of that site, not keyword filtering.
    std::unordered_set<std::string> live_domains;
    std::unordered_set<std::string> live_hosts;
    for (const CensoredRow& row : censored) {
      if (row.alive && row.filter_text.find(best) != std::string::npos) {
        live_domains.insert(row.domain);
        live_hosts.insert(row.host);
      }
    }
    if (live_domains.size() == 1) {
      const std::string domain = *live_domains.begin();
      std::string accepted;
      if (never_allowed_domain(domain)) accepted = domain;
      else if (live_hosts.size() == 1 &&
               never_allowed_host(*live_hosts.begin()))
        accepted = *live_hosts.begin();
      if (!accepted.empty()) {
        const std::uint64_t removed = remove_by_domain(accepted);
        result.domains.push_back(
            {accepted, true, removed, count_proxied(accepted, true)});
        result.censored_requests_explained += removed;
        rejected_tokens.insert(best);  // covered by the domain entry
        continue;
      }
    }
    const std::uint64_t removed = remove_by_keyword(best);
    result.keywords.push_back(
        {best, false, removed, count_proxied(best, false)});
    result.censored_requests_explained += removed;
  }

  // ---- Collapse .il domains into the TLD entry (Table 8's ".il") --------
  std::vector<DiscoveredString> il_entries;
  auto it = std::stable_partition(
      result.domains.begin(), result.domains.end(),
      [](const DiscoveredString& d) { return !util::ends_with(d.text, ".il"); });
  il_entries.assign(it, result.domains.end());
  result.domains.erase(it, result.domains.end());
  if (il_entries.size() >= options.min_tld_domains) {
    DiscoveredString il{".il", true, 0, 0};
    for (const auto& entry : il_entries) {
      il.censored += entry.censored;
      il.proxied += entry.proxied;
    }
    result.domains.push_back(il);
  } else {
    result.domains.insert(result.domains.end(), il_entries.begin(),
                          il_entries.end());
  }

  std::sort(result.domains.begin(), result.domains.end(),
            [](const DiscoveredString& a, const DiscoveredString& b) {
              return a.censored > b.censored;
            });
  std::sort(result.keywords.begin(), result.keywords.end(),
            [](const DiscoveredString& a, const DiscoveredString& b) {
              return a.censored > b.censored;
            });
  return result;
}

}  // namespace syrwatch::analysis
