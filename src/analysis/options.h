#pragma once

#include <cstdint>
#include <stdexcept>

namespace syrwatch::analysis {

/// Half-open [start, end) time range shared by every windowed analyzer.
/// Replaces the per-header window/start/end conventions; TimeWindow is an
/// alias for source compatibility.
struct TimeRange {
  std::int64_t start = 0;
  std::int64_t end = 0;

  bool contains(std::int64_t t) const noexcept {
    return t >= start && t < end;
  }
  std::int64_t span_seconds() const noexcept { return end - start; }
};

/// Bin width of a time-series analyzer. Each analyzer's Options struct
/// carries its paper default (5 minutes for Figs. 5/6, an hour for Fig. 8).
struct BinSpec {
  std::int64_t seconds = 300;

  /// Bins needed to cover `range`, counting the partial tail bin. Throws
  /// std::invalid_argument for an empty/backwards range or non-positive
  /// width — the shared validation every series analyzer relies on.
  std::size_t bins_over(const TimeRange& range) const {
    if (range.end <= range.start || seconds <= 0)
      throw std::invalid_argument("analysis: bad time range or bin width");
    return static_cast<std::size_t>(
        (range.end - range.start + seconds - 1) / seconds);
  }
};

}  // namespace syrwatch::analysis
