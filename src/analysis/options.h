#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

namespace syrwatch::proxy {
struct LogReadStats;
}
namespace syrwatch::colfmt {
struct RecoveryStats;
}

namespace syrwatch::analysis {

/// Half-open [start, end) time range shared by every windowed analyzer.
/// Replaces the per-header window/start/end conventions; TimeWindow is an
/// alias for source compatibility.
struct TimeRange {
  std::int64_t start = 0;
  std::int64_t end = 0;

  bool contains(std::int64_t t) const noexcept {
    return t >= start && t < end;
  }
  std::int64_t span_seconds() const noexcept { return end - start; }
};

/// Bin width of a time-series analyzer. Each analyzer's Options struct
/// carries its paper default (5 minutes for Figs. 5/6, an hour for Fig. 8).
struct BinSpec {
  std::int64_t seconds = 300;

  /// Bins needed to cover `range`, counting the partial tail bin. Throws
  /// std::invalid_argument for an empty/backwards range or non-positive
  /// width — the shared validation every series analyzer relies on.
  std::size_t bins_over(const TimeRange& range) const {
    if (range.end <= range.start || seconds <= 0)
      throw std::invalid_argument("analysis: bad time range or bin width");
    return static_cast<std::size_t>(
        (range.end - range.start + seconds - 1) / seconds);
  }
};

/// request_coverage (Table: per-proxy request coverage + gap scan). The
/// two stats pointers replace the old per-reader overload pair: pass
/// whichever the load produced (both null = assume an intact file); the
/// report's truncated_tail flag is the OR of their flags.
struct CoverageOptions {
  BinSpec bin{3600};
  /// A bin counts as farm-active (so a silent proxy is a *gap*, not an
  /// idle period) only at this many farm-wide requests.
  std::uint64_t min_farm_bin_requests = 25;
  const proxy::LogReadStats* read_stats = nullptr;
  const colfmt::RecoveryStats* recovery = nullptr;
};

/// policy_impact (§8 what-if re-screening).
struct PolicyImpactOptions {
  /// Entries in top_newly_censored.
  std::size_t top_k = 10;
};

/// proxy_load_series (Fig. 7).
struct ProxyLoadOptions {
  TimeRange range;
  BinSpec bin{3600};
};

/// censored_domain_similarity (Table 6).
struct SimilarityOptions {
  TimeRange range;
};

/// keyword_weather (the ConceptDoppler-style longitudinal view).
struct WeatherOptions {
  TimeRange range;
  BinSpec bin{3600};
};

/// redirect_hosts (Table 7).
struct RedirectHostsOptions {
  /// Hosts to keep; 0 = all.
  std::size_t k = 0;
};

/// redirect_followups (§5.3's negative finding).
struct RedirectFollowupOptions {
  std::int64_t window_seconds = 2;
};

}  // namespace syrwatch::analysis
