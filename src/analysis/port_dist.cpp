#include "analysis/port_dist.h"

#include <algorithm>
#include <map>

namespace syrwatch::analysis {

std::vector<PortCount> port_distribution(const LogSource& source,
                                         std::size_t k, std::size_t threads) {
  // std::map keys by port, so partial iteration order is the same on every
  // backend and the fold is plain addition.
  using Partial = std::map<std::uint16_t, PortCount>;
  const auto partials = scan_partials<Partial>(
      source, threads, [](Partial& p, const Record& r) {
        if (r.cls != proxy::TrafficClass::kAllowed &&
            r.cls != proxy::TrafficClass::kCensored)
          return;
        PortCount& entry = p[r.port];
        entry.port = r.port;
        if (r.cls == proxy::TrafficClass::kAllowed) ++entry.allowed;
        else ++entry.censored;
      });

  std::map<std::uint16_t, PortCount> by_port;
  for (const Partial& p : partials) {
    for (const auto& [port, entry] : p) {
      PortCount& merged = by_port[port];
      merged.port = port;
      merged.allowed += entry.allowed;
      merged.censored += entry.censored;
    }
  }
  std::vector<PortCount> out;
  out.reserve(by_port.size());
  for (const auto& [port, entry] : by_port) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const PortCount& a, const PortCount& b) {
    if (a.censored != b.censored) return a.censored > b.censored;
    return a.port < b.port;
  });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

}  // namespace syrwatch::analysis
