#include "analysis/port_dist.h"

#include <algorithm>
#include <map>

namespace syrwatch::analysis {

std::vector<PortCount> port_distribution(const Dataset& dataset,
                                         std::size_t k) {
  std::map<std::uint16_t, PortCount> by_port;
  for (const Row& row : dataset.rows()) {
    const auto cls = dataset.cls(row);
    if (cls != proxy::TrafficClass::kAllowed &&
        cls != proxy::TrafficClass::kCensored)
      continue;
    PortCount& entry = by_port[row.port];
    entry.port = row.port;
    if (cls == proxy::TrafficClass::kAllowed) ++entry.allowed;
    else ++entry.censored;
  }
  std::vector<PortCount> out;
  out.reserve(by_port.size());
  for (const auto& [port, entry] : by_port) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const PortCount& a, const PortCount& b) {
    if (a.censored != b.censored) return a.censored > b.censored;
    return a.port < b.port;
  });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

}  // namespace syrwatch::analysis
