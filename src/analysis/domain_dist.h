#pragma once

#include <cstdint>
#include <map>

#include "analysis/scan.h"

namespace syrwatch::analysis {

/// Fig. 2: the requests-per-unique-domain distribution for one traffic
/// class — for each request count c, how many domains received exactly c
/// requests — plus the log-log regression slope over those points (the
/// power-law check).
struct DomainDistribution {
  std::map<std::uint64_t, std::uint64_t> domains_by_request_count;
  std::uint64_t unique_domains = 0;
  std::uint64_t max_requests = 0;
  double loglog_slope = 0.0;
};

DomainDistribution domain_distribution(const LogSource& source,
                                       proxy::TrafficClass cls,
                                       std::size_t threads = 1);

}  // namespace syrwatch::analysis
