#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/anonymizer.h"
#include "analysis/domain_dist.h"
#include "analysis/port_dist.h"
#include "analysis/proxy_compare.h"
#include "analysis/temporal.h"
#include "analysis/tor_analysis.h"
#include "analysis/user_stats.h"
#include "category/categorizer.h"
#include "tor/relay_directory.h"

namespace syrwatch::analysis {

/// Plot-ready TSV writers for the paper's figures: one '#'-prefixed header
/// line, then tab-separated rows — ready for gnuplot or matplotlib. Each
/// writer mirrors one figure's axes.

/// Fig. 1: port \t allowed \t censored.
void export_port_distribution(std::ostream& out,
                              const std::vector<PortCount>& ports);

/// Fig. 2: domains_with_count (x) \t request_count (y).
void export_domain_distribution(std::ostream& out,
                                const DomainDistribution& dist);

/// Fig. 4b: requests \t cdf_censored \t cdf_clean (merged support).
void export_user_activity_cdf(std::ostream& out, const UserStats& stats);

/// Fig. 5a: unix_time \t allowed \t censored.
void export_time_series(std::ostream& out, const TrafficTimeSeries& series);

/// Fig. 6: unix_time \t rcv.
void export_rcv(std::ostream& out, const RcvSeries& series);

/// Fig. 7: unix_time \t share_sg42 .. share_sg48 (total or censored).
void export_proxy_load(std::ostream& out, const ProxyLoadSeries& series,
                       bool censored);

/// Fig. 8a: unix_time \t requests.
void export_hourly(std::ostream& out, const util::BinnedCounter& series);

/// Fig. 9: unix_time \t rfilter \t has_traffic.
void export_rfilter(std::ostream& out, const RfilterSeries& series);

/// Figs. 10a/10b: x \t cdf over arbitrary samples.
void export_cdf(std::ostream& out, std::vector<double> samples);

/// Writes every figure's data file (fig1.tsv, fig2_allowed.tsv, ...,
/// fig10b.tsv) into `directory` (created by the caller), each atomically
/// (temp + rename — a crash never leaves a torn figure). Returns the
/// number of files written; throws std::runtime_error naming the failing
/// path on any write error instead of silently dropping figures. Time
/// windows follow the paper (Aug 1-6 for the series figures, Aug 3 for
/// RCV). `full`/`user` are scan-layer sources (row Dataset or SYRCOL1
/// container); `threads` fans each figure's analyzer out, with identical
/// bytes for any value.
std::size_t export_all_figures(const std::string& directory,
                               const LogSource& full, const LogSource& user,
                               const category::Categorizer& categorizer,
                               const tor::RelayDirectory& relays,
                               std::size_t threads = 1);

}  // namespace syrwatch::analysis
