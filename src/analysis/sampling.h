#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scan.h"
#include "util/stats.h"

namespace syrwatch::analysis {

/// §3.3's sampling argument, verified empirically: for each traffic-class
/// proportion, does the confidence interval computed from Dsample cover
/// the true value measured on Dfull?
struct SamplingCheck {
  std::string metric;
  double full_proportion = 0.0;
  double sample_proportion = 0.0;
  util::ProportionInterval interval;  // around the sample proportion
  bool covered = false;               // full value inside the interval
};

/// Checks the allowed / proxied / denied / censored / error proportions at
/// confidence 1 - alpha (the paper uses alpha = 0.05).
std::vector<SamplingCheck> sampling_audit(const LogSource& full,
                                          const LogSource& sample,
                                          double alpha = 0.05,
                                          std::size_t threads = 1);

}  // namespace syrwatch::analysis
