#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/options.h"
#include "analysis/scan.h"
#include "policy/syria.h"
#include "util/histogram.h"

namespace syrwatch::analysis {

/// Fig. 7: per-proxy traffic shares over time (all traffic and censored
/// traffic separately).
struct ProxyLoadSeries {
  std::int64_t origin = 0;
  std::int64_t bin_seconds = 0;
  /// [proxy][bin] request counts.
  std::array<std::vector<std::uint64_t>, policy::kProxyCount> total;
  std::array<std::vector<std::uint64_t>, policy::kProxyCount> censored;

  /// Share of proxy p in the bin's total (0 when the bin is empty).
  double total_share(std::size_t proxy, std::size_t bin) const;
  double censored_share(std::size_t proxy, std::size_t bin) const;
  std::size_t bin_count() const noexcept { return total[0].size(); }
};

ProxyLoadSeries proxy_load_series(const LogSource& source,
                                  const ProxyLoadOptions& options,
                                  std::size_t threads = 1);

/// Table 6: cosine similarity of the per-domain censored-request vectors
/// of each proxy pair, restricted to a time window (the paper uses
/// 2011-08-03).
struct ProxySimilarity {
  std::array<std::array<double, policy::kProxyCount>, policy::kProxyCount>
      matrix{};
};

ProxySimilarity censored_domain_similarity(const LogSource& source,
                                           const SimilarityOptions& options,
                                           std::size_t threads = 1);

/// §5.2's category-label observation: which cs-categories strings each
/// proxy logs, and how often ("none" appears only on SG-43/SG-48).
struct ProxyCategoryLabels {
  struct LabelCount {
    std::string label;
    std::uint64_t count = 0;
  };
  std::array<std::vector<LabelCount>, policy::kProxyCount> labels;
};

ProxyCategoryLabels proxy_category_labels(const LogSource& source,
                                          std::size_t threads = 1);

}  // namespace syrwatch::analysis
