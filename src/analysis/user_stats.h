#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/scan.h"

namespace syrwatch::analysis {

/// §4's user-based analysis over Duser (Fig. 4). A "user" is the paper's
/// approximation: a unique (c-ip hash, cs-user-agent) pair; a censored
/// user issued at least one policy-censored request.
struct UserStats {
  std::uint64_t total_users = 0;
  std::uint64_t censored_users = 0;

  /// Fig. 4a: #users by number of censored requests (1, 2, ...).
  std::map<std::uint64_t, std::uint64_t> users_by_censored_count;

  /// Fig. 4b inputs: overall request counts per user, split by whether the
  /// user was censored. Sorted ascending (ready for CDF rendering).
  std::vector<double> requests_per_censored_user;
  std::vector<double> requests_per_clean_user;

  /// Share of each group with more than `threshold` total requests — the
  /// paper's headline: ~50% of censored vs ~5% of non-censored users
  /// exceed 100 requests.
  double active_share_censored(double threshold) const;
  double active_share_clean(double threshold) const;
};

UserStats user_stats(const LogSource& duser, std::size_t threads = 1);

}  // namespace syrwatch::analysis
