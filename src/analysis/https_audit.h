#pragma once

#include <cstdint>

#include "analysis/scan.h"

namespace syrwatch::analysis {

/// §4's HTTPS paragraph, as an analyzer: how much HTTPS there is, how much
/// of it is censored, whether censorship keys on IP destinations, and
/// whether the logs show any evidence of TLS interception (the paper's
/// test: cs-uri-path/-query would be present under a MITM — they are not).
struct HttpsStats {
  std::uint64_t total = 0;            // HTTPS (CONNECT/ssl) records
  std::uint64_t censored = 0;
  std::uint64_t censored_ip_dest = 0; // censored with an IP-literal host
  std::uint64_t with_uri_fields = 0;  // records exposing path or query
  std::uint64_t all_records = 0;      // source size, for the share

  double share_of_traffic() const noexcept {
    return all_records == 0 ? 0.0
                            : static_cast<double>(total) /
                                  static_cast<double>(all_records);
  }
  double censored_share() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(censored) /
                            static_cast<double>(total);
  }
  double censored_ip_share() const noexcept {
    return censored == 0 ? 0.0
                         : static_cast<double>(censored_ip_dest) /
                               static_cast<double>(censored);
  }
  /// True when any HTTPS record carries URI fields — the MITM signature.
  bool interception_evidence() const noexcept { return with_uri_fields > 0; }
};

HttpsStats https_stats(const LogSource& source, std::size_t threads = 1);

}  // namespace syrwatch::analysis
