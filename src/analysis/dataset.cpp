#include "analysis/dataset.h"

#include <algorithm>
#include <array>

#include "net/domain.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simtime.h"

namespace syrwatch::analysis {

Dataset::Dataset() : pool_(std::make_shared<util::StringPool>()) {}

Dataset::Dataset(std::shared_ptr<util::StringPool> pool)
    : pool_(std::move(pool)) {}

void Dataset::add(const proxy::LogRecord& record) {
  Row row;
  row.time = record.time;
  row.user_hash = record.user_hash;
  row.host = pool_->intern(record.url.host);
  row.path = pool_->intern(record.url.path);
  row.query = pool_->intern(record.url.query);
  row.agent = pool_->intern(record.user_agent);
  row.categories = pool_->intern(record.categories);
  row.method = pool_->intern(record.method);
  if (record.dest_ip) {
    row.dest_ip = record.dest_ip->value();
    row.has_dest_ip = true;
  }
  row.port = record.url.port;
  row.status = record.status;
  row.proxy_index = record.proxy_index;
  row.scheme = record.url.scheme;
  row.result = record.filter_result;
  row.exception = record.exception;
  rows_.push_back(row);
}

void Dataset::finalize() {
  std::stable_sort(rows_.begin(), rows_.end(),
                   [](const Row& a, const Row& b) { return a.time < b.time; });
}

std::string_view Dataset::domain(const Row& row) const {
  if (row.host >= domain_cache_.size())
    domain_cache_.resize(pool_->size(), util::StringPool::kNotFound);
  util::StringPool::Id& cached = domain_cache_[row.host];
  if (cached == util::StringPool::kNotFound)
    cached = pool_->intern(net::registrable_domain(pool_->view(row.host)));
  return pool_->view(cached);
}

namespace {

/// The ip_state_ codes of the lazy per-host IPv4 cache.
constexpr std::uint8_t kIpUnknown = 0;
constexpr std::uint8_t kIpNo = 1;
constexpr std::uint8_t kIpYes = 2;

}  // namespace

bool Dataset::host_is_ip(const Row& row) const {
  if (row.host >= ip_state_.size()) {
    ip_state_.resize(pool_->size(), kIpUnknown);
    ip_cache_.resize(pool_->size(), 0);
  }
  std::uint8_t& state = ip_state_[row.host];
  if (state == kIpUnknown) {
    if (const auto ip = net::Ipv4Addr::parse(pool_->view(row.host))) {
      state = kIpYes;
      ip_cache_[row.host] = ip->value();
    } else {
      state = kIpNo;
    }
  }
  return state == kIpYes;
}

std::uint32_t Dataset::host_ip(const Row& row) const {
  return host_is_ip(row) ? ip_cache_[row.host] : 0;
}

void Dataset::warm_domain_cache() const {
  for (const Row& row : rows_) {
    (void)domain(row);
    (void)host_is_ip(row);
  }
  warmed_ = true;
}

std::string Dataset::filter_text(const Row& row) const {
  std::string text{host(row)};
  text += path(row);
  const auto q = query(row);
  if (!q.empty()) {
    text += '?';
    text += q;
  }
  return text;
}

Dataset Dataset::filter(
    const std::function<bool(const Row&)>& predicate) const {
  Dataset out{pool_};
  for (const Row& row : rows_) {
    if (predicate(row)) out.rows_.push_back(row);
  }
  return out;
}

DatasetBundle DatasetBundle::derive(Dataset full, std::uint64_t sample_seed,
                                    double sample_rate, std::size_t threads) {
  DatasetBundle bundle{std::move(full), Dataset{nullptr}, Dataset{nullptr},
                       Dataset{nullptr}};
  // Warm the full dataset first and alone: this interns every registrable
  // domain into the shared pool, so the derived datasets' warms below are
  // pure lookups and safe to run concurrently.
  bundle.full.warm_domain_cache();
  const auto derivations = std::array<std::function<void()>, 3>{
      [&] {
        util::Rng rng{util::mix64(sample_seed ^ 0x5A3D1E)};
        bundle.sample = bundle.full.filter(
            [&](const Row&) { return rng.bernoulli(sample_rate); });
        bundle.sample.warm_domain_cache();
      },
      [&] {
        bundle.user = bundle.full.filter([](const Row& row) {
          if (row.proxy_index != 0 || row.user_hash == 0) return false;
          const auto c = util::to_civil(row.time);
          return c.month == 7 && (c.day == 22 || c.day == 23);
        });
        bundle.user.warm_domain_cache();
      },
      [&] {
        bundle.denied = bundle.full.filter([](const Row& row) {
          return row.exception != proxy::ExceptionId::kNone;
        });
        bundle.denied.warm_domain_cache();
      }};
  util::parallel_for(derivations.size(), threads,
                     [&](std::size_t i) { derivations[i](); });
  return bundle;
}

}  // namespace syrwatch::analysis
