#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/options.h"
#include "analysis/scan.h"
#include "colfmt/container.h"
#include "policy/syria.h"
#include "proxy/log_io.h"

namespace syrwatch::analysis {

/// A contiguous window in which one proxy logged nothing while the rest of
/// the farm was demonstrably active — an outage, a lost day-file, or the
/// leak's own shape (July days keep only SG-42).
struct CoverageGap {
  std::uint8_t proxy_index = 0;
  std::int64_t start = 0;  // [start, end)
  std::int64_t end = 0;
  /// Requests the rest of the farm logged inside the gap — how much signal
  /// the missing proxy's absence actually costs.
  std::uint64_t farm_requests = 0;
};

/// Per-proxy/per-day request counts of one civil day.
struct DayCoverage {
  std::int64_t day_start = 0;  // midnight UTC
  std::array<std::uint64_t, policy::kProxyCount> requests{};
};

/// Per-proxy/per-day coverage of a log: which appliances were heard from
/// when, and where the holes are. The paper works from exactly this kind
/// of uneven coverage (Table 1, Figs. 5/7); analyses that assume a whole
/// farm should consult degraded() before trusting per-proxy comparisons.
struct CoverageReport {
  std::int64_t bin_seconds = 3600;
  std::vector<DayCoverage> days;  // ascending by day_start
  std::array<std::uint64_t, policy::kProxyCount> totals{};
  std::uint64_t total_requests = 0;
  std::vector<CoverageGap> gaps;  // ascending by (proxy, start)

  /// The source log ended mid-record (LogReadStats::truncated_tail): the
  /// observation window's trailing edge is an artifact boundary, not a
  /// traffic boundary, so end-of-window analyses undercount. Set when the
  /// caller forwards its read stats to request_coverage.
  bool truncated_tail = false;

  bool degraded() const noexcept { return !gaps.empty() || truncated_tail; }

  /// Fraction of farm-active bins in which the proxy logged traffic.
  double coverage_share(std::size_t proxy_index) const noexcept {
    return active_bins == 0 ? 1.0
                            : static_cast<double>(covered_bins[proxy_index]) /
                                  static_cast<double>(active_bins);
  }

  std::uint64_t active_bins = 0;  // bins where the farm cleared the floor
  std::array<std::uint64_t, policy::kProxyCount> covered_bins{};
};

/// Computes coverage by binning requests into CoverageOptions::bin
/// windows. A bin counts as farm-active when the whole farm logged at
/// least `min_farm_bin_requests` in it (the floor suppresses phantom gaps
/// in near-idle windows); a proxy silent through one or more consecutive
/// active bins contributes a CoverageGap. Pass the LogReadStats /
/// RecoveryStats of the lenient load that produced the source (when there
/// was one) so a torn final record — a partially written artifact — is
/// surfaced as a coverage degradation rather than silently shortening the
/// window. Row order is irrelevant: the window is the source's true time
/// bounds and every tally is order-independent, so emission-order
/// containers bin identically to the time-sorted row path.
CoverageReport request_coverage(const LogSource& source,
                                const CoverageOptions& options = {},
                                std::size_t threads = 1);

}  // namespace syrwatch::analysis
