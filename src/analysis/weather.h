#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/options.h"
#include "analysis/scan.h"

namespace syrwatch::analysis {

/// A ConceptDoppler-style "censorship weather report" (the related work
/// [7] the paper cites): per-keyword censorship tracked over time windows,
/// answering *when* each filter was active and how aggressively — the
/// longitudinal view a one-off table cannot give.
struct KeywordWeather {
  std::string keyword;
  std::int64_t origin = 0;
  std::int64_t bin_seconds = 0;
  /// Per-bin counts of censored requests whose URL contains the keyword,
  /// and of all requests containing it (censored + allowed), so a bin's
  /// censorship intensity = censored / matched.
  std::vector<std::uint64_t> censored;
  std::vector<std::uint64_t> matched;

  /// Censored/matched for one bin; 0 for empty bins.
  double intensity(std::size_t bin) const;
  /// Bins where the keyword was matched at all.
  std::size_t active_bins() const;
  /// Bins where every matched request was censored (a "fully enforced"
  /// window, the expected state for a static blacklist).
  std::size_t fully_enforced_bins() const;
};

/// Tracks each keyword over [start, end) with the given bin width.
/// Matching is case-insensitive substring over host+path+query, like the
/// filter itself.
std::vector<KeywordWeather> keyword_weather(
    const LogSource& source, std::span<const std::string> keywords,
    const WeatherOptions& options, std::size_t threads = 1);

}  // namespace syrwatch::analysis
