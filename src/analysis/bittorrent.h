#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scan.h"
#include "workload/torrents.h"

namespace syrwatch::analysis {

/// §7.3: BitTorrent announce traffic. Announces are recognized by their
/// tracker URL shape (/announce with an info_hash parameter); users are
/// counted by the 20-byte peer_id, contents by info-hash. Titles are
/// recovered through the TorrentRegistry's simulated torrentz.eu crawl and
/// scanned for circumvention/IM software.
struct BitTorrentStats {
  std::uint64_t announces = 0;
  std::uint64_t allowed = 0;
  std::uint64_t censored = 0;
  std::uint64_t unique_peers = 0;
  std::uint64_t unique_contents = 0;
  std::uint64_t resolved_contents = 0;  // titles recovered by the crawl
  double resolve_rate() const noexcept {
    return unique_contents == 0
               ? 0.0
               : static_cast<double>(resolved_contents) /
                     static_cast<double>(unique_contents);
  }

  /// Announce counts for payloads whose recovered title matches a
  /// circumvention/IM tool, keyed by tool label.
  struct ToolCount {
    std::string tool;
    std::uint64_t announces = 0;
  };
  std::vector<ToolCount> tool_announces;
};

BitTorrentStats bittorrent_stats(const LogSource& source,
                                 const workload::TorrentRegistry& registry,
                                 std::size_t threads = 1);

}  // namespace syrwatch::analysis
