#include "analysis/osn.h"

#include <algorithm>
#include <map>

#include "util/strings.h"

namespace syrwatch::analysis {

const std::vector<std::string>& studied_social_networks() {
  // Top networks by 2013 Alexa rank plus the three Arabic-region ones the
  // paper adds (§6).
  static const std::vector<std::string> networks = {
      "facebook.com", "twitter.com",  "linkedin.com", "badoo.com",
      "netlog.com",   "hi5.com",      "skyrock.com",  "flickr.com",
      "ning.com",     "meetup.com",   "myspace.com",  "tumblr.com",
      "last.fm",      "salamworld.com", "muslimup.com",
  };
  return networks;
}

std::vector<DomainClassCounts> osn_censorship(const Dataset& dataset) {
  auto counts = domain_class_counts(dataset, studied_social_networks());
  std::sort(counts.begin(), counts.end(),
            [](const DomainClassCounts& a, const DomainClassCounts& b) {
              return a.censored > b.censored;
            });
  return counts;
}

std::vector<FacebookPage> blocked_facebook_pages(const Dataset& dataset) {
  // First pass: paths that ever carried the custom category label.
  std::map<std::string, FacebookPage> pages;
  for (const Row& row : dataset.rows()) {
    if (!util::host_matches_domain(dataset.host(row), "facebook.com"))
      continue;
    if (!util::contains(dataset.view(row.categories), "Blocked sites"))
      continue;
    const auto path = dataset.path(row);
    if (path.size() < 2 || path[0] != '/') continue;
    pages[std::string(path.substr(1))].page = std::string(path.substr(1));
  }
  // Second pass: class counts for every request to those paths.
  for (const Row& row : dataset.rows()) {
    if (!util::host_matches_domain(dataset.host(row), "facebook.com"))
      continue;
    const auto path = dataset.path(row);
    if (path.size() < 2) continue;
    const auto it = pages.find(std::string(path.substr(1)));
    if (it == pages.end()) continue;
    switch (dataset.cls(row)) {
      case proxy::TrafficClass::kCensored: ++it->second.censored; break;
      case proxy::TrafficClass::kAllowed: ++it->second.allowed; break;
      case proxy::TrafficClass::kProxied: ++it->second.proxied; break;
      case proxy::TrafficClass::kError: break;
    }
  }
  std::vector<FacebookPage> out;
  out.reserve(pages.size());
  for (auto& [name, page] : pages) out.push_back(std::move(page));
  std::sort(out.begin(), out.end(),
            [](const FacebookPage& a, const FacebookPage& b) {
              if (a.censored != b.censored) return a.censored > b.censored;
              return a.page < b.page;
            });
  return out;
}

}  // namespace syrwatch::analysis
