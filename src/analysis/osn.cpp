#include "analysis/osn.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/strings.h"

namespace syrwatch::analysis {

const std::vector<std::string>& studied_social_networks() {
  // Top networks by 2013 Alexa rank plus the three Arabic-region ones the
  // paper adds (§6).
  static const std::vector<std::string> networks = {
      "facebook.com", "twitter.com",  "linkedin.com", "badoo.com",
      "netlog.com",   "hi5.com",      "skyrock.com",  "flickr.com",
      "ning.com",     "meetup.com",   "myspace.com",  "tumblr.com",
      "last.fm",      "salamworld.com", "muslimup.com",
  };
  return networks;
}

std::vector<DomainClassCounts> osn_censorship(const LogSource& source,
                                              std::size_t threads) {
  auto counts = domain_class_counts(source, studied_social_networks(), threads);
  std::sort(counts.begin(), counts.end(),
            [](const DomainClassCounts& a, const DomainClassCounts& b) {
              return a.censored > b.censored;
            });
  return counts;
}

std::vector<FacebookPage> blocked_facebook_pages(const LogSource& source,
                                                 std::size_t threads) {
  // The sequential version is two passes: label pages carrying the custom
  // category, then count every request to a labelled page. One scan collects
  // both (labels and counts for *all* candidate paths); the fold intersects.
  struct Counts {
    std::uint64_t censored = 0, allowed = 0, proxied = 0;
  };
  struct Partial {
    std::set<std::string> labeled;
    std::map<std::string, Counts> by_path;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [](Partial& p, const Record& r) {
        if (!util::host_matches_domain(r.host, "facebook.com")) return;
        if (r.path.size() >= 2 && r.path[0] == '/' &&
            util::contains(r.categories, "Blocked sites"))
          p.labeled.insert(std::string(r.path.substr(1)));
        if (r.path.size() < 2) return;
        Counts& counts = p.by_path[std::string(r.path.substr(1))];
        switch (r.cls) {
          case proxy::TrafficClass::kCensored: ++counts.censored; break;
          case proxy::TrafficClass::kAllowed: ++counts.allowed; break;
          case proxy::TrafficClass::kProxied: ++counts.proxied; break;
          case proxy::TrafficClass::kError: break;
        }
      });

  std::set<std::string> labeled;
  std::map<std::string, Counts> by_path;
  for (const Partial& p : partials) {
    labeled.insert(p.labeled.begin(), p.labeled.end());
    for (const auto& [path, counts] : p.by_path) {
      Counts& merged = by_path[path];
      merged.censored += counts.censored;
      merged.allowed += counts.allowed;
      merged.proxied += counts.proxied;
    }
  }

  std::vector<FacebookPage> out;
  out.reserve(labeled.size());
  for (const std::string& page : labeled) {
    FacebookPage entry;
    entry.page = page;
    const auto it = by_path.find(page);
    if (it != by_path.end()) {
      entry.censored = it->second.censored;
      entry.allowed = it->second.allowed;
      entry.proxied = it->second.proxied;
    }
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const FacebookPage& a, const FacebookPage& b) {
              if (a.censored != b.censored) return a.censored > b.censored;
              return a.page < b.page;
            });
  return out;
}

}  // namespace syrwatch::analysis
