#pragma once

#include <cstdint>
#include <vector>

#include "analysis/options.h"
#include "analysis/scan.h"
#include "analysis/top_domains.h"
#include "util/histogram.h"

namespace syrwatch::analysis {

/// Fig. 5: censored and allowed request time series over a window, at the
/// given bin width (the paper uses 5 minutes).
struct TrafficTimeSeries {
  util::BinnedCounter censored;
  util::BinnedCounter allowed;

  /// Fig. 5b: per-bin counts normalized by each series' own total.
  std::vector<double> normalized_censored() const;
  std::vector<double> normalized_allowed() const;
};

struct TrafficSeriesOptions {
  TimeRange range;
  BinSpec bin{300};
};

TrafficTimeSeries traffic_time_series(const LogSource& source,
                                      const TrafficSeriesOptions& options,
                                      std::size_t threads = 1);

/// Fig. 6: Relative Censored traffic Volume — per time bin, the censored
/// fraction of all requests in that bin. Bins with no traffic report 0.
struct RcvSeries {
  std::int64_t origin = 0;
  std::int64_t bin_seconds = 0;
  std::vector<double> rcv;

  /// Highest-RCV bin (index into rcv).
  std::size_t peak_bin() const;
};

struct RcvOptions {
  TimeRange range;
  BinSpec bin{300};
};

RcvSeries rcv_series(const LogSource& source, const RcvOptions& options,
                     std::size_t threads = 1);

/// Table 5: top censored domains inside adjacent windows of one day.
struct WindowedTopDomains {
  TimeWindow window;
  std::vector<DomainCount> top;
};

struct WindowedTopOptions {
  std::vector<TimeRange> windows;
  std::size_t k = 10;
};

std::vector<WindowedTopDomains> windowed_top_censored(
    const LogSource& source, const WindowedTopOptions& options,
    std::size_t threads = 1);

}  // namespace syrwatch::analysis
