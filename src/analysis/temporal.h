#pragma once

#include <cstdint>
#include <vector>

#include "analysis/dataset.h"
#include "analysis/options.h"
#include "analysis/top_domains.h"
#include "util/histogram.h"

namespace syrwatch::analysis {

/// Fig. 5: censored and allowed request time series over a window, at the
/// given bin width (the paper uses 5 minutes).
struct TrafficTimeSeries {
  util::BinnedCounter censored;
  util::BinnedCounter allowed;

  /// Fig. 5b: per-bin counts normalized by each series' own total.
  std::vector<double> normalized_censored() const;
  std::vector<double> normalized_allowed() const;
};

struct TrafficSeriesOptions {
  TimeRange range;
  BinSpec bin{300};
};

TrafficTimeSeries traffic_time_series(const Dataset& dataset,
                                      const TrafficSeriesOptions& options);

[[deprecated("use traffic_time_series(dataset, TrafficSeriesOptions{...})")]]
inline TrafficTimeSeries traffic_time_series(const Dataset& dataset,
                                             std::int64_t start,
                                             std::int64_t end,
                                             std::int64_t bin_seconds = 300) {
  return traffic_time_series(
      dataset, TrafficSeriesOptions{{start, end}, {bin_seconds}});
}

/// Fig. 6: Relative Censored traffic Volume — per time bin, the censored
/// fraction of all requests in that bin. Bins with no traffic report 0.
struct RcvSeries {
  std::int64_t origin = 0;
  std::int64_t bin_seconds = 0;
  std::vector<double> rcv;

  /// Highest-RCV bin (index into rcv).
  std::size_t peak_bin() const;
};

struct RcvOptions {
  TimeRange range;
  BinSpec bin{300};
};

RcvSeries rcv_series(const Dataset& dataset, const RcvOptions& options);

[[deprecated("use rcv_series(dataset, RcvOptions{...})")]]
inline RcvSeries rcv_series(const Dataset& dataset, std::int64_t start,
                            std::int64_t end, std::int64_t bin_seconds = 300) {
  return rcv_series(dataset, RcvOptions{{start, end}, {bin_seconds}});
}

/// Table 5: top censored domains inside adjacent windows of one day.
struct WindowedTopDomains {
  TimeWindow window;
  std::vector<DomainCount> top;
};

struct WindowedTopOptions {
  std::vector<TimeRange> windows;
  std::size_t k = 10;
};

std::vector<WindowedTopDomains> windowed_top_censored(
    const Dataset& dataset, const WindowedTopOptions& options);

[[deprecated(
    "use windowed_top_censored(dataset, WindowedTopOptions{...})")]]
inline std::vector<WindowedTopDomains> windowed_top_censored(
    const Dataset& dataset, std::span<const TimeWindow> windows,
    std::size_t k) {
  return windowed_top_censored(
      dataset, WindowedTopOptions{{windows.begin(), windows.end()}, k});
}

}  // namespace syrwatch::analysis
