#include "analysis/proxy_compare.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/stats.h"

namespace syrwatch::analysis {

double ProxyLoadSeries::total_share(std::size_t proxy,
                                    std::size_t bin) const {
  std::uint64_t sum = 0;
  for (const auto& series : total) sum += series.at(bin);
  return sum == 0 ? 0.0
                  : static_cast<double>(total[proxy][bin]) /
                        static_cast<double>(sum);
}

double ProxyLoadSeries::censored_share(std::size_t proxy,
                                       std::size_t bin) const {
  std::uint64_t sum = 0;
  for (const auto& series : censored) sum += series.at(bin);
  return sum == 0 ? 0.0
                  : static_cast<double>(censored[proxy][bin]) /
                        static_cast<double>(sum);
}

ProxyLoadSeries proxy_load_series(const Dataset& dataset, std::int64_t start,
                                  std::int64_t end,
                                  std::int64_t bin_seconds) {
  if (end <= start || bin_seconds <= 0)
    throw std::invalid_argument("proxy_load_series: bad window");
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);
  ProxyLoadSeries series;
  series.origin = start;
  series.bin_seconds = bin_seconds;
  for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
    series.total[p].assign(bins, 0);
    series.censored[p].assign(bins, 0);
  }
  for (const Row& row : dataset.rows()) {
    if (row.time < start || row.time >= end) continue;
    const auto bin =
        static_cast<std::size_t>((row.time - start) / bin_seconds);
    ++series.total[row.proxy_index][bin];
    if (dataset.cls(row) == proxy::TrafficClass::kCensored)
      ++series.censored[row.proxy_index][bin];
  }
  return series;
}

ProxySimilarity censored_domain_similarity(const Dataset& dataset,
                                           std::int64_t start,
                                           std::int64_t end) {
  // Per-proxy censored-request counts over a shared domain index.
  std::unordered_map<std::string_view, std::size_t> domain_index;
  std::array<std::vector<double>, policy::kProxyCount> vectors;
  for (const Row& row : dataset.rows()) {
    if (row.time < start || row.time >= end) continue;
    if (dataset.cls(row) != proxy::TrafficClass::kCensored) continue;
    const auto domain = dataset.domain(row);
    const auto [it, inserted] =
        domain_index.emplace(domain, domain_index.size());
    const std::size_t idx = it->second;
    for (auto& vec : vectors) {
      if (vec.size() <= idx) vec.resize(domain_index.size(), 0.0);
    }
    vectors[row.proxy_index][idx] += 1.0;
  }
  for (auto& vec : vectors) vec.resize(domain_index.size(), 0.0);

  ProxySimilarity similarity;
  for (std::size_t a = 0; a < policy::kProxyCount; ++a) {
    for (std::size_t b = 0; b < policy::kProxyCount; ++b) {
      similarity.matrix[a][b] =
          a == b ? 1.0 : util::cosine_similarity(vectors[a], vectors[b]);
    }
  }
  return similarity;
}

ProxyCategoryLabels proxy_category_labels(const Dataset& dataset) {
  std::array<std::unordered_map<std::string_view, std::uint64_t>,
             policy::kProxyCount>
      counts;
  for (const Row& row : dataset.rows())
    ++counts[row.proxy_index][dataset.view(row.categories)];

  ProxyCategoryLabels labels;
  for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
    for (const auto& [label, count] : counts[p])
      labels.labels[p].push_back({std::string(label), count});
    std::sort(labels.labels[p].begin(), labels.labels[p].end(),
              [](const auto& a, const auto& b) { return a.count > b.count; });
  }
  return labels;
}

}  // namespace syrwatch::analysis
