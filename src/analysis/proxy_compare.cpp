#include "analysis/proxy_compare.h"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "util/stats.h"

namespace syrwatch::analysis {

double ProxyLoadSeries::total_share(std::size_t proxy,
                                    std::size_t bin) const {
  std::uint64_t sum = 0;
  for (const auto& series : total) sum += series.at(bin);
  return sum == 0 ? 0.0
                  : static_cast<double>(total[proxy][bin]) /
                        static_cast<double>(sum);
}

double ProxyLoadSeries::censored_share(std::size_t proxy,
                                       std::size_t bin) const {
  std::uint64_t sum = 0;
  for (const auto& series : censored) sum += series.at(bin);
  return sum == 0 ? 0.0
                  : static_cast<double>(censored[proxy][bin]) /
                        static_cast<double>(sum);
}

ProxyLoadSeries proxy_load_series(const LogSource& source,
                                  const ProxyLoadOptions& options,
                                  std::size_t threads) {
  const std::int64_t start = options.range.start;
  const std::int64_t end = options.range.end;
  const std::int64_t bin_seconds = options.bin.seconds;
  if (end <= start || bin_seconds <= 0)
    throw std::invalid_argument("proxy_load_series: bad window");
  const auto bins = static_cast<std::size_t>(
      (end - start + bin_seconds - 1) / bin_seconds);

  struct Partial {
    std::array<std::vector<std::uint64_t>, policy::kProxyCount> total;
    std::array<std::vector<std::uint64_t>, policy::kProxyCount> censored;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (p.total[0].empty()) {
          for (std::size_t i = 0; i < policy::kProxyCount; ++i) {
            p.total[i].assign(bins, 0);
            p.censored[i].assign(bins, 0);
          }
        }
        if (r.time < start || r.time >= end) return;
        const auto bin =
            static_cast<std::size_t>((r.time - start) / bin_seconds);
        ++p.total[r.proxy_index][bin];
        if (r.cls == proxy::TrafficClass::kCensored)
          ++p.censored[r.proxy_index][bin];
      });

  ProxyLoadSeries series;
  series.origin = start;
  series.bin_seconds = bin_seconds;
  for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
    series.total[p].assign(bins, 0);
    series.censored[p].assign(bins, 0);
  }
  for (const Partial& p : partials) {
    if (p.total[0].empty()) continue;
    for (std::size_t i = 0; i < policy::kProxyCount; ++i) {
      for (std::size_t bin = 0; bin < bins; ++bin) {
        series.total[i][bin] += p.total[i][bin];
        series.censored[i][bin] += p.censored[i][bin];
      }
    }
  }
  return series;
}

ProxySimilarity censored_domain_similarity(const LogSource& source,
                                           const SimilarityOptions& options,
                                           std::size_t threads) {
  const std::int64_t start = options.range.start;
  const std::int64_t end = options.range.end;
  // The cosine sums run in domain-index order, so the global index must be
  // the row-order first-seen order to keep the floating-point result
  // bit-identical. Each partial records its local first-seen sequence;
  // folding them in partition order rebuilds the global sequence.
  struct Partial {
    std::vector<std::string_view> order;  // local first-seen sequence
    std::unordered_map<std::string_view, std::size_t> index;
    std::array<std::vector<double>, policy::kProxyCount> vectors;
  };
  const auto partials = scan_partials<Partial>(
      source, threads, [&](Partial& p, const Record& r) {
        if (r.time < start || r.time >= end) return;
        if (r.cls != proxy::TrafficClass::kCensored) return;
        const auto [it, inserted] = p.index.emplace(r.domain, p.order.size());
        if (inserted) p.order.push_back(r.domain);
        const std::size_t idx = it->second;
        for (auto& vec : p.vectors) {
          if (vec.size() <= idx) vec.resize(p.order.size(), 0.0);
        }
        p.vectors[r.proxy_index][idx] += 1.0;
      });

  std::unordered_map<std::string_view, std::size_t> domain_index;
  std::array<std::vector<double>, policy::kProxyCount> vectors;
  for (const Partial& p : partials) {
    for (std::size_t local = 0; local < p.order.size(); ++local) {
      const auto [it, inserted] =
          domain_index.emplace(p.order[local], domain_index.size());
      const std::size_t idx = it->second;
      for (std::size_t proxy = 0; proxy < policy::kProxyCount; ++proxy) {
        auto& vec = vectors[proxy];
        if (vec.size() <= idx) vec.resize(domain_index.size(), 0.0);
        if (local < p.vectors[proxy].size())
          vec[idx] += p.vectors[proxy][local];
      }
    }
  }
  for (auto& vec : vectors) vec.resize(domain_index.size(), 0.0);

  ProxySimilarity similarity;
  for (std::size_t a = 0; a < policy::kProxyCount; ++a) {
    for (std::size_t b = 0; b < policy::kProxyCount; ++b) {
      similarity.matrix[a][b] =
          a == b ? 1.0 : util::cosine_similarity(vectors[a], vectors[b]);
    }
  }
  return similarity;
}

ProxyCategoryLabels proxy_category_labels(const LogSource& source,
                                          std::size_t threads) {
  // The final ranking sorts on count only, so ties surface the hash map's
  // iteration order — which tracks insertion order. Partials record their
  // first-seen label sequence and the fold re-inserts in global first-seen
  // order, reproducing the sequential map's layout exactly.
  struct PerProxy {
    std::vector<std::string_view> order;
    std::unordered_map<std::string_view, std::uint64_t> counts;
  };
  using Partial = std::array<PerProxy, policy::kProxyCount>;
  const auto partials = scan_partials<Partial>(
      source, threads, [](Partial& p, const Record& r) {
        PerProxy& proxy = p[r.proxy_index];
        auto [it, inserted] = proxy.counts.emplace(r.categories, 0);
        if (inserted) proxy.order.push_back(r.categories);
        ++it->second;
      });

  ProxyCategoryLabels labels;
  for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
    std::unordered_map<std::string_view, std::uint64_t> counts;
    for (const Partial& partial : partials) {
      for (const auto label : partial[p].order)
        counts[label] += partial[p].counts.at(label);
    }
    for (const auto& [label, count] : counts)
      labels.labels[p].push_back({std::string(label), count});
    std::sort(labels.labels[p].begin(), labels.labels[p].end(),
              [](const auto& a, const auto& b) { return a.count > b.count; });
  }
  return labels;
}

}  // namespace syrwatch::analysis
