#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scan.h"
#include "analysis/top_domains.h"

namespace syrwatch::analysis {

/// Automated version of §5.4's iterative censored-string recovery.
///
/// The paper's loop: pick a string w frequent in the censored URL set C,
/// confirm it never occurs in the allowed set A (PROXIED held aside), then
/// remove every censored request containing w and repeat. We mechanize the
/// "manually identify" step with two candidate generators:
///  * keywords — tokens of censored URL paths/queries/hosts, split on URL
///    punctuation;
///  * domains — registrable domains of censored *anchor* requests (bare
///    domain, empty or "/" path, no query), which is exactly the paper's
///    conservative disambiguation rule; ".il" is emitted when several
///    distinct never-allowed .il domains exist.
struct DiscoveryOptions {
  /// Minimum censored occurrences before a candidate is considered, as a
  /// fraction of the censored set, with an absolute floor (`min_count`) —
  /// the "NC >> 1" condition of the paper's loop.
  double min_support = 1e-4;
  std::uint64_t min_count = 20;
  std::size_t max_strings = 256;
  /// Minimum distinct .il registrable domains to emit the ".il" TLD entry.
  std::size_t min_tld_domains = 3;
};

struct DiscoveredString {
  std::string text;
  bool is_domain = false;  // domains match hosts; keywords match URLs
  std::uint64_t censored = 0;  // NC at acceptance time (before removal)
  std::uint64_t proxied = 0;   // PROXIED requests matching the string
};

struct DiscoveryResult {
  std::vector<DiscoveredString> keywords;  // Table 10
  std::vector<DiscoveredString> domains;   // the 105-entry list, Tables 8/9
  std::uint64_t censored_requests_explained = 0;
  std::uint64_t censored_requests_total = 0;

  /// Domain names only, ranked by censored count (Table 8 / Table 9 input).
  std::vector<std::string> domain_names() const;
};

/// The §5.4 loop itself is inherently sequential (each accepted string
/// reshapes the live set), but the expensive part — lower-casing and
/// tokenizing every record into the C/A/PROXIED working sets — scans in
/// parallel; `threads` governs that phase only.
DiscoveryResult discover_censored_strings(const LogSource& source,
                                          const DiscoveryOptions& options = {},
                                          std::size_t threads = 1);

}  // namespace syrwatch::analysis
