#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "category/categorizer.h"
#include "geo/geoip.h"
#include "policy/syria.h"
#include "proxy/log_record.h"
#include "tor/relay_directory.h"
#include "util/rng.h"
#include "util/sampler.h"
#include "workload/catalog.h"
#include "workload/diurnal.h"
#include "workload/users.h"

namespace syrwatch::workload {

/// One source of traffic with a fixed base share of total request volume
/// and an optional time-varying modulation (surges, bursts). The scenario
/// composes components: per 5-minute slot, each contributes
/// Poisson(total * share * diurnal(t)/norm * modulation(t)) requests.
class Component {
 public:
  virtual ~Component() = default;

  virtual std::string_view name() const noexcept = 0;
  double share() const noexcept { return share_; }

  /// Extra rate multiplier at time t on top of the scenario diurnal curve.
  virtual double modulation(std::int64_t t) const noexcept {
    (void)t;
    return 1.0;
  }

  /// Produces one request at time t.
  virtual proxy::Request generate(std::int64_t t, util::Rng& rng) = 0;

 protected:
  Component(double share, const UserModel* users);

  /// Fills time/user/agent with an activity-weighted browser user.
  proxy::Request base_request(std::int64_t t, util::Rng& rng) const;
  const UserModel& users() const noexcept { return *users_; }

  /// Dampening factor for the July days. The leak shows July censorship
  /// (Duser: 0.24% policy_denied) far below August's (0.98%): demand for
  /// the blocked services surged with the protests. Censored-heavy
  /// components multiply their modulation by this.
  static double july_damp(std::int64_t t) noexcept;

 private:
  double share_;
  const UserModel* users_;
};

/// A weighted (host, path-maker) mixture shared by several components:
/// each entry names a host, its censorship-relevant URL form, and a weight.
struct HostMix {
  struct Entry {
    std::string host;
    double weight = 1.0;
  };
  std::vector<Entry> entries;
  std::unique_ptr<util::AliasSampler> sampler;

  void finalize();
  const Entry& sample(util::Rng& rng) const noexcept;
};

// ---------------------------------------------------------------------------
// Factory functions. Each returns a ready component and registers its hosts
// with the categorizer so the analysis side can label traffic the way the
// paper labels it with McAfee TrustedSource.
// ---------------------------------------------------------------------------

/// Bulk allowed browsing over the domain catalog (~93% of all traffic).
std::unique_ptr<Component> make_browsing(double share, const UserModel* users,
                                         const DomainCatalog* catalog);

/// Google toolbar beacons: /tbproxy/af/query on google.com — always
/// censored by the `proxy` keyword (§5.4's collateral-damage example).
std::unique_ptr<Component> make_google_toolbar(double share,
                                               const UserModel* users);

/// Zynga canvas apps, Yahoo APIs and fbcdn connect endpoints whose URLs
/// embed `proxy` — the non-Facebook collateral of Table 4's censored side.
std::unique_ptr<Component> make_collateral_apps(
    double share, const UserModel* users, category::Categorizer* categorizer);

/// Google cache fetches (§7.4): webcache.googleusercontent.com, almost all
/// allowed even when the cached page itself is censored.
std::unique_ptr<Component> make_google_cache(double share,
                                             const UserModel* users);

/// Ad-delivery networks and CDN-hosted widgets whose request URLs embed
/// `proxy` — the intro's "a few ads delivery networks are blocked as they
/// generate requests containing the word proxy", and the bulk of the
/// "Content Server" slice of Fig. 3.
std::unique_ptr<Component> make_ads_cdn(double share, const UserModel* users,
                                        category::Categorizer* categorizer);

/// Facebook social plugins (Table 15): like.php and friends, every request
/// carrying `proxy` in path or query.
std::unique_ptr<Component> make_facebook_plugins(double share,
                                                 const UserModel* users);

/// Facebook political pages (Table 14) plus their uncensored sister pages.
std::unique_ptr<Component> make_facebook_pages(double share,
                                               const UserModel* users);

/// Whole hosts on the redirect list (Table 7): upload.youtube.com et al.
std::unique_ptr<Component> make_redirect_hosts(double share,
                                               const UserModel* users);

/// OSN browsing with per-network keyword-collateral rates (Table 13).
std::unique_ptr<Component> make_osn_browsing(double share,
                                             const UserModel* users,
                                             category::Categorizer* categorizer);

/// Instant-messaging endpoints (skype.com, messenger.live.com,
/// ceipmsn.com) — fully censored, with the Aug-3 surge windows that drive
/// the paper's censorship peaks (Fig. 6, Table 5).
std::unique_ptr<Component> make_im(double share, const UserModel* users,
                                   category::Categorizer* categorizer);

/// Streaming/video sites on the blacklist (metacafe.com, dailymotion.com,
/// trafficholder.com with its early-morning bursts).
std::unique_ptr<Component> make_streaming(double share, const UserModel* users,
                                          category::Categorizer* categorizer);

/// The remainder of the 105 suspected domains (news, wikimedia, amazon,
/// forums, ...), weighted per Tables 8–9.
std::unique_ptr<Component> make_suspected_misc(
    double share, const UserModel* users, category::Categorizer* categorizer);

/// Israel-directed traffic: .il hosts, `israel`-keyword requests and
/// direct-IP requests into the Table 12 subnets (censored and allowed
/// groups alike).
std::unique_ptr<Component> make_israel(double share, const UserModel* users,
                                       const geo::GeoIpDb* geoip,
                                       category::Categorizer* categorizer,
                                       std::uint64_t seed);

/// Direct-IP traffic to the non-Israel countries of Table 11; censorship
/// is keyword collateral in the path.
std::unique_ptr<Component> make_direct_ip(double share, const UserModel* users,
                                          const geo::GeoIpDb* geoip,
                                          std::uint64_t seed);

/// Anonymizer ecosystem of §7.2: 821 hosts, a filtered head and a long
/// unfiltered tail, per-host allowed/censored mixing ratios (Fig. 10).
std::unique_ptr<Component> make_anonymizers(double share,
                                            const UserModel* users,
                                            category::Categorizer* categorizer,
                                            std::uint64_t seed);

/// HTTPS CONNECT traffic (§4): mostly allowed; censored connects are
/// IP-based (Israeli or anonymizer endpoints, see
/// policy::anonymizer_endpoint_ips) or hostname-based (skype).
std::unique_ptr<Component> make_https_connect(double share,
                                              const UserModel* users,
                                              const geo::GeoIpDb* geoip,
                                              std::uint64_t seed);

/// Tor traffic (§7.1): 73% directory fetches over HTTP, 27% onion
/// CONNECTs, with relay unreachability pushing tcp_error to ~16%.
std::unique_ptr<Component> make_tor(double share, const UserModel* users,
                                    const tor::RelayDirectory* relays);

/// BitTorrent announces (§7.3) over a synthetic torrent-content registry.
class TorrentRegistry;
std::unique_ptr<Component> make_bittorrent(double share,
                                           const UserModel* users,
                                           const TorrentRegistry* torrents,
                                           category::Categorizer* categorizer);

}  // namespace syrwatch::workload
