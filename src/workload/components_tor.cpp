#include <cmath>

#include "workload/components.h"
#include "workload/textgen.h"
#include "workload/torrents.h"

namespace syrwatch::workload {

// ---------------------------------------------------------------------------
// TorrentRegistry
// ---------------------------------------------------------------------------

TorrentRegistry::TorrentRegistry(std::size_t content_count,
                                 std::uint64_t seed) {
  util::Rng rng{util::mix64(seed ^ 0xB177)};

  struct Pinned {
    const char* title;
    double weight;  // announce counts from §7.3
  };
  // The paper's named payloads; UltraSurf's 2,703 requests span versions.
  static constexpr Pinned kPinned[] = {
      {"UltraSurf 10.17 Anti Censorship", 1500.0},
      {"UltraSurf 9.97 portable", 1203.0},
      {"Auto Hide IP 5.1.8.2 + crack", 532.0},
      {"Anonymous Browser Toolkit 2011", 393.0},
      {"HideMyAss VPN client", 176.0},
      {"Skype 5.3 offline installer", 940.0},
      {"MSN Messenger 2011 setup", 710.0},
      {"Yahoo Messenger 11 installer", 430.0},
  };

  contents_.reserve(content_count);
  std::vector<double> weights;
  weights.reserve(content_count);
  for (const Pinned& p : kPinned) {
    contents_.push_back({hex_token(rng, 40), p.title, p.weight, true});
    weights.push_back(p.weight);
  }

  static constexpr const char* kStems[] = {
      "Desert Storm", "Sham Nights",   "Ramadan Series", "Aleppo Streets",
      "Old Damascus", "Levant Beats",  "Arabic Pop Hits", "Coast Road",
      "The Caravan",  "Orient Express"};
  static constexpr const char* kSuffix[] = {"DVDRip", "x264", "CAM", "mp3 320k",
                                            "S01 complete", "PC game"};
  for (std::size_t i = contents_.size(); i < content_count; ++i) {
    Content content;
    content.info_hash = hex_token(rng, 40);
    content.title = std::string(kStems[rng.uniform(std::size(kStems))]) + " " +
                    std::to_string(2005 + rng.uniform(7)) + " " +
                    kSuffix[rng.uniform(std::size(kSuffix))];
    // Zipf-ish popularity over the bulk catalog. The constant keeps the
    // pinned circumvention payloads at ~1.5% of announce volume, matching
    // §7.3 (2,703 UltraSurf announces of 338K total).
    content.weight = 20000.0 /
                     std::pow(static_cast<double>(i - std::size(kPinned) + 1),
                              0.85);
    weights.push_back(content.weight);
    contents_.push_back(std::move(content));
  }
  for (std::size_t i = 0; i < contents_.size(); ++i)
    by_hash_.emplace(std::string_view{contents_[i].info_hash}, i);
  sampler_ = std::make_unique<util::AliasSampler>(weights);
}

const TorrentRegistry::Content& TorrentRegistry::sample(
    util::Rng& rng) const noexcept {
  return contents_[sampler_->sample(rng)];
}

std::optional<std::string_view> TorrentRegistry::resolve(
    std::string_view info_hash) const {
  const auto it = by_hash_.find(info_hash);
  if (it == by_hash_.end()) return std::nullopt;
  // Deterministic crawl success: ~77.4% of hashes resolve. The widely
  // shared circumvention/IM payloads always do — they are exactly the
  // kind of well-announced content public indexers carry (the paper
  // identified all of them by name).
  if (contents_[it->second].circumvention)
    return std::string_view{contents_[it->second].title};
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the hash text
  for (char c : info_hash) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  if (util::mix64(h) % 1000 >= 774) return std::nullopt;
  return std::string_view{contents_[it->second].title};
}

namespace {

/// Tor traffic (§7.1): directory fetches (Torhttp, 73%) and onion-circuit
/// CONNECTs (Toronion, 27%). Relay unreachability pushes tcp_error toward
/// the observed 16.2%. Censorship comes entirely from the per-proxy
/// endpoint rules in the policy (SG-44's scheduled experiment).
class TorComponent final : public Component {
 public:
  TorComponent(double share, const UserModel* users,
               const tor::RelayDirectory* relays)
      : Component(share, users), relays_(relays) {
    // Guard-weighted relay popularity.
    std::vector<double> weights(relays->size());
    for (std::size_t i = 0; i < weights.size(); ++i)
      weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), 0.8);
    sampler_ = std::make_unique<util::AliasSampler>(weights);
  }

  std::string_view name() const noexcept override { return "tor"; }

  double modulation(std::int64_t t) const noexcept override {
    // Fig. 8a: pronounced daytime peaks on August 3.
    if (t >= at(8, 3, 7, 0) && t < at(8, 3, 21, 0)) return 2.4;
    if (t >= at(8, 1, 0, 0) && t < at(8, 2, 0, 0)) return 0.8;
    return 1.0;
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const tor::Relay* relay =
        &relays_->relays()[sampler_->sample(rng)];
    if (rng.bernoulli(0.73)) {
      // Torhttp: plain directory fetch.
      while (relay->dir_port == 0)
        relay = &relays_->relays()[sampler_->sample(rng)];
      request.url.host = relay->address.to_string();
      request.url.port = relay->dir_port;
      request.url.path = tor::directory_path(rng);
      request.dest_ip = relay->address;
    } else {
      // Toronion: tunnelled circuit establishment.
      request.method = "CONNECT";
      request.url.scheme = net::Scheme::kTcp;
      request.url.host = relay->address.to_string();
      request.url.port = relay->or_port;
      request.dest_ip = relay->address;
    }
    request.dest_unreachable_prob = 0.135;
    return request;
  }

 private:
  const tor::RelayDirectory* relays_;
  std::unique_ptr<util::AliasSampler> sampler_;
};

/// BitTorrent announces (§7.3). Tracker URLs carry the info-hash and a
/// stable per-user peer id; one tracker (tracker-proxy.furk.net) trips the
/// `proxy` keyword, everything else is allowed — P2P sails under the
/// filter even when the payload is circumvention software.
class BitTorrentComponent final : public Component {
 public:
  BitTorrentComponent(double share, const UserModel* users,
                      const TorrentRegistry* torrents,
                      category::Categorizer* categorizer)
      : Component(share, users), torrents_(torrents) {
    trackers_.entries = {{"tracker.openbittorrent.com", 0.46},
                         {"tracker.publicbt.com", 0.28},
                         {"tracker.thepiratebay.org", 0.23},
                         {"tracker-proxy.furk.net", 0.03}};
    trackers_.finalize();
    for (const auto& entry : trackers_.entries)
      categorizer->add(entry.host, category::Category::kFileSharing);
  }

  std::string_view name() const noexcept override { return "bittorrent"; }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    request.user_agent = std::string(UserModel::bittorrent_agent());
    const auto& content = torrents_->sample(rng);
    const auto& tracker = trackers_.sample(rng);
    request.url.host = tracker.host;
    request.url.path = "/announce";
    char peer[32];
    std::snprintf(peer, sizeof peer, "-UT2210-%012llx",
                  static_cast<unsigned long long>(
                      util::mix64(request.user_id) & 0xFFFFFFFFFFFFULL));
    request.url.query = "info_hash=" + content.info_hash +
                        "&peer_id=" + peer + "&port=6881&uploaded=0" +
                        "&downloaded=0&left=" +
                        std::to_string(rng.uniform(4'000'000'000ULL)) +
                        "&compact=1";
    return request;
  }

 private:
  const TorrentRegistry* torrents_;
  HostMix trackers_;
};

}  // namespace

std::unique_ptr<Component> make_tor(double share, const UserModel* users,
                                    const tor::RelayDirectory* relays) {
  return std::make_unique<TorComponent>(share, users, relays);
}

std::unique_ptr<Component> make_bittorrent(
    double share, const UserModel* users, const TorrentRegistry* torrents,
    category::Categorizer* categorizer) {
  return std::make_unique<BitTorrentComponent>(share, users, torrents,
                                               categorizer);
}

}  // namespace syrwatch::workload
