#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/sampler.h"

namespace syrwatch::workload {

/// Synthetic BitTorrent content universe (§7.3's substrate).
///
/// Stands in for the real swarm the paper observed: 35K unique info-hashes,
/// most of them ordinary media, plus pinned circumvention/IM payloads
/// (UltraSurf, HideMyAss, Auto Hide IP, anonymous browsers, Skype/MSN/Yahoo
/// installers) with the request volumes the paper reports. `resolve()`
/// simulates the torrentz.eu/torrentproject crawl, succeeding for a
/// deterministic ~77.4% of hashes.
class TorrentRegistry {
 public:
  struct Content {
    std::string info_hash;  // 40 hex chars
    std::string title;
    double weight = 1.0;        // announce-volume weight
    bool circumvention = false; // anti-censorship or IM payload
  };

  TorrentRegistry(std::size_t content_count, std::uint64_t seed);

  std::size_t size() const noexcept { return contents_.size(); }
  const std::vector<Content>& contents() const noexcept { return contents_; }

  /// Announce-volume-weighted draw.
  const Content& sample(util::Rng& rng) const noexcept;

  /// Title lookup via the simulated crawl; fails for ~22.6% of hashes.
  std::optional<std::string_view> resolve(std::string_view info_hash) const;

  /// Crawl success rate used by resolve().
  static constexpr double kResolveRate = 0.774;

 private:
  std::vector<Content> contents_;
  std::unordered_map<std::string_view, std::size_t> by_hash_;
  std::unique_ptr<util::AliasSampler> sampler_;
};

}  // namespace syrwatch::workload
