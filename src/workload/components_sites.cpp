#include <algorithm>
#include <cmath>

#include "util/simtime.h"
#include "workload/components.h"
#include "workload/textgen.h"

namespace syrwatch::workload {

namespace {

using category::Category;

/// Instant-messaging endpoints — the most heavily censored service class.
/// All three hosts are on the domain blacklist; the Aug-3 surge windows
/// (client retries during the protests) create the paper's censorship
/// peaks (Fig. 6: RCV doubling from 8:00 to 9:30, Table 5's skype-heavy
/// morning windows).
class ImComponent final : public Component {
 public:
  ImComponent(double share, const UserModel* users,
              category::Categorizer* categorizer)
      : Component(share, users) {
    categorizer->add("skype.com", Category::kInstantMessaging);
    categorizer->add("live.com", Category::kPortalSites);
    categorizer->add("messenger.live.com", Category::kInstantMessaging);
    categorizer->add("ceipmsn.com", Category::kInternetServices);
    mix_.entries = {{"skype.com", 560000.0},
                    {"messenger.live.com", 465000.0},
                    {"ceipmsn.com", 140000.0}};
    mix_.finalize();
  }

  std::string_view name() const noexcept override { return "im"; }

  double modulation(std::int64_t t) const noexcept override {
    double m = july_damp(t);
    // August 3 surges: early morning, the big 8:00–9:30 spike, and a late
    // evening bump — §5.1's RCV peaks.
    if (t >= at(8, 3, 5, 0) && t < at(8, 3, 5, 40)) m *= 3.5;
    if (t >= at(8, 3, 8, 0) && t < at(8, 3, 9, 30)) m *= 7.0;
    if (t >= at(8, 3, 22, 0) && t < at(8, 3, 22, 40)) m *= 3.0;
    return m;
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const auto& entry = mix_.sample(rng);
    if (entry.host == "skype.com") {
      if (rng.bernoulli(0.09)) {
        // Windows client update attempts — all denied (§5.1).
        request.user_agent = std::string(UserModel::skype_agent());
        request.url.host = "download.skype.com";
        request.url.path = "/windows/SkypeSetup.exe";
      } else if (rng.bernoulli(0.3)) {
        // Client CONNECT tunnels to port 443. The proxies log these as raw
        // tunnels, not ssl-scheme requests — which is why skype's censored
        // volume dwarfs the ssl-scheme traffic of §4.
        request.method = "CONNECT";
        request.url.scheme = net::Scheme::kTcp;
        request.url.host = "conn.skype.com";
        request.url.port = 443;
      } else if (rng.bernoulli(0.2)) {
        // Homepage visits — the bare-domain anchors §5.4's discovery
        // algorithm keys on.
        request.url.host = "www.skype.com";
        request.url.path = "/";
      } else {
        request.url.host = "ui.skype.com";
        request.url.path = "/ui/2/status";
        request.url.query = "u=" + token(rng, 8);
      }
    } else if (entry.host == "messenger.live.com") {
      request.url.host = "messenger.live.com";
      request.url.path = "/gateway/gateway.dll";
      request.url.query = "Action=poll&SessionID=" + token(rng, 10);
    } else {
      request.url.host = "www.ceipmsn.com";
      request.url.path = "/census.asmx/r";
      request.url.query = "c=" + token(rng, 12);
    }
    return request;
  }

 private:
  HostMix mix_;
};

/// Blacklisted video/streaming sites. metacafe dominates; trafficholder's
/// early-morning bursts reproduce Table 5's 6–8am window.
class StreamingComponent final : public Component {
 public:
  StreamingComponent(double share, const UserModel* users,
                     category::Categorizer* categorizer)
      : Component(share, users) {
    categorizer->add("metacafe.com", Category::kStreamingMedia);
    categorizer->add("dailymotion.com", Category::kStreamingMedia);
    categorizer->add("trafficholder.com", Category::kEntertainment);
    categorizer->add("upload.youtube.com", Category::kStreamingMedia);
    mix_.entries = {{"metacafe.com", 1430000.0},
                    {"dailymotion.com", 110000.0},
                    {"trafficholder.com", 122000.0}};
    mix_.finalize();
  }

  std::string_view name() const noexcept override { return "streaming"; }

  double modulation(std::int64_t t) const noexcept override {
    // Adult-traffic-broker redirects burst in the early morning.
    const double hour = util::hour_of_day(t);
    return july_damp(t) * ((hour >= 5.5 && hour < 8.0) ? 1.9 : 1.0);
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const auto& entry = mix_.sample(rng);
    request.url.host = "www." + entry.host;
    if (entry.host == "trafficholder.com") {
      request.url.path = "/in.php";
      request.url.query = "id=" + token(rng, 6);
    } else if (rng.bernoulli(0.22)) {
      request.url.path = "/";  // homepage anchors for §5.4 discovery
    } else {
      request.url.path = "/watch/" + token(rng, 7) + "/" + token(rng, 10) + "/";
    }
    return request;
  }

 private:
  HostMix mix_;
};

/// The rest of the 105-entry URL blacklist: reference, shopping, news,
/// forums, and the synthetic fillers. Weights follow the censored-request
/// counts of Tables 4/8 for the named domains and a gentle power law for
/// the fillers, so Table 8's ranking and Table 9's category mix both
/// reproduce.
class SuspectedMiscComponent final : public Component {
 public:
  SuspectedMiscComponent(double share, const UserModel* users,
                         category::Categorizer* categorizer)
      : Component(share, users) {
    struct Named {
      const char* domain;
      double weight;
    };
    static constexpr Named kNamed[] = {
        {"wikimedia.org", 306994.0}, {"amazon.com", 62759.0},
        {"aawsat.com", 51518.0},     {"jumblo.com", 23214.0},
        {"jeddahbikers.com", 21274.0}, {"badoo.com", 14502.0},
        {"islamway.com", 14408.0},   {"netlog.com", 9252.0},
        {"all4syria.info", 9000.0},  {"islammemo.cc", 7200.0},
        {"alquds.co.uk", 6200.0},    {"free-syria.com", 5100.0},
        {"new-syria.com", 4300.0},   {"hotsptshld.com", 7400.0},
        {"conduitapps.com", 9100.0}, {"mtn.com.sy", 6800.0},
        {"news.bbc.co.uk", 5600.0},
    };
    std::vector<std::string> named;
    for (const Named& n : kNamed) {
      mix_.entries.push_back({n.domain, n.weight});
      named.emplace_back(n.domain);
    }
    // Synthetic fillers from the shared blacklist, skipping domains owned
    // by other components (IM, streaming).
    int filler_rank = 0;
    for (const auto& sd : policy::suspected_domains()) {
      if (sd.domain == "metacafe.com" || sd.domain == "skype.com" ||
          sd.domain == "messenger.live.com" || sd.domain == "ceipmsn.com" ||
          sd.domain == "dailymotion.com" || sd.domain == "trafficholder.com")
        continue;
      if (std::find(named.begin(), named.end(), sd.domain) != named.end())
        continue;
      ++filler_rank;
      mix_.entries.push_back(
          {sd.domain, 3600.0 / std::pow(static_cast<double>(filler_rank), 0.8)});
    }
    mix_.finalize();
    for (const auto& sd : policy::suspected_domains())
      categorizer->add(sd.domain, sd.category);
  }

  std::string_view name() const noexcept override { return "suspected-misc"; }

  double modulation(std::int64_t t) const noexcept override {
    return july_damp(t);
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const auto& entry = mix_.sample(rng);
    request.url.host = entry.host;
    // §5.4's discovery algorithm anchors on bare-domain requests with empty
    // path and query; keep a healthy share of those.
    if (rng.bernoulli(0.35)) {
      request.url.path = "/";
    } else {
      PathSpec spec = make_path(PathStyle::kPage, rng);
      request.url.path = std::move(spec.path);
      request.url.query = std::move(spec.query);
    }
    return request;
  }

 private:
  HostMix mix_;
};

/// Israel-directed traffic: .il hostnames, `israel`-keyword URLs, and
/// direct-IP requests into Israeli address space (Table 12's two groups:
/// wholesale-blocked subnets vs subnets with a few blocked hosts).
class IsraelComponent final : public Component {
 public:
  IsraelComponent(double share, const UserModel* users,
                  const geo::GeoIpDb* geoip,
                  category::Categorizer* categorizer, std::uint64_t seed)
      : Component(share, users), rng_pool_(util::mix64(seed ^ 0x15AE)) {
    (void)geoip;
    categorizer->add("panet.co.il", Category::kGeneralNews);
    categorizer->add("walla.co.il", Category::kPortalSites);
    categorizer->add("ynet.co.il", Category::kGeneralNews);

    // Fixed host pools per subnet, sized per Table 12's "# IPs" columns.
    auto pool = [this](const char* cidr, std::size_t n) {
      const auto s = net::Ipv4Subnet::parse(cidr);
      std::vector<net::Ipv4Addr> ips;
      ips.reserve(n);
      for (std::size_t i = 0; i < n; ++i) ips.push_back(s->sample(rng_pool_));
      return ips;
    };
    t84_ = pool("84.229.0.0/16", 198);
    t46_ = pool("46.120.0.0/15", 11);
    t89_ = pool("89.138.0.0/15", 148);
    t235_blocked_ = pool("212.235.64.0/20", 5);   // inside the blocked /20
    t235_allowed_ = pool("212.235.80.0/20", 1);   // the allowed upper half
    t150_blocked_ = {net::Ipv4Addr{212, 150, 1, 10},
                     net::Ipv4Addr{212, 150, 7, 33},
                     net::Ipv4Addr{212, 150, 100, 2}};
    t150_allowed_ = pool("212.150.128.0/17", 12);
    extra_allowed_ = pool("80.179.0.0/16", 260);
    tail_blocked_ = pool("62.219.128.0/17", 90);

    // Sub-source weights: observed request counts (Tables 11/12). The
    // "tail blocked" source carries the censored volume beyond Table 12's
    // top-5 (5,191 total censored vs the table's 2,577).
    static constexpr double kWeights[] = {
        112369.0,  // .il hostnames (censored by TLD rule)
        48119.0,   // `israel` keyword URLs
        65725.0,   // direct-IP, allowed extra subnets
        6366.0,    // direct-IP, 212.150/16 allowed hosts
        471.0,     // direct-IP, 212.150/16 blocked hosts
        325.0,     // direct-IP, 212.235.80/20 allowed host
        474.0,     // direct-IP, 212.235.64/20 blocked
        574.0,     // direct-IP, 84.229/16
        571.0,     // direct-IP, 46.120/15
        487.0,     // direct-IP, 89.138/15
        2614.0,    // direct-IP, smaller blocked blocks (62.219.128/17)
    };
    sampler_ = std::make_unique<util::AliasSampler>(kWeights);
  }

  std::string_view name() const noexcept override { return "israel"; }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const std::size_t source = sampler_->sample(rng);
    switch (source) {
      case 0: {  // .il hostnames
        // panet (Arabic-language portal) dominates .il traffic from Syria;
        // a few other portals follow with enough volume each that the
        // discovery algorithm can establish them as never-allowed.
        static constexpr const char* kIlHosts[] = {
            "www.panet.co.il", "www.walla.co.il", "www.ynet.co.il",
            "www.haaretz.co.il", "www.mako.co.il"};
        static constexpr double kIlWeights[] = {0.56, 0.20, 0.14, 0.06,
                                                0.04};
        request.url.host = kIlHosts[rng.weighted_index(kIlWeights)];
        PathSpec spec = make_path(PathStyle::kPage, rng);
        request.url.path = std::move(spec.path);
        request.url.query = std::move(spec.query);
        break;
      }
      case 1: {  // keyword collateral
        const double pick = rng.uniform01();
        if (pick < 0.20) {
          request.url.host = "www.israelnationalnews.com";
          request.url.path = "/news/" + token(rng, 6) + ".html";
        } else if (pick < 0.82) {
          request.url.host = "news.search-portal.net";
          request.url.path = "/results";
          request.url.query = "q=israel+" + token(rng, 5);
        } else {
          // Searches on the same portal for other topics sail through —
          // keeping the portal itself off the suspected-domain list.
          request.url.host = "news.search-portal.net";
          request.url.path = "/results";
          request.url.query = "q=" + token(rng, 7);
        }
        break;
      }
      default: {  // direct-IP
        const std::vector<net::Ipv4Addr>* pool = nullptr;
        switch (source) {
          case 2: pool = &extra_allowed_; break;
          case 3: pool = &t150_allowed_; break;
          case 4: pool = &t150_blocked_; break;
          case 5: pool = &t235_allowed_; break;
          case 6: pool = &t235_blocked_; break;
          case 7: pool = &t84_; break;
          case 8: pool = &t46_; break;
          case 9: pool = &t89_; break;
          default: pool = &tail_blocked_; break;
        }
        const net::Ipv4Addr ip = (*pool)[rng.uniform(pool->size())];
        request.url.host = ip.to_string();
        request.dest_ip = ip;
        // Bare-IP URLs: §5.4 notes the censored requests carry no path or
        // query information at all.
        request.url.path = rng.bernoulli(0.7) ? "" : "/";
        break;
      }
    }
    return request;
  }

 private:
  util::Rng rng_pool_;
  std::vector<net::Ipv4Addr> t84_, t46_, t89_, t235_blocked_, t235_allowed_,
      t150_blocked_, t150_allowed_, extra_allowed_, tail_blocked_;
  std::unique_ptr<util::AliasSampler> sampler_;
};

}  // namespace

std::unique_ptr<Component> make_im(double share, const UserModel* users,
                                   category::Categorizer* categorizer) {
  return std::make_unique<ImComponent>(share, users, categorizer);
}

std::unique_ptr<Component> make_streaming(
    double share, const UserModel* users,
    category::Categorizer* categorizer) {
  return std::make_unique<StreamingComponent>(share, users, categorizer);
}

std::unique_ptr<Component> make_suspected_misc(
    double share, const UserModel* users,
    category::Categorizer* categorizer) {
  return std::make_unique<SuspectedMiscComponent>(share, users, categorizer);
}

std::unique_ptr<Component> make_israel(double share, const UserModel* users,
                                       const geo::GeoIpDb* geoip,
                                       category::Categorizer* categorizer,
                                       std::uint64_t seed) {
  return std::make_unique<IsraelComponent>(share, users, geoip, categorizer,
                                           seed);
}

}  // namespace syrwatch::workload
