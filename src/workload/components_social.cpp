#include "workload/components.h"
#include "workload/textgen.h"

namespace syrwatch::workload {

namespace {

using category::Category;

/// Facebook social plugins (Table 15). Every request embeds `proxy` in the
/// path or in the cross-domain channel parameter of the query, so the whole
/// component is keyword collateral.
class FacebookPluginsComponent final : public Component {
 public:
  FacebookPluginsComponent(double share, const UserModel* users)
      : Component(share, users) {
    // {path, weight (Table 15 request counts), proxy-in-path}
    mix_.entries = {
        {"/plugins/like.php", 694788.0},
        {"/extern/login_status.php", 629495.0},
        {"/plugins/likebox.php", 77244.0},
        {"/plugins/send.php", 70146.0},
        {"/plugins/comments.php", 54265.0},
        {"/fbml/fbjs_ajax_proxy.php", 42649.0},
        {"/connect/canvas_proxy.php", 40516.0},
        {"/ajax/proxy.php", 1544.0},
        {"/platform/page_proxy.php", 1519.0},
        {"/plugins/facepile.php", 669.0},
    };
    mix_.finalize();
  }

  std::string_view name() const noexcept override {
    return "facebook-plugins";
  }

  double modulation(std::int64_t t) const noexcept override {
    return july_damp(t);
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const auto& entry = mix_.sample(rng);
    request.url.host = "www.facebook.com";
    request.url.path = entry.host;  // HostMix reused for paths here
    if (entry.host.find("proxy") == std::string::npos) {
      // Plugins without `proxy` in the path carry it in the cross-domain
      // channel URL (xd_proxy), which is how like.php & co. get censored.
      request.url.query =
          "href=http%3A%2F%2F" + token(rng, 9) +
          ".com%2F&channel=http%3A%2F%2Fstatic.ak.fbcdn.net%2Fconnect%2F"
          "xd_proxy.php%23cb%3D" +
          token(rng, 8);
    } else {
      request.url.query = "v=3&cb=" + token(rng, 8);
    }
    return request;
  }

 private:
  HostMix mix_;  // entries' host field holds the plugin path
};

/// Facebook political pages (Table 14). Requests to the exact categorized
/// form ("?ref=ts") hit the "Blocked sites" custom category and are
/// redirected; ajax/quickling variants of the same page slip through, and
/// sister pages are never categorized at all — the paper's evidence that
/// the categorization targeted a very narrow URL range.
class FacebookPagesComponent final : public Component {
 public:
  FacebookPagesComponent(double share, const UserModel* users)
      : Component(share, users) {
    for (const auto& page : policy::facebook_blocked_pages()) {
      const double total = page.censored + page.allowed + page.proxied;
      if (total <= 0.0) continue;
      pages_.push_back(
          {page.page,
           (page.censored + page.proxied) / total});  // categorized share
      weights_.push_back(total);
    }
    // Sister pages the censors missed (§6).
    for (const char* page :
         {"Syrian.Revolution.Army", "Syrian.Revolution.Assad",
          "Syrian.Revolution.Caricature", "ShaamNewsNetwork"}) {
      pages_.push_back({page, -1.0});  // never categorized
      weights_.push_back(350.0);
    }
    sampler_ = std::make_unique<util::AliasSampler>(weights_);
  }

  std::string_view name() const noexcept override { return "facebook-pages"; }

  double modulation(std::int64_t t) const noexcept override {
    return july_damp(t);
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const auto& page = pages_[sampler_->sample(rng)];
    request.url.host =
        rng.bernoulli(0.88) ? "www.facebook.com" : "ar-ar.facebook.com";
    request.url.path = "/" + page.name;
    if (page.categorized_share >= 0.0 &&
        rng.bernoulli(page.categorized_share)) {
      request.url.query = "ref=ts";  // the exact categorized form
    } else if (rng.bernoulli(0.5)) {
      request.url.query = "ref=ts&__a=11&ajaxpipe=1&quickling[version]=" +
                          token(rng, 6) + "%3B0";
    } else {
      request.url.query = "sk=wall&ref=" + token(rng, 4);
    }
    return request;
  }

 private:
  struct Page {
    std::string name;
    double categorized_share;  // < 0 => never categorized
  };
  std::vector<Page> pages_;
  std::vector<double> weights_;
  std::unique_ptr<util::AliasSampler> sampler_;
};

/// Whole hosts carried by the redirect category (Table 7).
class RedirectHostsComponent final : public Component {
 public:
  RedirectHostsComponent(double share, const UserModel* users)
      : Component(share, users) {
    mix_.entries = {{"upload.youtube.com", 12978.0},
                    {"competition.mbc.net", 50.0},
                    {"sharek.aljazeera.net", 44.0}};
    mix_.finalize();
  }

  std::string_view name() const noexcept override { return "redirect-hosts"; }

  double modulation(std::int64_t t) const noexcept override {
    return july_damp(t);
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const auto& entry = mix_.sample(rng);
    request.url.host = entry.host;
    if (entry.host == "upload.youtube.com") {
      request.url.path = "/my_videos_upload";
      request.url.query = "next_url=" + token(rng, 10);
    } else {
      request.url.path = "/" + token(rng, 7) + ".html";
    }
    return request;
  }

 private:
  HostMix mix_;
};

/// Browsing of the other social networks (Table 13): per-OSN volume and a
/// per-OSN probability that a request's URL drags in a blacklisted keyword
/// (ad/API collateral), which is the paper's explanation for the censored
/// residue on twitter/linkedin/hi5/skyrock/flickr.
class OsnBrowsingComponent final : public Component {
 public:
  OsnBrowsingComponent(double share, const UserModel* users,
                       category::Categorizer* categorizer)
      : Component(share, users) {
    struct Osn {
      const char* host;
      double volume;        // total requests (Table 13 allowed + censored)
      double keyword_rate;  // censored / total
    };
    static constexpr Osn kOsns[] = {
        {"twitter.com", 2830163.0, 0.0000576},
        {"linkedin.com", 193241.0, 0.0372},
        {"hi5.com", 213406.0, 0.0140},
        {"skyrock.com", 10871.0, 0.3042},
        {"flickr.com", 383214.0, 0.0000052},
        {"ning.com", 41999.0, 0.000143},
        {"meetup.com", 111.0, 0.0270},
        {"salamworld.com", 9000.0, 0.0},
        {"muslimup.com", 14000.0, 0.0},
    };
    for (const Osn& osn : kOsns) {
      categorizer->add(osn.host, Category::kSocialNetworking);
      mix_.entries.push_back({osn.host, osn.volume});
      keyword_rates_.push_back(osn.keyword_rate);
    }
    mix_.finalize();
  }

  std::string_view name() const noexcept override { return "osn-browsing"; }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    // Re-sample index so keyword rate lines up with the chosen host.
    const std::size_t idx = mix_.sampler->sample(rng);
    request.url.host = "www." + mix_.entries[idx].host;
    if (rng.bernoulli(keyword_rates_[idx])) {
      request.url.path = "/api/ads/proxy";
      request.url.query = "slot=" + token(rng, 6);
    } else {
      PathSpec spec = make_path(PathStyle::kPage, rng);
      request.url.path = std::move(spec.path);
      request.url.query = std::move(spec.query);
      request.cacheable = spec.cacheable;
    }
    return request;
  }

 private:
  HostMix mix_;
  std::vector<double> keyword_rates_;
};

}  // namespace

std::unique_ptr<Component> make_facebook_plugins(double share,
                                                 const UserModel* users) {
  return std::make_unique<FacebookPluginsComponent>(share, users);
}

std::unique_ptr<Component> make_facebook_pages(double share,
                                               const UserModel* users) {
  return std::make_unique<FacebookPagesComponent>(share, users);
}

std::unique_ptr<Component> make_redirect_hosts(double share,
                                               const UserModel* users) {
  return std::make_unique<RedirectHostsComponent>(share, users);
}

std::unique_ptr<Component> make_osn_browsing(
    double share, const UserModel* users,
    category::Categorizer* categorizer) {
  return std::make_unique<OsnBrowsingComponent>(share, users, categorizer);
}

}  // namespace syrwatch::workload
