#include "workload/scenario.h"

#include "util/simtime.h"

namespace syrwatch::workload {

namespace {

// Base volume shares, calibrated so the global Table 3 split (93.25%
// allowed / 0.98% censored) and the per-domain censored shares of Table 4
// come out of the simulation rather than being asserted. See DESIGN.md.
constexpr double kToolbarShare = 0.00060;
constexpr double kCollateralShare = 0.00142;
constexpr double kAdsCdnShare = 0.00070;
constexpr double kGoogleCacheShare = 0.0000065;
constexpr double kFbPluginsShare = 0.00215;
constexpr double kFbPagesShare = 0.0000115;
constexpr double kRedirectHostsShare = 0.0000174;
constexpr double kOsnShare = 0.0049;
constexpr double kImShare = 0.00150;
constexpr double kStreamingShare = 0.00215;
constexpr double kSuspectedShare = 0.000855;
constexpr double kIsraelShare = 0.000314;
constexpr double kDirectIpShare = 0.01545;
constexpr double kAnonymizerShare = 0.00240;
constexpr double kHttpsShare = 0.0008;
constexpr double kTorShare = 0.000126;
constexpr double kBitTorrentShare = 0.00045;

constexpr double kSpecialsTotal =
    kToolbarShare + kCollateralShare + kAdsCdnShare + kGoogleCacheShare +
    kFbPluginsShare + kFbPagesShare + kRedirectHostsShare + kOsnShare +
    kImShare + kStreamingShare + kSuspectedShare + kIsraelShare +
    kDirectIpShare + kAnonymizerShare + kHttpsShare + kTorShare +
    kBitTorrentShare;

}  // namespace

SyriaScenario::SyriaScenario(ScenarioConfig config)
    : config_(config),
      users_(config.user_population, config.seed),
      catalog_(config.catalog_tail, config.catalog_tail_weight, config.seed),
      relays_(tor::RelayDirectory::synthesize(config.relay_count,
                                              config.seed ^ 0x7042)),
      torrents_(config.torrent_contents, config.seed),
      geoip_(geo::build_world_geoip()),
      policy_(policy::build_syria_policy(relays_, config.seed)),
      farm_(&policy_, config.proxy_config, config.seed),
      rng_(util::mix64(config.seed ^ 0x5C3A)) {
  catalog_.register_categories(categorizer_);

  // Domain affinity (§5.2): >95% of metacafe on SG-48; IM and the other
  // specialized domains split between SG-48 and SG-45 (the proxy pair with
  // the 0.67 cosine similarity of Table 6); wikimedia pinned to SG-47,
  // which makes SG-47 dissimilar from everyone.
  if (config_.enable_affinity) {
  farm_.add_affinity("metacafe.com", policy::kAffinityProxy, 0.955);
  farm_.add_affinity("metacafe.com", 3, 0.045);
  farm_.add_affinity("skype.com", policy::kAffinityProxy, 0.50);
  farm_.add_affinity("skype.com", 3, 0.42);                // SG-45
  farm_.add_affinity("messenger.live.com", policy::kAffinityProxy, 0.45);
  farm_.add_affinity("messenger.live.com", 3, 0.45);
  farm_.add_affinity("ceipmsn.com", 3, 0.60);
  farm_.add_affinity("ceipmsn.com", policy::kAffinityProxy, 0.35);
  farm_.add_affinity("trafficholder.com", policy::kAffinityProxy, 0.50);
  farm_.add_affinity("trafficholder.com", 3, 0.40);
  farm_.add_affinity("wikimedia.org", 5, 0.85);            // SG-47
  farm_.add_affinity("dailymotion.com", 5, 0.55);
  }

  components_.push_back(
      make_browsing(1.0 - kSpecialsTotal, &users_, &catalog_));
  components_.push_back(make_google_toolbar(kToolbarShare, &users_));
  components_.push_back(
      make_collateral_apps(kCollateralShare, &users_, &categorizer_));
  components_.push_back(make_ads_cdn(kAdsCdnShare, &users_, &categorizer_));
  components_.push_back(make_google_cache(kGoogleCacheShare, &users_));
  components_.push_back(make_facebook_plugins(kFbPluginsShare, &users_));
  components_.push_back(make_facebook_pages(kFbPagesShare, &users_));
  components_.push_back(make_redirect_hosts(kRedirectHostsShare, &users_));
  components_.push_back(
      make_osn_browsing(kOsnShare, &users_, &categorizer_));
  components_.push_back(make_im(kImShare, &users_, &categorizer_));
  components_.push_back(make_streaming(kStreamingShare, &users_,
                                       &categorizer_));
  components_.push_back(
      make_suspected_misc(kSuspectedShare, &users_, &categorizer_));
  components_.push_back(make_israel(kIsraelShare, &users_, &geoip_,
                                    &categorizer_, config_.seed));
  components_.push_back(
      make_direct_ip(kDirectIpShare, &users_, &geoip_, config_.seed));
  components_.push_back(make_anonymizers(kAnonymizerShare, &users_,
                                         &categorizer_, config_.seed));
  components_.push_back(
      make_https_connect(kHttpsShare, &users_, &geoip_, config_.seed));
  components_.push_back(make_tor(kTorShare, &users_, &relays_));
  components_.push_back(make_bittorrent(kBitTorrentShare, &users_,
                                        &torrents_, &categorizer_));
}

void SyriaScenario::run(const LogCallback& sink) {
  const auto& days = observation_days();
  const std::int64_t slot = config_.slot_seconds;
  const auto slots_per_day =
      static_cast<std::size_t>(util::kSecondsPerDay / slot);

  // Normalize the diurnal curve over the whole window so the base shares
  // integrate to the configured total.
  double norm = 0.0;
  for (const std::int64_t day : days) {
    for (std::size_t s = 0; s < slots_per_day; ++s)
      norm += diurnal_.intensity(day + static_cast<std::int64_t>(s) * slot +
                                 slot / 2);
  }

  const double total = static_cast<double>(config_.total_requests);
  for (const std::int64_t day : days) {
    const bool filtered_day =
        config_.apply_leak_filter && sg42_only_day(day);
    const bool keep_hashes =
        !config_.apply_leak_filter || user_hash_day(day);
    for (std::size_t s = 0; s < slots_per_day; ++s) {
      const std::int64_t start = day + static_cast<std::int64_t>(s) * slot;
      const std::int64_t mid = start + slot / 2;
      const double base = total * diurnal_.intensity(mid) / norm;
      for (const auto& component : components_) {
        double boost = 1.0;
        const auto boost_it =
            config_.share_boosts.find(std::string(component->name()));
        if (boost_it != config_.share_boosts.end()) boost = boost_it->second;
        const double mean =
            base * component->share() * boost * component->modulation(mid);
        const std::uint64_t count = rng_.poisson(mean);
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::int64_t t =
              start + static_cast<std::int64_t>(rng_.uniform(
                          static_cast<std::uint64_t>(slot)));
          const proxy::Request request = component->generate(t, rng_);
          proxy::LogRecord record = farm_.process(request);
          if (filtered_day && record.proxy_index != 0) continue;
          if (!keep_hashes) record.user_hash = 0;
          sink(record);
        }
      }
    }
  }
}

}  // namespace syrwatch::workload
