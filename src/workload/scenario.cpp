#include "workload/scenario.h"

#include <algorithm>

#include "fault/profiles.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/simtime.h"

namespace syrwatch::workload {

namespace {

// Base volume shares, calibrated so the global Table 3 split (93.25%
// allowed / 0.98% censored) and the per-domain censored shares of Table 4
// come out of the simulation rather than being asserted. See DESIGN.md.
constexpr double kToolbarShare = 0.00060;
constexpr double kCollateralShare = 0.00142;
constexpr double kAdsCdnShare = 0.00070;
constexpr double kGoogleCacheShare = 0.0000065;
constexpr double kFbPluginsShare = 0.00215;
constexpr double kFbPagesShare = 0.0000115;
constexpr double kRedirectHostsShare = 0.0000174;
constexpr double kOsnShare = 0.0049;
constexpr double kImShare = 0.00150;
constexpr double kStreamingShare = 0.00215;
constexpr double kSuspectedShare = 0.000855;
constexpr double kIsraelShare = 0.000314;
constexpr double kDirectIpShare = 0.01545;
constexpr double kAnonymizerShare = 0.00240;
constexpr double kHttpsShare = 0.0008;
constexpr double kTorShare = 0.000126;
constexpr double kBitTorrentShare = 0.00045;

constexpr double kSpecialsTotal =
    kToolbarShare + kCollateralShare + kAdsCdnShare + kGoogleCacheShare +
    kFbPluginsShare + kFbPagesShare + kRedirectHostsShare + kOsnShare +
    kImShare + kStreamingShare + kSuspectedShare + kIsraelShare +
    kDirectIpShare + kAnonymizerShare + kHttpsShare + kTorShare +
    kBitTorrentShare;

}  // namespace

SyriaScenario::SyriaScenario(ScenarioConfig config)
    : config_(config),
      users_(config.user_population, config.seed),
      catalog_(config.catalog_tail, config.catalog_tail_weight, config.seed),
      relays_(tor::RelayDirectory::synthesize(config.relay_count,
                                              config.seed ^ 0x7042)),
      torrents_(config.torrent_contents, config.seed),
      geoip_(geo::build_world_geoip()),
      policy_(policy::build_syria_policy(relays_, config.seed)),
      farm_(&policy_, config.proxy_config, config.seed),
      faults_(fault::make_profile(config.fault_profile, config.seed)),
      stream_root_(util::mix64(config.seed ^ 0x5C3A)) {
  catalog_.register_categories(categorizer_);

  // Fault layer: the farm ignores an empty schedule entirely, so the
  // default "none" profile emits a log bit-identical to a fault-free
  // build.
  farm_.set_fault_schedule(&faults_);

  // Domain affinity (§5.2): >95% of metacafe on SG-48; IM and the other
  // specialized domains split between SG-48 and SG-45 (the proxy pair with
  // the 0.67 cosine similarity of Table 6); wikimedia pinned to SG-47,
  // which makes SG-47 dissimilar from everyone.
  if (config_.enable_affinity) {
  farm_.add_affinity("metacafe.com", policy::kAffinityProxy, 0.955);
  farm_.add_affinity("metacafe.com", 3, 0.045);
  farm_.add_affinity("skype.com", policy::kAffinityProxy, 0.50);
  farm_.add_affinity("skype.com", 3, 0.42);                // SG-45
  farm_.add_affinity("messenger.live.com", policy::kAffinityProxy, 0.45);
  farm_.add_affinity("messenger.live.com", 3, 0.45);
  farm_.add_affinity("ceipmsn.com", 3, 0.60);
  farm_.add_affinity("ceipmsn.com", policy::kAffinityProxy, 0.35);
  farm_.add_affinity("trafficholder.com", policy::kAffinityProxy, 0.50);
  farm_.add_affinity("trafficholder.com", 3, 0.40);
  farm_.add_affinity("wikimedia.org", 5, 0.85);            // SG-47
  farm_.add_affinity("dailymotion.com", 5, 0.55);
  }

  components_.push_back(
      make_browsing(1.0 - kSpecialsTotal, &users_, &catalog_));
  components_.push_back(make_google_toolbar(kToolbarShare, &users_));
  components_.push_back(
      make_collateral_apps(kCollateralShare, &users_, &categorizer_));
  components_.push_back(make_ads_cdn(kAdsCdnShare, &users_, &categorizer_));
  components_.push_back(make_google_cache(kGoogleCacheShare, &users_));
  components_.push_back(make_facebook_plugins(kFbPluginsShare, &users_));
  components_.push_back(make_facebook_pages(kFbPagesShare, &users_));
  components_.push_back(make_redirect_hosts(kRedirectHostsShare, &users_));
  components_.push_back(
      make_osn_browsing(kOsnShare, &users_, &categorizer_));
  components_.push_back(make_im(kImShare, &users_, &categorizer_));
  components_.push_back(make_streaming(kStreamingShare, &users_,
                                       &categorizer_));
  components_.push_back(
      make_suspected_misc(kSuspectedShare, &users_, &categorizer_));
  components_.push_back(make_israel(kIsraelShare, &users_, &geoip_,
                                    &categorizer_, config_.seed));
  components_.push_back(
      make_direct_ip(kDirectIpShare, &users_, &geoip_, config_.seed));
  components_.push_back(make_anonymizers(kAnonymizerShare, &users_,
                                         &categorizer_, config_.seed));
  components_.push_back(
      make_https_connect(kHttpsShare, &users_, &geoip_, config_.seed));
  components_.push_back(make_tor(kTorShare, &users_, &relays_));
  components_.push_back(make_bittorrent(kBitTorrentShare, &users_,
                                        &torrents_, &categorizer_));
}

namespace {

/// One (day, slot) unit of work for the generation phase.
struct SlotPlan {
  std::int64_t start = 0;
  double base = 0.0;        // expected requests for an all-components share 1
  bool filtered_day = false;  // leak keeps only SG-42 on this day
  bool keep_hashes = true;    // client hashes survive only on July 22–23
};

/// Generated, routed traffic of one slot, before proxy processing.
struct Shard {
  std::vector<proxy::Request> requests;  // generation order
  std::vector<std::uint8_t> proxy_of;    // routing decision per request
};

/// A filtered log line tagged with its deterministic merge key:
/// (shard ordinal << 32) | sequence-within-shard. Keys are unique because
/// each (shard, sequence) pair lands on exactly one proxy.
struct Processed {
  std::uint64_t key = 0;
  proxy::LogRecord record;
};

}  // namespace

std::size_t SyriaScenario::batch_count() const noexcept {
  const auto slots_per_day = static_cast<std::size_t>(
      util::kSecondsPerDay / config_.slot_seconds);
  const std::size_t shards = observation_days().size() * slots_per_day;
  return (shards + kShardsPerBatch - 1) / kShardsPerBatch;
}

void SyriaScenario::run(const LogCallback& sink) { run(sink, RunControl{}); }

bool SyriaScenario::run(const LogCallback& sink, const RunControl& control) {
  const auto& days = observation_days();
  const std::int64_t slot = config_.slot_seconds;
  const auto slots_per_day =
      static_cast<std::size_t>(util::kSecondsPerDay / slot);

  // Normalize the diurnal curve over the whole window so the base shares
  // integrate to the configured total.
  double norm = 0.0;
  for (const std::int64_t day : days) {
    for (std::size_t s = 0; s < slots_per_day; ++s)
      norm += diurnal_.intensity(day + static_cast<std::int64_t>(s) * slot +
                                 slot / 2);
  }

  // Resolve each component's share boost once: probing the map with a
  // freshly allocated std::string key inside the slot loop was one heap
  // allocation per component per slot per day.
  std::vector<double> boosts(components_.size(), 1.0);
  for (std::size_t c = 0; c < components_.size(); ++c) {
    const auto it =
        config_.share_boosts.find(std::string(components_[c]->name()));
    if (it != config_.share_boosts.end()) boosts[c] = it->second;
  }

  // Slot plan, day-major: the position in this vector is the shard
  // ordinal, which seeds the per-shard RNG streams and forms the high
  // half of the merge key. Everything downstream is a pure function of
  // it, so the emitted log is invariant to the thread count.
  std::vector<SlotPlan> plan;
  plan.reserve(days.size() * slots_per_day);
  const double total = static_cast<double>(config_.total_requests);
  for (const std::int64_t day : days) {
    const bool filtered_day = config_.apply_leak_filter && sg42_only_day(day);
    const bool keep_hashes = !config_.apply_leak_filter || user_hash_day(day);
    for (std::size_t s = 0; s < slots_per_day; ++s) {
      const std::int64_t start = day + static_cast<std::int64_t>(s) * slot;
      const double base =
          total * diurnal_.intensity(start + slot / 2) / norm;
      plan.push_back({start, base, filtered_day, keep_hashes});
    }
  }

  const std::size_t threads = util::resolve_threads(config_.threads);
  const std::size_t n_components = components_.size();
  const std::size_t n_proxies = farm_.proxy_count();

  // Observability instruments, all nullptr when detached. Stage timers run
  // at shard/batch granularity (never per request) so the < 2% overhead
  // budget of DESIGN.md §4.7 holds; counters are relaxed atomics that no
  // simulated decision reads, so the emitted log is identical either way.
  obs::StageStats* const gen_stage =
      obs::stage(obs_, "scenario.generate_shard");
  obs::StageStats* const proc_stage =
      obs::stage(obs_, "scenario.process_proxy_batch");
  obs::StageStats* const merge_stage = obs::stage(obs_, "scenario.merge");
  obs::Counter* const generated = obs::counter(obs_, "scenario.generated");
  obs::Counter* const emitted = obs::counter(obs_, "scenario.emitted");
  if (obs_ != nullptr) {
    obs_->registry().gauge("scenario.threads").set(
        static_cast<double>(threads));
  }

  // Shards are produced and consumed in fixed-size batches so peak memory
  // stays bounded by the batch, not the whole observation window. Batch
  // boundaries cannot affect results: RNG streams derive from the shard
  // ordinal and per-proxy processing order follows the merge key. The
  // batch is also the durability unit — control.start_batch skips whole
  // batches on resume, and cancellation never emits a partial one.
  std::vector<Shard> batch(std::min(kShardsPerBatch, plan.size()));
  std::vector<std::vector<Processed>> per_proxy(n_proxies);

  for (std::size_t batch_start = 0; batch_start < plan.size();
       batch_start += kShardsPerBatch) {
    const std::size_t batch_index = batch_start / kShardsPerBatch;
    if (batch_index < control.start_batch) continue;
    if (control.cancel != nullptr && control.cancel->cancelled())
      return false;
    const std::size_t n_shards =
        std::min(kShardsPerBatch, plan.size() - batch_start);

    // Phase 1 — generate + route, one shard per work item. Each
    // (shard, component) pair owns an independent child RNG, so shards
    // never contend and the draw sequence is execution-order-free.
    const bool generated_all =
        util::parallel_for(n_shards, threads, [&](std::size_t i) {
      const obs::StageTimer timer{gen_stage};
      const std::size_t ordinal = batch_start + i;
      const SlotPlan& sp = plan[ordinal];
      Shard& shard = batch[i];
      shard.requests.clear();
      shard.proxy_of.clear();
      const std::int64_t mid = sp.start + slot / 2;
      for (std::size_t c = 0; c < n_components; ++c) {
        util::Rng rng = stream_root_.split(
            static_cast<std::uint64_t>(ordinal) * n_components + c);
        const double mean = sp.base * components_[c]->share() * boosts[c] *
                            components_[c]->modulation(mid);
        const std::uint64_t count = rng.poisson(mean);
        for (std::uint64_t k = 0; k < count; ++k) {
          const std::int64_t t =
              sp.start + static_cast<std::int64_t>(rng.uniform(
                             static_cast<std::uint64_t>(slot)));
          proxy::Request request = components_[c]->generate(t, rng);
          shard.proxy_of.push_back(
              static_cast<std::uint8_t>(farm_.route(request)));
          shard.requests.push_back(std::move(request));
        }
      }
      obs::add(generated, shard.requests.size());
        }, control.cancel);
    if (!generated_all) return false;

    // A cancellation must land here, before phase 2 touches any proxy:
    // phase 1 is pure (RNG streams derive from shard ordinals), so its
    // output can be discarded freely — but once a proxy consumes a
    // request its sequential RNG and cache have advanced, and a batch
    // abandoned after that would leave the farm state one batch ahead of
    // the records a checkpoint saw (a resumed run would then process the
    // batch twice and diverge). From this point the batch runs to the
    // sink unconditionally.
    if (control.cancel != nullptr && control.cancel->cancelled())
      return false;

    // Phase 2 — per-proxy processing. Each SgProxy owns an LRU cache and
    // an RNG that must advance sequentially, so each proxy walks its own
    // time-ordered queue (shard-major, generation-order minor) on its own
    // worker. Requests on filtered days still pass through the proxy —
    // the leak drops the *records*, not the traffic that warmed caches.
    // NOTE: phase 2 is never handed the cancel token — a proxy that has
    // started consuming a batch must finish it, or its sequential RNG and
    // cache would be left mid-batch and the in-memory state could not be
    // discarded cleanly at a batch boundary.
    util::parallel_for(n_proxies, threads, [&](std::size_t p) {
      const obs::StageTimer timer{proc_stage};
      std::vector<Processed>& out = per_proxy[p];
      out.clear();
      // Sharded runs own a subset of the farm: an unowned proxy's queue is
      // dropped whole, leaving its sequential state untouched (some other
      // process owns and advances it).
      if (((control.proxy_mask >> p) & 1) == 0) return;
      proxy::SgProxy& appliance = farm_.proxy(p);
      for (std::size_t i = 0; i < n_shards; ++i) {
        const Shard& shard = batch[i];
        const SlotPlan& sp = plan[batch_start + i];
        const std::uint64_t hi = static_cast<std::uint64_t>(batch_start + i)
                                 << 32;
        for (std::size_t k = 0; k < shard.requests.size(); ++k) {
          if (shard.proxy_of[k] != p) continue;
          proxy::LogRecord record = appliance.process(shard.requests[k]);
          if (sp.filtered_day && p != 0) continue;
          if (!sp.keep_hashes) record.user_hash = 0;
          out.push_back({hi | k, std::move(record)});
        }
      }
    });

    // Phase 3 — deterministic merge: each per-proxy buffer is already
    // sorted by key, so a k-way merge restores global generation order
    // (day, slot, component, sequence) — exactly the order the old
    // single-threaded loop emitted — before the records reach the sink.
    {
      const obs::StageTimer merge_timer{merge_stage};
      std::uint64_t merged = 0;
      std::vector<std::size_t> head(n_proxies, 0);
      for (;;) {
        std::size_t best = n_proxies;
        std::uint64_t best_key = ~std::uint64_t{0};
        for (std::size_t p = 0; p < n_proxies; ++p) {
          if (head[p] < per_proxy[p].size() &&
              per_proxy[p][head[p]].key <= best_key) {
            best = p;
            best_key = per_proxy[p][head[p]].key;
          }
        }
        if (best == n_proxies) break;
        const Processed& item = per_proxy[best][head[best]];
        if (control.keyed_sink) control.keyed_sink(item.key, item.record);
        sink(item.record);
        ++head[best];
        ++merged;
      }
      obs::add(emitted, merged);
    }
    if (control.on_batch) control.on_batch(batch_index);
  }
  return true;
}

}  // namespace syrwatch::workload
