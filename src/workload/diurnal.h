#pragma once

#include <cstdint>
#include <vector>

namespace syrwatch::workload {

/// A time window with a rate multiplier, for protest-related drops,
/// IM surges and other localized events.
struct RateEvent {
  std::int64_t start = 0;
  std::int64_t end = 0;
  double multiplier = 1.0;
};

/// Temporal intensity model for the observation window.
///
/// Combines (1) a 24-hour base curve (night trough, morning ramp, midday
/// peak, afternoon/evening taper — the Fig. 5a shape), (2) per-day factors
/// (reduced volume on the protest Fridays, §5.1), and (3) event windows:
/// the two sudden Aug-3 drops and whatever the caller adds. The output is
/// an *unnormalized* multiplier; the scenario normalizes over the whole
/// observation period to hit its request-count target.
class DiurnalModel {
 public:
  DiurnalModel();

  /// Multiplies the base rate within [start, end).
  void add_event(RateEvent event);

  /// Overrides the factor of the day containing `day_start` (unix seconds
  /// at any point of that civil day).
  void set_day_factor(std::int64_t time_in_day, double factor);

  /// Intensity at time t (>= 0).
  double intensity(std::int64_t t) const noexcept;

 private:
  double hour_curve(double hour) const noexcept;
  double day_factor(std::int64_t t) const noexcept;

  std::vector<RateEvent> events_;
  std::vector<std::pair<std::int64_t, double>> day_factors_;  // day idx, f
};

/// The leaked-log observation days: July 22, 23, 31 and August 1–6, 2011,
/// as unix midnights, in chronological order.
const std::vector<std::int64_t>& observation_days();

/// Convenience: unix seconds of 2011-MM-DD hh:mm.
std::int64_t at(int month, int day, int hour = 0, int minute = 0);

/// True for the July days, where the leak retains only SG-42's log.
bool sg42_only_day(std::int64_t t) noexcept;

/// True for July 22–23, where the leak retains hashed client IPs (Duser).
bool user_hash_day(std::int64_t t) noexcept;

}  // namespace syrwatch::workload
