#include "workload/users.h"

#include <cmath>
#include <stdexcept>

namespace syrwatch::workload {

namespace {

// 2011-era browser mix (IE-heavy, Firefox, Chrome, Opera, mobile).
constexpr std::string_view kBrowserAgents[] = {
    "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 5.1)",
    "Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 5.1)",
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1; SV1)",
    "Mozilla/5.0 (Windows NT 5.1; rv:5.0) Gecko/20100101 Firefox/5.0",
    "Mozilla/5.0 (Windows NT 6.1; rv:5.0) Gecko/20100101 Firefox/5.0",
    "Mozilla/5.0 (Windows NT 5.1) AppleWebKit/534.30 Chrome/12.0.742.122",
    "Opera/9.80 (Windows NT 5.1; U; en) Presto/2.8.131 Version/11.11",
    "Mozilla/5.0 (iPhone; U; CPU iPhone OS 4_3 like Mac OS X)",
    "Mozilla/5.0 (Linux; U; Android 2.2; en-us; Nexus One)",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_6_8) AppleWebKit/534.30",
};
constexpr double kAgentWeights[] = {0.28, 0.14, 0.06, 0.16, 0.08,
                                    0.12, 0.05, 0.05, 0.03, 0.03};

}  // namespace

UserModel::UserModel(std::size_t population, std::uint64_t seed) {
  if (population == 0)
    throw std::invalid_argument("UserModel: population must be positive");
  util::Rng rng{util::mix64(seed ^ 0x05E9)};
  weights_.resize(population);
  agents_.resize(population);
  util::AliasSampler agent_sampler{kAgentWeights};
  for (std::size_t i = 0; i < population; ++i) {
    // Log-normal activity: sigma 1.6 gives the needed spread — a long tail
    // of users with hundreds of requests over a median of a handful.
    weights_[i] = std::exp(1.6 * rng.normal());
    agents_[i] = static_cast<std::uint8_t>(agent_sampler.sample(rng));
  }
  sampler_ = std::make_unique<util::AliasSampler>(weights_);
}

std::uint64_t UserModel::sample_user(util::Rng& rng) const noexcept {
  return static_cast<std::uint64_t>(sampler_->sample(rng)) + 1;
}

std::string_view UserModel::agent_of(std::uint64_t user_id) const {
  if (user_id == 0 || user_id > agents_.size())
    throw std::out_of_range("UserModel::agent_of");
  return kBrowserAgents[agents_[user_id - 1]];
}

double UserModel::weight_of(std::uint64_t user_id) const {
  if (user_id == 0 || user_id > weights_.size())
    throw std::out_of_range("UserModel::weight_of");
  return weights_[user_id - 1];
}

std::string_view UserModel::skype_agent() noexcept { return "Skype/5.3"; }
std::string_view UserModel::windows_update_agent() noexcept {
  return "Windows-Update-Agent";
}
std::string_view UserModel::bittorrent_agent() noexcept {
  return "uTorrent/2.2.1";
}
std::string_view UserModel::toolbar_agent() noexcept {
  return "GoogleToolbarBB";
}

}  // namespace syrwatch::workload
