#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/sampler.h"

namespace syrwatch::workload {

/// Synthetic client population.
///
/// Each user has a stable id, a heavy-tailed activity weight (log-normal,
/// so a small fraction of users generates most requests — the precondition
/// for the paper's Fig. 4b, where active users are far more likely to trip
/// keyword censorship at least once), and a browser user-agent drawn from
/// a 2011-era mix. The paper identifies users by the (c-ip, cs-user-agent)
/// pair; we keep that approximation meaningful by giving each user one
/// fixed agent.
class UserModel {
 public:
  UserModel(std::size_t population, std::uint64_t seed);

  std::size_t population() const noexcept { return weights_.size(); }

  /// Activity-weighted draw; returns a user id in [1, population].
  std::uint64_t sample_user(util::Rng& rng) const noexcept;

  /// The browser agent string of a user.
  std::string_view agent_of(std::uint64_t user_id) const;

  /// Activity weight (for tests; normalized to mean ~1).
  double weight_of(std::uint64_t user_id) const;

  /// Non-browser agents for software-driven requests (Skype updater,
  /// Windows Update, BitTorrent clients, toolbar) — §4 notes software
  /// retrying censored pages inflates user activity.
  static std::string_view skype_agent() noexcept;
  static std::string_view windows_update_agent() noexcept;
  static std::string_view bittorrent_agent() noexcept;
  static std::string_view toolbar_agent() noexcept;

 private:
  std::vector<double> weights_;       // index = user_id - 1
  std::vector<std::uint8_t> agents_;  // index into kBrowserAgents
  std::unique_ptr<util::AliasSampler> sampler_;
};

}  // namespace syrwatch::workload
