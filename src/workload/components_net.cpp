#include <algorithm>
#include <cmath>

#include "geo/world.h"
#include "workload/components.h"
#include "workload/textgen.h"

namespace syrwatch::workload {

namespace {

using category::Category;

/// Direct-IP traffic to the non-Israel countries of Table 11. Most of it
/// is allowed; the censored residue is keyword collateral in the path
/// (e.g. hosting boxes serving /proxy/ endpoints), which is why countries
/// like the Netherlands show a small but non-zero censorship ratio.
class DirectIpComponent final : public Component {
 public:
  DirectIpComponent(double share, const UserModel* users,
                    const geo::GeoIpDb* geoip, std::uint64_t seed)
      : Component(share, users) {
    util::Rng pool_rng{util::mix64(seed ^ 0xD1F0)};
    struct CountrySpec {
      const char* name;
      double censored;  // Table 11 counts
      double allowed;
    };
    static constexpr CountrySpec kCountries[] = {
        {geo::kKuwait, 16.0, 776.0},
        {geo::kRussia, 959.0, 149161.0},
        {geo::kUnitedKingdom, 2490.0, 942387.0},
        {geo::kNetherlands, 12206.0, 7077371.0},
        {geo::kSingapore, 19.0, 14768.0},
        {geo::kBulgaria, 14.0, 14786.0},
        {geo::kUnitedStates, 40.0, 2400000.0},
        {geo::kGermany, 5.0, 610000.0},
        {geo::kFrance, 3.0, 380000.0},
    };
    std::vector<double> weights;
    for (const CountrySpec& spec : kCountries) {
      Country country;
      country.keyword_rate = spec.censored / (spec.censored + spec.allowed);
      const auto blocks = geoip->blocks_of(spec.name);
      // A modest fixed pool of server IPs per country.
      const std::size_t pool_size =
          std::max<std::size_t>(8, static_cast<std::size_t>(
                                       std::sqrt(spec.allowed + 1.0)));
      for (std::size_t i = 0; i < pool_size && !blocks.empty(); ++i) {
        const auto& block = blocks[pool_rng.uniform(blocks.size())];
        country.ips.push_back(block.sample(pool_rng));
      }
      if (country.ips.empty()) continue;
      countries_.push_back(std::move(country));
      weights.push_back(spec.censored + spec.allowed);
    }
    sampler_ = std::make_unique<util::AliasSampler>(weights);
  }

  std::string_view name() const noexcept override { return "direct-ip"; }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const Country& country = countries_[sampler_->sample(rng)];
    const net::Ipv4Addr ip = country.ips[rng.uniform(country.ips.size())];
    request.url.host = ip.to_string();
    request.dest_ip = ip;
    if (rng.bernoulli(country.keyword_rate)) {
      request.url.path = "/proxy/" + token(rng, 6) + ".php";
    } else if (rng.bernoulli(0.6)) {
      request.url.path = "/" + token(rng, 8);
    }
    return request;
  }

 private:
  struct Country {
    std::vector<net::Ipv4Addr> ips;
    double keyword_rate = 0.0;
  };
  std::vector<Country> countries_;
  std::unique_ptr<util::AliasSampler> sampler_;
};

/// The anonymizer ecosystem of §7.2: 821 hosts. A filtered head of ~60
/// popular services carries ~75% of requests; whether a given request is
/// censored depends on blacklisted keywords in the URL, with a per-host
/// allowed/censored ratio spread over four decades (Fig. 10b). The long
/// tail of small web proxies / VPN endpoints is never filtered.
class AnonymizerComponent final : public Component {
 public:
  static constexpr std::size_t kHostCount = 821;
  static constexpr std::size_t kFilteredCount = 60;

  AnonymizerComponent(double share, const UserModel* users,
                      category::Categorizer* categorizer, std::uint64_t seed)
      : Component(share, users) {
    util::Rng build_rng{util::mix64(seed ^ 0xA407)};
    hosts_.reserve(kHostCount);

    // Filtered head. A handful of real services are pinned; the keyword
    // content of their URLs decides censorship. Hosts whose *name* carries
    // a keyword are always censored.
    auto add = [this](std::string host, double weight, double keyword_rate) {
      hosts_.push_back({std::move(host), keyword_rate});
      weights_.push_back(weight);
    };
    add("hotspotshield.com", 470.0, 1.0);   // keyword in host
    add("www.ultrasurf.us", 110.0, 1.0);
    add("ultrareach.com", 210.0, 1.0);
    add("kproxy.com", 600.0, 1.0);
    add("proxy.org", 450.0, 1.0);
    add("vtunnel.com", 950.0, 0.35);
    add("anonymouse.org", 900.0, 0.20);
    add("hidemyass.com", 820.0, 0.30);
    for (std::size_t i = hosts_.size(); i < kFilteredCount; ++i) {
      // Per-host allowed/censored ratio log-uniform in [1e-3, 1e3]
      // (Fig. 10b's x-range); keyword_rate = censored share.
      const double log_ratio = -3.0 + 6.0 * build_rng.uniform01();
      const double ratio = std::pow(10.0, log_ratio);
      add("www.surf" + std::to_string(i) + "-unblock.net",
          260.0 / std::pow(static_cast<double>(i + 1), 0.6),
          1.0 / (1.0 + ratio));
    }
    // Unfiltered tail: 92.7% of hosts, ~25% of requests.
    const std::size_t tail = kHostCount - kFilteredCount;
    double head_weight = 0.0;
    for (double w : weights_) head_weight += w;
    for (std::size_t i = 0; i < tail; ++i) {
      add("vpn" + std::to_string(i) + ".tunnelgate.net",
          head_weight / 3.0 / static_cast<double>(tail) *
              (0.2 + 1.6 * build_rng.uniform01()),
          0.0);
    }
    for (const Host& host : hosts_)
      categorizer->add(host.name, Category::kAnonymizer);
    sampler_ = std::make_unique<util::AliasSampler>(weights_);
  }

  std::string_view name() const noexcept override { return "anonymizers"; }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    if (rng.bernoulli(0.10)) {
      // Download-mirror fetches of circumvention tools from otherwise
      // benign software portals: the tool name in the path is what trips
      // the keyword filter (hotspotshield/ultrasurf/ultrareach, Table 10),
      // while the same portals' ordinary pages stay allowed.
      request.url.host = rng.bernoulli(0.5) ? "www.soft4arab.net"
                                            : "www.arabdownloadz.com";
      if (rng.bernoulli(0.35)) {
        static constexpr const char* kTools[] = {
            "hotspotshield_launch", "hotspotshield_setup", "ultrasurf_u1017",
            "ultrareach_green", "hotspotshield-elite"};
        static constexpr double kToolWeights[] = {0.28, 0.24, 0.22, 0.22,
                                                  0.04};
        request.url.path = std::string("/download/") +
                           kTools[rng.weighted_index(kToolWeights)] + ".exe";
      } else {
        request.url.path = "/soft/" + token(rng, 7) + ".html";
      }
      return request;
    }
    const std::size_t idx = sampler_->sample(rng);
    const Host& host = hosts_[idx];
    request.url.host = host.name;
    if (host.keyword_rate >= 1.0) {
      // The host *name* carries the keyword (hotspotshield.com, kproxy.com,
      // ...): every request is censored regardless of path.
      request.url.path = rng.bernoulli(0.5) ? "/" : "/download.html";
    } else if (rng.bernoulli(host.keyword_rate)) {
      // CGI-proxy style fetch whose own URL carries a keyword.
      request.url.path = "/cgi-bin/nph-proxy.cgi";
      request.url.query = "url=http%3A%2F%2F" + token(rng, 8) + ".com%2F";
    } else {
      request.url.path = "/";
      if (rng.bernoulli(0.4))
        request.url.query = "lang=ar&r=" + token(rng, 5);
    }
    return request;
  }

 private:
  struct Host {
    std::string name;
    double keyword_rate;
  };
  std::vector<Host> hosts_;
  std::vector<double> weights_;
  std::unique_ptr<util::AliasSampler> sampler_;
};

/// HTTPS CONNECT traffic (§4). Mostly hostname CONNECTs to big sites
/// (allowed — the proxies do not intercept TLS in the leak); the censored
/// slice is dominated by bare-IP CONNECTs to Israeli space or anonymizer
/// endpoints (82% of censored HTTPS), plus hostname CONNECTs to skype.com.
class HttpsConnectComponent final : public Component {
 public:
  HttpsConnectComponent(double share, const UserModel* users,
                        const geo::GeoIpDb* geoip, std::uint64_t seed)
      : Component(share, users), israeli_pool_rng_(util::mix64(seed ^ 0x7152)) {
    (void)geoip;
    for (const auto& subnet : geo::israeli_table12_subnets())
      if (subnet.prefix_len() <= 16)
        israeli_ips_.push_back(subnet.sample(israeli_pool_rng_));
  }

  std::string_view name() const noexcept override { return "https-connect"; }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    request.method = "CONNECT";
    request.url.scheme = net::Scheme::kHttps;
    request.url.port = 443;
    // The censored slice of ssl-scheme traffic is 0.82%, of which 82%
    // addresses an IP (Israeli space or anonymizer endpoints) and the rest
    // a blacklisted hostname (§4).
    const double pick = rng.uniform01();
    if (pick < 0.9918) {
      static constexpr const char* kHosts[] = {
          "www.facebook.com", "mail.google.com", "login.yahoo.com",
          "www.bankaudisyria.com", "www.paypal.com", "twitter.com",
          "mail.live.com", "accounts.google.com"};
      request.url.host = kHosts[rng.uniform(std::size(kHosts))];
      // The tunnelled request an intercepting proxy would see. In the
      // default (non-intercepting) deployment these never reach the log —
      // the §4 what-if. Facebook tunnels occasionally carry the targeted
      // political pages, which only page-level HTTPS censorship can catch.
      if (request.url.host == "www.facebook.com" && rng.bernoulli(0.02)) {
        const auto& pages = policy::facebook_blocked_pages();
        request.inner_path = "/" + pages[rng.uniform(pages.size())].page;
        request.inner_query = "ref=ts";
      } else {
        request.inner_path = "/" + token(rng, 7);
        request.inner_query = "sid=" + token(rng, 10);
      }
    } else if (pick < 0.9933) {
      request.url.host = "conn.skype.com";  // hostname-based censorship
    } else if (pick < 0.9970) {
      const auto& ips = policy::anonymizer_endpoint_ips();
      const net::Ipv4Addr ip = ips[rng.uniform(ips.size())];
      request.url.host = ip.to_string();
      request.dest_ip = ip;
    } else {
      const net::Ipv4Addr ip =
          israeli_ips_[rng.uniform(israeli_ips_.size())];
      request.url.host = ip.to_string();
      request.dest_ip = ip;
    }
    return request;
  }

 private:
  util::Rng israeli_pool_rng_;
  std::vector<net::Ipv4Addr> israeli_ips_;
};

}  // namespace

std::unique_ptr<Component> make_direct_ip(double share, const UserModel* users,
                                          const geo::GeoIpDb* geoip,
                                          std::uint64_t seed) {
  return std::make_unique<DirectIpComponent>(share, users, geoip, seed);
}

std::unique_ptr<Component> make_anonymizers(
    double share, const UserModel* users, category::Categorizer* categorizer,
    std::uint64_t seed) {
  return std::make_unique<AnonymizerComponent>(share, users, categorizer,
                                               seed);
}

std::unique_ptr<Component> make_https_connect(double share,
                                              const UserModel* users,
                                              const geo::GeoIpDb* geoip,
                                              std::uint64_t seed) {
  return std::make_unique<HttpsConnectComponent>(share, users, geoip, seed);
}

}  // namespace syrwatch::workload
