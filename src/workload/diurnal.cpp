#include "workload/diurnal.h"

#include "util/simtime.h"

namespace syrwatch::workload {

namespace {

// Hour-of-day anchors (local time); linearly interpolated.
constexpr double kHourAnchor[24] = {
    0.45, 0.35, 0.30, 0.28, 0.30, 0.40, 0.60, 0.85,  // 00–07: trough + ramp
    1.05, 1.25, 1.35, 1.40, 1.35, 1.25, 1.10, 1.00,  // 08–15: morning peak
    0.95, 1.00, 1.05, 1.10, 1.15, 1.05, 0.85, 0.60,  // 16–23: evening
};

std::int64_t day_index(std::int64_t t) noexcept {
  return t / util::kSecondsPerDay;
}

}  // namespace

std::int64_t at(int month, int day, int hour, int minute) {
  return util::to_unix_seconds({2011, month, day, hour, minute, 0});
}

const std::vector<std::int64_t>& observation_days() {
  static const std::vector<std::int64_t> days = {
      at(7, 22), at(7, 23), at(7, 31), at(8, 1), at(8, 2),
      at(8, 3),  at(8, 4),  at(8, 5),  at(8, 6),
  };
  return days;
}

bool sg42_only_day(std::int64_t t) noexcept {
  const auto c = util::to_civil(t);
  return c.month == 7;
}

bool user_hash_day(std::int64_t t) noexcept {
  const auto c = util::to_civil(t);
  return c.month == 7 && (c.day == 22 || c.day == 23);
}

DiurnalModel::DiurnalModel() {
  // Friday slowdowns (Jul 22 and Aug 5 were Fridays in 2011) — §5.1 cites
  // press reports of connections slowed "when the big weekly protests are
  // staged"; the Thursday-afternoon-to-Friday dip of Fig. 5a.
  set_day_factor(at(7, 22), 0.70);
  set_day_factor(at(8, 5), 0.62);
  set_day_factor(at(8, 6), 0.90);
  // Thursday Aug 4 afternoon taper.
  add_event({at(8, 4, 14), at(8, 5), 0.75});
  // The two sudden drops on Aug 3 (protest-correlated).
  add_event({at(8, 3, 13, 0), at(8, 3, 13, 25), 0.15});
  add_event({at(8, 3, 17, 10), at(8, 3, 17, 35), 0.15});
}

void DiurnalModel::add_event(RateEvent event) {
  events_.push_back(event);
}

void DiurnalModel::set_day_factor(std::int64_t time_in_day, double factor) {
  day_factors_.emplace_back(day_index(time_in_day), factor);
}

double DiurnalModel::hour_curve(double hour) const noexcept {
  const int h0 = static_cast<int>(hour) % 24;
  const int h1 = (h0 + 1) % 24;
  const double frac = hour - static_cast<int>(hour);
  return kHourAnchor[h0] * (1.0 - frac) + kHourAnchor[h1] * frac;
}

double DiurnalModel::day_factor(std::int64_t t) const noexcept {
  const std::int64_t idx = day_index(t);
  for (const auto& [day, factor] : day_factors_) {
    if (day == idx) return factor;
  }
  return 1.0;
}

double DiurnalModel::intensity(std::int64_t t) const noexcept {
  double value = hour_curve(util::hour_of_day(t)) * day_factor(t);
  for (const RateEvent& event : events_) {
    if (t >= event.start && t < event.end) value *= event.multiplier;
  }
  return value;
}

}  // namespace syrwatch::workload
