#pragma once

#include <string>

#include "util/rng.h"

namespace syrwatch::workload {

/// Lowercase base-36 token of the given length — the building block for
/// synthetic path/query/id material.
inline std::string token(util::Rng& rng, int length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) out.push_back(kAlphabet[rng.uniform(36)]);
  return out;
}

/// Lowercase hex string of the given length (BitTorrent info-hashes etc.).
inline std::string hex_token(util::Rng& rng, int length) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) out.push_back(kHex[rng.uniform(16)]);
  return out;
}

}  // namespace syrwatch::workload
