#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "category/categorizer.h"
#include "fault/schedule.h"
#include "geo/geoip.h"
#include "obs/context.h"
#include "geo/world.h"
#include "policy/syria.h"
#include "proxy/farm.h"
#include "tor/relay_directory.h"
#include "util/cancel.h"
#include "workload/catalog.h"
#include "workload/components.h"
#include "workload/diurnal.h"
#include "workload/torrents.h"
#include "workload/users.h"

namespace syrwatch::workload {

/// Knobs of the synthetic Summer-2011 deployment. Defaults generate about
/// 1.5M requests over the nine observation days — roughly a 1:500 scale
/// model of the leak's 751M — which keeps every analysis statistically
/// meaningful while a full study runs in seconds.
struct ScenarioConfig {
  std::uint64_t seed = 2011;
  /// Requests generated across all days *before* the leak filter (which
  /// keeps only SG-42's log on the July days, as the real leak does).
  std::uint64_t total_requests = 1'500'000;
  std::size_t user_population = 40'000;
  std::size_t catalog_tail = 30'000;
  /// Share of browsing volume carried by the Zipf tail. Calibrated so the
  /// pinned head's shares of *allowed* traffic land on Table 4 (google.com
  /// ~7.2%) — the leak's long tail carries roughly half the volume.
  double catalog_tail_weight = 0.52;
  std::size_t relay_count = 1'111;   // §7.1's observed relay count
  std::size_t torrent_contents = 4'000;
  proxy::SgProxyConfig proxy_config{};
  /// Reproduce the leak's shape: July days keep only SG-42, client hashes
  /// survive only on July 22–23. Disable to study the uncut logs.
  bool apply_leak_filter = true;
  std::int64_t slot_seconds = 300;
  /// Domain-affinity routing (metacafe/skype/... pinned to SG-48/SG-45,
  /// wikimedia to SG-47). Disable for the proxy-specialization ablation:
  /// without it Table 6's structure collapses to uniform similarity.
  bool enable_affinity = true;
  /// Per-component volume multipliers, keyed by Component::name(). The
  /// paper's rarest phenomena (Table 12's subnet hits, Tor censorship,
  /// policy redirects) number in the hundreds out of 751M requests; at
  /// reduced scale a bench studying them boosts the relevant component
  /// (e.g. {"israel", 30.0}) and reports counts normalized back. Boosting
  /// perturbs the global Table 3 proportions, so headline-statistics runs
  /// should leave this empty.
  std::map<std::string, double> share_boosts;
  /// Worker threads for the generate→route→process pipeline (also reused
  /// by core::Study and the report renderers for the analysis fan-out).
  /// 0 = one per hardware thread. The emitted log is bit-identical for
  /// every value (DESIGN.md §4.5): request generation is sharded by
  /// (day, slot) with per-(day, slot, component) child RNG streams, each
  /// proxy consumes its own queue in a fixed global order, and shard
  /// buffers merge back into generation order before reaching the sink.
  std::size_t threads = 0;
  /// Named fault profile (fault::make_profile) injected into the farm:
  /// proxy outages with deterministic failover, brownouts, flapping.
  /// "none" (the default) keeps the fault layer inert and the log
  /// bit-identical to a fault-free build; any profile preserves the
  /// thread-count-invariance contract (DESIGN.md §4.6).
  std::string fault_profile = "none";
};

using LogCallback = std::function<void(const proxy::LogRecord&)>;

/// Knobs for a controlled run: cooperative cancellation, batch-granular
/// resumption, and a per-batch completion hook — the surface the durable
/// checkpoint layer drives. None of these can change *what* a batch emits
/// (generation is a pure function of the shard ordinal; proxy state
/// advances in fixed batch order), only which batches execute.
struct RunControl {
  /// Polled at batch boundaries and inside the parallel phases; when it
  /// fires, run() returns false without emitting the in-flight batch.
  const util::CancelToken* cancel = nullptr;
  /// First batch to execute; earlier batches are skipped entirely. The
  /// caller owns restoring the farm's mutable state to the value it held
  /// at this boundary (proxy::ProxyFarm::restore_state) — generation
  /// shards need no restoration, their RNG streams derive from ordinals.
  std::size_t start_batch = 0;
  /// Invoked on the calling thread after each batch's records reached the
  /// sink, with the index of the completed batch; a checkpointer commits
  /// its batch here. May throw — the exception propagates out of run()
  /// (that is exactly what a mid-run crash looks like to a resumer).
  std::function<void(std::size_t completed_batch)> on_batch;
  /// Bitmask of farm proxies this run owns (bit p = proxy index p). The
  /// unit of multi-process sharding (src/shard): generation and routing
  /// are untouched — they are pure functions shared by every shard — but
  /// requests routed to an unowned proxy are never processed, so that
  /// proxy's sequential state (cache, RNG) never advances here and the
  /// emitted log is exactly the owned proxies' sub-log of the full run,
  /// in the full run's order. All-ones (the default) is the whole farm.
  std::uint64_t proxy_mask = ~std::uint64_t{0};
  /// Optional keyed tap, invoked immediately before `sink` for every
  /// emitted record with the record's deterministic merge key
  /// ((shard ordinal << 32) | generation sequence). Keys are what the
  /// multi-process k-way merge sorts by: they total-order the records of
  /// any proxy_mask sub-log exactly as the unsharded run would have
  /// emitted them.
  std::function<void(std::uint64_t key, const proxy::LogRecord& record)>
      keyed_sink;
};

/// The complete simulated ecosystem: users, sites, relays, torrents, the
/// inferred censorship policy, the seven-proxy farm with its domain
/// affinities, and the traffic components. `run()` streams the "leaked"
/// log to a sink; everything is deterministic in the seed.
class SyriaScenario {
 public:
  explicit SyriaScenario(ScenarioConfig config = {});

  /// Generation shards are committed in fixed-size batches of this many
  /// (day, slot) shards: the unit of peak-memory bounding, of the
  /// checkpoint layer's durability, and of resumption granularity.
  static constexpr std::size_t kShardsPerBatch = 128;

  /// Batches a full run executes — ceil(shards / kShardsPerBatch), a pure
  /// function of the config (observation days × slots per day).
  std::size_t batch_count() const noexcept;

  /// Generates the whole observation window. Uses config().threads
  /// workers; the sink is always invoked from the calling thread, in
  /// deterministic (day, slot, component, sequence) order, regardless of
  /// the thread count.
  void run(const LogCallback& sink);

  /// Controlled variant: honors control.cancel, starts at
  /// control.start_batch, and reports batch completions via
  /// control.on_batch. Returns true when the window completed, false when
  /// cancellation stopped it early (the sink then saw a whole number of
  /// batches — never a partial one).
  bool run(const LogCallback& sink, const RunControl& control);

  /// Attaches the observability layer to the pipeline and the farm: stage
  /// timers for the generate / process / merge phases and event counters
  /// throughout. A null context (the default) keeps run() on the exact
  /// pre-obs code path; an attached registry never touches an RNG stream,
  /// so the emitted log is byte-identical either way (DESIGN.md §4.7).
  /// Attach before run(); the context must outlive the scenario.
  void set_obs(obs::Context* ctx) {
    obs_ = ctx;
    farm_.set_obs(ctx);
  }
  obs::Context* obs_context() const noexcept { return obs_; }

  const ScenarioConfig& config() const noexcept { return config_; }
  const UserModel& users() const noexcept { return users_; }
  const DomainCatalog& catalog() const noexcept { return catalog_; }
  const tor::RelayDirectory& relays() const noexcept { return relays_; }
  const TorrentRegistry& torrents() const noexcept { return torrents_; }
  const geo::GeoIpDb& geoip() const noexcept { return geoip_; }
  const category::Categorizer& categorizer() const noexcept {
    return categorizer_;
  }
  const policy::SyriaPolicy& policy() const noexcept { return policy_; }
  proxy::ProxyFarm& farm() noexcept { return farm_; }
  const proxy::ProxyFarm& farm() const noexcept { return farm_; }
  /// The injected fault timeline (empty for the "none" profile).
  const fault::FaultSchedule& faults() const noexcept { return faults_; }
  const DiurnalModel& diurnal() const noexcept { return diurnal_; }
  const std::vector<std::unique_ptr<Component>>& components() const noexcept {
    return components_;
  }

 private:
  ScenarioConfig config_;
  UserModel users_;
  DomainCatalog catalog_;
  tor::RelayDirectory relays_;
  TorrentRegistry torrents_;
  geo::GeoIpDb geoip_;
  category::Categorizer categorizer_;
  policy::SyriaPolicy policy_;
  proxy::ProxyFarm farm_;
  /// Owned by the scenario so farm/proxy pointers into it stay valid for
  /// the scenario's lifetime. Built before traffic starts; immutable after.
  fault::FaultSchedule faults_;
  DiurnalModel diurnal_;
  std::vector<std::unique_ptr<Component>> components_;
  obs::Context* obs_ = nullptr;
  /// Root of the per-(day, slot, component) RNG streams. Never advanced:
  /// run() only derives children via Rng::split, so generation shards are
  /// independent of each other and of execution order.
  util::Rng stream_root_;
};

}  // namespace syrwatch::workload
