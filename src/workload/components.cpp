#include "workload/components.h"

#include <stdexcept>

namespace syrwatch::workload {

Component::Component(double share, const UserModel* users)
    : share_(share), users_(users) {
  if (share < 0.0 || share > 1.0)
    throw std::invalid_argument("Component: share outside [0,1]");
  if (users == nullptr)
    throw std::invalid_argument("Component: null user model");
}

double Component::july_damp(std::int64_t t) noexcept {
  return sg42_only_day(t) ? 0.33 : 1.0;
}

proxy::Request Component::base_request(std::int64_t t,
                                       util::Rng& rng) const {
  proxy::Request request;
  request.time = t;
  request.user_id = users_->sample_user(rng);
  request.user_agent = std::string(users_->agent_of(request.user_id));
  return request;
}

void HostMix::finalize() {
  std::vector<double> weights;
  weights.reserve(entries.size());
  for (const Entry& entry : entries) weights.push_back(entry.weight);
  sampler = std::make_unique<util::AliasSampler>(weights);
}

const HostMix::Entry& HostMix::sample(util::Rng& rng) const noexcept {
  return entries[sampler->sample(rng)];
}

}  // namespace syrwatch::workload
