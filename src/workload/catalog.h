#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "category/categorizer.h"
#include "util/rng.h"
#include "util/sampler.h"

namespace syrwatch::workload {

/// How a site's URLs look; drives synthetic path/query generation and
/// cacheability.
enum class PathStyle : std::uint8_t {
  kPage,    // HTML pages, some static assets
  kMedia,   // CDN-style static objects (cacheable)
  kSearch,  // query-heavy front pages
  kApi,     // ajax/tracking endpoints
  kVideo,   // watch pages + media fragments
};

/// A synthesized URL tail.
struct PathSpec {
  std::string path;
  std::string query;
  bool cacheable = false;
};

/// Generates a path/query for a style. Tokens are lowercase base-36, so
/// accidental keyword collisions are negligible (and harmless: real
/// traffic has them too).
PathSpec make_path(PathStyle style, util::Rng& rng);

/// One browsable site.
struct CatalogEntry {
  std::string host;
  category::Category category = category::Category::kUncategorized;
  PathStyle style = PathStyle::kPage;
  double weight = 0.0;  // share of browsing traffic (unnormalized)
};

/// The allowed-web universe: a pinned head calibrated to the paper's
/// Table 4 (google.com and friends, with their observed shares of allowed
/// traffic) and a Zipf tail of minor sites producing the Fig. 2 power law.
/// Suspected/censored domains are deliberately absent — they are generated
/// by their own traffic components.
class DomainCatalog {
 public:
  DomainCatalog(std::size_t tail_size, double tail_weight_share,
                std::uint64_t seed);

  const CatalogEntry& sample(util::Rng& rng) const noexcept;
  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<CatalogEntry>& entries() const noexcept {
    return entries_;
  }

  /// Registers every catalog host with the categorizer.
  void register_categories(category::Categorizer& categorizer) const;

 private:
  std::vector<CatalogEntry> entries_;
  std::unique_ptr<util::AliasSampler> sampler_;
};

}  // namespace syrwatch::workload
