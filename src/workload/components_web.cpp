#include "workload/components.h"
#include "workload/textgen.h"

namespace syrwatch::workload {

namespace {

using category::Category;

class BrowsingComponent final : public Component {
 public:
  BrowsingComponent(double share, const UserModel* users,
                    const DomainCatalog* catalog)
      : Component(share, users), catalog_(catalog) {}

  std::string_view name() const noexcept override { return "browsing"; }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const CatalogEntry& site = catalog_->sample(rng);
    PathSpec spec = make_path(site.style, rng);
    request.url.host = site.host;
    // A share of page traffic goes to the www. subdomain, which exercises
    // suffix matching in the policy and categorizer.
    if (site.style == PathStyle::kPage && rng.bernoulli(0.5))
      request.url.host = "www." + request.url.host;
    request.url.path = std::move(spec.path);
    request.url.query = std::move(spec.query);
    request.cacheable = spec.cacheable;
    return request;
  }

 private:
  const DomainCatalog* catalog_;
};

class GoogleToolbarComponent final : public Component {
 public:
  GoogleToolbarComponent(double share, const UserModel* users)
      : Component(share, users) {}

  std::string_view name() const noexcept override { return "google-toolbar"; }

  double modulation(std::int64_t t) const noexcept override {
    return july_damp(t);
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    request.user_agent = std::string(UserModel::toolbar_agent());
    request.url.host = "www.google.com";
    // The Google toolbar API call the paper singles out: /tbproxy/af/query
    // accounts for 4.85% of censored requests despite being unrelated to
    // circumvention.
    request.url.path = "/tbproxy/af/query";
    request.url.query = "q=" + token(rng, 8) + "&client=navclient-auto";
    return request;
  }
};

class CollateralAppsComponent final : public Component {
 public:
  CollateralAppsComponent(double share, const UserModel* users,
                          category::Categorizer* categorizer)
      : Component(share, users) {
    categorizer->add("zynga.com", Category::kGames);
    // yahoo.com / fbcdn.net categories registered by the catalog.
    mix_.entries = {{"zynga.com", 379170.0},
                    {"yahoo.com", 369948.0},
                    {"fbcdn.net", 264512.0}};
    mix_.finalize();
  }

  std::string_view name() const noexcept override { return "collateral-apps"; }

  double modulation(std::int64_t t) const noexcept override {
    return july_damp(t);
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const auto& entry = mix_.sample(rng);
    request.url.host = entry.host;
    if (entry.host == "zynga.com") {
      // Facebook-canvas games fetched through an app proxy endpoint.
      request.url.host = "facebook." + entry.host;
      request.url.path = "/poker/fb_proxy.php";
      request.url.query = "user=" + token(rng, 10) + "&ts=" + token(rng, 6);
    } else if (entry.host == "yahoo.com") {
      request.url.host = "api.yahoo.com";
      request.url.path = "/v1/yql/proxy";
      request.url.query = "q=" + token(rng, 12);
    } else {  // fbcdn.net
      request.url.host = "static.ak.fbcdn.net";
      request.url.path = "/connect/xd_proxy.php";
      request.url.query = "version=3&cb=" + token(rng, 8);
    }
    return request;
  }

 private:
  HostMix mix_;
};

class GoogleCacheComponent final : public Component {
 public:
  GoogleCacheComponent(double share, const UserModel* users)
      : Component(share, users) {}

  std::string_view name() const noexcept override { return "google-cache"; }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    request.url.host = "webcache.googleusercontent.com";
    request.url.path = "/search";
    // Cached copies of censored sites: the blocked-ness of the *cached*
    // page lives in the query, where only keyword rules can see it. The
    // occasional cached URL containing a blacklisted keyword is denied
    // (12 of 4,860 requests in the paper).
    static constexpr const char* kTargets[] = {
        "www.panet.co.il/online",      "aawsat.com/details.asp",
        "www.free-syria.com/news",     "all4syria.info/web",
        "www.facebook.com/Syrian.Revolution",
        "en.wikipedia.org/wiki",       "www.alarabiya.net/articles",
        "www.bbc.co.uk/arabic",
    };
    std::string target = kTargets[rng.uniform(std::size(kTargets))];
    if (rng.bernoulli(0.0025)) {
      // Cached page about circumvention -> collateral keyword hit.
      target = "www.webproxylist.net/proxy/" + token(rng, 5);
    }
    request.url.query =
        "q=cache:" + token(rng, 12) + ":" + target + "/" + token(rng, 6);
    return request;
  }
};

class AdsCdnComponent final : public Component {
 public:
  AdsCdnComponent(double share, const UserModel* users,
                  category::Categorizer* categorizer)
      : Component(share, users) {
    static constexpr const char* kAdStems[] = {
        "adserve",  "bannerflow", "clickmedia", "admax",   "adgate",
        "popadnet", "trackpix",   "admesh",     "syndico", "reklamo"};
    static constexpr const char* kCdnStems[] = {
        "cdn-cache", "edgecast", "fastassets", "staticweb", "mediastore"};
    // ~40 distinct domains so the collateral spreads thin across Table 4's
    // censored list instead of minting a single dominant domain.
    for (std::size_t i = 0; i < 25; ++i) {
      const std::string host = std::string(kAdStems[i % std::size(kAdStems)]) +
                               std::to_string(i) + ".com";
      categorizer->add(host, category::Category::kAdsMarketing);
      mix_.entries.push_back({host, 1.0 / static_cast<double>(i + 2)});
    }
    for (std::size_t i = 0; i < 15; ++i) {
      const std::string host =
          std::string(kCdnStems[i % std::size(kCdnStems)]) +
          std::to_string(i) + ".net";
      categorizer->add(host, category::Category::kContentServer);
      mix_.entries.push_back({host, 1.4 / static_cast<double>(i + 2)});
    }
    // The big shared CDNs of Fig. 3's caption host widgets too.
    categorizer->add("cloudfront.net", category::Category::kContentServer);
    mix_.entries.push_back({"d2x1abc.cloudfront.net", 0.55});
    mix_.entries.push_back({"widgets.googleusercontent.com", 0.45});
    mix_.finalize();
  }

  std::string_view name() const noexcept override { return "ads-cdn"; }

  double modulation(std::int64_t t) const noexcept override {
    return july_damp(t);
  }

  proxy::Request generate(std::int64_t t, util::Rng& rng) override {
    proxy::Request request = base_request(t, rng);
    const auto& entry = mix_.sample(rng);
    request.url.host = entry.host;
    if (rng.bernoulli(0.5)) {
      request.url.path = "/adproxy/serve.js";
      request.url.query = "zone=" + token(rng, 5);
    } else {
      request.url.path = "/w/" + token(rng, 6) + ".js";
      request.url.query = "cb=" + token(rng, 6) +
                          "&xd=http%3A%2F%2Fstatic." + token(rng, 5) +
                          ".com%2Fproxy.html";
    }
    return request;
  }

 private:
  HostMix mix_;
};

}  // namespace

std::unique_ptr<Component> make_browsing(double share, const UserModel* users,
                                         const DomainCatalog* catalog) {
  return std::make_unique<BrowsingComponent>(share, users, catalog);
}

std::unique_ptr<Component> make_google_toolbar(double share,
                                               const UserModel* users) {
  return std::make_unique<GoogleToolbarComponent>(share, users);
}

std::unique_ptr<Component> make_collateral_apps(
    double share, const UserModel* users,
    category::Categorizer* categorizer) {
  return std::make_unique<CollateralAppsComponent>(share, users, categorizer);
}

std::unique_ptr<Component> make_google_cache(double share,
                                             const UserModel* users) {
  return std::make_unique<GoogleCacheComponent>(share, users);
}

std::unique_ptr<Component> make_ads_cdn(double share, const UserModel* users,
                                        category::Categorizer* categorizer) {
  return std::make_unique<AdsCdnComponent>(share, users, categorizer);
}

}  // namespace syrwatch::workload
