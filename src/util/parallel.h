#pragma once

#include <cstddef>
#include <functional>

#include "util/cancel.h"

namespace syrwatch::util {

/// Resolves a thread-count knob: 0 selects the hardware concurrency (never
/// less than 1); any other value is returned unchanged.
std::size_t resolve_threads(std::size_t requested) noexcept;

/// Runs fn(0) .. fn(count - 1) across up to `threads` workers (the calling
/// thread counts as one of them). Items are claimed through an atomic
/// cursor, so the mapping of items to threads — and the completion order —
/// is unspecified: fn(i) must be independent of execution order, and any
/// state it writes must be its own (the usual pattern is fn(i) owning slot
/// i of a pre-sized buffer). The first exception thrown by any fn stops
/// further claims and is rethrown on the caller once every worker drains.
/// With threads <= 1 or count <= 1 everything runs inline on the calling
/// thread, which is the reference execution the parallel runs must match.
///
/// A non-null `cancel` token is polled before each item is claimed; once
/// it fires no further items start (items already running finish), and
/// the call returns false. Returns true when every item ran. Cancellation
/// cannot change what any completed fn(i) computed — only which i ran.
bool parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn,
                  const CancelToken* cancel = nullptr);

}  // namespace syrwatch::util
