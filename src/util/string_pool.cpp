#include "util/string_pool.h"

#include <stdexcept>

namespace syrwatch::util {

StringPool::StringPool() {
  strings_.emplace_back();  // id 0: empty string
  index_.emplace(std::string_view{strings_.front()}, kEmpty);
}

StringPool::Id StringPool::intern(std::string_view s) {
  const auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const Id id = static_cast<Id>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(std::string_view{strings_.back()}, id);
  return id;
}

StringPool::Id StringPool::lookup(std::string_view s) const noexcept {
  const auto it = index_.find(s);
  return it == index_.end() ? kNotFound : it->second;
}

std::string_view StringPool::view(Id id) const {
  if (id >= strings_.size()) throw std::out_of_range("StringPool::view");
  return strings_[id];
}

}  // namespace syrwatch::util
