#include "util/histogram.h"

#include <stdexcept>

namespace syrwatch::util {

BinnedCounter::BinnedCounter(std::int64_t origin, std::int64_t bin_width,
                             std::size_t bin_count)
    : origin_(origin), width_(bin_width) {
  if (bin_width <= 0)
    throw std::invalid_argument("BinnedCounter: bin_width must be positive");
  if (bin_count == 0)
    throw std::invalid_argument("BinnedCounter: bin_count must be positive");
  counts_.assign(bin_count, 0);
}

void BinnedCounter::add(std::int64_t value, std::uint64_t count) noexcept {
  if (value < origin_) {
    overflow_ += count;
    return;
  }
  const auto bin = static_cast<std::uint64_t>((value - origin_) / width_);
  if (bin >= counts_.size()) {
    overflow_ += count;
    return;
  }
  counts_[bin] += count;
}

std::uint64_t BinnedCounter::total() const noexcept {
  std::uint64_t acc = 0;
  for (auto c : counts_) acc += c;
  return acc;
}

std::map<std::uint64_t, std::uint64_t> frequency_of_frequencies(
    const std::vector<std::uint64_t>& per_key_counts) {
  std::map<std::uint64_t, std::uint64_t> result;
  for (auto c : per_key_counts) {
    if (c > 0) ++result[c];
  }
  return result;
}

}  // namespace syrwatch::util
