#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace syrwatch::util {

/// Minimal length-checked binary (de)serialization for checkpoint state
/// blobs. Fixed little-endian-as-stored layout (state files are consumed
/// on the machine that wrote them; the CRC in the manifest catches any
/// cross-machine mixups along with ordinary corruption).

inline void put_u64(std::string& out, std::uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, 8);
  out.append(bytes, 8);
}

inline void put_i64(std::string& out, std::int64_t value) {
  put_u64(out, static_cast<std::uint64_t>(value));
}

inline void put_bytes(std::string& out, std::string_view bytes) {
  put_u64(out, bytes.size());
  out.append(bytes.data(), bytes.size());
}

/// Cursor over a serialized blob; every read is bounds-checked and throws
/// std::runtime_error (with the given context tag) on truncation.
class ByteReader {
 public:
  ByteReader(std::string_view bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  std::uint64_t get_u64() {
    require(8);
    std::uint64_t value = 0;
    std::memcpy(&value, bytes_.data() + cursor_, 8);
    cursor_ += 8;
    return value;
  }

  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  std::string_view get_bytes() {
    const std::uint64_t size = get_u64();
    require(size);
    const std::string_view view = bytes_.substr(cursor_, size);
    cursor_ += size;
    return view;
  }

  bool exhausted() const noexcept { return cursor_ == bytes_.size(); }
  std::size_t cursor() const noexcept { return cursor_; }

  /// Call when the blob should have been fully consumed.
  void expect_end() const {
    if (!exhausted())
      throw std::runtime_error(context_ + ": trailing bytes in state blob");
  }

 private:
  void require(std::uint64_t size) const {
    if (size > bytes_.size() - cursor_)
      throw std::runtime_error(context_ + ": truncated state blob");
  }

  std::string_view bytes_;
  std::string context_;
  std::size_t cursor_ = 0;
};

}  // namespace syrwatch::util
