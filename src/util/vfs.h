#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace syrwatch::util {

/// Injectable storage layer (DESIGN.md §4.13). Every durable write path —
/// atomic artifact writes, the checkpoint spool, the columnar container,
/// the shard merge, the spool tail — does its file I/O through a `Vfs`
/// instead of calling the OS directly, so tests can interpose a seeded,
/// deterministic fault model (`FaultyVfs`) and exercise the storage
/// failures a production deployment will eventually meet: disk full,
/// short writes, EINTR storms, fsync failure, and power loss that
/// truncates un-fsynced data after a commit rename.
///
/// The interface is deliberately POSIX-shaped: operations return the
/// syscall's convention (-1 / false on failure) and leave the reason in
/// `errno`, so hardened callers keep ordinary retry loops (EINTR) and can
/// classify ENOSPC without a parallel error enum. Handles are plain fds —
/// the default implementation returns real ones.

enum class OpenMode {
  kRead,      // existing file, read-only
  kTruncate,  // create or truncate, write-only
  kAppend,    // create if absent, append, write-only
};

struct VfsStat {
  std::uint64_t size = 0;
  std::uint64_t inode = 0;  // distinguishes a rotated/replaced file
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Returns an fd (>= 0) or -1 with errno set.
  virtual int open(const std::string& path, OpenMode mode) = 0;
  /// Appends at the fd's write position. Returns bytes written (which may
  /// be short) or -1 with errno set.
  virtual long write(int fd, const void* data, std::size_t size) = 0;
  /// Positional read (pread): never moves the write position. Returns
  /// bytes read (0 at EOF) or -1 with errno set.
  virtual long read(int fd, void* data, std::size_t size,
                    std::uint64_t offset) = 0;
  /// Flushes file *data* to stable storage. 0 or -1/errno.
  virtual int fsync(int fd) = 0;
  /// Flushes the *directory entry* of `path` (fsync of its parent
  /// directory) — without this a crash can forget a committed rename.
  virtual int fsync_parent(const std::string& path) = 0;
  virtual int close(int fd) = 0;
  virtual int rename(const std::string& from, const std::string& to) = 0;
  virtual int truncate(const std::string& path, std::uint64_t size) = 0;
  virtual int unlink(const std::string& path) = 0;
  /// false with errno set when the path does not resolve.
  virtual bool stat(const std::string& path, VfsStat& out) = 0;
};

/// The real filesystem: open/pread/write/fsync/rename as the OS provides
/// them. Stateless and thread-safe.
Vfs& system_vfs();

/// Process-wide default used when a component is constructed without an
/// explicit Vfs (never null; initially &system_vfs()). `set_default_vfs`
/// installs a replacement for the whole process — the CLI chaos hook
/// (`syrwatchctl generate --storage-fault`) uses it so every writer in
/// the run is exercised; unit tests prefer passing a Vfs* explicitly.
Vfs& default_vfs() noexcept;
void set_default_vfs(Vfs* vfs) noexcept;  // nullptr restores system_vfs()

/// Resolves an optional injection point: `vfs` if given, else the
/// process default.
inline Vfs& vfs_or_default(Vfs* vfs) noexcept {
  return vfs != nullptr ? *vfs : default_vfs();
}

/// Thrown by the hardened writers on an unrecoverable I/O failure;
/// carries the errno so callers can degrade gracefully on out-of-space
/// instead of treating every storage error alike.
class VfsError : public std::runtime_error {
 public:
  VfsError(const std::string& what, int code)
      : std::runtime_error(what), code_(code) {}
  int code() const noexcept { return code_; }
  bool out_of_space() const noexcept;  // ENOSPC or EDQUOT
 private:
  int code_ = 0;
};

/// Thrown by FaultyVfs at a scheduled crash point *after* it has applied
/// the power-loss damage model (un-fsynced bytes dropped). The process is
/// expected to die here — catch it only at a top-level crash boundary.
class SimulatedPowerLoss : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transient-retry cap shared by the hardened write/fsync loops: EINTR is
/// retried at most this many times before the error is surfaced — a
/// storm is survivable, an infinite loop is not.
inline constexpr int kMaxTransientRetries = 64;

/// Writes all of `bytes`, advancing past short writes and retrying EINTR
/// (capped). Returns true on success; false with errno set on failure —
/// including a writer that keeps returning 0 bytes of progress.
bool write_fully(Vfs& vfs, int fd, std::string_view bytes) noexcept;

/// fsync with capped EINTR retry. True on success, false with errno set.
bool fsync_fully(Vfs& vfs, int fd) noexcept;

// ---------------------------------------------------------------------------
// FaultyVfs — seeded deterministic storage chaos.

/// One named fault schedule. The zero value (schedule "none") injects
/// nothing. `parse()` accepts the canonical names, optionally
/// parameterized with ":N":
///
///   none              pass-through
///   enospc[:BYTES]    disk-capacity model: writes fail with ENOSPC once
///                     BYTES new bytes live on disk (default 256 KiB).
///                     truncate/unlink free capacity, exactly like a real
///                     full disk — which is what lets the graceful
///                     interrupted-manifest path reclaim space.
///   short-writes[:CAP] every write lands at most 1..CAP bytes (seeded
///                     draw, default CAP 4096) — exercises partial-write
///                     handling everywhere.
///   eintr-storm[:K]   of every K+1 write calls, K fail with EINTR
///                     (default 3) — exercises capped retry loops.
///   fsync-fail[:N]    the Nth data fsync fails with EIO (default 2) and
///                     the bytes it covered stay un-durable.
///   power-cut[:N]     simulated power loss immediately after the Nth
///                     rename (default 1): every tracked file is truncated
///                     back to its last-fsynced prefix, then
///                     SimulatedPowerLoss is thrown and the Vfs is
///                     poisoned (all later ops fail with EIO). A writer
///                     that renames before fsyncing its data loses it —
///                     the committed-but-empty-artifact bug this layer
///                     exists to catch.
///   torn-tail[:N]     power-cut that additionally leaves a torn final
///                     block: a seeded fraction of the un-fsynced tail
///                     survives, its last partial block overwritten with
///                     garbage — the shape a crashed append really takes.
struct StorageFaultSchedule {
  std::string name = "none";
  std::uint64_t seed = 0x5359524Cu;  // deterministic default
  std::uint64_t capacity_bytes = 0;  // 0 = unlimited (no ENOSPC)
  std::uint64_t short_write_cap = 0;
  std::uint32_t eintr_every = 0;  // K of every K+1 write calls EINTR
  std::uint64_t fail_fsync_number = 0;
  std::uint64_t power_cut_at_rename = 0;
  bool torn_tail = false;

  /// Throws std::invalid_argument naming the spec on an unknown name or
  /// malformed parameter.
  static StorageFaultSchedule parse(std::string_view spec);
  /// The canonical schedule names the CI sweep iterates.
  static const std::vector<std::string>& names();
};

/// Deterministic chaos wrapper. Tracks, per file opened through it, the
/// bytes that have reached "stable storage" (fsynced) versus merely
/// written, and injects the schedule's faults at exact, seeded points —
/// the same schedule against the same write sequence always fails at the
/// same byte. Mutating operations on paths it has never seen still pass
/// through, so a FaultyVfs can wrap a whole process safely.
///
/// Not a sandbox: writes really land in the underlying Vfs; the fault
/// model only decides *when they fail* and *what survives a power cut*.
class FaultyVfs : public Vfs {
 public:
  FaultyVfs(Vfs& inner, StorageFaultSchedule schedule);
  ~FaultyVfs() override;

  int open(const std::string& path, OpenMode mode) override;
  long write(int fd, const void* data, std::size_t size) override;
  long read(int fd, void* data, std::size_t size,
            std::uint64_t offset) override;
  int fsync(int fd) override;
  int fsync_parent(const std::string& path) override;
  int close(int fd) override;
  int rename(const std::string& from, const std::string& to) override;
  int truncate(const std::string& path, std::uint64_t size) override;
  int unlink(const std::string& path) override;
  bool stat(const std::string& path, VfsStat& out) override;

  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t short_writes = 0;
    std::uint64_t eintr_injected = 0;
    std::uint64_t enospc_injected = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t fsync_failures = 0;
    std::uint64_t parent_fsyncs = 0;
    std::uint64_t renames = 0;
    std::uint64_t power_cuts = 0;
    std::uint64_t bytes_dropped = 0;  // un-fsynced bytes a power cut ate
  };
  Stats stats() const;
  const StorageFaultSchedule& schedule() const noexcept { return schedule_; }
  /// True once a power cut fired: all further mutations fail with EIO.
  bool poisoned() const;

 private:
  struct FileState {
    std::string path;
    std::uint64_t size = 0;    // bytes written through this vfs
    std::uint64_t synced = 0;  // prefix guaranteed durable
    bool writable = false;
  };

  [[noreturn]] void power_cut_locked(const std::string& detail);
  void drop_unsynced_locked(const std::string& path, FileState& state);

  Vfs& inner_;
  StorageFaultSchedule schedule_;
  mutable std::mutex mutex_;
  std::unordered_map<int, FileState> open_;
  /// Closed-but-never-fsynced files, by path: close() does not make data
  /// durable, so a power cut reaches back into these too.
  std::unordered_map<std::string, FileState> closed_dirty_;
  Stats stats_;
  std::uint64_t used_bytes_ = 0;  // capacity model
  std::uint64_t write_calls_ = 0;
  std::uint64_t rng_state_ = 0;
  bool poisoned_ = false;
};

}  // namespace syrwatch::util
