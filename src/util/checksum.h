#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace syrwatch::util {

/// Artifact integrity primitives for the durability layer: CRC32 (IEEE,
/// reflected — the zlib/PNG polynomial) for on-disk artifact checksums and
/// FNV-1a 64 for cheap fingerprints of in-memory canonical strings. Both
/// are deterministic across platforms; neither is cryptographic — they
/// detect corruption and accidental edits, not adversaries.

/// Incremental CRC32 so large artifacts can be checksummed while they
/// stream through a writer instead of re-reading the file afterwards.
class Crc32 {
 public:
  /// Folds `bytes` into the running checksum.
  void update(std::string_view bytes) noexcept;
  void update(const void* data, std::size_t size) noexcept;

  /// The checksum of everything updated so far.
  std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

  /// Continues from a previously finalized value(): afterwards the running
  /// checksum behaves as if every byte behind that value had been
  /// update()d here. (CRC32 finalization is an XOR, so the register is
  /// recoverable.) Used to extend the checkpoint spool across process
  /// restarts without re-reading the committed prefix.
  void resume(std::uint32_t value) noexcept { state_ = value ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC32 of a byte string. crc32_of("123456789") == 0xCBF43926.
std::uint32_t crc32_of(std::string_view bytes) noexcept;

/// CRC32 + size of a file, streamed in chunks. Throws std::runtime_error
/// (naming the path) when the file cannot be opened or read.
struct FileDigest {
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
};
FileDigest crc32_file(const std::string& path);
/// Digest of only the first `limit` bytes (fewer if the file is shorter —
/// compare .bytes). Used for the checkpoint spool, whose manifest records
/// a committed prefix that a crashed append may have outgrown.
FileDigest crc32_file_prefix(const std::string& path, std::uint64_t limit);

/// FNV-1a 64-bit hash; used for config fingerprints in run manifests.
std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// Fixed-width lowercase hex renderings used by the manifest schema
/// ("crc32": "cbf43926", "config_fingerprint": 16 hex digits) and their
/// strict inverse parsers (full-width, lowercase-or-uppercase hex only).
std::string to_hex32(std::uint32_t value);
std::string to_hex64(std::uint64_t value);
bool parse_hex32(std::string_view text, std::uint32_t& value) noexcept;
bool parse_hex64(std::string_view text, std::uint64_t& value) noexcept;

}  // namespace syrwatch::util
