#include "util/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace syrwatch::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace syrwatch::util
