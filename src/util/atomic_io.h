#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/checksum.h"
#include "util/vfs.h"

namespace syrwatch::util {

/// Crash-safe artifact writing: every durable artifact is written to a
/// sibling temp file, fsynced, and renamed into place (then the parent
/// directory is fsynced), so a reader can never observe a half-written
/// file at the final path — even across power loss it sees either the old
/// content or the new content, nothing in between. Every write and flush
/// is error-checked; disk-full fails loudly (VfsError with the errno)
/// instead of leaving a silently truncated, parseable-looking artifact
/// behind. All I/O goes through a `util::Vfs` so tests can inject storage
/// faults (DESIGN.md §4.13).

/// What a committed artifact looked like as it went to disk; recorded into
/// run manifests so `syrwatchctl verify` can re-check integrity later.
struct ArtifactInfo {
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
};

/// Writes `contents` to `path` atomically (temp → fsync → rename → parent
/// fsync). Throws VfsError naming the path on any open/write/fsync/rename
/// failure; the temp file is removed on the error paths that can reach it.
ArtifactInfo atomic_write_file(const std::string& path,
                               std::string_view contents,
                               Vfs* vfs = nullptr);

/// Moves `from` onto `to` atomically. Same-filesystem renames are a single
/// atomic rename followed by a parent-directory fsync. When the OS refuses
/// with EXDEV (cross-filesystem), falls back to a CRC-verified streaming
/// copy: `from` is copied to a sibling of `to`, the copy is re-read and
/// its CRC32 checked against the source's before it is renamed into place,
/// and only then is `from` unlinked. Throws VfsError on failure (removing
/// `from` first, matching the temp-file cleanup contract of the atomic
/// writers, whose commit path this serves).
void rename_into_place(const std::string& from, const std::string& to,
                       Vfs* vfs = nullptr);

/// Streaming variant for artifacts too large to assemble in memory (log
/// files): write() appends and folds the bytes into a running CRC32;
/// commit() fsyncs, renames the temp file onto the target, fsyncs the
/// parent directory, and returns the artifact digest. Writes are buffered
/// (64 KiB) so record-at-a-time callers don't pay a syscall per record. A
/// writer destroyed without commit() discards the temp file, leaving any
/// previous file at `path` untouched — exactly what an interrupted run
/// should do.
class AtomicFileWriter {
 public:
  /// Opens `path + ".tmp"` for writing; throws on failure.
  explicit AtomicFileWriter(std::string path, Vfs* vfs = nullptr);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends bytes; throws VfsError on a write error.
  void write(std::string_view bytes);

  /// fsync + rename onto the final path + parent fsync; throws on
  /// failure. At most once.
  ArtifactInfo commit();

  /// Drops the temp file without touching the final path (also what the
  /// destructor does when commit() never ran).
  void abandon() noexcept;

  const std::string& path() const noexcept { return path_; }
  std::uint64_t bytes_written() const noexcept { return bytes_; }

 private:
  void flush_buffer();  // throws VfsError; leaves cleanup to the caller

  Vfs* vfs_;
  std::string path_;
  std::string temp_path_;
  int fd_ = -1;
  std::string buffer_;
  Crc32 crc_;
  std::uint64_t bytes_ = 0;
  bool open_ = false;
};

}  // namespace syrwatch::util
