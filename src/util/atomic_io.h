#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>

#include "util/checksum.h"

namespace syrwatch::util {

/// Crash-safe artifact writing: every durable artifact is written to a
/// sibling temp file, flushed, and renamed into place, so a reader can
/// never observe a half-written file at the final path — it sees either
/// the old content or the new content, nothing in between. Every write and
/// flush is error-checked; disk-full fails loudly instead of leaving a
/// silently truncated, parseable-looking artifact behind.

/// What a committed artifact looked like as it went to disk; recorded into
/// run manifests so `syrwatchctl verify` can re-check integrity later.
struct ArtifactInfo {
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
};

/// Writes `contents` to `path` atomically (temp → flush → rename). Throws
/// std::runtime_error naming the path on any open/write/flush/rename
/// failure; the temp file is removed on the error paths that can reach it.
ArtifactInfo atomic_write_file(const std::string& path,
                               std::string_view contents);

/// Streaming variant for artifacts too large to assemble in memory (log
/// files): write() appends and folds the bytes into a running CRC32;
/// commit() flushes, renames the temp file onto the target, and returns
/// the artifact digest. A writer destroyed without commit() discards the
/// temp file, leaving any previous file at `path` untouched — exactly what
/// an interrupted run should do.
class AtomicFileWriter {
 public:
  /// Opens `path + ".tmp"` for writing; throws on failure.
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends bytes; throws std::runtime_error on a write error.
  void write(std::string_view bytes);

  /// Flush + rename onto the final path; throws on failure. At most once.
  ArtifactInfo commit();

  /// Drops the temp file without touching the final path (also what the
  /// destructor does when commit() never ran).
  void abandon() noexcept;

  const std::string& path() const noexcept { return path_; }
  std::uint64_t bytes_written() const noexcept { return bytes_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  Crc32 crc_;
  std::uint64_t bytes_ = 0;
  bool open_ = false;
};

}  // namespace syrwatch::util
