#include "util/table.h"

#include <algorithm>

namespace syrwatch::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) line += " | ";
      line += row[i];
      line.append(widths[i] - row[i].size(), ' ');
    }
    // Trim trailing padding on the last column.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  std::string rule;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    if (i != 0) rule += "-+-";
    rule.append(widths[i], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string titled_block(std::string_view title, const TextTable& table) {
  std::string out;
  out.append(title);
  out.push_back('\n');
  out.append(title.size(), '=');
  out.push_back('\n');
  out += table.render();
  out.push_back('\n');
  return out;
}

}  // namespace syrwatch::util
