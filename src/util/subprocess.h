#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace syrwatch::util {

/// Minimal POSIX plumbing for the multi-process sharded farm (src/shard):
/// a pipe pair, non-blocking fds, and a length-prefixed frame codec for
/// the worker→coordinator status channel. Frames are `u32 length (LE) +
/// payload`; every worker message is far below PIPE_BUF, so a single
/// write() is atomic and concurrent writers (there are none today, but a
/// heartbeat thread would be one) could share the fd without interleaving.

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
};

/// Creates a unidirectional pipe with both ends close-on-exec. Throws
/// std::runtime_error on failure (fd exhaustion).
Pipe make_pipe();

/// O_NONBLOCK on `fd`; throws std::runtime_error on failure.
void set_nonblocking(int fd);

/// Closes `fd` if it is valid; EINTR-safe, never throws.
void close_fd(int fd) noexcept;

/// Frames `payload` (u32 LE length prefix) and writes it with one
/// write(). Returns false — without raising — when the read end is gone
/// (EPIPE) or any other error occurs: a worker whose coordinator died
/// keeps running, its spool is the durable record. Payloads longer than
/// kMaxFramePayload are refused (returns false).
bool write_frame(int fd, std::string_view payload) noexcept;

inline constexpr std::size_t kMaxFramePayload = 4096;

/// Incremental frame decoder over a non-blocking read fd: pump() slurps
/// whatever the pipe currently holds, next() yields complete payloads.
class FrameReader {
 public:
  /// Reads until the fd would block. Returns false on EOF (writer closed —
  /// for a worker pipe, the process exited); true while the stream is
  /// still open. Throws std::runtime_error on a read error.
  bool pump(int fd);

  /// The next complete frame payload, or nullopt when more bytes are
  /// needed. Drain after every pump(): several frames may arrive at once.
  /// Throws std::runtime_error on a malformed frame (length prefix beyond
  /// kMaxFramePayload — a corrupt or foreign writer).
  std::optional<std::string> next();

  /// Bytes buffered but not yet consumed by next() — nonzero after EOF
  /// means the writer died mid-frame.
  std::size_t pending_bytes() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace syrwatch::util
