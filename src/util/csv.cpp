#include "util/csv.h"

#include <stdexcept>

namespace syrwatch::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_join(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += csv_escape(fields[i]);
  }
  return out;
}

std::vector<std::string> csv_parse(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty())
        throw std::invalid_argument("csv_parse: quote inside unquoted field");
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes) throw std::invalid_argument("csv_parse: unbalanced quote");
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace syrwatch::util
