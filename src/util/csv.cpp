#include "util/csv.h"

namespace syrwatch::util {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string csv_join(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += csv_escape(fields[i]);
  }
  return out;
}

std::vector<std::string> csv_parse(std::string_view line) {
  // CRLF tail: std::getline strips the '\n' but leaves the '\r'. A carriage
  // return that is genuinely field data always arrives quoted (csv_escape
  // quotes it, so the line would end with '"'), which makes a bare trailing
  // '\r' unambiguously a line-terminator artifact — drop it.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  // Set once a quoted field closes; only ',' or end-of-line may follow.
  bool quote_closed = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
          quote_closed = true;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      quote_closed = false;
    } else if (quote_closed) {
      throw CsvParseError(CsvError::kMalformedQuote,
                          "csv_parse: garbage after closing quote");
    } else if (c == '"') {
      if (!current.empty())
        throw CsvParseError(CsvError::kMalformedQuote,
                            "csv_parse: quote inside unquoted field");
      in_quotes = true;
    } else {
      current.push_back(c);
    }
  }
  if (in_quotes)
    throw CsvParseError(CsvError::kUnbalancedQuote,
                        "csv_parse: unbalanced quote");
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace syrwatch::util
