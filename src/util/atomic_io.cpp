#include "util/atomic_io.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace syrwatch::util {

namespace {

/// rename() is atomic on POSIX when source and target share a filesystem —
/// the temp file lives next to the target, so that always holds here.
void rename_into_place(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(from, ignored);
    throw std::runtime_error("atomic write: rename " + from + " -> " + to +
                             " failed: " + ec.message());
  }
}

}  // namespace

ArtifactInfo atomic_write_file(const std::string& path,
                               std::string_view contents) {
  const std::string temp = path + ".tmp";
  {
    std::ofstream out{temp, std::ios::binary | std::ios::trunc};
    if (!out)
      throw std::runtime_error("atomic write: cannot open " + temp);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      std::error_code ignored;
      std::filesystem::remove(temp, ignored);
      throw std::runtime_error("atomic write: write/flush to " + temp +
                               " failed (disk full?)");
    }
  }
  rename_into_place(temp, path);
  return ArtifactInfo{contents.size(), crc32_of(contents)};
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), temp_path_(path_ + ".tmp") {
  out_.open(temp_path_, std::ios::binary | std::ios::trunc);
  if (!out_)
    throw std::runtime_error("atomic write: cannot open " + temp_path_);
  open_ = true;
}

AtomicFileWriter::~AtomicFileWriter() { abandon(); }

void AtomicFileWriter::write(std::string_view bytes) {
  if (!open_)
    throw std::logic_error("AtomicFileWriter: write after commit/abandon");
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out_) {
    abandon();
    throw std::runtime_error("atomic write: write to " + temp_path_ +
                             " failed (disk full?)");
  }
  crc_.update(bytes);
  bytes_ += bytes.size();
}

ArtifactInfo AtomicFileWriter::commit() {
  if (!open_)
    throw std::logic_error("AtomicFileWriter: commit after commit/abandon");
  out_.flush();
  const bool good = static_cast<bool>(out_);
  out_.close();
  open_ = false;
  if (!good) {
    std::error_code ignored;
    std::filesystem::remove(temp_path_, ignored);
    throw std::runtime_error("atomic write: flush of " + temp_path_ +
                             " failed (disk full?)");
  }
  rename_into_place(temp_path_, path_);
  return ArtifactInfo{bytes_, crc_.value()};
}

void AtomicFileWriter::abandon() noexcept {
  if (!open_) return;
  open_ = false;
  out_.close();
  std::error_code ignored;
  std::filesystem::remove(temp_path_, ignored);
}

}  // namespace syrwatch::util
