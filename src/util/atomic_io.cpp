#include "util/atomic_io.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace syrwatch::util {

namespace {

constexpr std::size_t kWriteBufferBytes = 64 * 1024;

[[noreturn]] void throw_errno(const std::string& what) {
  const int code = errno;
  throw VfsError(what + ": " + std::strerror(code), code);
}

/// EXDEV fallback: stream `from` to a sibling of `to`, verify the copy
/// byte-for-byte via CRC32 before promoting it, then drop the source.
/// Mirrors the verified-copy promotion in durable::finalize_output.
void copy_across_filesystems(Vfs& vfs, const std::string& from,
                             const std::string& to) {
  const std::string staging = to + ".xdev";
  char chunk[64 * 1024];

  const int src = vfs.open(from, OpenMode::kRead);
  if (src < 0) throw_errno("atomic rename: cannot open " + from);
  const int dst = vfs.open(staging, OpenMode::kTruncate);
  if (dst < 0) {
    vfs.close(src);
    throw_errno("atomic rename: cannot open " + staging);
  }

  Crc32 source_crc;
  std::uint64_t copied = 0;
  bool ok = true;
  std::string error;
  for (;;) {
    const long got = vfs.read(src, chunk, sizeof chunk, copied);
    if (got < 0) {
      if (errno == EINTR) continue;
      ok = false;
      error = "atomic rename: read from " + from;
      break;
    }
    if (got == 0) break;
    const std::string_view view{chunk, static_cast<std::size_t>(got)};
    if (!write_fully(vfs, dst, view)) {
      ok = false;
      error = "atomic rename: write to " + staging;
      break;
    }
    source_crc.update(view);
    copied += static_cast<std::uint64_t>(got);
  }
  if (ok && !fsync_fully(vfs, dst)) {
    ok = false;
    error = "atomic rename: fsync of " + staging;
  }
  vfs.close(src);
  vfs.close(dst);
  if (!ok) {
    const int saved = errno;
    vfs.unlink(staging);
    errno = saved;
    throw_errno(error);
  }

  // Re-read the copy: the CRC must match what left the source, or the
  // copy is not trusted to replace it.
  Crc32 copy_crc;
  std::uint64_t verified = 0;
  const int check = vfs.open(staging, OpenMode::kRead);
  if (check < 0) throw_errno("atomic rename: cannot reopen " + staging);
  for (;;) {
    const long got = vfs.read(check, chunk, sizeof chunk, verified);
    if (got < 0) {
      if (errno == EINTR) continue;
      vfs.close(check);
      throw_errno("atomic rename: verify read of " + staging);
    }
    if (got == 0) break;
    copy_crc.update({chunk, static_cast<std::size_t>(got)});
    verified += static_cast<std::uint64_t>(got);
  }
  vfs.close(check);
  if (verified != copied || copy_crc.value() != source_crc.value()) {
    vfs.unlink(staging);
    throw VfsError("atomic rename: cross-filesystem copy of " + from +
                       " to " + staging + " failed verification (" +
                       std::to_string(verified) + "/" +
                       std::to_string(copied) + " bytes)",
                   EIO);
  }

  if (vfs.rename(staging, to) != 0) {
    const int saved = errno;
    vfs.unlink(staging);
    errno = saved;
    throw_errno("atomic rename: rename " + staging + " -> " + to);
  }
  vfs.fsync_parent(to);  // best-effort; see rename_into_place
  vfs.unlink(from);
}

}  // namespace

void rename_into_place(const std::string& from, const std::string& to,
                       Vfs* vfs_opt) {
  Vfs& vfs = vfs_or_default(vfs_opt);
  if (vfs.rename(from, to) == 0) {
    // Directory-entry durability: without this a power cut can forget the
    // rename entirely. Best-effort — some filesystems refuse directory
    // fsync (EINVAL) and the rename itself is still atomic there.
    vfs.fsync_parent(to);
    return;
  }
  if (errno == EXDEV) {
    try {
      copy_across_filesystems(vfs, from, to);
    } catch (...) {
      vfs.unlink(from);
      throw;
    }
    return;
  }
  const int saved = errno;
  vfs.unlink(from);
  errno = saved;
  throw_errno("atomic write: rename " + from + " -> " + to + " failed");
}

ArtifactInfo atomic_write_file(const std::string& path,
                               std::string_view contents, Vfs* vfs) {
  AtomicFileWriter writer{path, vfs};
  writer.write(contents);
  return writer.commit();
}

AtomicFileWriter::AtomicFileWriter(std::string path, Vfs* vfs)
    : vfs_(&vfs_or_default(vfs)),
      path_(std::move(path)),
      temp_path_(path_ + ".tmp") {
  fd_ = vfs_->open(temp_path_, OpenMode::kTruncate);
  if (fd_ < 0) throw_errno("atomic write: cannot open " + temp_path_);
  buffer_.reserve(kWriteBufferBytes);
  open_ = true;
}

AtomicFileWriter::~AtomicFileWriter() { abandon(); }

void AtomicFileWriter::flush_buffer() {
  if (buffer_.empty()) return;
  if (!write_fully(*vfs_, fd_, buffer_)) {
    const int saved = errno;
    abandon();
    errno = saved;
    throw_errno("atomic write: write to " + temp_path_ + " failed");
  }
  buffer_.clear();
}

void AtomicFileWriter::write(std::string_view bytes) {
  if (!open_)
    throw std::logic_error("AtomicFileWriter: write after commit/abandon");
  crc_.update(bytes);
  bytes_ += bytes.size();
  if (buffer_.size() + bytes.size() >= kWriteBufferBytes) {
    flush_buffer();
    if (bytes.size() >= kWriteBufferBytes) {
      if (!write_fully(*vfs_, fd_, bytes)) {
        const int saved = errno;
        abandon();
        errno = saved;
        throw_errno("atomic write: write to " + temp_path_ + " failed");
      }
      return;
    }
  }
  buffer_.append(bytes.data(), bytes.size());
}

ArtifactInfo AtomicFileWriter::commit() {
  if (!open_)
    throw std::logic_error("AtomicFileWriter: commit after commit/abandon");
  flush_buffer();
  // Data must be on stable storage *before* the rename publishes it:
  // rename-then-crash must never promote an empty or truncated artifact.
  if (!fsync_fully(*vfs_, fd_)) {
    const int saved = errno;
    abandon();
    errno = saved;
    throw_errno("atomic write: fsync of " + temp_path_ + " failed");
  }
  const int rc = vfs_->close(fd_);
  fd_ = -1;
  open_ = false;
  if (rc != 0) {
    const int saved = errno;
    vfs_->unlink(temp_path_);
    errno = saved;
    throw_errno("atomic write: close of " + temp_path_ + " failed");
  }
  rename_into_place(temp_path_, path_, vfs_);
  return ArtifactInfo{bytes_, crc_.value()};
}

void AtomicFileWriter::abandon() noexcept {
  if (!open_) return;
  open_ = false;
  if (fd_ >= 0) {
    vfs_->close(fd_);
    fd_ = -1;
  }
  vfs_->unlink(temp_path_);
}

}  // namespace syrwatch::util
