#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace syrwatch::util {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Unbiased sample variance; 0 when fewer than two elements.
double variance(std::span<const double> xs) noexcept;

/// Linear-interpolation percentile of a *sorted* span, p in [0, 100].
double percentile_sorted(std::span<const double> sorted, double p) noexcept;

/// Cosine similarity between two equally sized non-negative vectors, the
/// proxy-specialization metric of the paper's Table 6. Returns 0 when either
/// vector is all-zero.
double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) noexcept;

/// Two-sided normal-approximation confidence interval around an observed
/// proportion (the paper's §3.3 sampling-accuracy argument, Jain Eq. 13.9.2).
struct ProportionInterval {
  double lo = 0.0;
  double hi = 0.0;
  double half_width = 0.0;
};

/// `successes` out of `trials` at confidence (1 - alpha); alpha = 0.05 gives
/// the 95% interval used in the paper. Requires trials > 0.
ProportionInterval proportion_confidence(std::uint64_t successes,
                                         std::uint64_t trials, double alpha);

/// Wilson score interval — well-behaved at 0 or n successes (the normal
/// approximation degenerates to a point there), which matters when auditing
/// rare classes like PROXIED on small samples. Same contract as
/// proportion_confidence.
ProportionInterval wilson_confidence(std::uint64_t successes,
                                     std::uint64_t trials, double alpha);

/// Empirical CDF point set over arbitrary sample values: x values sorted
/// ascending, y the fraction of samples <= x.
struct CdfPoint {
  double x = 0.0;
  double y = 0.0;
};
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples);

/// Least-squares slope of log10(y) against log10(x) over positive pairs,
/// used to validate the Fig. 2 power law. Returns 0 with fewer than two
/// usable pairs.
double loglog_slope(std::span<const double> xs, std::span<const double> ys);

}  // namespace syrwatch::util
