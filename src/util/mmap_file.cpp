#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace syrwatch::util {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::runtime_error("mmap " + path + ": " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

MappedFile MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(path, "open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(path, "fstat");
  }
  MappedFile file;
  file.path_ = path;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* data = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail(path, "mmap");
    }
    file.data_ = data;
  }
  // The mapping holds its own reference; the descriptor is no longer
  // needed.
  ::close(fd);
  return file;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

}  // namespace syrwatch::util
