#include "util/cli.h"

#include <charconv>
#include <stdexcept>

namespace syrwatch::util {

void CliFlags::value_flag(std::string name) {
  flags_.push_back({std::move(name), /*takes_value=*/true});
}

void CliFlags::bool_flag(std::string name) {
  flags_.push_back({std::move(name), /*takes_value=*/false});
}

CliFlags::Flag* CliFlags::find(std::string_view name) noexcept {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

const CliFlags::Flag* CliFlags::find(std::string_view name) const noexcept {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool CliFlags::parse(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    const std::string_view token{argv[i]};
    if (token.size() < 3 || token.substr(0, 2) != "--") {
      positional_.emplace_back(token);
      continue;
    }
    // Both standard spellings work: `--flag value` and `--flag=value`.
    // Splitting on the first '=' keeps values containing '=' intact
    // (--keyword a=b). The flag is looked up by its bare name, so the two
    // spellings share one `seen` slot and `--x v --x=w` is a duplicate.
    const auto equals = token.find('=');
    const std::string_view name =
        equals == std::string_view::npos ? token : token.substr(0, equals);
    Flag* flag = find(name);
    if (flag == nullptr) {
      error_ = "unknown flag " + std::string(name);
      return false;
    }
    if (flag->seen) {
      error_ = "duplicate flag " + flag->name;
      return false;
    }
    flag->seen = true;
    if (!flag->takes_value) {
      if (equals != std::string_view::npos) {
        error_ = "flag " + flag->name + " does not take a value";
        return false;
      }
      continue;
    }
    if (equals != std::string_view::npos) {
      flag->value = std::string(token.substr(equals + 1));
    } else {
      if (i + 1 >= argc) {
        error_ = "flag " + flag->name + " expects a value";
        return false;
      }
      flag->value = argv[++i];
    }
  }
  return true;
}

bool CliFlags::has(std::string_view name) const noexcept {
  const Flag* flag = find(name);
  return flag != nullptr && flag->seen;
}

std::optional<std::string_view> CliFlags::get(std::string_view name) const {
  const Flag* flag = find(name);
  if (flag == nullptr || !flag->takes_value || !flag->seen)
    return std::nullopt;
  return std::string_view{flag->value};
}

namespace {

template <typename T>
T parse_number(std::string_view name, std::string_view text, T fallback,
               bool present) {
  if (!present) return fallback;
  T value{};
  const auto [rest, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || rest != text.data() + text.size()) {
    throw std::invalid_argument("flag " + std::string(name) +
                                " expects a number, got \"" +
                                std::string(text) + "\"");
  }
  return value;
}

}  // namespace

std::uint64_t CliFlags::get_u64(std::string_view name,
                                std::uint64_t fallback) const {
  const auto text = get(name);
  return parse_number<std::uint64_t>(name, text.value_or(""), fallback,
                                     text.has_value());
}

std::int64_t CliFlags::get_i64(std::string_view name,
                               std::int64_t fallback) const {
  const auto text = get(name);
  return parse_number<std::int64_t>(name, text.value_or(""), fallback,
                                    text.has_value());
}

}  // namespace syrwatch::util
