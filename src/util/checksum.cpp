#include "util/checksum.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace syrwatch::util {

namespace {

/// Reflected CRC32 table for polynomial 0xEDB88320, built once at load.
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

void Crc32::update(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = state_;
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ kCrcTable[(crc ^ bytes[i]) & 0xFFu];
  state_ = crc;
}

void Crc32::update(std::string_view bytes) noexcept {
  update(bytes.data(), bytes.size());
}

std::uint32_t crc32_of(std::string_view bytes) noexcept {
  Crc32 crc;
  crc.update(bytes);
  return crc.value();
}

FileDigest crc32_file(const std::string& path) {
  return crc32_file_prefix(path, UINT64_MAX);
}

FileDigest crc32_file_prefix(const std::string& path, std::uint64_t limit) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("crc32_file: cannot open " + path);
  FileDigest digest;
  Crc32 crc;
  char buffer[1 << 16];
  while (in && digest.bytes < limit) {
    const std::uint64_t want =
        std::min<std::uint64_t>(sizeof buffer, limit - digest.bytes);
    in.read(buffer, static_cast<std::streamsize>(want));
    const std::streamsize got = in.gcount();
    if (got <= 0) break;
    crc.update(buffer, static_cast<std::size_t>(got));
    digest.bytes += static_cast<std::uint64_t>(got);
  }
  if (in.bad()) throw std::runtime_error("crc32_file: read error on " + path);
  digest.crc32 = crc.value();
  return digest;
}

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string to_hex32(std::uint32_t value) {
  char buffer[12];
  std::snprintf(buffer, sizeof buffer, "%08x", value);
  return buffer;
}

std::string to_hex64(std::uint64_t value) {
  char buffer[20];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool parse_hex32(std::string_view text, std::uint32_t& value) noexcept {
  if (text.size() != 8) return false;
  std::uint32_t out = 0;
  for (const char c : text) {
    const int digit = hex_digit(c);
    if (digit < 0) return false;
    out = (out << 4) | static_cast<std::uint32_t>(digit);
  }
  value = out;
  return true;
}

bool parse_hex64(std::string_view text, std::uint64_t& value) noexcept {
  if (text.size() != 16) return false;
  std::uint64_t out = 0;
  for (const char c : text) {
    const int digit = hex_digit(c);
    if (digit < 0) return false;
    out = (out << 4) | static_cast<std::uint64_t>(digit);
  }
  value = out;
  return true;
}

}  // namespace syrwatch::util
