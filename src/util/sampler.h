#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace syrwatch::util {

/// Walker alias-method sampler over a fixed discrete distribution.
///
/// Construction is O(n); each draw is O(1) with exactly one uniform draw and
/// one table probe. The workload generators draw from the same category /
/// domain mixtures millions of times per run, so constant-time sampling is
/// what keeps the benches fast.
class AliasSampler {
 public:
  /// Builds the tables from non-negative weights (at least one positive).
  explicit AliasSampler(std::span<const double> weights);

  std::size_t size() const noexcept { return prob_.size(); }

  /// Probability mass of outcome i, as normalized at construction.
  double pmf(std::size_t i) const { return pmf_.at(i); }

  /// Draws an index in [0, size()).
  std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> prob_;        // acceptance threshold per bucket
  std::vector<std::uint32_t> alias_;  // fallback outcome per bucket
  std::vector<double> pmf_;         // normalized input, kept for inspection
};

}  // namespace syrwatch::util
