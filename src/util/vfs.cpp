#include "util/vfs.h"

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace syrwatch::util {

namespace {

/// The real filesystem. Stateless: every call maps to one syscall (plus
/// the parent-directory resolution for fsync_parent).
class PosixVfs final : public Vfs {
 public:
  int open(const std::string& path, OpenMode mode) override {
    switch (mode) {
      case OpenMode::kRead:
        return ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      case OpenMode::kTruncate:
        return ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644);
      case OpenMode::kAppend:
        return ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                      0644);
    }
    errno = EINVAL;
    return -1;
  }

  long write(int fd, const void* data, std::size_t size) override {
    return static_cast<long>(::write(fd, data, size));
  }

  long read(int fd, void* data, std::size_t size,
            std::uint64_t offset) override {
    return static_cast<long>(
        ::pread(fd, data, size, static_cast<off_t>(offset)));
  }

  int fsync(int fd) override { return ::fsync(fd); }

  int fsync_parent(const std::string& path) override {
    std::filesystem::path parent = std::filesystem::path{path}.parent_path();
    if (parent.empty()) parent = ".";
    const int fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return -1;
    int rc;
    do {
      rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return rc;
  }

  int close(int fd) override { return ::close(fd); }

  int rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str());
  }

  int truncate(const std::string& path, std::uint64_t size) override {
    return ::truncate(path.c_str(), static_cast<off_t>(size));
  }

  int unlink(const std::string& path) override {
    return ::unlink(path.c_str());
  }

  bool stat(const std::string& path, VfsStat& out) override {
    struct ::stat st{};
    if (::stat(path.c_str(), &st) != 0) return false;
    out.size = static_cast<std::uint64_t>(st.st_size);
    out.inode = static_cast<std::uint64_t>(st.st_ino);
    return true;
  }
};

std::atomic<Vfs*> g_default_vfs{nullptr};

}  // namespace

Vfs& system_vfs() {
  static PosixVfs vfs;
  return vfs;
}

Vfs& default_vfs() noexcept {
  Vfs* vfs = g_default_vfs.load(std::memory_order_acquire);
  return vfs != nullptr ? *vfs : system_vfs();
}

void set_default_vfs(Vfs* vfs) noexcept {
  g_default_vfs.store(vfs, std::memory_order_release);
}

bool VfsError::out_of_space() const noexcept {
  return code_ == ENOSPC || code_ == EDQUOT;
}

bool write_fully(Vfs& vfs, int fd, std::string_view bytes) noexcept {
  std::size_t offset = 0;
  int transient = 0;
  int stalls = 0;
  while (offset < bytes.size()) {
    const long wrote =
        vfs.write(fd, bytes.data() + offset, bytes.size() - offset);
    if (wrote > 0) {
      offset += static_cast<std::size_t>(wrote);
      transient = 0;
      stalls = 0;
      continue;
    }
    if (wrote < 0) {
      if (errno == EINTR && ++transient <= kMaxTransientRetries) continue;
      return false;
    }
    // Zero bytes of progress with no error: a pathological short write.
    // Retry capped — surfacing EIO beats spinning forever.
    if (++stalls > kMaxTransientRetries) {
      errno = EIO;
      return false;
    }
  }
  return true;
}

bool fsync_fully(Vfs& vfs, int fd) noexcept {
  int transient = 0;
  for (;;) {
    if (vfs.fsync(fd) == 0) return true;
    if (errno == EINTR && ++transient <= kMaxTransientRetries) continue;
    return false;
  }
}

// ---------------------------------------------------------------------------
// StorageFaultSchedule

StorageFaultSchedule StorageFaultSchedule::parse(std::string_view spec) {
  std::string_view name = spec;
  std::uint64_t param = 0;
  bool have_param = false;
  if (const auto colon = spec.find(':'); colon != std::string_view::npos) {
    name = spec.substr(0, colon);
    const std::string_view text = spec.substr(colon + 1);
    const auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), param);
    if (ec != std::errc{} || end != text.data() + text.size() || param == 0)
      throw std::invalid_argument("storage-fault: malformed parameter in \"" +
                                  std::string(spec) + "\"");
    have_param = true;
  }

  StorageFaultSchedule schedule;
  schedule.name = std::string(spec);
  if (name == "none") {
    if (have_param)
      throw std::invalid_argument("storage-fault: \"none\" takes no parameter");
  } else if (name == "enospc") {
    schedule.capacity_bytes = have_param ? param : 256 * 1024;
  } else if (name == "short-writes") {
    schedule.short_write_cap = have_param ? param : 4096;
  } else if (name == "eintr-storm") {
    schedule.eintr_every = have_param ? static_cast<std::uint32_t>(param) : 3;
  } else if (name == "fsync-fail") {
    schedule.fail_fsync_number = have_param ? param : 2;
  } else if (name == "power-cut") {
    schedule.power_cut_at_rename = have_param ? param : 1;
  } else if (name == "torn-tail") {
    schedule.power_cut_at_rename = have_param ? param : 1;
    schedule.torn_tail = true;
  } else {
    throw std::invalid_argument("storage-fault: unknown schedule \"" +
                                std::string(spec) + "\"");
  }
  return schedule;
}

const std::vector<std::string>& StorageFaultSchedule::names() {
  static const std::vector<std::string> kNames = {
      "none",       "enospc",    "short-writes", "eintr-storm",
      "fsync-fail", "power-cut", "torn-tail",
  };
  return kNames;
}

// ---------------------------------------------------------------------------
// FaultyVfs

namespace {

/// splitmix64 — the same deterministic stream everywhere, independent of
/// call interleaving by construction (the state only advances on draws).
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FaultyVfs::FaultyVfs(Vfs& inner, StorageFaultSchedule schedule)
    : inner_(inner), schedule_(std::move(schedule)),
      rng_state_(schedule_.seed) {}

FaultyVfs::~FaultyVfs() = default;

FaultyVfs::Stats FaultyVfs::stats() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return stats_;
}

bool FaultyVfs::poisoned() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return poisoned_;
}

int FaultyVfs::open(const std::string& path, OpenMode mode) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (poisoned_ && mode != OpenMode::kRead) {
    errno = EIO;
    return -1;
  }
  const int fd = inner_.open(path, mode);
  if (fd < 0 || mode == OpenMode::kRead) return fd;

  FileState state;
  state.path = path;
  state.writable = true;
  const auto prior = closed_dirty_.find(path);
  if (mode == OpenMode::kTruncate) {
    // Truncation frees whatever this vfs had accumulated at the path.
    if (prior != closed_dirty_.end()) {
      used_bytes_ -= std::min(used_bytes_, prior->second.size);
      closed_dirty_.erase(prior);
    }
  } else {  // kAppend: inherit the file's durable/dirty split
    if (prior != closed_dirty_.end()) {
      state.size = prior->second.size;
      state.synced = prior->second.synced;
      closed_dirty_.erase(prior);
    } else {
      VfsStat st;
      if (inner_.stat(path, st)) {
        // Bytes written before this vfs existed are assumed durable.
        state.size = st.size;
        state.synced = st.size;
      }
    }
  }
  open_[fd] = std::move(state);
  return fd;
}

long FaultyVfs::write(int fd, const void* data, std::size_t size) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (poisoned_) {
    errno = EIO;
    return -1;
  }
  const auto it = open_.find(fd);
  if (it == open_.end()) return inner_.write(fd, data, size);

  ++write_calls_;
  ++stats_.writes;
  if (schedule_.eintr_every > 0 &&
      write_calls_ % (schedule_.eintr_every + 1) != 0) {
    ++stats_.eintr_injected;
    errno = EINTR;
    return -1;
  }
  std::size_t allowed = size;
  if (schedule_.short_write_cap > 0)
    allowed = std::min<std::size_t>(
        allowed, 1 + static_cast<std::size_t>(splitmix64(rng_state_) %
                                              schedule_.short_write_cap));
  if (schedule_.capacity_bytes > 0) {
    const std::uint64_t free =
        schedule_.capacity_bytes -
        std::min(schedule_.capacity_bytes, used_bytes_);
    if (free == 0) {
      ++stats_.enospc_injected;
      errno = ENOSPC;
      return -1;
    }
    allowed = std::min<std::size_t>(allowed, free);
  }
  const long wrote = inner_.write(fd, data, allowed);
  if (wrote > 0) {
    it->second.size += static_cast<std::uint64_t>(wrote);
    used_bytes_ += static_cast<std::uint64_t>(wrote);
    if (static_cast<std::size_t>(wrote) < size) ++stats_.short_writes;
  }
  return wrote;
}

long FaultyVfs::read(int fd, void* data, std::size_t size,
                     std::uint64_t offset) {
  return inner_.read(fd, data, size, offset);
}

int FaultyVfs::fsync(int fd) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (poisoned_) {
    errno = EIO;
    return -1;
  }
  ++stats_.fsyncs;
  if (schedule_.fail_fsync_number != 0 &&
      stats_.fsyncs == schedule_.fail_fsync_number) {
    ++stats_.fsync_failures;
    errno = EIO;
    return -1;
  }
  const int rc = inner_.fsync(fd);
  if (rc == 0) {
    const auto it = open_.find(fd);
    if (it != open_.end()) it->second.synced = it->second.size;
  }
  return rc;
}

int FaultyVfs::fsync_parent(const std::string& path) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (poisoned_) {
    errno = EIO;
    return -1;
  }
  ++stats_.parent_fsyncs;
  return inner_.fsync_parent(path);
}

int FaultyVfs::close(int fd) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = open_.find(fd);
  if (it != open_.end()) {
    // close() is not fsync: carry un-durable bytes so a later power cut
    // still reaches them.
    if (it->second.synced < it->second.size)
      closed_dirty_[it->second.path] = it->second;
    open_.erase(it);
  }
  return inner_.close(fd);
}

int FaultyVfs::rename(const std::string& from, const std::string& to) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (poisoned_) {
    errno = EIO;
    return -1;
  }
  const int rc = inner_.rename(from, to);
  if (rc != 0) return rc;
  ++stats_.renames;

  // Re-key the tracking: the data (and its durability state) moved with
  // the inode. An overwritten destination's bytes are freed.
  if (const auto overwritten = closed_dirty_.find(to);
      overwritten != closed_dirty_.end()) {
    used_bytes_ -= std::min(used_bytes_, overwritten->second.size);
    closed_dirty_.erase(overwritten);
  }
  if (const auto moved = closed_dirty_.find(from);
      moved != closed_dirty_.end()) {
    FileState state = std::move(moved->second);
    closed_dirty_.erase(moved);
    state.path = to;
    closed_dirty_[to] = std::move(state);
  }
  for (auto& [open_fd, state] : open_)
    if (state.path == from) state.path = to;

  if (schedule_.power_cut_at_rename != 0 &&
      stats_.renames == schedule_.power_cut_at_rename)
    power_cut_locked("after rename " + from + " -> " + to);
  return 0;
}

int FaultyVfs::truncate(const std::string& path, std::uint64_t size) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (poisoned_) {
    errno = EIO;
    return -1;
  }
  const int rc = inner_.truncate(path, size);
  if (rc != 0) return rc;
  const auto shrink = [&](FileState& state) {
    if (state.size > size) {
      used_bytes_ -= std::min(used_bytes_, state.size - size);
      state.size = size;
    }
    state.synced = std::min(state.synced, size);
  };
  if (const auto it = closed_dirty_.find(path); it != closed_dirty_.end())
    shrink(it->second);
  for (auto& [fd, state] : open_)
    if (state.path == path) shrink(state);
  return 0;
}

int FaultyVfs::unlink(const std::string& path) {
  const std::lock_guard<std::mutex> lock{mutex_};
  if (poisoned_) {
    errno = EIO;
    return -1;
  }
  const int rc = inner_.unlink(path);
  if (rc != 0) return rc;
  if (const auto it = closed_dirty_.find(path); it != closed_dirty_.end()) {
    used_bytes_ -= std::min(used_bytes_, it->second.size);
    closed_dirty_.erase(it);
  }
  return 0;
}

bool FaultyVfs::stat(const std::string& path, VfsStat& out) {
  return inner_.stat(path, out);
}

void FaultyVfs::drop_unsynced_locked(const std::string& path,
                                     FileState& state) {
  if (state.synced >= state.size) return;
  const std::uint64_t unsynced = state.size - state.synced;
  std::uint64_t keep = 0;
  std::uint64_t garbage = 0;
  if (schedule_.torn_tail) {
    // A real crash rarely loses the tail on a clean byte boundary: some
    // fraction of the un-fsynced data made it out, and the final block is
    // torn. Keep a seeded fraction and replace its last partial block
    // with garbage of the same length.
    keep = unsynced * (splitmix64(rng_state_) % 1000) / 1000;
    garbage = std::min<std::uint64_t>(
        keep, 1 + splitmix64(rng_state_) % 64);
  }
  const std::uint64_t survive = state.synced + keep;
  inner_.truncate(path, survive - garbage);
  if (garbage > 0) {
    const int fd = inner_.open(path, OpenMode::kAppend);
    if (fd >= 0) {
      std::string junk(static_cast<std::size_t>(garbage), '\0');
      for (auto& byte : junk)
        byte = static_cast<char>(splitmix64(rng_state_) & 0xFF);
      write_fully(inner_, fd, junk);
      inner_.close(fd);
    }
  }
  stats_.bytes_dropped += state.size - survive;
  state.size = survive;
  state.synced = std::min(state.synced, survive);
}

void FaultyVfs::power_cut_locked(const std::string& detail) {
  ++stats_.power_cuts;
  for (auto& [fd, state] : open_) drop_unsynced_locked(state.path, state);
  for (auto& [path, state] : closed_dirty_) drop_unsynced_locked(path, state);
  poisoned_ = true;
  throw SimulatedPowerLoss("simulated power loss " + detail +
                           " (un-fsynced bytes dropped: " +
                           std::to_string(stats_.bytes_dropped) + ")");
}

}  // namespace syrwatch::util
