#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace syrwatch::util {

/// ASCII lower-casing (the log fields we match against are ASCII URLs).
std::string to_lower(std::string_view s);

/// Case-sensitive substring test.
bool contains(std::string_view haystack, std::string_view needle) noexcept;

/// Case-insensitive (ASCII) substring test — Blue Coat keyword rules match
/// URLs case-insensitively.
bool icontains(std::string_view haystack, std::string_view needle) noexcept;

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// True when `host` equals `domain` or is a subdomain of it
/// (e.g. "www.facebook.com" matches "facebook.com"); the comparison is
/// case-insensitive. `domain` may be a bare TLD suffix like "il" only when
/// passed with a leading dot (".il").
bool host_matches_domain(std::string_view host, std::string_view domain) noexcept;

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style percentage rendering: "12.34%".
std::string percent(double fraction, int decimals = 2);

/// Human count with thousands separators: 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t value);

/// Compact count: 50,360,000 -> "50.36M"; below 1M renders plain digits.
std::string compact_count(std::uint64_t value);

}  // namespace syrwatch::util
