#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace syrwatch::util {

/// Interning pool mapping strings to dense 32-bit ids.
///
/// The analysis datasets hold millions of log records whose host / path /
/// query / user-agent fields repeat heavily; interning turns each record
/// into a handful of integers. Id 0 is reserved for the empty string, so a
/// default-constructed id renders as "" (the logs' '-' placeholder).
class StringPool {
 public:
  using Id = std::uint32_t;
  static constexpr Id kEmpty = 0;

  StringPool();

  /// Returns the id for `s`, interning it on first sight.
  Id intern(std::string_view s);

  /// Returns the id if present, kEmpty's sentinel semantics do not apply —
  /// absent strings yield std::nullopt-like kNotFound.
  static constexpr Id kNotFound = ~Id{0};
  Id lookup(std::string_view s) const noexcept;

  /// The interned string; views stay valid for the pool's lifetime.
  std::string_view view(Id id) const;

  std::size_t size() const noexcept { return strings_.size(); }

 private:
  // deque keeps string objects stable so string_view keys into the map
  // remain valid as the pool grows.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, Id> index_;
};

}  // namespace syrwatch::util
