#include "util/rng.h"

#include <cmath>
#include <stdexcept>

namespace syrwatch::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) noexcept {
  std::uint64_t s = value;
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::array<std::uint64_t, 4> Rng::save_state() const noexcept {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Rng::restore_state(const std::array<std::uint64_t, 4>& words) {
  if ((words[0] | words[1] | words[2] | words[3]) == 0)
    throw std::invalid_argument("Rng::restore_state: all-zero state");
  for (std::size_t i = 0; i < 4; ++i) state_[i] = words[i];
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  // Combine the parent's state with the stream id through the mixer so the
  // child stream is decorrelated from both the parent and sibling streams.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 31) ^ mix64(stream_id);
  return Rng{mix64(s)};
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire's method: multiply-shift with a rejection step to kill bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) noexcept {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth inversion in the log domain is unnecessary at this size.
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform01();
    while (product > limit) {
      ++count;
      product *= uniform01();
    }
    return count;
  }
  const double draw = mean + std::sqrt(mean) * normal();
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

double Rng::normal() noexcept {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  // Guard the contract violations explicitly: an empty span used to return
  // weights.size() - 1 == SIZE_MAX, and a non-positive total silently fell
  // through to the last index.
  if (weights.empty()) return 0;
  double total = 0.0;
  for (double w : weights) total += w;
  const double u = uniform01();
  if (!(total > 0.0)) {
    // Degenerate weights (all zero, or negative sums): fall back to a
    // uniform choice over the span instead of biasing to the last index.
    // One draw is consumed either way, keeping the stream aligned.
    return static_cast<std::size_t>(u * static_cast<double>(weights.size()));
  }
  double target = u * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace syrwatch::util
