#include "util/sampler.h"

#include <stdexcept>

namespace syrwatch::util {

AliasSampler::AliasSampler(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasSampler: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("AliasSampler: zero total");

  pmf_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Standard small/large worklist construction.
  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pmf_[i] = weights[i] / total;
    scaled[i] = pmf_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasSampler::sample(Rng& rng) const noexcept {
  const std::size_t bucket = rng.uniform(prob_.size());
  return rng.uniform01() < prob_[bucket]
             ? bucket
             : static_cast<std::size_t>(alias_[bucket]);
}

}  // namespace syrwatch::util
