#include "util/strings.h"

#include <algorithm>
#include <cstdio>

namespace syrwatch::util {

namespace {

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

}  // namespace

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), ascii_lower);
  return out;
}

bool contains(std::string_view haystack, std::string_view needle) noexcept {
  return haystack.find(needle) != std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  const auto it = std::search(
      haystack.begin(), haystack.end(), needle.begin(), needle.end(),
      [](char a, char b) { return ascii_lower(a) == ascii_lower(b); });
  return it != haystack.end();
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool host_matches_domain(std::string_view host,
                         std::string_view domain) noexcept {
  if (domain.empty() || host.size() < domain.size()) return false;
  const auto tail = host.substr(host.size() - domain.size());
  const bool suffix_equal =
      std::equal(tail.begin(), tail.end(), domain.begin(), domain.end(),
                 [](char a, char b) { return ascii_lower(a) == ascii_lower(b); });
  if (!suffix_equal) return false;
  if (host.size() == domain.size()) return true;
  // Subdomain boundary: either the domain itself starts with '.', or the
  // character before the suffix is a label separator.
  return domain.front() == '.' || host[host.size() - domain.size() - 1] == '.';
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string compact_count(std::uint64_t value) {
  char buf[64];
  if (value >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fM",
                  static_cast<double>(value) / 1'000'000.0);
    return buf;
  }
  return with_commas(value);
}

}  // namespace syrwatch::util
