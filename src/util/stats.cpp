#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace syrwatch::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double percentile_sorted(std::span<const double> sorted, double p) noexcept {
  if (sorted.empty()) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(idx);
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

namespace {

// Inverse standard-normal CDF (Acklam's rational approximation), accurate to
// ~1e-9 — far beyond what interval reporting needs.
double inverse_normal_cdf(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p <= 0.0 || p >= 1.0)
    throw std::domain_error("inverse_normal_cdf: p outside (0,1)");
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

ProportionInterval proportion_confidence(std::uint64_t successes,
                                         std::uint64_t trials, double alpha) {
  if (trials == 0)
    throw std::invalid_argument("proportion_confidence: trials == 0");
  if (successes > trials)
    throw std::invalid_argument("proportion_confidence: successes > trials");
  if (alpha <= 0.0 || alpha >= 1.0)
    throw std::invalid_argument("proportion_confidence: alpha outside (0,1)");
  const double p =
      static_cast<double>(successes) / static_cast<double>(trials);
  const double z = inverse_normal_cdf(1.0 - alpha / 2.0);
  const double half =
      z * std::sqrt(p * (1.0 - p) / static_cast<double>(trials));
  return {std::max(0.0, p - half), std::min(1.0, p + half), half};
}

ProportionInterval wilson_confidence(std::uint64_t successes,
                                     std::uint64_t trials, double alpha) {
  if (trials == 0)
    throw std::invalid_argument("wilson_confidence: trials == 0");
  if (successes > trials)
    throw std::invalid_argument("wilson_confidence: successes > trials");
  if (alpha <= 0.0 || alpha >= 1.0)
    throw std::invalid_argument("wilson_confidence: alpha outside (0,1)");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = inverse_normal_cdf(1.0 - alpha / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half), half};
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  std::vector<CdfPoint> points;
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Collapse runs of equal values into the final (x, count<=x/n) point.
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    points.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return points;
}

double loglog_slope(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) continue;
    const double lx = std::log10(xs[i]);
    const double ly = std::log10(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++used;
  }
  if (used < 2) return 0.0;
  const double denom = static_cast<double>(used) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(used) * sxy - sx * sy) / denom;
}

}  // namespace syrwatch::util
