#pragma once

#include <atomic>
#include <cstdint>

namespace syrwatch::util {

/// Cooperative cancellation with optional deadline: long-running phases
/// poll cancelled() at work-item boundaries and wind down cleanly when it
/// turns true. Cancellation never alters *what* a run computes — only how
/// far it gets — so a cancelled-then-resumed pipeline stays bit-identical
/// to an uninterrupted one.
///
/// request_cancel() is a single relaxed atomic store: async-signal-safe,
/// so a SIGINT handler may call it directly. cancelled() is safe from any
/// thread.
class CancelToken {
 public:
  /// Flips the token; idempotent, async-signal-safe.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Arms (or re-arms) a deadline `seconds` from now on the monotonic
  /// clock; non-positive values expire immediately.
  void set_deadline_after(double seconds) noexcept;

  /// True once request_cancel() ran or an armed deadline passed.
  bool cancelled() const noexcept;

  /// True when cancellation came from the deadline rather than an explicit
  /// request (for "deadline reached" vs "interrupted" messaging).
  bool deadline_expired() const noexcept;

  /// Disarms the deadline and clears the flag (test helper).
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Monotonic-clock deadline in nanoseconds; 0 = disarmed.
  std::atomic<std::uint64_t> deadline_nanos_{0};
};

}  // namespace syrwatch::util
