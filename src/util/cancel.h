#pragma once

#include <atomic>
#include <cstdint>

namespace syrwatch::util {

/// Cooperative cancellation with optional deadline: long-running phases
/// poll cancelled() at work-item boundaries and wind down cleanly when it
/// turns true. Cancellation never alters *what* a run computes — only how
/// far it gets — so a cancelled-then-resumed pipeline stays bit-identical
/// to an uninterrupted one.
///
/// request_cancel() is a single relaxed atomic store: async-signal-safe,
/// so a SIGINT handler may call it directly. cancelled() is safe from any
/// thread.
class CancelToken {
 public:
  /// Flips the token; idempotent, async-signal-safe.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Arms (or re-arms) a deadline `seconds` from now on the monotonic
  /// clock; non-positive values expire immediately.
  void set_deadline_after(double seconds) noexcept;

  /// True once request_cancel() ran or an armed deadline passed.
  bool cancelled() const noexcept;

  /// True when cancellation came from the deadline rather than an explicit
  /// request (for "deadline reached" vs "interrupted" messaging).
  bool deadline_expired() const noexcept;

  /// Disarms the deadline and clears the flag (test helper).
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Monotonic-clock deadline in nanoseconds; 0 = disarmed.
  std::atomic<std::uint64_t> deadline_nanos_{0};
};

/// Routes SIGINT and SIGTERM to `token.request_cancel()` via sigaction
/// (no SA_RESTART, so a coordinator blocked in poll() wakes immediately).
/// The token must outlive the handlers.
///
/// Multi-process contract: a fork() child inherits the handler but the
/// handler's target pointer then refers to the *child's copy* of whatever
/// token the parent armed — including any deadline the parent had already
/// set. A forked worker must therefore call install_stop_signals again on
/// its own freshly reset() token before doing any work, so Ctrl-C
/// delivered to the foreground process group stops every process
/// gracefully (each flushing its own checkpoint) instead of mixing parent
/// and child cancellation state.
void install_stop_signals(CancelToken& token) noexcept;

/// SIG_IGNs SIGPIPE in the calling process. A worker whose coordinator
/// died mid-run keeps generating into its durable spool (the work is
/// recoverable) instead of being killed by the next status write into the
/// broken pipe.
void ignore_sigpipe() noexcept;

}  // namespace syrwatch::util
