#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace syrwatch::util {

/// Zipf(s, n) sampler over ranks {0, ..., n-1} where rank r is drawn with
/// probability proportional to 1/(r+1)^s.
///
/// Domain popularity in web traffic is famously Zipf-like (the paper's
/// Fig. 2 shows the resulting power law in requests-per-domain); this class
/// drives the tail of the synthetic domain catalog. Sampling uses the
/// precomputed-CDF + binary-search method, which is exact and fast for the
/// catalog sizes we use (up to a few hundred thousand ranks).
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return s_; }

  /// Probability mass of the given rank.
  double pmf(std::size_t rank) const;

  /// Draws a rank in [0, n).
  std::size_t sample(Rng& rng) const noexcept;

 private:
  double s_;
  std::vector<double> cdf_;  // normalized inclusive prefix sums
};

}  // namespace syrwatch::util
