#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace syrwatch::util {

/// Fixed-width time/count histogram over [origin, origin + bins * width).
///
/// Used for the paper's temporal figures (5-minute and hourly bins). Values
/// outside the range are dropped and counted in `overflow`.
class BinnedCounter {
 public:
  BinnedCounter(std::int64_t origin, std::int64_t bin_width,
                std::size_t bin_count);

  void add(std::int64_t value, std::uint64_t count = 1) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::int64_t bin_width() const noexcept { return width_; }
  std::int64_t origin() const noexcept { return origin_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t at(std::size_t bin) const { return counts_.at(bin); }
  std::int64_t bin_start(std::size_t bin) const noexcept {
    return origin_ + static_cast<std::int64_t>(bin) * width_;
  }
  std::uint64_t total() const noexcept;
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }

 private:
  std::int64_t origin_;
  std::int64_t width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
};

/// Sparse frequency-of-frequencies view: given per-key counts, returns the
/// map {request-count -> number of keys with that count}. This is exactly the
/// transformation behind the paper's Fig. 2 (requests per unique domain).
std::map<std::uint64_t, std::uint64_t> frequency_of_frequencies(
    const std::vector<std::uint64_t>& per_key_counts);

}  // namespace syrwatch::util
