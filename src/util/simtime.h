#pragma once

#include <cstdint>
#include <string>

namespace syrwatch::util {

/// Simulation time is plain Unix seconds (UTC). The leaked logs cover
/// July 22–23, July 31 and August 1–6, 2011; these helpers convert between
/// Unix seconds and civil dates without touching the process time zone.

struct CivilDateTime {
  int year = 1970;
  int month = 1;   // 1..12
  int day = 1;     // 1..31
  int hour = 0;    // 0..23
  int minute = 0;  // 0..59
  int second = 0;  // 0..59
};

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
std::int64_t days_from_civil(int year, int month, int day) noexcept;

/// Unix seconds for a civil date-time (UTC).
std::int64_t to_unix_seconds(const CivilDateTime& c) noexcept;

/// Inverse of to_unix_seconds.
CivilDateTime to_civil(std::int64_t unix_seconds) noexcept;

/// 0 = Sunday ... 6 = Saturday. (Aug 5, 2011 — the paper's protest Friday —
/// returns 5.)
int day_of_week(std::int64_t unix_seconds) noexcept;

/// "2011-08-03" / "2011-08-03 08:15:00" renderings.
std::string format_date(std::int64_t unix_seconds);
std::string format_datetime(std::int64_t unix_seconds);
/// "08:15" clock rendering.
std::string format_clock(std::int64_t unix_seconds);

/// Fractional hour-of-day in [0, 24).
double hour_of_day(std::int64_t unix_seconds) noexcept;

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;

}  // namespace syrwatch::util
