#include "util/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace syrwatch::util {

std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t)>& fn,
                  const CancelToken* cancel) {
  if (count == 0) return true;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return false;
      fn(i);
    }
    return true;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> stopped{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  const auto worker = [&]() noexcept {
    for (;;) {
      if (cancel != nullptr && cancel->cancelled()) {
        stopped.store(true, std::memory_order_relaxed);
        cursor.store(count, std::memory_order_relaxed);
        return;
      }
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock{error_mutex};
          if (!error) error = std::current_exception();
        }
        // Park the cursor past the end so siblings stop claiming items.
        cursor.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(std::min(threads, count) - 1);
  for (std::size_t i = 1; i < std::min(threads, count); ++i)
    pool.emplace_back(worker);
  worker();
  for (std::thread& thread : pool) thread.join();
  if (error) std::rethrow_exception(error);
  return !stopped.load(std::memory_order_relaxed);
}

}  // namespace syrwatch::util
