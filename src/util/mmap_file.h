#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace syrwatch::util {

/// Read-only memory mapping of a whole file. The columnar log reader hands
/// out string_views directly into the mapping, so the mapping must outlive
/// every view — MappedFile is move-only and unmaps in its destructor.
///
/// An empty file maps to an empty view (no kernel mapping is created).
class MappedFile {
 public:
  /// Maps `path` read-only; throws std::runtime_error (naming the path)
  /// when the file cannot be opened, stat'ed, or mapped.
  static MappedFile open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view bytes() const noexcept {
    return {static_cast<const char*>(data_), size_};
  }
  std::size_t size() const noexcept { return size_; }
  const std::string& path() const noexcept { return path_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace syrwatch::util
