#include "util/cancel.h"

#include <csignal>

#include <chrono>

namespace syrwatch::util {

namespace {

/// Target of the process-wide stop handler. A plain atomic pointer store:
/// install_stop_signals may be called again after fork() to rebind the
/// handler to the child's own token.
std::atomic<CancelToken*> g_stop_token{nullptr};

void handle_stop_signal(int) {
  // request_cancel() is a relaxed atomic store — async-signal-safe.
  if (CancelToken* token = g_stop_token.load(std::memory_order_relaxed))
    token->request_cancel();
}

std::uint64_t steady_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void CancelToken::set_deadline_after(double seconds) noexcept {
  if (seconds <= 0.0) {
    cancelled_.store(true, std::memory_order_relaxed);
    // A sentinel in the past so deadline_expired() reports true.
    deadline_nanos_.store(1, std::memory_order_relaxed);
    return;
  }
  deadline_nanos_.store(steady_nanos() +
                            static_cast<std::uint64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
}

bool CancelToken::cancelled() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  return deadline_expired();
}

bool CancelToken::deadline_expired() const noexcept {
  const std::uint64_t deadline =
      deadline_nanos_.load(std::memory_order_relaxed);
  return deadline != 0 && steady_nanos() >= deadline;
}

void install_stop_signals(CancelToken& token) noexcept {
  g_stop_token.store(&token, std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  // Deliberately no SA_RESTART: a supervisor parked in poll()/waitpid()
  // must return with EINTR and notice the token promptly.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void ignore_sigpipe() noexcept {
  struct sigaction action {};
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  sigaction(SIGPIPE, &action, nullptr);
}

}  // namespace syrwatch::util
