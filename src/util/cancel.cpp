#include "util/cancel.h"

#include <chrono>

namespace syrwatch::util {

namespace {

std::uint64_t steady_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void CancelToken::set_deadline_after(double seconds) noexcept {
  if (seconds <= 0.0) {
    cancelled_.store(true, std::memory_order_relaxed);
    // A sentinel in the past so deadline_expired() reports true.
    deadline_nanos_.store(1, std::memory_order_relaxed);
    return;
  }
  deadline_nanos_.store(steady_nanos() +
                            static_cast<std::uint64_t>(seconds * 1e9),
                        std::memory_order_relaxed);
}

bool CancelToken::cancelled() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  return deadline_expired();
}

bool CancelToken::deadline_expired() const noexcept {
  const std::uint64_t deadline =
      deadline_nanos_.load(std::memory_order_relaxed);
  return deadline != 0 && steady_nanos() >= deadline;
}

}  // namespace syrwatch::util
