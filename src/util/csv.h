#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace syrwatch::util {

/// RFC-4180-style CSV encoding used by the log writer/reader. The leaked
/// Blue Coat logs were comma-separated; fields containing commas, quotes or
/// newlines are quoted, quotes are doubled.

/// Escapes a single field if needed.
std::string csv_escape(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string csv_join(const std::vector<std::string>& fields);

/// Parses one CSV line into fields. Handles quoted fields with embedded
/// commas and doubled quotes. Throws std::invalid_argument on an unbalanced
/// quote.
std::vector<std::string> csv_parse(std::string_view line);

}  // namespace syrwatch::util
