#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace syrwatch::util {

/// RFC-4180-style CSV encoding used by the log writer/reader. The leaked
/// Blue Coat logs were comma-separated; fields containing commas, quotes or
/// newlines are quoted, quotes are doubled.

/// Escapes a single field if needed.
std::string csv_escape(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string csv_join(const std::vector<std::string>& fields);

/// Why csv_parse rejected a line.
enum class CsvError : std::uint8_t {
  /// A quoted field was never closed ("truncated) — the signature of a
  /// line cut mid-field.
  kUnbalancedQuote,
  /// Structurally broken quoting on an otherwise complete line: bytes
  /// after a closing quote ("ab"x) or a bare quote inside an unquoted
  /// field (a"b). RFC 4180 forbids both; silently gluing the pieces
  /// together ("ab"x → abx) would let damaged fields masquerade as clean
  /// data.
  kMalformedQuote,
};

/// csv_parse's failure exception: still an std::invalid_argument (existing
/// catch sites keep working) but carrying the CsvError so callers can tally
/// damage by kind (proxy::read_log_lenient does).
class CsvParseError : public std::invalid_argument {
 public:
  CsvParseError(CsvError kind, const std::string& what)
      : std::invalid_argument(what), kind_(kind) {}
  CsvError kind() const noexcept { return kind_; }

 private:
  CsvError kind_;
};

/// Parses one CSV line into fields. Handles quoted fields with embedded
/// commas and doubled quotes, and strips one trailing '\r' (externally
/// produced logs are routinely CRLF-terminated and std::getline only
/// removes the '\n'). Throws CsvParseError on an unbalanced quote or on
/// malformed quoting (trailing garbage after a closing quote, a bare quote
/// inside an unquoted field).
std::vector<std::string> csv_parse(std::string_view line);

}  // namespace syrwatch::util
