#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace syrwatch::util {

/// splitmix64 step: the canonical 64-bit mixer, used for seeding and for
/// cheap stateless hashing of identifiers into streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless hash of a 64-bit value (one splitmix64 round on a copy).
std::uint64_t mix64(std::uint64_t value) noexcept;

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// All stochastic behaviour in the library flows through instances of this
/// class; a fixed seed therefore reproduces every table bit-for-bit. The
/// class satisfies the UniformRandomBitGenerator requirements, but we expose
/// the distribution helpers we actually need rather than <random>'s
/// implementation-defined distributions, so results are portable across
/// standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through splitmix64 so that nearby seeds
  /// produce unrelated streams.
  explicit Rng(std::uint64_t seed = 0x5EED0F5EED0F5EEDULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Derives an independent child generator; `stream_id` selects the stream.
  /// Children of the same parent with distinct ids are uncorrelated.
  Rng split(std::uint64_t stream_id) const noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// nearly-divisionless method.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed double with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean (>= 0). Uses inversion
  /// for small means and a normal approximation above 64 (adequate for
  /// workload arrival counts).
  std::uint64_t poisson(double mean) noexcept;

  /// Standard normal variate (Box–Muller without caching).
  double normal() noexcept;

  /// Index sampled proportionally to the non-negative weights. The result
  /// is always < max(weights.size(), 1): an empty span returns 0 (callers
  /// must not index with it), and a non-positive total degrades to a
  /// uniform choice over the span rather than biasing to the last index.
  /// Exactly one draw is consumed for any non-empty span. O(n); use
  /// util::AliasSampler for repeated draws.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// The generator's four xoshiro256++ state words, for checkpointing.
  /// restore_state(save_state()) reproduces the exact draw sequence.
  std::array<std::uint64_t, 4> save_state() const noexcept;

  /// Restores a previously saved state. Throws std::invalid_argument on
  /// the all-zero state (a fixed point xoshiro can never leave — a saved
  /// state can only be all-zero through corruption).
  void restore_state(const std::array<std::uint64_t, 4>& words);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform(i)]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace syrwatch::util
