#include "util/subprocess.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace syrwatch::util {

Pipe make_pipe() {
  int fds[2];
  if (::pipe(fds) != 0)
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  // Close-on-exec so an unrelated exec in either process cannot leak the
  // farm's status channel into a stranger.
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  return {fds[0], fds[1]};
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    throw std::runtime_error(std::string("fcntl(O_NONBLOCK): ") +
                             std::strerror(errno));
}

void close_fd(int fd) noexcept {
  if (fd < 0) return;
  // POSIX leaves the fd state unspecified after EINTR; retrying close on
  // Linux is harmless (the fd is gone either way) and we never reuse it.
  ::close(fd);
}

bool write_frame(int fd, std::string_view payload) noexcept {
  if (fd < 0 || payload.size() > kMaxFramePayload) return false;
  char frame[4 + kMaxFramePayload];
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  frame[0] = static_cast<char>(size & 0xFF);
  frame[1] = static_cast<char>((size >> 8) & 0xFF);
  frame[2] = static_cast<char>((size >> 16) & 0xFF);
  frame[3] = static_cast<char>((size >> 24) & 0xFF);
  std::memcpy(frame + 4, payload.data(), payload.size());
  const std::size_t total = 4 + payload.size();
  // Frames can exceed PIPE_BUF, and even below it a signal-interrupted
  // write may land partially — advance past whatever made it out instead
  // of dropping the tail (the reader would desync on a torn frame).
  std::size_t off = 0;
  int retries = 0;
  while (off < total) {
    const ssize_t wrote = ::write(fd, frame + off, total - off);
    if (wrote > 0) {
      off += static_cast<std::size_t>(wrote);
      retries = 0;
      continue;
    }
    if (wrote < 0 && errno == EINTR && ++retries <= 64) continue;
    // Zero-progress or a real error (EPIPE, EBADF): the coordinator is
    // gone — carry on without it.
    return false;
  }
  return true;
}

bool FrameReader::pump(int fd) {
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) return false;  // EOF: writer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    throw std::runtime_error(std::string("pipe read: ") +
                             std::strerror(errno));
  }
}

std::optional<std::string> FrameReader::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t size =
      byte(0) | (byte(1) << 8) | (byte(2) << 16) | (byte(3) << 24);
  if (size > kMaxFramePayload)
    throw std::runtime_error("pipe frame: oversized length prefix (" +
                             std::to_string(size) + " bytes)");
  if (buffer_.size() < 4 + static_cast<std::size_t>(size))
    return std::nullopt;
  std::string payload = buffer_.substr(4, size);
  buffer_.erase(0, 4 + static_cast<std::size_t>(size));
  return payload;
}

}  // namespace syrwatch::util
