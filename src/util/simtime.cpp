#include "util/simtime.h"

#include <cstdio>

namespace syrwatch::util {

std::int64_t days_from_civil(int year, int month, int day) noexcept {
  // Howard Hinnant's algorithm, valid across the proleptic Gregorian range.
  year -= month <= 2;
  const std::int64_t era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 +
                            day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

std::int64_t to_unix_seconds(const CivilDateTime& c) noexcept {
  return days_from_civil(c.year, c.month, c.day) * kSecondsPerDay +
         c.hour * kSecondsPerHour + c.minute * kSecondsPerMinute + c.second;
}

CivilDateTime to_civil(std::int64_t unix_seconds) noexcept {
  std::int64_t days = unix_seconds / kSecondsPerDay;
  std::int64_t rem = unix_seconds % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  // Inverse of days_from_civil.
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));

  CivilDateTime c;
  c.year = static_cast<int>(y + (m <= 2));
  c.month = static_cast<int>(m);
  c.day = static_cast<int>(d);
  c.hour = static_cast<int>(rem / kSecondsPerHour);
  c.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  c.second = static_cast<int>(rem % kSecondsPerMinute);
  return c;
}

int day_of_week(std::int64_t unix_seconds) noexcept {
  std::int64_t days = unix_seconds / kSecondsPerDay;
  if (unix_seconds % kSecondsPerDay < 0) --days;
  // 1970-01-01 was a Thursday (4).
  const std::int64_t dow = (days + 4) % 7;
  return static_cast<int>(dow < 0 ? dow + 7 : dow);
}

std::string format_date(std::int64_t unix_seconds) {
  const CivilDateTime c = to_civil(unix_seconds);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string format_datetime(std::int64_t unix_seconds) {
  const CivilDateTime c = to_civil(unix_seconds);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

std::string format_clock(std::int64_t unix_seconds) {
  const CivilDateTime c = to_civil(unix_seconds);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d:%02d", c.hour, c.minute);
  return buf;
}

double hour_of_day(std::int64_t unix_seconds) noexcept {
  std::int64_t rem = unix_seconds % kSecondsPerDay;
  if (rem < 0) rem += kSecondsPerDay;
  return static_cast<double>(rem) / static_cast<double>(kSecondsPerHour);
}

}  // namespace syrwatch::util
