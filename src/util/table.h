#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace syrwatch::util {

/// Minimal monospace table renderer used by the benches and examples to
/// print paper-versus-measured rows. Columns auto-size to content; numeric
/// alignment is the caller's concern (cells are plain strings).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   Domain         | Requests | %
  ///   ---------------+----------+------
  ///   facebook.com   | 1.62M    | 21.91%
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience: renders a titled section (title, underline, table, blank
/// line) — the uniform block format of every bench binary's output.
std::string titled_block(std::string_view title, const TextTable& table);

}  // namespace syrwatch::util
