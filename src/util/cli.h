#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace syrwatch::util {

/// Declarative flag scanner shared by the CLI subcommands. A command
/// declares its flags up front, parse() walks argv once, and anything
/// unexpected — an undeclared flag, a value flag at the end of the line, a
/// flag given twice — fails with a message naming the offender instead of
/// being silently ignored.
///
/// Grammar: tokens starting with "--" are flags; a value flag either
/// consumes the following token verbatim (so negative numbers and paths
/// work) or takes everything after the first '=' in its own token
/// (`--out=FILE`, values containing '=' stay intact). Both spellings are
/// the same flag — `--x v --x=w` is a duplicate. Every other token is
/// positional, in order.
class CliFlags {
 public:
  /// Declares a flag that takes one value, e.g. `--out FILE`.
  void value_flag(std::string name);
  /// Declares a presence-only flag, e.g. `--no-leak-filter`.
  void bool_flag(std::string name);

  /// Parses argv[first, argc). Returns false and records error() on the
  /// first violation; the flag/positional state is then unspecified.
  /// `first` defaults past `syrwatchctl <subcommand>`.
  bool parse(int argc, char** argv, int first = 2);

  /// Empty until a parse() fails.
  const std::string& error() const noexcept { return error_; }

  /// True when the flag (either kind) appeared.
  bool has(std::string_view name) const noexcept;

  /// The value of a value flag, or nullopt when it did not appear.
  std::optional<std::string_view> get(std::string_view name) const;

  /// Parsed numeric value, or `fallback` when the flag did not appear.
  /// Throws std::invalid_argument (naming the flag) on non-numeric text.
  std::uint64_t get_u64(std::string_view name, std::uint64_t fallback) const;
  std::int64_t get_i64(std::string_view name, std::int64_t fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  struct Flag {
    std::string name;
    bool takes_value = false;
    bool seen = false;
    std::string value;
  };

  Flag* find(std::string_view name) noexcept;
  const Flag* find(std::string_view name) const noexcept;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace syrwatch::util
