#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace syrwatch::proxy {

/// sc-filter-result values (§3.2): the action the proxy took, not the
/// outcome of filtering.
enum class FilterResult : std::uint8_t { kObserved, kProxied, kDenied };

std::string_view to_string(FilterResult result) noexcept;
std::optional<FilterResult> parse_filter_result(std::string_view text) noexcept;

/// x-exception-id values observed in the leak (Table 3). kNone is logged
/// as '-'.
enum class ExceptionId : std::uint8_t {
  kNone = 0,
  kPolicyDenied,
  kPolicyRedirect,
  kTcpError,
  kInternalError,
  kInvalidRequest,
  kUnsupportedProtocol,
  kDnsUnresolvedHostname,
  kDnsServerFailure,
  kUnsupportedEncoding,
  kInvalidResponse,
  kCount,  // sentinel; keep last
};

inline constexpr std::size_t kExceptionCount =
    static_cast<std::size_t>(ExceptionId::kCount);

std::string_view to_string(ExceptionId id) noexcept;
std::optional<ExceptionId> parse_exception(std::string_view text) noexcept;

/// §3.3 request classes: censored = policy exceptions; error = any other
/// exception; allowed = none.
bool is_policy_exception(ExceptionId id) noexcept;
bool is_error_exception(ExceptionId id) noexcept;

}  // namespace syrwatch::proxy
