#include "proxy/exception.h"

namespace syrwatch::proxy {

std::string_view to_string(FilterResult result) noexcept {
  switch (result) {
    case FilterResult::kObserved: return "OBSERVED";
    case FilterResult::kProxied: return "PROXIED";
    case FilterResult::kDenied: return "DENIED";
  }
  return "OBSERVED";
}

std::optional<FilterResult> parse_filter_result(
    std::string_view text) noexcept {
  if (text == "OBSERVED") return FilterResult::kObserved;
  if (text == "PROXIED") return FilterResult::kProxied;
  if (text == "DENIED") return FilterResult::kDenied;
  return std::nullopt;
}

std::string_view to_string(ExceptionId id) noexcept {
  switch (id) {
    case ExceptionId::kNone: return "-";
    case ExceptionId::kPolicyDenied: return "policy_denied";
    case ExceptionId::kPolicyRedirect: return "policy_redirect";
    case ExceptionId::kTcpError: return "tcp_error";
    case ExceptionId::kInternalError: return "internal_error";
    case ExceptionId::kInvalidRequest: return "invalid_request";
    case ExceptionId::kUnsupportedProtocol: return "unsupported_protocol";
    case ExceptionId::kDnsUnresolvedHostname:
      return "dns_unresolved_hostname";
    case ExceptionId::kDnsServerFailure: return "dns_server_failure";
    case ExceptionId::kUnsupportedEncoding: return "unsupported_encoding";
    case ExceptionId::kInvalidResponse: return "invalid_response";
    case ExceptionId::kCount: break;
  }
  return "-";
}

std::optional<ExceptionId> parse_exception(std::string_view text) noexcept {
  for (std::size_t i = 0; i < kExceptionCount; ++i) {
    const auto id = static_cast<ExceptionId>(i);
    if (text == to_string(id)) return id;
  }
  return std::nullopt;
}

bool is_policy_exception(ExceptionId id) noexcept {
  return id == ExceptionId::kPolicyDenied || id == ExceptionId::kPolicyRedirect;
}

bool is_error_exception(ExceptionId id) noexcept {
  return id != ExceptionId::kNone && !is_policy_exception(id);
}

}  // namespace syrwatch::proxy
