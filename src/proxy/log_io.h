#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "proxy/log_record.h"

namespace syrwatch::proxy {

/// CSV serialization of log records in the leak's style: one line per
/// request, comma-separated, '-' for empty fields. The column set is the
/// analysis-relevant subset of the 26 Blue Coat fields (Table 2), in a
/// fixed order given by `log_csv_header()`.

/// "date,time,s-ip,c-ip,cs-method,cs-host,..." header line.
std::string log_csv_header();

/// Renders one record as a CSV line (no trailing newline).
std::string to_csv(const LogRecord& record);

/// Parses a line produced by to_csv. Returns nullopt on malformed input
/// (wrong column count, bad enums, bad timestamp).
std::optional<LogRecord> from_csv(const std::string& line);

/// Writes header + all records.
void write_log(std::ostream& out, const std::vector<LogRecord>& records);

/// Reads a stream written by write_log. Throws std::runtime_error on a
/// malformed header or row.
std::vector<LogRecord> read_log(std::istream& in);

}  // namespace syrwatch::proxy
