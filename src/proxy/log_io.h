#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "proxy/log_record.h"
#include "util/atomic_io.h"

namespace syrwatch::proxy {

/// CSV serialization of log records in the leak's style: one line per
/// request, comma-separated, '-' for empty fields. The column set is the
/// analysis-relevant subset of the 26 Blue Coat fields (Table 2), in a
/// fixed order given by `log_csv_header()`.

/// "date,time,s-ip,c-ip,cs-method,cs-host,..." header line.
std::string log_csv_header();

/// Renders one record as a CSV line (no trailing newline).
std::string to_csv(const LogRecord& record);

/// Why a line failed to parse. kNone means it parsed.
enum class ParseError : std::uint8_t {
  kNone = 0,
  kUnbalancedQuote,  // CSV-level damage: quote never closed
  kColumnCount,      // wrong number of fields
  kBadTimestamp,     // date/time malformed or out of civil range
  kBadAddress,       // s-ip not one of the seven proxy addresses
  kBadField,         // any other field failed validation
  kMalformedQuote,   // CSV-level damage: broken quoting ("ab"x, a"b)
};

inline constexpr std::size_t kParseErrorCount = 7;

std::string_view to_string(ParseError error) noexcept;

/// Per-field detail of a parse failure, for error messages and LogReadStats.
struct ParseDiagnosis {
  ParseError error = ParseError::kNone;
  /// Actual column count when the line at least split into fields
  /// (meaningful for kColumnCount and later stages); 0 otherwise.
  std::size_t columns = 0;
};

/// Parses a line produced by to_csv. Returns nullopt on malformed input
/// (wrong column count, bad enums, bad timestamp, out-of-range civil date
/// fields), filling `diagnosis` (when given) with the reason.
std::optional<LogRecord> from_csv(const std::string& line,
                                  ParseDiagnosis* diagnosis = nullptr);

/// Writes header + all records, then flushes. Throws std::runtime_error
/// when the stream reports a write/flush failure — a full disk must not
/// yield a silently truncated, parseable-looking log.
void write_log(std::ostream& out, const std::vector<LogRecord>& records);

/// write_log to `path` through util::atomic_write_file: the file appears
/// complete or not at all (temp → flush → rename). Returns the committed
/// artifact's size + CRC32 for manifest bookkeeping; throws on any I/O
/// failure.
util::ArtifactInfo write_log_file(const std::string& path,
                                  const std::vector<LogRecord>& records);

/// Reads a stream written by write_log. Throws std::runtime_error on a
/// malformed header or row; the message names the 1-based line number, the
/// failure reason, and (for column-count mismatches) the actual count.
std::vector<LogRecord> read_log(std::istream& in);

/// What read_log_lenient saw: every skipped line accounted for by reason,
/// with the first offending line number per reason for fast triage.
struct LogReadStats {
  std::uint64_t lines = 0;       // lines read, including header and blanks
  std::uint64_t data_lines = 0;  // non-empty candidate record lines
  std::uint64_t recovered = 0;   // data lines that parsed
  std::uint64_t empty_lines = 0;
  bool header_present = false;  // first line matched log_csv_header()
  /// The file looks torn at the end: its final line lacks a newline, or
  /// the last data line was skipped for a short column count. Writers in
  /// this codebase always end with a newline, so either is the signature
  /// of a crash- or disk-full-truncated artifact; analyses consuming this
  /// log should surface the flag (analysis::request_coverage does).
  bool truncated_tail = false;
  /// Skip counts indexed by ParseError (slot 0, kNone, stays zero).
  std::array<std::uint64_t, kParseErrorCount> skipped{};
  /// 1-based stream line number of the first skip per reason; 0 = never.
  std::array<std::uint64_t, kParseErrorCount> first_error_line{};

  std::uint64_t skipped_total() const noexcept;
  /// Every data line is either recovered or skipped for exactly one reason.
  bool consistent() const noexcept {
    return recovered + skipped_total() == data_lines;
  }
  /// Human-readable multi-line rendering (the `inspect` subcommand's view).
  std::string summary() const;
};

struct LenientLog {
  std::vector<LogRecord> records;
  LogReadStats stats;
};

/// Damage-tolerant reader for leak-grade logs: never throws on malformed
/// input. A wrong or missing header is recorded (not fatal) and the first
/// line is then re-tried as data; every malformed row is skipped and
/// tallied by reason in `stats`. Intact rows always survive.
LenientLog read_log_lenient(std::istream& in);

}  // namespace syrwatch::proxy
