#include "proxy/sg_proxy.h"

#include <stdexcept>

namespace syrwatch::proxy {

SgProxy::SgProxy(std::uint8_t index, const policy::ProxyPolicy* policy,
                 const policy::CustomCategoryList* custom_categories,
                 const SgProxyConfig& config, util::Rng rng)
    : index_(index),
      policy_(policy),
      custom_categories_(custom_categories),
      config_(config),
      cache_(config.cache_capacity, config.cache_ttl_seconds),
      errors_(config.error_rates),
      rng_(rng) {
  if (policy == nullptr || custom_categories == nullptr)
    throw std::invalid_argument("SgProxy: null policy configuration");
}

void SgProxy::set_obs(obs::Context* ctx) {
  obs_ = Instruments{};
  if (ctx == nullptr) return;
  obs_.requests = obs::counter(ctx, "proxy.requests");
  obs_.cache_hits = obs::counter(ctx, "proxy.cache.hit");
  obs_.cache_misses = obs::counter(ctx, "proxy.cache.miss");
  obs_.policy_denied = obs::counter(ctx, "proxy.policy.denied");
  obs_.policy_redirect = obs::counter(ctx, "proxy.policy.redirect");
  obs_.error_draws = obs::counter(ctx, "proxy.error.draws");
  obs_.error_failures = obs::counter(ctx, "proxy.error.failures");
  obs_.dest_unreachable = obs::counter(ctx, "proxy.error.dest_unreachable");
  obs_.served = obs::counter(ctx, "proxy.served");
  for (std::size_t kind = 0; kind < policy::kRuleKindCount; ++kind) {
    obs_.rule_hits[kind] = obs::counter(
        ctx,
        "policy.rule_hit." + std::string(policy::kRuleKindNames[kind]));
  }
}

void SgProxy::append_state(std::string& out) const {
  for (const std::uint64_t word : rng_.save_state()) util::put_u64(out, word);
  util::put_u64(out, processed_);
  util::put_u64(out, cache_.hits());
  util::put_u64(out, cache_.misses());
  const auto entries = cache_.snapshot();
  util::put_u64(out, entries.size());
  for (const auto& entry : entries) {
    util::put_bytes(out, entry.key);
    util::put_u64(out, static_cast<std::uint64_t>(entry.entry.exception));
    util::put_u64(out, entry.entry.status);
    util::put_i64(out, entry.entry.expires_at);
  }
}

void SgProxy::restore_state(util::ByteReader& reader) {
  std::array<std::uint64_t, 4> words;
  for (std::uint64_t& word : words) word = reader.get_u64();
  try {
    rng_.restore_state(words);
  } catch (const std::invalid_argument& error) {
    throw std::runtime_error(std::string("SgProxy::restore_state: ") +
                             error.what());
  }
  processed_ = reader.get_u64();
  const std::uint64_t hits = reader.get_u64();
  const std::uint64_t misses = reader.get_u64();
  const std::uint64_t entry_count = reader.get_u64();
  std::vector<ResponseCache::SnapshotEntry> entries;
  entries.reserve(entry_count);
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    ResponseCache::SnapshotEntry entry;
    entry.key = std::string(reader.get_bytes());
    const std::uint64_t exception = reader.get_u64();
    if (exception >= kExceptionCount)
      throw std::runtime_error("SgProxy::restore_state: bad exception id");
    entry.entry.exception = static_cast<ExceptionId>(exception);
    const std::uint64_t status = reader.get_u64();
    if (status > 999)
      throw std::runtime_error("SgProxy::restore_state: bad status");
    entry.entry.status = static_cast<std::uint16_t>(status);
    entry.entry.expires_at = reader.get_i64();
    entries.push_back(std::move(entry));
  }
  try {
    cache_.restore(entries, hits, misses);
  } catch (const std::invalid_argument& error) {
    throw std::runtime_error(std::string("SgProxy::restore_state: ") +
                             error.what());
  }
}

LogRecord SgProxy::process(const Request& request) {
  ++processed_;
  obs::add(obs_.requests);

  LogRecord record;
  record.time = request.time;
  record.proxy_index = index_;
  record.user_hash = util::mix64(request.user_id);
  record.user_agent = request.user_agent;
  record.method = request.method;
  record.url = request.url;
  record.dest_ip = request.dest_ip;

  // TLS interception: the tunnelled request becomes visible. Without it,
  // HTTPS records carry only host/IP and port, exactly as in the leak.
  if (config_.intercept_https &&
      request.url.scheme == net::Scheme::kHttps) {
    record.url.path = request.inner_path;
    record.url.query = request.inner_query;
  }

  const std::string_view custom =
      custom_categories_->classify(record.url);
  record.categories = custom.empty() ? policy_->default_category_label
                                     : policy_->blocked_category_label;

  // 1. Cache: a hit short-circuits filtering and replays the stored
  //    outcome, logged as PROXIED.
  const std::string url_key = record.url.to_string();
  if (const ResponseCache::Entry* hit = cache_.find(url_key, request.time)) {
    obs::add(obs_.cache_hits);
    record.filter_result = FilterResult::kProxied;
    record.exception = hit->exception;
    record.status = hit->status;
    return record;
  }
  obs::add(obs_.cache_misses);

  // 2. Policy — evaluated against the effective (possibly intercepted) URL.
  const policy::FilterRequest filter_request{
      &record.url, request.dest_ip, request.time, custom};
  const policy::PolicyDecision decision =
      policy_->engine.evaluate(filter_request, rng_);
  if (decision.action != policy::PolicyAction::kAllow) {
    obs::add(decision.action == policy::PolicyAction::kRedirect
                 ? obs_.policy_redirect
                 : obs_.policy_denied);
    if (decision.rule_index != policy::PolicyDecision::kNoRule) {
      obs::add(obs_.rule_hits[policy_->engine.rule(decision.rule_index)
                                  .matcher.index()]);
    }
    record.filter_result = FilterResult::kDenied;
    record.exception = decision.action == policy::PolicyAction::kRedirect
                           ? ExceptionId::kPolicyRedirect
                           : ExceptionId::kPolicyDenied;
    record.status = ErrorModel::status_for(record.exception);
    if (rng_.bernoulli(config_.policy_admit_prob))
      cache_.admit(url_key, {record.exception, record.status, 0},
                   request.time);
    return record;
  }

  // 3. Fetch attempt. Destination-specific unreachability (e.g. churned
  //    Tor relays) surfaces as tcp_error ahead of the base error model.
  if (request.dest_unreachable_prob > 0.0 &&
      rng_.bernoulli(request.dest_unreachable_prob)) {
    obs::add(obs_.dest_unreachable);
    record.filter_result = FilterResult::kDenied;
    record.exception = ExceptionId::kTcpError;
    record.status = ErrorModel::status_for(ExceptionId::kTcpError);
    return record;
  }
  const double fault_multiplier =
      faults_ == nullptr ? 1.0
                         : faults_->error_multiplier(index_, request.time);
  obs::add(obs_.error_draws);
  const ExceptionId failure = errors_.sample(rng_, fault_multiplier);
  if (failure != ExceptionId::kNone) {
    obs::add(obs_.error_failures);
    record.filter_result = FilterResult::kDenied;
    record.exception = failure;
    record.status = ErrorModel::status_for(failure);
    return record;
  }

  // 4. Served.
  obs::add(obs_.served);
  record.filter_result = FilterResult::kObserved;
  record.exception = ExceptionId::kNone;
  record.status =
      request.cacheable && rng_.bernoulli(config_.not_modified_prob) ? 304
                                                                     : 200;
  if (request.cacheable && rng_.bernoulli(config_.observed_admit_prob))
    cache_.admit(url_key, {ExceptionId::kNone, 200, 0}, request.time);
  return record;
}

}  // namespace syrwatch::proxy
