#include "proxy/cache.h"

#include <stdexcept>

namespace syrwatch::proxy {

ResponseCache::ResponseCache(std::size_t capacity, std::int64_t ttl_seconds)
    : capacity_(capacity), ttl_(ttl_seconds) {
  if (capacity == 0)
    throw std::invalid_argument("ResponseCache: capacity must be positive");
  if (ttl_seconds < 0)
    throw std::invalid_argument("ResponseCache: negative ttl");
}

const ResponseCache::Entry* ResponseCache::find(const std::string& url_key,
                                                std::int64_t now) noexcept {
  const auto it = map_.find(url_key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  const Entry& entry = it->second->entry;
  if (entry.expires_at != 0 && now >= entry.expires_at) {
    lru_.erase(it->second);
    map_.erase(it);
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->entry;
}

void ResponseCache::admit(const std::string& url_key, Entry entry,
                          std::int64_t now) {
  if (ttl_ != 0 && entry.expires_at == 0) entry.expires_at = now + ttl_;
  const auto it = map_.find(url_key);
  if (it != map_.end()) {
    it->second->entry = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Node{url_key, entry});
  map_.emplace(lru_.front().key, lru_.begin());
}

}  // namespace syrwatch::proxy
