#include "proxy/cache.h"

#include <iterator>
#include <stdexcept>

namespace syrwatch::proxy {

ResponseCache::ResponseCache(std::size_t capacity, std::int64_t ttl_seconds)
    : capacity_(capacity), ttl_(ttl_seconds) {
  if (capacity == 0)
    throw std::invalid_argument("ResponseCache: capacity must be positive");
  if (ttl_seconds < 0)
    throw std::invalid_argument("ResponseCache: negative ttl");
}

const ResponseCache::Entry* ResponseCache::find(const std::string& url_key,
                                                std::int64_t now) noexcept {
  const auto it = map_.find(url_key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  const Entry& entry = it->second->entry;
  if (entry.expires_at != 0 && now >= entry.expires_at) {
    lru_.erase(it->second);
    map_.erase(it);
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->entry;
}

void ResponseCache::admit(const std::string& url_key, Entry entry,
                          std::int64_t now) {
  if (ttl_ != 0 && entry.expires_at == 0) entry.expires_at = now + ttl_;
  const auto it = map_.find(url_key);
  if (it != map_.end()) {
    it->second->entry = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Node{url_key, entry});
  map_.emplace(lru_.front().key, lru_.begin());
}

std::vector<ResponseCache::SnapshotEntry> ResponseCache::snapshot() const {
  std::vector<SnapshotEntry> entries;
  entries.reserve(lru_.size());
  for (const Node& node : lru_) entries.push_back({node.key, node.entry});
  return entries;
}

void ResponseCache::restore(const std::vector<SnapshotEntry>& entries,
                            std::uint64_t hits, std::uint64_t misses) {
  if (entries.size() > capacity_)
    throw std::invalid_argument("ResponseCache::restore: snapshot larger "
                                "than capacity");
  lru_.clear();
  map_.clear();
  for (const SnapshotEntry& entry : entries) {
    lru_.push_back(Node{entry.key, entry.entry});
    const auto [it, inserted] =
        map_.emplace(lru_.back().key, std::prev(lru_.end()));
    (void)it;
    if (!inserted)
      throw std::invalid_argument("ResponseCache::restore: duplicate key " +
                                  entry.key);
  }
  hits_ = hits;
  misses_ = misses;
}

}  // namespace syrwatch::proxy
