#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/url.h"
#include "proxy/exception.h"

namespace syrwatch::proxy {

/// A client request as the proxy sees it, before filtering. Produced by the
/// workload generators and consumed by SgProxy/ProxyFarm.
struct Request {
  std::int64_t time = 0;          // unix seconds
  std::uint64_t user_id = 0;      // stable synthetic client identity
  std::string user_agent;
  std::string method = "GET";
  net::Url url;
  /// Destination IP when the client addressed an IP literal (or tunnelled
  /// CONNECT by IP); empty for plain hostname requests, matching the
  /// application-level view the policy filters on.
  std::optional<net::Ipv4Addr> dest_ip;
  /// Content-type hint steering cache admission.
  bool cacheable = false;
  /// Extra destination-specific connect-failure probability on top of the
  /// proxy's base error model (e.g. churned Tor relays, §7.1's 16.2%
  /// tcp_error rate on Tor traffic).
  double dest_unreachable_prob = 0.0;
  /// What a TLS-intercepting proxy *would* see inside an HTTPS tunnel.
  /// The leaked deployment did not intercept (§4: cs-uri-path/-query are
  /// absent from HTTPS records), so these fields only reach the log when
  /// SgProxyConfig::intercept_https is enabled — the what-if the EFF's
  /// MITM reports describe.
  std::string inner_path;
  std::string inner_query;
};

/// One log line, mirroring the analysis-relevant fields of the 26-field
/// Blue Coat csv schema (the paper's Table 2). c-ip is stored as a hash:
/// Telecomix replaced client IPs with zeros except for July 22–23, where
/// hashes were kept (the Duser dataset); `user_hash == 0` encodes the
/// suppressed form.
struct LogRecord {
  std::int64_t time = 0;              // date + time fields
  std::uint8_t proxy_index = 0;       // s-ip 82.137.200.(42+index)
  std::uint64_t user_hash = 0;        // c-ip (0 = suppressed)
  std::string user_agent;             // cs-user-agent
  std::string method;                 // cs-method
  net::Url url;                       // cs-host/-scheme/-port/-path/-query
  std::string categories;             // cs-categories as the proxy names it
  FilterResult filter_result = FilterResult::kObserved;  // sc-filter-result
  ExceptionId exception = ExceptionId::kNone;            // x-exception-id
  std::uint16_t status = 200;         // sc-status
  std::optional<net::Ipv4Addr> dest_ip;

  /// s-ip field of this record.
  net::Ipv4Addr proxy_address() const noexcept {
    return net::Ipv4Addr{82, 137, 200,
                         static_cast<std::uint8_t>(42 + proxy_index)};
  }
};

/// §3.3 classification of a record.
enum class TrafficClass : std::uint8_t {
  kAllowed,
  kCensored,
  kError,
  kProxied,
};

std::string_view to_string(TrafficClass c) noexcept;

/// Classifies per §3.3: PROXIED is its own class regardless of exception;
/// otherwise policy exceptions are censored, other exceptions errors, and
/// exception-free requests allowed.
TrafficClass classify(const LogRecord& record) noexcept;

/// The same classification, treating PROXIED by its underlying exception —
/// used where the paper folds proxied traffic into the censored/allowed
/// split (e.g. the keyword tables list proxied counts separately).
TrafficClass classify_by_exception(FilterResult result,
                                   ExceptionId exception) noexcept;

}  // namespace syrwatch::proxy
