#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "policy/syria.h"
#include "proxy/sg_proxy.h"

namespace syrwatch::proxy {

/// Load-balancing front of the seven-proxy deployment.
///
/// Baseline routing hashes the client onto a home proxy, which spreads
/// load evenly (Fig. 7a) and keeps each user's traffic on one appliance
/// (the premise of the Duser analysis — a per-proxy log contains whole
/// users). On top of that, *domain affinity* redirects traffic for
/// configured domains to designated proxies, reproducing §5.2's finding
/// that >95% of metacafe.com requests land on SG-48 and that proxies
/// specialize in censoring particular content.
class ProxyFarm {
 public:
  ProxyFarm(const policy::SyriaPolicy* policy, const SgProxyConfig& config,
            std::uint64_t seed);

  /// Routes `fraction` of traffic for `domain` (and subdomains) to the
  /// proxy; leftovers fall back to the client's home proxy. Multiple
  /// entries per domain stack (fractions should sum to <= 1). Not safe to
  /// call concurrently with route()/process(): configure affinities before
  /// traffic starts.
  void add_affinity(std::string domain, std::size_t proxy_index,
                    double fraction);

  /// The proxy that would handle this request. A pure function of the
  /// request and the farm seed: the affinity draw comes from a stateless
  /// seed-keyed hash of (user, time, host) rather than a shared sequential
  /// RNG, so routing is const, allocation-free on the domain-suffix walk
  /// (heterogeneous string_view lookup), and safe to call from concurrent
  /// generation shards without affecting the determinism contract.
  std::size_t route(const Request& request) const noexcept;

  /// Routes and filters. Unlike route(), this advances the chosen proxy's
  /// cache and RNG, so concurrent callers must partition requests by
  /// proxy index (see SyriaScenario::run's per-proxy phase).
  LogRecord process(const Request& request);

  SgProxy& proxy(std::size_t index) { return proxies_.at(index); }
  const SgProxy& proxy(std::size_t index) const { return proxies_.at(index); }
  std::size_t proxy_count() const noexcept { return proxies_.size(); }

 private:
  struct AffinityTarget {
    std::size_t proxy_index;
    double fraction;
  };

  /// Heterogeneous hashing so route() can probe with each string_view
  /// suffix of the host without materializing a std::string per probe.
  struct TransparentStringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept;
  };

  std::vector<SgProxy> proxies_;
  std::unordered_map<std::string, std::vector<AffinityTarget>,
                     TransparentStringHash, std::equal_to<>>
      affinities_;
  std::uint64_t route_salt_;
};

}  // namespace syrwatch::proxy
