#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/schedule.h"
#include "obs/context.h"
#include "policy/syria.h"
#include "proxy/sg_proxy.h"

namespace syrwatch::proxy {

/// Load-balancing front of the seven-proxy deployment.
///
/// Baseline routing hashes the client onto a home proxy, which spreads
/// load evenly (Fig. 7a) and keeps each user's traffic on one appliance
/// (the premise of the Duser analysis — a per-proxy log contains whole
/// users). On top of that, *domain affinity* redirects traffic for
/// configured domains to designated proxies, reproducing §5.2's finding
/// that >95% of metacafe.com requests land on SG-48 and that proxies
/// specialize in censoring particular content.
///
/// With a fault schedule attached, routing becomes health-aware: a request
/// whose home (or affinity) proxy is down at request time fails over to a
/// surviving proxy via rendezvous hashing keyed on (farm seed, user,
/// candidate proxy). The choice is stateless and time-free, so one user's
/// outage traffic sticks to one survivor (Duser's locality premise holds
/// piecewise), healthy-period routing is untouched, and the decision stays
/// a pure function of the request — the thread-count-invariance contract.
class ProxyFarm {
 public:
  ProxyFarm(const policy::SyriaPolicy* policy, const SgProxyConfig& config,
            std::uint64_t seed);

  /// Routes `fraction` of traffic for `domain` (and subdomains) to the
  /// proxy; leftovers fall back to the client's home proxy. Multiple
  /// entries per domain stack (fractions should sum to <= 1). Not safe to
  /// call concurrently with route()/process(): configure affinities before
  /// traffic starts.
  void add_affinity(std::string domain, std::size_t proxy_index,
                    double fraction);

  /// Attaches the fault layer. An empty (or null) schedule keeps routing
  /// bit-identical to the fault-free build; a non-empty one enables
  /// failover and per-proxy brownouts. Configure before traffic starts;
  /// the schedule must outlive the farm.
  void set_fault_schedule(const fault::FaultSchedule* faults);

  /// Attaches the observability layer to the farm and every proxy.
  /// Routing counters (route calls, affinity redirects, failovers) resolve
  /// here once; route() stays const, allocation-free, and — since counters
  /// are relaxed atomics that feed no decision — a pure function of the
  /// request. nullptr detaches. Configure before traffic starts.
  void set_obs(obs::Context* ctx);

  /// The proxy that would handle this request. A pure function of the
  /// request and the farm seed: the affinity draw comes from a stateless
  /// seed-keyed hash of (user, time, host) rather than a shared sequential
  /// RNG, so routing is const, allocation-free on the domain-suffix walk
  /// (heterogeneous string_view lookup), and safe to call from concurrent
  /// generation shards without affecting the determinism contract. The
  /// failover counters it bumps are relaxed atomics — statistics, not
  /// routing state.
  std::size_t route(const Request& request) const noexcept;

  /// Routes and filters. Unlike route(), this advances the chosen proxy's
  /// cache and RNG, so concurrent callers must partition requests by
  /// proxy index (see SyriaScenario::run's per-proxy phase).
  LogRecord process(const Request& request);

  SgProxy& proxy(std::size_t index) { return proxies_.at(index); }
  const SgProxy& proxy(std::size_t index) const { return proxies_.at(index); }
  std::size_t proxy_count() const noexcept { return proxies_.size(); }

  /// Requests route() diverted away from a down proxy since construction.
  std::uint64_t failover_total() const noexcept {
    return failover_total_.load(std::memory_order_relaxed);
  }

  /// Diverted requests that landed on `index` as the failover target.
  std::uint64_t failovers_to(std::size_t index) const {
    return failovers_to_.at(index).load(std::memory_order_relaxed);
  }

  /// Checkpoint support: serializes every proxy's mutable state (RNGs,
  /// caches, counters) plus the farm's failover tallies into an opaque
  /// blob. Routing configuration (policy, affinities, fault schedule) is
  /// NOT included — a restoring caller must rebuild the farm from the same
  /// ScenarioConfig first; the run manifest's config fingerprint guards
  /// that invariant. Not safe to call concurrently with process().
  std::string save_state() const;

  /// Restores a blob produced by save_state() on an identically
  /// configured farm. Throws std::runtime_error on truncation, damage, or
  /// a proxy-count mismatch; the farm is then unusable for resumption
  /// (rebuild it) but safe to destroy.
  void restore_state(std::string_view bytes);

 private:
  struct AffinityTarget {
    std::size_t proxy_index;
    double fraction;
  };

  /// Heterogeneous hashing so route() can probe with each string_view
  /// suffix of the host without materializing a std::string per probe.
  struct TransparentStringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept;
  };

  /// Rendezvous hash over the proxies that are up at request time. Falls
  /// back to `home` when the whole farm is down (the traffic has nowhere
  /// else to go; the coverage analyzer will show the resulting blackout).
  std::size_t failover_target(const Request& request,
                              std::size_t home) const noexcept;

  std::vector<SgProxy> proxies_;
  std::unordered_map<std::string, std::vector<AffinityTarget>,
                     TransparentStringHash, std::equal_to<>>
      affinities_;
  std::uint64_t route_salt_;
  const fault::FaultSchedule* faults_ = nullptr;
  mutable std::atomic<std::uint64_t> failover_total_{0};
  mutable std::vector<std::atomic<std::uint64_t>> failovers_to_;
  // Observability instruments (nullptr when detached); mutable because
  // route() is logically const — counters observe, they never steer.
  mutable obs::Counter* obs_route_calls_ = nullptr;
  mutable obs::Counter* obs_affinity_routed_ = nullptr;
  mutable obs::Counter* obs_failovers_ = nullptr;
};

}  // namespace syrwatch::proxy
