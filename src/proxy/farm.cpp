#include "proxy/farm.h"

#include <stdexcept>

#include "util/strings.h"

namespace syrwatch::proxy {

namespace {

// FNV-1a: a fixed, libstdc++-independent string hash, so routing (like
// every other stochastic choice) is reproducible across toolchains.
std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace

std::size_t ProxyFarm::TransparentStringHash::operator()(
    std::string_view text) const noexcept {
  return static_cast<std::size_t>(fnv1a(text));
}

ProxyFarm::ProxyFarm(const policy::SyriaPolicy* policy,
                     const SgProxyConfig& config, std::uint64_t seed)
    : route_salt_(util::mix64(seed ^ 0xFA53)),
      failovers_to_(policy::kProxyCount) {
  if (policy == nullptr) throw std::invalid_argument("ProxyFarm: null policy");
  proxies_.reserve(policy::kProxyCount);
  for (std::size_t i = 0; i < policy::kProxyCount; ++i) {
    proxies_.emplace_back(static_cast<std::uint8_t>(i), &policy->proxies[i],
                          &policy->custom_categories, config,
                          util::Rng{util::mix64(seed + i)});
  }
}

void ProxyFarm::add_affinity(std::string domain, std::size_t proxy_index,
                             double fraction) {
  if (proxy_index >= proxies_.size())
    throw std::out_of_range("ProxyFarm::add_affinity: bad proxy index");
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("ProxyFarm::add_affinity: bad fraction");
  affinities_[util::to_lower(domain)].push_back({proxy_index, fraction});
}

void ProxyFarm::set_obs(obs::Context* ctx) {
  obs_route_calls_ = obs::counter(ctx, "farm.route.calls");
  obs_affinity_routed_ = obs::counter(ctx, "farm.route.affinity");
  obs_failovers_ = obs::counter(ctx, "farm.route.failover");
  for (SgProxy& appliance : proxies_) appliance.set_obs(ctx);
}

void ProxyFarm::set_fault_schedule(const fault::FaultSchedule* faults) {
  // An empty schedule is stored as "no fault layer" so route()'s hot path
  // pays nothing and stays bit-identical under the `none` profile.
  faults_ = (faults != nullptr && !faults->empty()) ? faults : nullptr;
  for (SgProxy& appliance : proxies_) appliance.set_fault_schedule(faults_);
}

std::size_t ProxyFarm::failover_target(const Request& request,
                                       std::size_t home) const noexcept {
  // Rendezvous (highest-random-weight) hash keyed on (salt, user, proxy):
  // every up proxy scores the user and the top score wins. Taking a proxy
  // down only remaps the users it was serving; everyone else keeps their
  // assignment, and a user's diverted traffic all lands on one survivor.
  std::size_t best = home;
  std::uint64_t best_score = 0;
  bool found = false;
  for (std::size_t p = 0; p < proxies_.size(); ++p) {
    if (faults_->is_down(p, request.time)) continue;
    const std::uint64_t score =
        util::mix64(route_salt_ ^ 0x9E3779B97F4A7C15ULL ^
                    util::mix64(request.user_id) ^ util::mix64(0xF417 + p));
    if (!found || score > best_score) {
      found = true;
      best_score = score;
      best = p;
    }
  }
  return best;
}

std::size_t ProxyFarm::route(const Request& request) const noexcept {
  obs::add(obs_route_calls_);
  std::size_t target = proxies_.size();
  // Walk the host's domain suffixes looking for an affinity entry.
  std::string_view probe{request.url.host};
  while (!probe.empty()) {
    const auto it = affinities_.find(probe);
    if (it != affinities_.end()) {
      // Per-request uniform draw in [0, 1): stateless, keyed by the farm
      // seed and the request identity, so the decision does not depend on
      // the order requests reach the farm — the property the parallel
      // pipeline's thread-count invariance rests on.
      double u = static_cast<double>(
                     util::mix64(route_salt_ ^ util::mix64(request.user_id) ^
                                 util::mix64(static_cast<std::uint64_t>(
                                     request.time)) ^
                                 fnv1a(request.url.host)) >>
                     11) *
                 0x1.0p-53;
      for (const AffinityTarget& affinity : it->second) {
        if (u < affinity.fraction) {
          target = affinity.proxy_index;
          break;
        }
        u -= affinity.fraction;
      }
      break;  // leftover share falls through to home routing
    }
    const auto dot = probe.find('.');
    if (dot == std::string_view::npos) break;
    probe.remove_prefix(dot + 1);
  }
  if (target == proxies_.size()) {
    target = static_cast<std::size_t>(util::mix64(request.user_id) %
                                      proxies_.size());
  } else {
    obs::add(obs_affinity_routed_);
  }

  if (faults_ != nullptr && faults_->is_down(target, request.time)) {
    const std::size_t survivor = failover_target(request, target);
    if (survivor != target) {
      failover_total_.fetch_add(1, std::memory_order_relaxed);
      failovers_to_[survivor].fetch_add(1, std::memory_order_relaxed);
      obs::add(obs_failovers_);
    }
    return survivor;
  }
  return target;
}

LogRecord ProxyFarm::process(const Request& request) {
  return proxies_[route(request)].process(request);
}

namespace {
constexpr std::string_view kFarmStateMagic = "SYRFARM1";
}

std::string ProxyFarm::save_state() const {
  std::string out;
  out += kFarmStateMagic;
  util::put_u64(out, proxies_.size());
  for (const SgProxy& proxy : proxies_) proxy.append_state(out);
  util::put_u64(out, failover_total_.load(std::memory_order_relaxed));
  for (const auto& count : failovers_to_)
    util::put_u64(out, count.load(std::memory_order_relaxed));
  return out;
}

void ProxyFarm::restore_state(std::string_view bytes) {
  if (bytes.substr(0, kFarmStateMagic.size()) != kFarmStateMagic)
    throw std::runtime_error("ProxyFarm::restore_state: bad magic (not a "
                             "farm state blob)");
  util::ByteReader reader{bytes.substr(kFarmStateMagic.size()),
                          "ProxyFarm::restore_state"};
  const std::uint64_t count = reader.get_u64();
  if (count != proxies_.size())
    throw std::runtime_error(
        "ProxyFarm::restore_state: proxy count mismatch (blob has " +
        std::to_string(count) + ", farm has " +
        std::to_string(proxies_.size()) + ")");
  for (SgProxy& proxy : proxies_) proxy.restore_state(reader);
  failover_total_.store(reader.get_u64(), std::memory_order_relaxed);
  for (auto& counter : failovers_to_)
    counter.store(reader.get_u64(), std::memory_order_relaxed);
  reader.expect_end();
}

}  // namespace syrwatch::proxy
