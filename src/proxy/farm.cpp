#include "proxy/farm.h"

#include <stdexcept>

#include "util/strings.h"

namespace syrwatch::proxy {

ProxyFarm::ProxyFarm(const policy::SyriaPolicy* policy,
                     const SgProxyConfig& config, std::uint64_t seed)
    : rng_(util::mix64(seed ^ 0xFA53)) {
  if (policy == nullptr) throw std::invalid_argument("ProxyFarm: null policy");
  proxies_.reserve(policy::kProxyCount);
  for (std::size_t i = 0; i < policy::kProxyCount; ++i) {
    proxies_.emplace_back(static_cast<std::uint8_t>(i), &policy->proxies[i],
                          &policy->custom_categories, config,
                          util::Rng{util::mix64(seed + i)});
  }
}

void ProxyFarm::add_affinity(std::string domain, std::size_t proxy_index,
                             double fraction) {
  if (proxy_index >= proxies_.size())
    throw std::out_of_range("ProxyFarm::add_affinity: bad proxy index");
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("ProxyFarm::add_affinity: bad fraction");
  affinities_[util::to_lower(domain)].push_back({proxy_index, fraction});
}

std::size_t ProxyFarm::route(const Request& request) {
  // Walk the host's domain suffixes looking for an affinity entry.
  std::string_view probe{request.url.host};
  while (!probe.empty()) {
    const auto it = affinities_.find(std::string{probe});
    if (it != affinities_.end()) {
      double u = rng_.uniform01();
      for (const AffinityTarget& target : it->second) {
        if (u < target.fraction) return target.proxy_index;
        u -= target.fraction;
      }
      break;  // leftover share falls through to home routing
    }
    const auto dot = probe.find('.');
    if (dot == std::string_view::npos) break;
    probe.remove_prefix(dot + 1);
  }
  return static_cast<std::size_t>(util::mix64(request.user_id) %
                                  proxies_.size());
}

LogRecord ProxyFarm::process(const Request& request) {
  return proxies_[route(request)].process(request);
}

}  // namespace syrwatch::proxy
