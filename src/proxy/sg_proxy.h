#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "fault/schedule.h"
#include "obs/context.h"
#include "policy/rule.h"
#include "policy/syria.h"
#include "proxy/cache.h"
#include "proxy/error_model.h"
#include "proxy/log_record.h"
#include "util/byte_io.h"
#include "util/rng.h"

namespace syrwatch::proxy {

/// Tunables for one SG-9000 instance.
struct SgProxyConfig {
  std::size_t cache_capacity = 60'000;
  /// Seconds a cached response stays servable (0 = forever). The short
  /// default keeps the PROXIED share near the leak's 0.47% even for very
  /// hot URLs.
  std::int64_t cache_ttl_seconds = 7200;
  /// Admission probability for successfully observed *cacheable* (static)
  /// responses; dynamic content is never admitted.
  double observed_admit_prob = 0.5;
  /// Admission probability for policy decisions (censored URLs do show up
  /// as PROXIED in the leak, at ~0.03–0.3% of their censored volume).
  double policy_admit_prob = 0.002;
  /// Share of cacheable hits reported 304 instead of 200.
  double not_modified_prob = 0.08;
  /// TLS interception (Blue Coat supports it; the leak shows it was OFF —
  /// §4 finds no cs-uri-path/-query in HTTPS records). When enabled, the
  /// tunnelled request's path/query become visible to the policy and the
  /// log, enabling page-level censorship of HTTPS.
  bool intercept_https = false;
  ErrorRates error_rates{};
};

/// One Blue Coat SG-9000: transparent application-level interception.
///
/// Pipeline per request (§3.2): response-cache lookup (hit -> PROXIED,
/// replaying the stored outcome), local custom-category assignment, policy
/// evaluation (deny/redirect -> DENIED with the policy exception), then the
/// fetch attempt with stochastic network failures, and finally OBSERVED.
class SgProxy {
 public:
  SgProxy(std::uint8_t index, const policy::ProxyPolicy* policy,
          const policy::CustomCategoryList* custom_categories,
          const SgProxyConfig& config, util::Rng rng);

  SgProxy(SgProxy&&) = default;

  std::uint8_t index() const noexcept { return index_; }
  std::string name() const { return policy::proxy_name(index_); }

  /// Filters one request and returns the resulting log line.
  LogRecord process(const Request& request);

  /// Wires the fault layer in: brownout windows covering this proxy scale
  /// its network-error rates per request. nullptr (the default) keeps the
  /// appliance permanently healthy. Configure before traffic starts; the
  /// schedule must outlive the proxy.
  void set_fault_schedule(const fault::FaultSchedule* faults) noexcept {
    faults_ = faults;
  }

  /// Attaches the observability layer: farm-wide event counters (cache
  /// hit/miss, policy decisions by rule kind, error-model draws) are
  /// resolved once here, so process() pays one pointer test per event —
  /// and literally nothing when detached (the default). Counters never
  /// touch the proxy's RNG or caches, so attaching a registry cannot
  /// change the emitted log (DESIGN.md §4.7). nullptr detaches.
  void set_obs(obs::Context* ctx);

  std::uint64_t processed() const noexcept { return processed_; }
  const ResponseCache& cache() const noexcept { return cache_; }

  /// Checkpoint support: appends this appliance's mutable state (RNG
  /// words, processed count, cache content + tallies) to `out` in the
  /// length-prefixed binary layout of util/byte_io.h. Configuration is
  /// NOT serialized — a restored proxy must be constructed with the same
  /// policy/config, which the run manifest's config fingerprint enforces.
  void append_state(std::string& out) const;

  /// Restores state previously written by append_state, reading from the
  /// cursor. Throws std::runtime_error on truncated or invalid bytes.
  void restore_state(util::ByteReader& reader);

 private:
  /// Pre-resolved instruments, all nullptr when detached. Shared across
  /// the farm's proxies (same registry names), bumped with relaxed atomics
  /// from concurrent per-proxy workers.
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* policy_denied = nullptr;
    obs::Counter* policy_redirect = nullptr;
    obs::Counter* error_draws = nullptr;
    obs::Counter* error_failures = nullptr;
    obs::Counter* dest_unreachable = nullptr;
    obs::Counter* served = nullptr;
    std::array<obs::Counter*, policy::kRuleKindCount> rule_hits{};
  };

  std::uint8_t index_;
  const policy::ProxyPolicy* policy_;
  const policy::CustomCategoryList* custom_categories_;
  SgProxyConfig config_;
  ResponseCache cache_;
  ErrorModel errors_;
  const fault::FaultSchedule* faults_ = nullptr;
  util::Rng rng_;
  std::uint64_t processed_ = 0;
  Instruments obs_;
};

}  // namespace syrwatch::proxy
