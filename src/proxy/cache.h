#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "proxy/exception.h"

namespace syrwatch::proxy {

/// LRU + TTL response cache ("bandwidth gain profile", §3.2).
///
/// Entries remember the decision taken when the URL was first processed.
/// A hit is logged as PROXIED and replays the stored exception — which is
/// how the leak ends up with PROXIED records for censored domains
/// (Tables 8/10/13 all report small proxied counts next to fully censored
/// domains). Bounded LRU plus entry expiry keep the hit rate at the
/// log's sub-percent level even for very hot URLs.
class ResponseCache {
 public:
  /// ttl_seconds == 0 disables expiry.
  ResponseCache(std::size_t capacity, std::int64_t ttl_seconds = 0);

  struct Entry {
    ExceptionId exception = ExceptionId::kNone;
    std::uint16_t status = 200;
    std::int64_t expires_at = 0;  // 0 = never
  };

  /// Lookup at simulation time `now`; a live hit refreshes recency,
  /// an expired entry is dropped and reported as a miss.
  const Entry* find(const std::string& url_key, std::int64_t now) noexcept;

  /// Inserts or refreshes an entry, stamping expiry from `now`, evicting
  /// the least recently used entry when full.
  void admit(const std::string& url_key, Entry entry, std::int64_t now);

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Checkpoint support: the full cache content in recency order
  /// (most-recent first) plus the hit/miss tallies. restore(snapshot())
  /// reproduces byte-identical future behaviour — recency order decides
  /// evictions, so the order is part of the state.
  struct SnapshotEntry {
    std::string key;
    Entry entry;
  };
  std::vector<SnapshotEntry> snapshot() const;

  /// Replaces the cache content with a snapshot (most-recent first).
  /// Throws std::invalid_argument when the snapshot exceeds capacity or
  /// repeats a key.
  void restore(const std::vector<SnapshotEntry>& entries, std::uint64_t hits,
               std::uint64_t misses);

 private:
  struct Node {
    std::string key;
    Entry entry;
  };
  std::size_t capacity_;
  std::int64_t ttl_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Node>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace syrwatch::proxy
