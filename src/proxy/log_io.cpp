#include "proxy/log_io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/csv.h"
#include "util/simtime.h"
#include "util/strings.h"

namespace syrwatch::proxy {

namespace {

constexpr int kColumnCount = 17;

std::string field_or_dash(std::string_view value) {
  return value.empty() ? "-" : std::string(value);
}

std::string dash_to_empty(std::string value) {
  return value == "-" ? std::string{} : value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text, int base = 10) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

/// Bounded civil-field parser: from_chars (no exceptions, no locale), full
/// consumption, and an inclusive range check. Rejects the out-of-range
/// values ("2011-13-01", hour 25, negative day) that the exception-driven
/// stoi path used to accept silently.
std::optional<int> parse_civil_field(std::string_view text, int lo, int hi) {
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return std::nullopt;
  if (value < lo || value > hi) return std::nullopt;
  return value;
}

std::optional<std::int64_t> parse_timestamp(const std::string& date,
                                            const std::string& clock) {
  const auto date_parts = util::split(date, '-');
  const auto time_parts = util::split(clock, ':');
  if (date_parts.size() != 3 || time_parts.size() != 3) return std::nullopt;
  util::CivilDateTime c;
  const auto year = parse_civil_field(date_parts[0], 1970, 9999);
  const auto month = parse_civil_field(date_parts[1], 1, 12);
  const auto day = parse_civil_field(date_parts[2], 1, 31);
  const auto hour = parse_civil_field(time_parts[0], 0, 23);
  const auto minute = parse_civil_field(time_parts[1], 0, 59);
  const auto second = parse_civil_field(time_parts[2], 0, 59);
  if (!year || !month || !day || !hour || !minute || !second)
    return std::nullopt;
  c.year = *year;
  c.month = *month;
  c.day = *day;
  c.hour = *hour;
  c.minute = *minute;
  c.second = *second;
  const std::int64_t t = util::to_unix_seconds(c);
  // Round-trip check catches dates the per-field ranges cannot (Feb 30,
  // Apr 31): a date that does not exist normalizes to a different one.
  const util::CivilDateTime back = util::to_civil(t);
  if (back.year != c.year || back.month != c.month || back.day != c.day)
    return std::nullopt;
  return t;
}

std::optional<LogRecord> from_csv_impl(const std::string& line,
                                       ParseDiagnosis& diagnosis) {
  diagnosis = {};
  std::vector<std::string> f;
  try {
    f = util::csv_parse(line);
  } catch (const util::CsvParseError& error) {
    diagnosis.error = error.kind() == util::CsvError::kMalformedQuote
                          ? ParseError::kMalformedQuote
                          : ParseError::kUnbalancedQuote;
    return std::nullopt;
  }
  diagnosis.columns = f.size();
  if (f.size() != kColumnCount) {
    diagnosis.error = ParseError::kColumnCount;
    return std::nullopt;
  }

  LogRecord record;

  const auto time = parse_timestamp(f[0], f[1]);
  if (!time) {
    diagnosis.error = ParseError::kBadTimestamp;
    return std::nullopt;
  }
  record.time = *time;

  const auto s_ip = net::Ipv4Addr::parse(f[2]);
  if (!s_ip || s_ip->octet(3) < 42 || s_ip->octet(3) > 48) {
    diagnosis.error = ParseError::kBadAddress;
    return std::nullopt;
  }
  record.proxy_index = static_cast<std::uint8_t>(s_ip->octet(3) - 42);

  diagnosis.error = ParseError::kBadField;  // any failure below
  if (f[3] == "0.0.0.0") {
    record.user_hash = 0;
  } else {
    const auto hash = parse_u64(f[3], 16);
    if (!hash) return std::nullopt;
    record.user_hash = *hash;
  }

  record.method = f[4];
  const auto scheme = net::parse_scheme(f[5]);
  if (!scheme) return std::nullopt;
  record.url.scheme = *scheme;
  record.url.host = f[6];
  const auto port = parse_u64(f[7]);
  if (!port || *port > 65535) return std::nullopt;
  record.url.port = static_cast<std::uint16_t>(*port);
  record.url.path = dash_to_empty(f[8]);
  record.url.query = dash_to_empty(f[9]);
  // f[10] (cs-uri-ext) is derived from the path; ignored on read.
  record.user_agent = dash_to_empty(f[11]);
  record.categories = dash_to_empty(f[12]);
  const auto status = parse_u64(f[13]);
  if (!status || *status > 999) return std::nullopt;
  record.status = static_cast<std::uint16_t>(*status);
  const auto result = parse_filter_result(f[14]);
  if (!result) return std::nullopt;
  record.filter_result = *result;
  const auto exception = parse_exception(f[15]);
  if (!exception) return std::nullopt;
  record.exception = *exception;
  if (f[16] != "-") {
    const auto dest = net::Ipv4Addr::parse(f[16]);
    if (!dest) return std::nullopt;
    record.dest_ip = *dest;
  }
  diagnosis.error = ParseError::kNone;
  return record;
}

/// CRLF tolerance for the line-oriented readers: std::getline strips the
/// '\n' but leaves the '\r', which would fail the header comparison and
/// misclassify "\r\n" blank lines. Field-level CRs are csv_parse's job.
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// "wrong column count (got 4, expected 17)"-style reason for messages.
std::string describe_failure(const ParseDiagnosis& diagnosis) {
  if (diagnosis.error == ParseError::kColumnCount) {
    return "wrong column count (got " + std::to_string(diagnosis.columns) +
           ", expected " + std::to_string(kColumnCount) + ")";
  }
  return std::string(to_string(diagnosis.error));
}

}  // namespace

std::string_view to_string(ParseError error) noexcept {
  switch (error) {
    case ParseError::kNone: return "ok";
    case ParseError::kUnbalancedQuote: return "unbalanced quote";
    case ParseError::kColumnCount: return "wrong column count";
    case ParseError::kBadTimestamp: return "bad timestamp";
    case ParseError::kBadAddress: return "bad proxy address";
    case ParseError::kBadField: return "bad field";
    case ParseError::kMalformedQuote: return "malformed quote";
  }
  return "?";
}

std::string log_csv_header() {
  return "date,time,s-ip,c-ip,cs-method,cs-uri-scheme,cs-host,cs-uri-port,"
         "cs-uri-path,cs-uri-query,cs-uri-ext,cs-user-agent,cs-categories,"
         "sc-status,sc-filter-result,x-exception-id,r-ip";
}

std::string to_csv(const LogRecord& record) {
  const util::CivilDateTime c = util::to_civil(record.time);
  char date[16], clock[16], chash[24];
  std::snprintf(date, sizeof date, "%04d-%02d-%02d", c.year, c.month, c.day);
  std::snprintf(clock, sizeof clock, "%02d:%02d:%02d", c.hour, c.minute,
                c.second);
  if (record.user_hash == 0) {
    std::snprintf(chash, sizeof chash, "0.0.0.0");
  } else {
    std::snprintf(chash, sizeof chash, "%016llx",
                  static_cast<unsigned long long>(record.user_hash));
  }
  const std::vector<std::string> fields = {
      date,
      clock,
      record.proxy_address().to_string(),
      chash,
      record.method,
      std::string(net::to_string(record.url.scheme)),
      record.url.host,
      std::to_string(record.url.port),
      field_or_dash(record.url.path),
      field_or_dash(record.url.query),
      field_or_dash(record.url.extension()),
      field_or_dash(record.user_agent),
      field_or_dash(record.categories),
      std::to_string(record.status),
      std::string(to_string(record.filter_result)),
      std::string(to_string(record.exception)),
      record.dest_ip ? record.dest_ip->to_string() : "-",
  };
  return util::csv_join(fields);
}

std::optional<LogRecord> from_csv(const std::string& line,
                                  ParseDiagnosis* diagnosis) {
  ParseDiagnosis local;
  return from_csv_impl(line, diagnosis != nullptr ? *diagnosis : local);
}

void write_log(std::ostream& out, const std::vector<LogRecord>& records) {
  out << log_csv_header() << '\n';
  for (const LogRecord& record : records) {
    out << to_csv(record) << '\n';
    if (!out) throw std::runtime_error("write_log: stream write failed");
  }
  out.flush();
  if (!out) throw std::runtime_error("write_log: stream flush failed");
}

util::ArtifactInfo write_log_file(const std::string& path,
                                  const std::vector<LogRecord>& records) {
  util::AtomicFileWriter writer{path};
  writer.write(log_csv_header());
  writer.write("\n");
  for (const LogRecord& record : records) {
    writer.write(to_csv(record));
    writer.write("\n");
  }
  return writer.commit();
}

std::vector<LogRecord> read_log(std::istream& in) {
  std::string line;
  if (!std::getline(in, line))
    throw std::runtime_error("read_log: missing or unexpected header");
  strip_cr(line);
  if (line != log_csv_header())
    throw std::runtime_error("read_log: missing or unexpected header");
  std::vector<LogRecord> records;
  std::uint64_t line_number = 1;  // header was line 1
  while (std::getline(in, line)) {
    ++line_number;
    strip_cr(line);
    if (line.empty()) continue;
    ParseDiagnosis diagnosis;
    auto record = from_csv(line, &diagnosis);
    if (!record) {
      throw std::runtime_error(
          "read_log: line " + std::to_string(line_number) + ": " +
          describe_failure(diagnosis) + ": " + line);
    }
    records.push_back(std::move(*record));
  }
  return records;
}

std::uint64_t LogReadStats::skipped_total() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t count : skipped) total += count;
  return total;
}

std::string LogReadStats::summary() const {
  std::string out;
  out += "lines: " + std::to_string(lines) +
         " (header: " + (header_present ? "present" : "MISSING") +
         ", empty: " + std::to_string(empty_lines) + ")\n";
  out += "records recovered: " + std::to_string(recovered) + " / " +
         std::to_string(data_lines) + " data lines\n";
  for (std::size_t i = 1; i < kParseErrorCount; ++i) {
    if (skipped[i] == 0) continue;
    out += "skipped (" + std::string(to_string(static_cast<ParseError>(i))) +
           "): " + std::to_string(skipped[i]) + ", first at line " +
           std::to_string(first_error_line[i]) + "\n";
  }
  if (truncated_tail)
    out += "tail: TRUNCATED (torn final record — partial artifact?)\n";
  return out;
}

LenientLog read_log_lenient(std::istream& in) {
  LenientLog result;
  LogReadStats& stats = result.stats;
  const std::string header = log_csv_header();

  std::string line;
  bool first = true;
  bool final_line_unterminated = false;
  ParseError last_data_error = ParseError::kNone;
  std::uint64_t last_data_error_line = 0;
  while (std::getline(in, line)) {
    ++stats.lines;
    strip_cr(line);
    // getline hitting EOF before the delimiter means this (final) line was
    // never newline-terminated — the signature of a torn write.
    final_line_unterminated = in.eof() && !line.empty();
    if (first) {
      first = false;
      if (line == header) {
        stats.header_present = true;
        continue;
      }
      // Headerless (or header-damaged) log: fall through and try the line
      // as data — a truncated header will be tallied as a skipped line.
    }
    if (line.empty()) {
      ++stats.empty_lines;
      continue;
    }
    ++stats.data_lines;
    ParseDiagnosis diagnosis;
    if (auto record = from_csv(line, &diagnosis)) {
      ++stats.recovered;
      result.records.push_back(std::move(*record));
      last_data_error = ParseError::kNone;
    } else {
      const auto reason = static_cast<std::size_t>(diagnosis.error);
      ++stats.skipped[reason];
      if (stats.first_error_line[reason] == 0)
        stats.first_error_line[reason] = stats.lines;
      last_data_error = diagnosis.error;
      last_data_error_line = stats.lines;
    }
  }
  stats.truncated_tail =
      final_line_unterminated ||
      (last_data_error == ParseError::kColumnCount &&
       last_data_error_line == stats.lines);
  return result;
}

}  // namespace syrwatch::proxy
