#include "proxy/log_io.h"

#include <charconv>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/csv.h"
#include "util/simtime.h"
#include "util/strings.h"

namespace syrwatch::proxy {

namespace {

constexpr int kColumnCount = 17;

std::string field_or_dash(std::string_view value) {
  return value.empty() ? "-" : std::string(value);
}

std::string dash_to_empty(std::string value) {
  return value == "-" ? std::string{} : value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text, int base = 10) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

}  // namespace

std::string log_csv_header() {
  return "date,time,s-ip,c-ip,cs-method,cs-uri-scheme,cs-host,cs-uri-port,"
         "cs-uri-path,cs-uri-query,cs-uri-ext,cs-user-agent,cs-categories,"
         "sc-status,sc-filter-result,x-exception-id,r-ip";
}

std::string to_csv(const LogRecord& record) {
  const util::CivilDateTime c = util::to_civil(record.time);
  char date[16], clock[16], chash[24];
  std::snprintf(date, sizeof date, "%04d-%02d-%02d", c.year, c.month, c.day);
  std::snprintf(clock, sizeof clock, "%02d:%02d:%02d", c.hour, c.minute,
                c.second);
  if (record.user_hash == 0) {
    std::snprintf(chash, sizeof chash, "0.0.0.0");
  } else {
    std::snprintf(chash, sizeof chash, "%016llx",
                  static_cast<unsigned long long>(record.user_hash));
  }
  const std::vector<std::string> fields = {
      date,
      clock,
      record.proxy_address().to_string(),
      chash,
      record.method,
      std::string(net::to_string(record.url.scheme)),
      record.url.host,
      std::to_string(record.url.port),
      field_or_dash(record.url.path),
      field_or_dash(record.url.query),
      field_or_dash(record.url.extension()),
      field_or_dash(record.user_agent),
      field_or_dash(record.categories),
      std::to_string(record.status),
      std::string(to_string(record.filter_result)),
      std::string(to_string(record.exception)),
      record.dest_ip ? record.dest_ip->to_string() : "-",
  };
  return util::csv_join(fields);
}

std::optional<LogRecord> from_csv(const std::string& line) {
  std::vector<std::string> f;
  try {
    f = util::csv_parse(line);
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
  if (f.size() != kColumnCount) return std::nullopt;

  LogRecord record;

  // date + time
  const auto date_parts = util::split(f[0], '-');
  const auto time_parts = util::split(f[1], ':');
  if (date_parts.size() != 3 || time_parts.size() != 3) return std::nullopt;
  util::CivilDateTime c;
  try {
    c.year = std::stoi(date_parts[0]);
    c.month = std::stoi(date_parts[1]);
    c.day = std::stoi(date_parts[2]);
    c.hour = std::stoi(time_parts[0]);
    c.minute = std::stoi(time_parts[1]);
    c.second = std::stoi(time_parts[2]);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  record.time = util::to_unix_seconds(c);

  const auto s_ip = net::Ipv4Addr::parse(f[2]);
  if (!s_ip || s_ip->octet(3) < 42 || s_ip->octet(3) > 48)
    return std::nullopt;
  record.proxy_index = static_cast<std::uint8_t>(s_ip->octet(3) - 42);

  if (f[3] == "0.0.0.0") {
    record.user_hash = 0;
  } else {
    const auto hash = parse_u64(f[3], 16);
    if (!hash) return std::nullopt;
    record.user_hash = *hash;
  }

  record.method = f[4];
  const auto scheme = net::parse_scheme(f[5]);
  if (!scheme) return std::nullopt;
  record.url.scheme = *scheme;
  record.url.host = f[6];
  const auto port = parse_u64(f[7]);
  if (!port || *port > 65535) return std::nullopt;
  record.url.port = static_cast<std::uint16_t>(*port);
  record.url.path = dash_to_empty(f[8]);
  record.url.query = dash_to_empty(f[9]);
  // f[10] (cs-uri-ext) is derived from the path; ignored on read.
  record.user_agent = dash_to_empty(f[11]);
  record.categories = dash_to_empty(f[12]);
  const auto status = parse_u64(f[13]);
  if (!status || *status > 999) return std::nullopt;
  record.status = static_cast<std::uint16_t>(*status);
  const auto result = parse_filter_result(f[14]);
  if (!result) return std::nullopt;
  record.filter_result = *result;
  const auto exception = parse_exception(f[15]);
  if (!exception) return std::nullopt;
  record.exception = *exception;
  if (f[16] != "-") {
    const auto dest = net::Ipv4Addr::parse(f[16]);
    if (!dest) return std::nullopt;
    record.dest_ip = *dest;
  }
  return record;
}

void write_log(std::ostream& out, const std::vector<LogRecord>& records) {
  out << log_csv_header() << '\n';
  for (const LogRecord& record : records) out << to_csv(record) << '\n';
}

std::vector<LogRecord> read_log(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != log_csv_header())
    throw std::runtime_error("read_log: missing or unexpected header");
  std::vector<LogRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto record = from_csv(line);
    if (!record) throw std::runtime_error("read_log: malformed row: " + line);
    records.push_back(std::move(*record));
  }
  return records;
}

}  // namespace syrwatch::proxy
