#include "proxy/error_model.h"

#include <stdexcept>

namespace syrwatch::proxy {

ErrorModel::ErrorModel(ErrorRates rates) : rates_(rates) {
  if (rates.total() >= 1.0)
    throw std::invalid_argument("ErrorModel: rates sum to >= 1");
  double acc = 0.0;
  auto set = [&](ExceptionId id, double p) {
    acc += p;
    cumulative_[static_cast<std::size_t>(id)] = acc;
  };
  set(ExceptionId::kTcpError, rates.tcp_error);
  set(ExceptionId::kInternalError, rates.internal_error);
  set(ExceptionId::kInvalidRequest, rates.invalid_request);
  set(ExceptionId::kUnsupportedProtocol, rates.unsupported_protocol);
  set(ExceptionId::kDnsUnresolvedHostname, rates.dns_unresolved_hostname);
  set(ExceptionId::kDnsServerFailure, rates.dns_server_failure);
  set(ExceptionId::kUnsupportedEncoding, rates.unsupported_encoding);
  set(ExceptionId::kInvalidResponse, rates.invalid_response);
}

ExceptionId ErrorModel::sample(util::Rng& rng,
                               double multiplier) const noexcept {
  const double u = rng.uniform01();
  if (u >= rates_.total() * multiplier) return ExceptionId::kNone;
  for (const ExceptionId id :
       {ExceptionId::kTcpError, ExceptionId::kInternalError,
        ExceptionId::kInvalidRequest, ExceptionId::kUnsupportedProtocol,
        ExceptionId::kDnsUnresolvedHostname, ExceptionId::kDnsServerFailure,
        ExceptionId::kUnsupportedEncoding, ExceptionId::kInvalidResponse}) {
    if (u < cumulative_[static_cast<std::size_t>(id)] * multiplier) return id;
  }
  return ExceptionId::kNone;
}

std::uint16_t ErrorModel::status_for(ExceptionId id) noexcept {
  switch (id) {
    case ExceptionId::kTcpError: return 503;
    case ExceptionId::kInternalError: return 500;
    case ExceptionId::kInvalidRequest: return 400;
    case ExceptionId::kUnsupportedProtocol: return 501;
    case ExceptionId::kDnsUnresolvedHostname: return 503;
    case ExceptionId::kDnsServerFailure: return 503;
    case ExceptionId::kUnsupportedEncoding: return 415;
    case ExceptionId::kInvalidResponse: return 502;
    case ExceptionId::kPolicyDenied: return 403;
    case ExceptionId::kPolicyRedirect: return 302;
    case ExceptionId::kNone: return 200;
    case ExceptionId::kCount: break;
  }
  return 200;
}

}  // namespace syrwatch::proxy
