#pragma once

#include <array>
#include <cstdint>

#include "proxy/exception.h"
#include "util/rng.h"

namespace syrwatch::proxy {

/// Stochastic network-failure model for requests the policy allowed.
///
/// Rates default to Table 3's Dfull column re-normalized onto the
/// fetch-attempt population (requests that were neither censored nor served
/// from cache): tcp_error dominates (~45% of all denials), internal_error
/// next (~31%), then invalid_request, unsupported_protocol and DNS
/// failures. All rates are per-attempt probabilities and can be overridden
/// for ablations.
struct ErrorRates {
  double tcp_error = 0.0291;
  double internal_error = 0.0199;
  double invalid_request = 0.00366;
  double unsupported_protocol = 0.00097;
  double dns_unresolved_hostname = 0.000192;
  double dns_server_failure = 0.0000792;
  double unsupported_encoding = 0.00000036;
  double invalid_response = 0.00000001;

  double total() const noexcept {
    return tcp_error + internal_error + invalid_request +
           unsupported_protocol + dns_unresolved_hostname +
           dns_server_failure + unsupported_encoding + invalid_response;
  }
};

class ErrorModel {
 public:
  explicit ErrorModel(ErrorRates rates = {});

  /// Samples the outcome of a fetch attempt: kNone on success, otherwise
  /// the failing exception. `multiplier` scales every rate uniformly — the
  /// fault layer's brownout knob (1.0 = the configured rates, bit-identical
  /// to the unscaled path). Exactly one draw is consumed either way, so a
  /// time-varying multiplier cannot desynchronize the proxy's RNG stream.
  ExceptionId sample(util::Rng& rng, double multiplier = 1.0) const noexcept;

  const ErrorRates& rates() const noexcept { return rates_; }

  /// HTTP status the proxy reports for a failure class.
  static std::uint16_t status_for(ExceptionId id) noexcept;

 private:
  ErrorRates rates_;
  std::array<double, kExceptionCount> cumulative_{};  // CDF by ExceptionId
};

}  // namespace syrwatch::proxy
