#include "proxy/log_record.h"

namespace syrwatch::proxy {

std::string_view to_string(TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::kAllowed: return "allowed";
    case TrafficClass::kCensored: return "censored";
    case TrafficClass::kError: return "error";
    case TrafficClass::kProxied: return "proxied";
  }
  return "allowed";
}

TrafficClass classify(const LogRecord& record) noexcept {
  if (record.filter_result == FilterResult::kProxied)
    return TrafficClass::kProxied;
  return classify_by_exception(record.filter_result, record.exception);
}

TrafficClass classify_by_exception(FilterResult result,
                                   ExceptionId exception) noexcept {
  (void)result;
  if (is_policy_exception(exception)) return TrafficClass::kCensored;
  if (is_error_exception(exception)) return TrafficClass::kError;
  return TrafficClass::kAllowed;
}

}  // namespace syrwatch::proxy
