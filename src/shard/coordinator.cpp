#include "shard/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "util/checksum.h"

#include "durable/checkpoint.h"
#include "fault/worker_chaos.h"
#include "policy/syria.h"
#include "shard/plan.h"
#include "shard/protocol.h"
#include "shard/worker.h"
#include "util/subprocess.h"

namespace syrwatch::shard {

namespace {

namespace fs = std::filesystem;

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Supervisor-side state of one shard worker.
struct WorkerProc {
  enum class State : std::uint8_t {
    kIdle,         ///< not yet spawned this run
    kRunning,      ///< live child process
    kBackoff,      ///< dead, restart scheduled at restart_at
    kCompleted,    ///< shard fully generated (or owns nothing)
    kAbandoned,    ///< restart budget exhausted — merge committed prefix
    kInterrupted,  ///< cancellation stopped it; resumable
  };

  std::size_t index = 0;
  std::uint64_t mask = 0;
  std::string directory;
  State state = State::kIdle;
  pid_t pid = -1;
  int pipe_fd = -1;
  util::FrameReader reader;
  bool frames_seen = false;
  std::uint64_t last_frame_ms = 0;
  std::size_t attempts = 0;
  std::size_t restarts_used = 0;
  std::uint64_t restart_at_ms = 0;
  /// Pending chaos kills: (fire at committed batch >= first, fired).
  std::vector<std::pair<std::size_t, bool>> kills;
  std::size_t stall_after_batch = static_cast<std::size_t>(-1);

  bool unresolved() const noexcept {
    return state == State::kIdle || state == State::kRunning ||
           state == State::kBackoff;
  }
};

}  // namespace

std::string describe_degraded(const std::vector<ShardContribution>& shards) {
  std::string out;
  for (const ShardContribution& shard : shards) {
    if (!shard.degraded) continue;
    std::string proxies;
    for (const std::size_t p : proxies_in_mask(shard.proxy_mask)) {
      if (!proxies.empty()) proxies += ", ";
      proxies += policy::proxy_name(p);
    }
    if (!out.empty()) out += ", ";
    out += proxies + " (" + shard.name + ")";
  }
  return out.empty() ? out : "proxies " + out;
}

ShardedRun run_sharded(const CoordinatorOptions& options) {
  if (options.workers == 0)
    throw std::runtime_error("shard: --workers must be >= 1");
  if (options.directory.empty())
    throw std::runtime_error("shard: checkpoint directory must not be empty");
  if (options.out_path.empty())
    throw std::runtime_error("shard: output path must not be empty");
  if (options.commit_interval == 0)
    throw std::runtime_error("shard: commit_interval must be >= 1");

  const std::string fingerprint = durable::config_fingerprint(options.config);
  std::size_t total_batches = 0;
  {
    // Constructed once for batch_count (a pure function of the config) —
    // and as an early validation of the config itself, before any fork.
    workload::SyriaScenario probe{options.config};
    total_batches = probe.batch_count();
  }

  const fs::path dir{options.directory};
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    throw std::runtime_error("shard: cannot create " + dir.string() + ": " +
                             ec.message());
  const std::string manifest_path = (dir / durable::RunManifest::kFileName).string();

  ShardedRun result;
  durable::RunManifest& manifest = result.manifest;
  const bool have_manifest = fs::exists(manifest_path, ec) && !ec;
  if (options.resume) {
    if (!have_manifest)
      throw std::runtime_error("shard: nothing to resume — no " +
                               std::string(durable::RunManifest::kFileName) +
                               " in " + options.directory);
    manifest = durable::RunManifest::load(manifest_path);
    if (manifest.command != "generate-sharded")
      throw std::runtime_error(
          "shard: manifest records command \"" + manifest.command +
          "\", cannot resume it as \"generate-sharded\"");
    if (manifest.config_fingerprint != fingerprint)
      throw std::runtime_error(
          "shard: config fingerprint mismatch (manifest " +
          manifest.config_fingerprint + ", current " + fingerprint + ")");
    if (manifest.workers != options.workers)
      throw std::runtime_error(
          "shard: worker-count mismatch (manifest " +
          std::to_string(manifest.workers) + ", current " +
          std::to_string(options.workers) +
          ") — the proxy assignment depends on it");
    if (manifest.total_batches != total_batches)
      throw std::runtime_error(
          "shard: batch-count mismatch (manifest " +
          std::to_string(manifest.total_batches) + ", current " +
          std::to_string(total_batches) + ")");
  } else {
    if (have_manifest)
      throw std::runtime_error(
          "shard: " + options.directory + " already holds a " +
          std::string(durable::RunManifest::kFileName) +
          " — pass --resume to continue it, or point --checkpoint-dir at "
          "an empty directory");
    manifest.command = "generate-sharded";
    manifest.seed = options.config.seed;
    manifest.total_requests = options.config.total_requests;
    manifest.fault_profile = options.config.fault_profile;
    manifest.apply_leak_filter = options.config.apply_leak_filter;
    manifest.threads = options.config.threads;
    manifest.config_fingerprint = fingerprint;
    manifest.total_batches = total_batches;
    manifest.workers = options.workers;
  }

  const fault::WorkerChaosPlan chaos = fault::make_worker_chaos(
      options.worker_chaos, options.config.seed, options.workers,
      total_batches);

  std::vector<WorkerProc> procs(options.workers);
  for (std::size_t w = 0; w < options.workers; ++w) {
    WorkerProc& proc = procs[w];
    proc.index = w;
    proc.mask = proxy_mask_for(options.config.seed, w, options.workers,
                               policy::kProxyCount);
    proc.directory = (dir / shard_dir_name(w)).string();
  }
  for (const fault::WorkerChaosEvent& event : chaos.events) {
    if (event.worker >= procs.size()) continue;
    if (event.kind == fault::WorkerChaosEvent::Kind::kKill)
      procs[event.worker].kills.emplace_back(event.after_batch, false);
    else
      procs[event.worker].stall_after_batch = event.after_batch;
  }

  // Shards already resolved before any fork: surplus workers that own no
  // proxies, and (on resume) shards whose own manifest says complete.
  const bool rerun_of_complete = manifest.complete();
  for (WorkerProc& proc : procs) {
    if (proc.mask == 0) {
      proc.state = WorkerProc::State::kCompleted;
      continue;
    }
    if (!options.resume) continue;
    const std::string shard_manifest =
        (fs::path{proc.directory} / durable::RunManifest::kFileName).string();
    std::error_code shard_ec;
    if (!fs::exists(shard_manifest, shard_ec) || shard_ec) continue;
    try {
      if (durable::RunManifest::load(shard_manifest).complete())
        proc.state = WorkerProc::State::kCompleted;
    } catch (const std::runtime_error&) {
      // Unreadable shard manifest on resume: let the worker's own resume
      // logic refuse it with a precise message.
    }
  }
  if (rerun_of_complete)
    for (WorkerProc& proc : procs)
      if (proc.unresolved()) {
        // A completed coordinator manifest is authoritative: shards it
        // abandoned stay abandoned on a re-merge, they are not re-run.
        const bool degraded =
            std::find(manifest.degraded_shards.begin(),
                      manifest.degraded_shards.end(),
                      shard_dir_name(proc.index)) !=
            manifest.degraded_shards.end();
        proc.state = degraded ? WorkerProc::State::kAbandoned
                              : WorkerProc::State::kCompleted;
      }

  if (!rerun_of_complete) {
    manifest.state = "in_progress";
    manifest.save(manifest_path);
  }

  const auto spawn = [&](WorkerProc& proc) {
    util::Pipe pipe = util::make_pipe();
    std::fflush(nullptr);  // no duplicated buffered stdio in the child
    const pid_t pid = ::fork();
    if (pid < 0) {
      util::close_fd(pipe.read_fd);
      util::close_fd(pipe.write_fd);
      throw std::runtime_error(std::string("shard: fork: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      // Child: drop every coordinator-side fd, run the shard, _Exit (no
      // destructors or atexit — the parent owns those).
      util::close_fd(pipe.read_fd);
      for (const WorkerProc& other : procs)
        if (other.pipe_fd >= 0) util::close_fd(other.pipe_fd);
      WorkerSpec spec;
      spec.config = options.config;
      spec.worker = proc.index;
      spec.workers = options.workers;
      spec.proxy_mask = proc.mask;
      spec.directory = proc.directory;
      spec.commit_interval = options.commit_interval;
      if (proc.attempts == 0 &&
          proc.stall_after_batch != static_cast<std::size_t>(-1)) {
        spec.stall_after_batch = proc.stall_after_batch;
        spec.stall_seconds = static_cast<unsigned>(
            std::max<std::uint64_t>(1, options.heartbeat_ms * 4 / 1000));
      }
      std::_Exit(run_worker(spec, pipe.write_fd));
    }
    util::close_fd(pipe.write_fd);
    util::set_nonblocking(pipe.read_fd);
    proc.pid = pid;
    proc.pipe_fd = pipe.read_fd;
    proc.reader = util::FrameReader{};
    proc.frames_seen = false;
    proc.last_frame_ms = now_ms();
    ++proc.attempts;
    ++result.spawns;
    proc.state = WorkerProc::State::kRunning;
  };

  const auto hard_kill = [](WorkerProc& proc) {
    if (proc.pid > 0) ::kill(proc.pid, SIGKILL);
  };

  // Resolve a dead child (pipe EOF already seen): reap, then decide
  // completed / interrupted / backoff-restart / abandoned.
  const auto reap = [&](WorkerProc& proc, bool cancelling) {
    util::close_fd(proc.pipe_fd);
    proc.pipe_fd = -1;
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(proc.pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    proc.pid = -1;
    const int code =
        WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    if (code == kWorkerCompleted) {
      proc.state = WorkerProc::State::kCompleted;
      return;
    }
    if (cancelling) {
      proc.state = WorkerProc::State::kInterrupted;
      return;
    }
    // Real death: signal, error exit, or a stray interrupt. The shard's
    // checkpoint makes a restart cheap — at most commit_interval-1
    // batches re-run, bit-identically.
    if (proc.restarts_used < options.restart_budget) {
      ++proc.restarts_used;
      ++result.restarts;
      std::uint64_t backoff = options.restart_backoff_ms;
      for (std::size_t i = 1; i < proc.restarts_used; ++i)
        backoff = std::min(options.restart_backoff_cap_ms, backoff * 2);
      backoff = std::min(options.restart_backoff_cap_ms, backoff);
      proc.restart_at_ms = now_ms() + backoff;
      proc.state = WorkerProc::State::kBackoff;
      return;
    }
    proc.state = WorkerProc::State::kAbandoned;
    ++result.shards_abandoned;
  };

  bool cancelling = false;
  const auto any_unresolved = [&] {
    for (const WorkerProc& proc : procs)
      if (proc.unresolved()) return true;
    return false;
  };

  while (any_unresolved()) {
    const std::uint64_t now = now_ms();

    if (!cancelling && options.cancel && options.cancel->cancelled()) {
      // Fan the stop out: every live worker gets SIGTERM (its own handler
      // turns that into a cooperative cancel + checkpoint flush), pending
      // restarts are dropped.
      cancelling = true;
      for (WorkerProc& proc : procs) {
        if (proc.state == WorkerProc::State::kRunning && proc.pid > 0)
          ::kill(proc.pid, SIGTERM);
        else if (proc.state == WorkerProc::State::kIdle ||
                 proc.state == WorkerProc::State::kBackoff)
          proc.state = WorkerProc::State::kInterrupted;
      }
    }

    for (WorkerProc& proc : procs) {
      if (cancelling) break;
      if (proc.state == WorkerProc::State::kIdle ||
          (proc.state == WorkerProc::State::kBackoff &&
           now >= proc.restart_at_ms))
        spawn(proc);
    }

    if (options.heartbeat_ms > 0) {
      for (WorkerProc& proc : procs) {
        if (proc.state != WorkerProc::State::kRunning || !proc.frames_seen)
          continue;
        if (now - proc.last_frame_ms <= options.heartbeat_ms) continue;
        ++result.heartbeat_misses;
        hard_kill(proc);
        // One miss, one kill: the EOF → reap path takes it from here.
        proc.last_frame_ms = now;
      }
    }

    std::vector<pollfd> fds;
    std::vector<WorkerProc*> polled;
    for (WorkerProc& proc : procs) {
      if (proc.state != WorkerProc::State::kRunning || proc.pipe_fd < 0)
        continue;
      fds.push_back({proc.pipe_fd, POLLIN, 0});
      polled.push_back(&proc);
    }
    if (fds.empty()) {
      // Nothing live — only backoff timers (or a cancel) to wait out.
      struct timespec nap {0, 10'000'000};  // 10ms
      ::nanosleep(&nap, nullptr);
      continue;
    }
    const int ready = ::poll(fds.data(), fds.size(), 50);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal — loop re-checks cancel
      throw std::runtime_error(std::string("shard: poll: ") +
                               std::strerror(errno));
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      WorkerProc& proc = *polled[i];
      bool open = true;
      try {
        open = proc.reader.pump(proc.pipe_fd);
      } catch (const std::runtime_error&) {
        // Garbage on the status channel: the worker is insane; treat as
        // dead (its checkpoint, not its chatter, is the real record).
        hard_kill(proc);
        open = false;
      }
      while (auto payload = proc.reader.next()) {
        const auto message = decode(*payload);
        if (!message) continue;
        proc.frames_seen = true;
        proc.last_frame_ms = now_ms();
        if (message->type == MessageType::kBatchDone) {
          for (auto& [after_batch, fired] : proc.kills) {
            if (fired || proc.attempts != 1) continue;
            if (message->batch < after_batch) continue;
            fired = true;
            ++result.kills_injected;
            hard_kill(proc);
          }
        }
      }
      if (!open) reap(proc, cancelling);
    }
  }

  if (obs::Context* const ctx = options.obs) {
    obs::add(obs::counter(ctx, "shard.spawns"), result.spawns);
    obs::add(obs::counter(ctx, "shard.restarts"), result.restarts);
    obs::add(obs::counter(ctx, "shard.heartbeat_misses"),
             result.heartbeat_misses);
    obs::add(obs::counter(ctx, "shard.kills_injected"),
             result.kills_injected);
    obs::add(obs::counter(ctx, "shard.shards_abandoned"),
             result.shards_abandoned);
  }

  const bool all_resolved_clean = [&] {
    for (const WorkerProc& proc : procs)
      if (proc.state != WorkerProc::State::kCompleted &&
          proc.state != WorkerProc::State::kAbandoned)
        return false;
    return true;
  }();

  if (!all_resolved_clean) {
    // Interrupted: every shard flushed its own checkpoint on the way
    // down; the whole topology resumes with --resume.
    manifest.state = "interrupted";
    manifest.save(manifest_path);
    result.completed = false;
    return result;
  }

  // Merge the shards — byte-identical to the single-process run when all
  // survived; the committed prefix of any shard we had to abandon.
  std::vector<ShardInput> inputs;
  for (const WorkerProc& proc : procs) {
    if (proc.mask == 0) continue;
    ShardInput input;
    input.name = shard_dir_name(proc.index);
    input.directory = proc.directory;
    input.proxy_mask = proc.mask;
    input.degraded = proc.state == WorkerProc::State::kAbandoned;
    inputs.push_back(std::move(input));
  }
  MergeResult merged = merge_shards(inputs, options.out_path);
  result.records = merged.records;
  result.shards = std::move(merged.shards);
  result.read_stats = merged.combined;
  result.output = merged.output;
  for (const ShardContribution& shard : result.shards)
    if (shard.degraded) result.degraded_shards.push_back(shard.name);

  manifest.state = "complete";
  manifest.next_batch = manifest.total_batches;
  manifest.degraded_shards = result.degraded_shards;
  manifest.upsert_artifact(
      {options.out_path, "output", merged.output.bytes, merged.output.crc32,
       -1});
  for (const ShardInput& input : inputs) {
    const std::string shard_manifest =
        (fs::path{input.directory} / durable::RunManifest::kFileName).string();
    std::error_code shard_ec;
    if (!fs::exists(shard_manifest, shard_ec) || shard_ec) continue;
    const util::FileDigest digest = util::crc32_file(shard_manifest);
    manifest.upsert_artifact(
        {input.name + "/" + std::string(durable::RunManifest::kFileName),
         "shard", digest.bytes, digest.crc32, -1});
  }
  manifest.save(manifest_path);
  result.completed = true;
  return result;
}

}  // namespace syrwatch::shard
