#include "shard/plan.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "util/rng.h"

namespace syrwatch::shard {

std::size_t owner_of_proxy(std::uint64_t seed, std::size_t proxy,
                           std::size_t workers) {
  if (workers == 0)
    throw std::invalid_argument("owner_of_proxy: workers must be >= 1");
  std::size_t best = 0;
  std::uint64_t best_weight = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::uint64_t weight = util::mix64(
        seed ^ util::mix64(0x5AA2'D000 + proxy) ^ util::mix64(w + 1));
    if (w == 0 || weight > best_weight) {
      best = w;
      best_weight = weight;
    }
  }
  return best;
}

std::uint64_t proxy_mask_for(std::uint64_t seed, std::size_t worker,
                             std::size_t workers, std::size_t proxy_count) {
  if (proxy_count > 64)
    throw std::invalid_argument("proxy_mask_for: more than 64 proxies");
  std::uint64_t mask = 0;
  for (std::size_t p = 0; p < proxy_count; ++p)
    if (owner_of_proxy(seed, p, workers) == worker)
      mask |= std::uint64_t{1} << p;
  return mask;
}

std::vector<std::size_t> proxies_in_mask(std::uint64_t mask) {
  std::vector<std::size_t> proxies;
  for (std::size_t p = 0; p < 64; ++p)
    if ((mask >> p) & 1) proxies.push_back(p);
  return proxies;
}

std::string shard_dir_name(std::size_t worker) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "shard-%02zu", worker);
  return buffer;
}

std::string worker_command(std::size_t worker, std::size_t workers,
                           std::uint64_t proxy_mask) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer,
                "generate-shard:%zu/%zu:mask=0x%" PRIx64, worker, workers,
                proxy_mask);
  return buffer;
}

}  // namespace syrwatch::shard
