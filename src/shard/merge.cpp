#include "shard/merge.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "durable/manifest.h"
#include "util/checksum.h"

namespace syrwatch::shard {

namespace {

namespace fs = std::filesystem;

constexpr std::string_view kSpoolFile = "log_spool.csv";
constexpr std::string_view kKeysFile = "merge_keys.bin";

/// One shard's read position in the merge. Strict shards stream straight
/// off their CRC-verified committed prefix; lenient shards (degraded, no
/// usable manifest) were recovered up front into memory.
struct Cursor {
  ShardContribution contribution;
  // Strict streaming state.
  std::ifstream spool;
  std::ifstream keys;
  std::uint64_t spool_limit = 0;
  std::uint64_t spool_consumed = 0;
  std::uint64_t remaining = 0;
  // Lenient state.
  std::vector<std::string> lines;
  std::vector<std::uint64_t> lenient_keys;
  std::size_t pos = 0;
  // Current head record.
  bool has_head = false;
  std::uint64_t key = 0;
  std::string line;
};

std::uint64_t decode_key(const char* bytes) {
  std::uint64_t key = 0;
  for (int i = 0; i < 8; ++i)
    key |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
           << (8 * i);
  return key;
}

[[noreturn]] void fail(const std::string& shard, const std::string& why) {
  throw std::runtime_error("shard merge: " + shard + ": " + why);
}

/// Advances a cursor to its next record; clears has_head at exhaustion.
void advance(Cursor& cursor) {
  if (cursor.contribution.lenient) {
    if (cursor.pos >= cursor.lines.size()) {
      cursor.has_head = false;
      return;
    }
    cursor.key = cursor.lenient_keys[cursor.pos];
    cursor.line = std::move(cursor.lines[cursor.pos]);
    ++cursor.pos;
    cursor.has_head = true;
    return;
  }
  if (cursor.remaining == 0) {
    cursor.has_head = false;
    return;
  }
  if (!std::getline(cursor.spool, cursor.line))
    fail(cursor.contribution.name,
         "spool ended before its merge-key sidecar");
  cursor.spool_consumed += cursor.line.size() + 1;
  if (cursor.spool_consumed > cursor.spool_limit)
    fail(cursor.contribution.name,
         "committed spool prefix does not end on a record boundary");
  char key_bytes[8];
  if (!cursor.keys.read(key_bytes, 8))
    fail(cursor.contribution.name,
         "merge-key sidecar ended before its record count");
  cursor.key = decode_key(key_bytes);
  --cursor.remaining;
  cursor.has_head = true;
}

/// Opens a shard via its manifest's CRC-verified committed prefixes.
/// Returns false (with `why`) when the manifest route is unusable.
bool try_open_strict(Cursor& cursor, const ShardInput& input,
                     std::string& why) {
  const fs::path dir{input.directory};
  const std::string manifest_path =
      (dir / durable::RunManifest::kFileName).string();
  std::error_code ec;
  if (!fs::exists(manifest_path, ec) || ec) {
    why = "no manifest";
    return false;
  }
  durable::RunManifest manifest;
  try {
    manifest = durable::RunManifest::load(manifest_path);
  } catch (const std::runtime_error& error) {
    why = error.what();
    return false;
  }
  const durable::ManifestArtifact* spool =
      manifest.find_artifact(kSpoolFile);
  const durable::ManifestArtifact* keys = manifest.find_artifact(kKeysFile);
  if (spool == nullptr || keys == nullptr) {
    why = "manifest lists no spool/keys pair";
    return false;
  }
  if (keys->bytes % 8 != 0) {
    why = "merge-key sidecar committed size is not a multiple of 8";
    return false;
  }
  const std::string spool_path = (dir / kSpoolFile).string();
  const std::string keys_path = (dir / kKeysFile).string();
  const util::FileDigest spool_digest =
      util::crc32_file_prefix(spool_path, spool->bytes);
  if (spool_digest.bytes != spool->bytes ||
      spool_digest.crc32 != spool->crc32) {
    why = "spool committed prefix failed verification";
    return false;
  }
  const util::FileDigest keys_digest =
      util::crc32_file_prefix(keys_path, keys->bytes);
  if (keys_digest.bytes != keys->bytes ||
      keys_digest.crc32 != keys->crc32) {
    why = "merge-key sidecar committed prefix failed verification";
    return false;
  }

  cursor.spool.open(spool_path, std::ios::binary);
  cursor.keys.open(keys_path, std::ios::binary);
  if (!cursor.spool || !cursor.keys) {
    why = "cannot open spool/keys";
    return false;
  }
  std::string header;
  if (!std::getline(cursor.spool, header) ||
      header != proxy::log_csv_header()) {
    why = "spool header missing or foreign";
    return false;
  }
  cursor.spool_consumed = header.size() + 1;
  cursor.spool_limit = spool->bytes;
  cursor.remaining = keys->bytes / 8;
  cursor.contribution.committed_batches = manifest.next_batch;

  // Synthesized clean stats: a verified prefix has no damage by
  // construction.
  proxy::LogReadStats& stats = cursor.contribution.read_stats;
  stats.lines = cursor.remaining + 1;
  stats.data_lines = cursor.remaining;
  stats.recovered = cursor.remaining;
  stats.header_present = true;
  return true;
}

/// Best-effort recovery without a manifest: lenient-read the whole spool,
/// pair records positionally with whatever whole keys exist. Valid under
/// crash damage, which is append-only — skips and truncation are
/// tail-only, so the pairing never shifts mid-file.
void open_lenient(Cursor& cursor, const ShardInput& input) {
  cursor.contribution.lenient = true;
  const fs::path dir{input.directory};
  std::ifstream spool{(dir / kSpoolFile).string(), std::ios::binary};
  if (!spool) return;  // shard died before creating its spool: nothing
  proxy::LenientLog log = proxy::read_log_lenient(spool);
  cursor.contribution.read_stats = log.stats;

  std::ifstream keys{(dir / kKeysFile).string(), std::ios::binary};
  std::string key_bytes;
  if (keys) {
    std::ostringstream buffer;
    buffer << keys.rdbuf();
    key_bytes = std::move(buffer).str();
  }
  const std::size_t usable =
      std::min(log.records.size(), key_bytes.size() / 8);
  cursor.lines.reserve(usable);
  cursor.lenient_keys.reserve(usable);
  for (std::size_t i = 0; i < usable; ++i) {
    cursor.lines.push_back(proxy::to_csv(log.records[i]));
    cursor.lenient_keys.push_back(decode_key(key_bytes.data() + i * 8));
  }
}

}  // namespace

void fold_read_stats(proxy::LogReadStats& total,
                     const proxy::LogReadStats& stats) {
  total.lines += stats.lines;
  total.data_lines += stats.data_lines;
  total.recovered += stats.recovered;
  total.empty_lines += stats.empty_lines;
  total.header_present = total.header_present && stats.header_present;
  total.truncated_tail = total.truncated_tail || stats.truncated_tail;
  for (std::size_t i = 0; i < proxy::kParseErrorCount; ++i) {
    total.skipped[i] += stats.skipped[i];
    if (stats.first_error_line[i] != 0 &&
        (total.first_error_line[i] == 0 ||
         stats.first_error_line[i] < total.first_error_line[i]))
      total.first_error_line[i] = stats.first_error_line[i];
  }
}

MergeResult merge_shards(const std::vector<ShardInput>& shards,
                         const std::string& out_path, util::Vfs* vfs) {
  MergeResult result;
  result.combined.header_present = true;

  std::vector<Cursor> cursors(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    Cursor& cursor = cursors[i];
    cursor.contribution.name = shards[i].name;
    cursor.contribution.proxy_mask = shards[i].proxy_mask;
    cursor.contribution.degraded = shards[i].degraded;
    std::string why;
    if (!try_open_strict(cursor, shards[i], why)) {
      if (!shards[i].degraded)
        fail(shards[i].name, why + " — a surviving shard must verify");
      open_lenient(cursor, shards[i]);
    }
    advance(cursor);
  }

  util::AtomicFileWriter writer{out_path, vfs};
  std::string header{proxy::log_csv_header()};
  header += '\n';
  writer.write(header);

  for (;;) {
    Cursor* best = nullptr;
    for (Cursor& cursor : cursors) {
      if (!cursor.has_head) continue;
      if (best == nullptr || cursor.key < best->key) best = &cursor;
    }
    if (best == nullptr) break;
    writer.write(best->line);
    writer.write("\n");
    ++best->contribution.records;
    ++result.records;
    advance(*best);
  }
  result.output = writer.commit();

  for (Cursor& cursor : cursors) {
    fold_read_stats(result.combined, cursor.contribution.read_stats);
    result.shards.push_back(std::move(cursor.contribution));
  }
  return result;
}

}  // namespace syrwatch::shard
