#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proxy/log_io.h"
#include "util/atomic_io.h"

namespace syrwatch::shard {

/// K-way merge of worker shard spools back into one log, in the exact
/// order the unsharded run would have emitted — the inverse of the
/// proxy_mask split. Each spool line pairs positionally with an 8-byte LE
/// key in the shard's merge_keys.bin sidecar; keys are globally unique and
/// ascending within a shard, so a streaming smallest-key-first merge
/// reconstructs generation order, byte-identical to the single-process
/// spool when every shard completed.

struct ShardInput {
  std::string name;       ///< "shard-NN" (for reports and errors)
  std::string directory;  ///< the worker's checkpoint directory
  std::uint64_t proxy_mask = 0;
  /// The coordinator abandoned this shard (restart budget exhausted): only
  /// its committed prefix merges, and the manifest may be missing entirely
  /// (death before the first commit) — then the lenient reader recovers
  /// what it can.
  bool degraded = false;
};

struct ShardContribution {
  std::string name;
  std::uint64_t proxy_mask = 0;
  std::uint64_t records = 0;
  std::uint64_t committed_batches = 0;
  bool degraded = false;
  /// Records were recovered via proxy::read_log_lenient (manifest missing
  /// or unusable) instead of the CRC-verified committed prefix.
  bool lenient = false;
  /// What reading this shard's spool saw. Strict reads synthesize clean
  /// stats; lenient reads carry the real damage tally.
  proxy::LogReadStats read_stats;
};

struct MergeResult {
  util::ArtifactInfo output;  ///< merged file's size + CRC32
  std::uint64_t records = 0;
  std::vector<ShardContribution> shards;
  /// Shard stats folded into one (sums; header_present = all,
  /// truncated_tail = any) — what a coverage report over the merged log
  /// should be handed, since the merged file itself is always clean.
  proxy::LogReadStats combined;
};

/// Merges `shards` into `out_path` (written atomically through `vfs`,
/// default process Vfs: header + records, fsynced before the commit
/// rename). Surviving shards must verify — a CRC or size failure in a
/// non-degraded shard throws std::runtime_error naming it. Degraded
/// shards degrade further gracefully: unusable manifest → lenient
/// recovery, no spool at all → zero contribution.
MergeResult merge_shards(const std::vector<ShardInput>& shards,
                         const std::string& out_path,
                         util::Vfs* vfs = nullptr);

/// Folds `stats` into `total` (the MergeResult::combined rule).
void fold_read_stats(proxy::LogReadStats& total,
                     const proxy::LogReadStats& stats);

}  // namespace syrwatch::shard
