#pragma once

#include <cstdint>
#include <string>

#include "workload/scenario.h"

namespace syrwatch::shard {

/// The body of one shard worker process. The coordinator forks (no exec —
/// the child shares the binary) and the child calls run_worker(), then
/// std::_Exit()s with its return value: no destructors, no atexit, no
/// flushing of streams it shares with the parent.

/// Exit codes run_worker returns (and the coordinator interprets).
inline constexpr int kWorkerCompleted = 0;    ///< shard fully generated
inline constexpr int kWorkerInterrupted = 3;  ///< cancelled; resumable
inline constexpr int kWorkerError = 1;        ///< exception; message on stderr

struct WorkerSpec {
  workload::ScenarioConfig config;
  std::size_t worker = 0;
  std::size_t workers = 1;
  std::uint64_t proxy_mask = 0;
  /// This worker's private checkpoint directory (…/shard-NN).
  std::string directory;
  std::size_t commit_interval = 1;
  /// worker-stall injection: sleep stall_seconds after this batch's bytes
  /// land, but only on a fresh (non-resumed) attempt — a restarted worker
  /// must run clean or the run never finishes. SIZE_MAX = no stall.
  std::size_t stall_after_batch = static_cast<std::size_t>(-1);
  unsigned stall_seconds = 0;
};

/// Runs the shard to completion (or cancellation) inside the current
/// process: reinstalls SIGINT/SIGTERM onto a fresh post-fork CancelToken,
/// ignores SIGPIPE (an orphaned worker keeps spooling durably), decides
/// fresh-vs-resume by the presence of its own manifest, and streams
/// HELLO / HEARTBEAT / BATCH_DONE / SHUTDOWN over `pipe_fd`. Never throws:
/// an exception is reported on stderr and becomes kWorkerError.
int run_worker(const WorkerSpec& spec, int pipe_fd) noexcept;

}  // namespace syrwatch::shard
