#include "shard/protocol.h"

namespace syrwatch::shard {

namespace {

constexpr std::size_t kFrameBytes = 1 + 3 * 8;

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out += static_cast<char>((value >> shift) & 0xFF);
}

std::uint64_t get_u64(const std::string& in, std::size_t offset) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[offset + i]))
             << (8 * i);
  return value;
}

}  // namespace

std::string encode(const Message& message) {
  std::string out;
  out.reserve(kFrameBytes);
  out += static_cast<char>(message.type);
  put_u64(out, message.worker);
  put_u64(out, message.batch);
  put_u64(out, message.status);
  return out;
}

std::optional<Message> decode(const std::string& payload) {
  if (payload.size() != kFrameBytes) return std::nullopt;
  const auto type = static_cast<std::uint8_t>(payload[0]);
  if (type < static_cast<std::uint8_t>(MessageType::kHello) ||
      type > static_cast<std::uint8_t>(MessageType::kShutdown))
    return std::nullopt;
  Message message;
  message.type = static_cast<MessageType>(type);
  message.worker = get_u64(payload, 1);
  message.batch = get_u64(payload, 9);
  message.status = get_u64(payload, 17);
  return message;
}

}  // namespace syrwatch::shard
