#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace syrwatch::shard {

/// The worker→coordinator status protocol, carried as util::write_frame
/// payloads over each worker's private pipe. Strictly advisory: the
/// durable record of a shard's progress is its checkpoint directory, and
/// the coordinator treats the pipe as a liveness/progress signal only —
/// losing every message (dead coordinator, full pipe) costs nothing but
/// supervision fidelity.
///
/// Encoding is a fixed-width little-endian struct (type byte + three u64),
/// trivially versioned by frame length; HELLO carries the protocol's shape
/// implicitly since a mismatched build fails to decode it.

enum class MessageType : std::uint8_t {
  kHello = 1,      ///< First frame after fork: worker is alive, resumed or
                   ///< fresh (status = first batch it will execute).
  kBatchDone = 2,  ///< A durable commit landed (batch = newest committed,
                   ///< records = cumulative records this attempt).
  kHeartbeat = 3,  ///< A batch's bytes hit the spool (liveness tick).
  kShutdown = 4,   ///< Clean exit imminent (status = 0 completed,
                   ///< 1 interrupted by cancellation).
};

struct Message {
  MessageType type = MessageType::kHello;
  std::uint64_t worker = 0;
  std::uint64_t batch = 0;
  /// kBatchDone: cumulative records emitted; kHello/kShutdown: status.
  std::uint64_t status = 0;
};

/// Fixed 25-byte frame payload (1 + 3×8, little-endian).
std::string encode(const Message& message);

/// Inverse of encode; nullopt on a wrong-sized or unknown-type payload.
std::optional<Message> decode(const std::string& payload);

}  // namespace syrwatch::shard
