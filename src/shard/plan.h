#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace syrwatch::shard {

/// Deterministic proxy→worker assignment for the multi-process farm.
///
/// The unit of sharding is the *proxy*, not the time slot: each simulated
/// SG appliance carries sequential state (LRU cache, RNG) that depends on
/// every prior batch, so a proxy's whole timeline must live in one
/// process. Generation and routing are pure functions every worker
/// duplicates; a worker simply skips requests routed to proxies it does
/// not own (workload::RunControl::proxy_mask). With seven proxies the farm
/// shards usefully up to --workers 7; beyond that the surplus workers own
/// nothing and exit immediately.
///
/// Assignment is rendezvous (highest-random-weight) hashing on
/// (seed, proxy, worker): stateless, a pure function any process can
/// recompute, and stable in the sense that reshuffling is minimal when the
/// worker count changes. Nothing here talks to the farm's own
/// request-routing — that stays untouched inside proxy::ProxyFarm.

/// The worker that owns `proxy` when `workers` processes share the farm.
std::size_t owner_of_proxy(std::uint64_t seed, std::size_t proxy,
                           std::size_t workers);

/// Bitmask (bit p = proxy p) of the proxies `worker` owns. The masks of
/// workers 0..workers-1 partition the farm: disjoint, union all-proxies.
std::uint64_t proxy_mask_for(std::uint64_t seed, std::size_t worker,
                             std::size_t workers, std::size_t proxy_count);

/// Proxy indices set in `mask`, ascending.
std::vector<std::size_t> proxies_in_mask(std::uint64_t mask);

/// Checkpoint subdirectory of worker `w`: "shard-00", "shard-01", ...
std::string shard_dir_name(std::size_t worker);

/// The command string recorded in a worker's manifest, e.g.
/// "generate-shard:2/4:mask=0x12". Encodes the topology so a resume under
/// a different worker count or assignment is refused up front — the config
/// fingerprint deliberately knows nothing about sharding.
std::string worker_command(std::size_t worker, std::size_t workers,
                           std::uint64_t proxy_mask);

}  // namespace syrwatch::shard
