#include "shard/worker.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <thread>

#include "durable/checkpoint.h"
#include "shard/plan.h"
#include "shard/protocol.h"
#include "util/cancel.h"
#include "util/subprocess.h"

namespace syrwatch::shard {

namespace {

void send(int fd, const Message& message) {
  // Best-effort by design: the checkpoint directory is the durable record,
  // the pipe only feeds supervision. A vanished coordinator (EPIPE) must
  // not take the worker down with it.
  util::write_frame(fd, encode(message));
}

}  // namespace

int run_worker(const WorkerSpec& spec, int pipe_fd) noexcept {
  try {
    // The parent's CancelToken (and its signal bindings) died with the
    // fork; give this process its own so the coordinator's SIGTERM
    // fan-out lands as a cooperative cancel, not default termination.
    static util::CancelToken cancel;
    cancel.reset();
    util::install_stop_signals(cancel);
    util::ignore_sigpipe();

    workload::SyriaScenario scenario{spec.config};

    durable::CheckpointOptions options;
    options.directory = spec.directory;
    // Uniform for coordinator --resume and crash-restart alike: our own
    // manifest's existence is the resume signal. A fresh coordinator run
    // starts with empty shard dirs, so this never mistakes one for the
    // other.
    options.resume = std::filesystem::exists(
        std::filesystem::path{spec.directory} /
        durable::RunManifest::kFileName);
    options.cancel = &cancel;
    options.command = worker_command(spec.worker, spec.workers,
                                     spec.proxy_mask);
    options.commit_interval = spec.commit_interval;
    options.proxy_mask = spec.proxy_mask;
    options.record_keys = true;

    std::uint64_t records = 0;
    const bool fresh_attempt = !options.resume;
    options.on_progress = [&](std::size_t batch) {
      Message beat;
      beat.type = MessageType::kHeartbeat;
      beat.worker = spec.worker;
      beat.batch = batch;
      send(pipe_fd, beat);
      if (fresh_attempt && batch == spec.stall_after_batch &&
          spec.stall_seconds > 0)
        std::this_thread::sleep_for(
            std::chrono::seconds(spec.stall_seconds));
    };
    options.after_commit = [&](std::size_t batch) {
      Message done;
      done.type = MessageType::kBatchDone;
      done.worker = spec.worker;
      done.batch = batch;
      done.status = records;
      send(pipe_fd, done);
    };

    Message hello;
    hello.type = MessageType::kHello;
    hello.worker = spec.worker;
    hello.status = options.resume ? 1 : 0;
    send(pipe_fd, hello);

    const durable::CheckpointedRun run = durable::run_checkpointed(
        scenario, options,
        [&](const proxy::LogRecord&) { ++records; });

    Message bye;
    bye.type = MessageType::kShutdown;
    bye.worker = spec.worker;
    bye.batch = run.manifest.next_batch;
    bye.status = run.completed ? 0 : 1;
    send(pipe_fd, bye);
    return run.completed ? kWorkerCompleted : kWorkerInterrupted;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "shard worker %zu: %s\n", spec.worker,
                 error.what());
    return kWorkerError;
  } catch (...) {
    std::fprintf(stderr, "shard worker %zu: unknown exception\n",
                 spec.worker);
    return kWorkerError;
  }
}

}  // namespace syrwatch::shard
