#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "durable/manifest.h"
#include "obs/context.h"
#include "shard/merge.h"
#include "util/atomic_io.h"
#include "util/cancel.h"
#include "workload/scenario.h"

namespace syrwatch::shard {

/// The supervising coordinator of the multi-process farm: forks one worker
/// per shard, watches them over per-worker pipes and waitpid, restarts the
/// dead with capped exponential backoff (each restart resumes from the
/// worker's own checkpoint — at most commit_interval-1 batches re-run),
/// and k-way merges the surviving spools into the final log. A shard that
/// exhausts its restart budget is abandoned, not fatal: the run completes
/// with the abandoned shard's committed prefix and explicit
/// [DEGRADED DATA] annotations (manifest `degraded_shards` + coverage
/// report). When every shard survives, the merged output is byte-identical
/// to the single-process run at any thread count.

struct CoordinatorOptions {
  workload::ScenarioConfig config;
  /// Coordinator checkpoint directory; worker directories ("shard-NN")
  /// live under it, the coordinator's own manifest at its top level.
  std::string directory;
  /// Merged log destination (written atomically at completion).
  std::string out_path;
  std::size_t workers = 2;
  /// Continue a previous sharded run (same rules as single-process
  /// resume, plus a worker-count match — the proxy assignment depends
  /// on it).
  bool resume = false;
  std::size_t commit_interval = 1;
  /// Restarts each shard may consume before it is abandoned.
  std::size_t restart_budget = 3;
  /// Declare a worker hung when no pipe frame arrives for this long
  /// (SIGKILL + normal restart path). 0 disables liveness enforcement —
  /// death detection by waitpid alone. Enforced only after a worker's
  /// first frame, so slow scenario construction cannot trip it.
  std::uint64_t heartbeat_ms = 0;
  /// Backoff before restart r is min(cap, base * 2^(r-1)).
  std::uint64_t restart_backoff_ms = 200;
  std::uint64_t restart_backoff_cap_ms = 5000;
  /// fault::make_worker_chaos profile the coordinator itself injects
  /// ("none", "worker-chaos", "worker-stall").
  std::string worker_chaos = "none";
  const util::CancelToken* cancel = nullptr;
  obs::Context* obs = nullptr;
};

struct ShardedRun {
  /// True when the run finished — possibly degraded; false when
  /// cancellation interrupted it (every shard checkpointed, resumable).
  bool completed = false;
  util::ArtifactInfo output;
  std::uint64_t records = 0;
  std::vector<ShardContribution> shards;
  std::vector<std::string> degraded_shards;
  /// Combined per-shard read stats (merge_shards' fold) — hand this to
  /// analysis::request_coverage so a degraded merge surfaces as damage.
  proxy::LogReadStats read_stats;
  // Supervision tallies (mirrored into obs counters when a context is
  // attached).
  std::uint64_t spawns = 0;
  std::uint64_t restarts = 0;
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t kills_injected = 0;
  std::uint64_t shards_abandoned = 0;
  /// Final coordinator manifest as saved to disk.
  durable::RunManifest manifest;
};

/// Runs the whole sharded generation. Throws std::runtime_error on a
/// refused resume, an unusable directory, or a merge integrity failure in
/// a surviving shard; worker death — including every worker dying — is
/// handled, not thrown.
ShardedRun run_sharded(const CoordinatorOptions& options);

/// "proxies SG-44, SG-47 (shard-01)" — human rendering of what degraded
/// shards cost, for the CLI's [DEGRADED DATA] block. Empty string when
/// nothing degraded.
std::string describe_degraded(const std::vector<ShardContribution>& shards);

}  // namespace syrwatch::shard
