#include "fault/profiles.h"

#include <stdexcept>

#include "policy/syria.h"
#include "util/rng.h"
#include "util/simtime.h"

namespace syrwatch::fault {

namespace {

// Proxy indices by appliance name (s-ip 82.137.200.(42+index)).
constexpr std::size_t kSg44 = 2;
constexpr std::size_t kSg47 = 5;

std::int64_t at(int month, int day, int hour = 0, int minute = 0) {
  return util::to_unix_seconds({2011, month, day, hour, minute, 0});
}

FaultSchedule sg47_outage(util::Rng root) {
  FaultSchedule schedule;
  // Degradation precedes death: error rates climb through the morning of
  // Aug 2 (multiplier drawn from a split stream), the appliance goes dark
  // at noon for ~36h, then serves with elevated errors while recovering.
  util::Rng pre = root.split(0);
  schedule.add_brownout(kSg47, at(8, 2, 6), at(8, 2, 12),
                        3.0 + 2.0 * pre.uniform01());
  schedule.add_outage(kSg47, at(8, 2, 12), at(8, 4, 0));
  util::Rng post = root.split(1);
  schedule.add_brownout(kSg47, at(8, 4, 0), at(8, 4, 6),
                        1.5 + post.uniform01());
  return schedule;
}

FaultSchedule rolling_brownout(util::Rng root) {
  FaultSchedule schedule;
  // One proxy per day across the seven contiguous August-window days
  // (Jul 31 .. Aug 6), working hours only, each with its own multiplier
  // stream so schedules for different proxies are uncorrelated.
  const int days[][2] = {{7, 31}, {8, 1}, {8, 2}, {8, 3},
                         {8, 4},  {8, 5}, {8, 6}};
  for (std::size_t p = 0; p < policy::kProxyCount; ++p) {
    util::Rng stream = root.split(p);
    schedule.add_brownout(p, at(days[p][0], days[p][1], 8),
                          at(days[p][0], days[p][1], 20),
                          2.5 + 3.5 * stream.uniform01());
  }
  return schedule;
}

FaultSchedule sg44_flapping(util::Rng root) {
  FaultSchedule schedule;
  util::Rng stream = root.split(0);
  schedule.add_flapping(kSg44, at(8, 3), at(8, 6), 1800, 0.65, stream());
  return schedule;
}

}  // namespace

FaultSchedule make_profile(std::string_view name, std::uint64_t seed) {
  // Root of the profile's RNG streams, decorrelated from the scenario's
  // generation streams by a fixed tag.
  const util::Rng root{util::mix64(seed ^ 0xFA17'5EEDULL)};
  if (name == "none") return FaultSchedule{};
  if (name == "sg47-outage") return sg47_outage(root);
  if (name == "rolling-brownout") return rolling_brownout(root);
  if (name == "sg44-flapping") return sg44_flapping(root);
  throw std::invalid_argument("fault::make_profile: unknown profile '" +
                              std::string(name) + "'");
}

const std::vector<std::string>& profile_names() {
  static const std::vector<std::string> names = {
      "none", "sg47-outage", "rolling-brownout", "sg44-flapping"};
  return names;
}

}  // namespace syrwatch::fault
