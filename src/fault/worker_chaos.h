#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace syrwatch::fault {

/// Process-level fault profiles for the multi-process sharded farm
/// (src/shard). Where fault::make_profile shapes the *simulated* farm's
/// health (proxy outages inside the log), worker-chaos shapes the *real*
/// farm's health: the coordinator consults the plan and SIGKILLs (or
/// stalls) its own worker processes at deterministic batch boundaries, so
/// the supervision machinery — death detection, backoff restart, resume,
/// degradation — is exercised by actual process death, reproducibly.
///
/// Like every other stochastic layer here, a (name, seed, workers,
/// total_batches) tuple always yields the same plan.

struct WorkerChaosEvent {
  enum class Kind : std::uint8_t {
    kKill,   ///< SIGKILL the worker after it reports this batch done.
    kStall,  ///< Worker sleeps at this batch boundary (first attempt only),
             ///< long enough to trip a configured heartbeat timeout.
  };
  std::size_t worker = 0;
  /// The event fires when the worker's batch with this index completes.
  std::size_t after_batch = 0;
  Kind kind = Kind::kKill;
};

struct WorkerChaosPlan {
  std::vector<WorkerChaosEvent> events;
  bool empty() const noexcept { return events.empty(); }
  /// One-line human rendering, e.g. "kill shard-01 after batch 7".
  std::string describe() const;
};

/// Builds the named plan:
///   none          empty plan; supervision stays a pure observer
///   worker-chaos  SIGKILL ceil(workers/2) distinct workers, once each, at
///                 hash-drawn batch boundaries — the canonical
///                 crash-and-recover exercise (CI's sharded resume leg)
///   worker-stall  one worker sleeps at a hash-drawn boundary on its first
///                 attempt, tripping the heartbeat timeout instead of
///                 dying — exercises liveness detection, not just waitpid
/// Throws std::invalid_argument for an unknown name.
WorkerChaosPlan make_worker_chaos(std::string_view name, std::uint64_t seed,
                                  std::size_t workers,
                                  std::size_t total_batches);

/// Names accepted by make_worker_chaos, in presentation order.
const std::vector<std::string>& worker_chaos_names();

}  // namespace syrwatch::fault
