#include "fault/worker_chaos.h"

#include <stdexcept>

#include "util/rng.h"

namespace syrwatch::fault {

namespace {

/// A batch boundary in [1, max(1, total_batches - 2)]: never batch 0 (a
/// kill before any durable progress is just a slow start, not a resume
/// exercise) and never the final batch (the worker would already be
/// finished by the time the kill lands).
std::size_t draw_batch(std::uint64_t h, std::size_t total_batches) {
  const std::size_t hi =
      total_batches > 2 ? total_batches - 2 : std::size_t{1};
  return 1 + static_cast<std::size_t>(h % hi);
}

}  // namespace

std::string WorkerChaosPlan::describe() const {
  if (events.empty()) return "no process faults";
  std::string out;
  for (const WorkerChaosEvent& event : events) {
    if (!out.empty()) out += "; ";
    out += event.kind == WorkerChaosEvent::Kind::kKill ? "kill" : "stall";
    out += " worker " + std::to_string(event.worker) + " after batch " +
           std::to_string(event.after_batch);
  }
  return out;
}

WorkerChaosPlan make_worker_chaos(std::string_view name, std::uint64_t seed,
                                  std::size_t workers,
                                  std::size_t total_batches) {
  if (name != "none" && name != "worker-chaos" && name != "worker-stall")
    throw std::invalid_argument("unknown worker-chaos profile \"" +
                                std::string(name) +
                                "\" (try: none, worker-chaos, worker-stall)");
  WorkerChaosPlan plan;
  if (name == "none" || workers == 0 || total_batches == 0) return plan;
  const std::uint64_t root = util::mix64(seed ^ 0xC4A0'5C4A05ULL);
  if (name == "worker-chaos") {
    // Kill every other worker (rounding up) exactly once, at independent
    // hash-drawn boundaries. Half the shards die so the merge must stitch
    // restarted and untouched spools together.
    const std::size_t victims = (workers + 1) / 2;
    for (std::size_t v = 0; v < victims; ++v) {
      WorkerChaosEvent event;
      event.worker = (v * 2) % workers;
      event.after_batch =
          draw_batch(util::mix64(root ^ (v + 1)), total_batches);
      event.kind = WorkerChaosEvent::Kind::kKill;
      plan.events.push_back(event);
    }
    return plan;
  }
  WorkerChaosEvent event;
  event.worker = util::mix64(root ^ 0x57A1) % workers;
  event.after_batch = draw_batch(util::mix64(root ^ 0x57A2), total_batches);
  event.kind = WorkerChaosEvent::Kind::kStall;
  plan.events.push_back(event);
  return plan;
}

const std::vector<std::string>& worker_chaos_names() {
  static const std::vector<std::string> names{"none", "worker-chaos",
                                              "worker-stall"};
  return names;
}

}  // namespace syrwatch::fault
