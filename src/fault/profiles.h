#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fault/schedule.h"

namespace syrwatch::fault {

/// Builds the named fault profile for the Summer-2011 observation window.
///
/// Profiles are the ScenarioConfig-facing entry point of the fault layer:
/// every stochastic choice (brownout multipliers, flap seeds) comes from
/// split RNG streams keyed on `seed`, so a (name, seed) pair always yields
/// the same schedule — and therefore the same log — for any thread count.
///
///   none             healthy farm; the schedule is empty and the whole
///                    fault layer stays inert (bit-identical to pre-fault
///                    behaviour)
///   sg47-outage      SG-47 browns out the morning of Aug 2, dies at noon,
///                    and returns degraded the morning of Aug 4 — a
///                    two-day hole in the proxy that owns the wikimedia
///                    affinity
///   rolling-brownout one proxy per day (Jul 31 .. Aug 6, proxy 0..6)
///                    runs a 08:00-20:00 brownout with a hash-drawn error
///                    multiplier
///   sg44-flapping    SG-44 (the Tor-censoring appliance) flaps on a
///                    30-minute duty cycle over Aug 3-5
///
/// Throws std::invalid_argument for an unknown name.
FaultSchedule make_profile(std::string_view name, std::uint64_t seed);

/// Names accepted by make_profile, in presentation order.
const std::vector<std::string>& profile_names();

}  // namespace syrwatch::fault
