#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/schedule.h"

namespace syrwatch::fault {

/// What a fault window does to its proxy.
enum class FaultKind : std::uint8_t {
  kOutage,    // proxy completely down: routes nothing, logs nothing
  kBrownout,  // proxy up but degraded: network-error rates multiplied
  kFlapping,  // proxy alternates up/down on a hash-derived duty cycle
};

std::string_view to_string(FaultKind kind) noexcept;

/// One contiguous [start, end) fault on one proxy. Flapping windows carry a
/// policy::OnOffSchedule whose off-periods are the down-periods, so the
/// up/down pattern is a pure function of (seed, time) — never of execution
/// order.
struct FaultWindow {
  std::size_t proxy_index = 0;
  std::int64_t start = 0;
  std::int64_t end = 0;
  FaultKind kind = FaultKind::kOutage;
  /// Brownouts: factor applied to the proxy's ErrorRates (>= 1 degrades).
  double error_multiplier = 1.0;
  /// Flapping: up/down pattern inside [start, end).
  policy::OnOffSchedule flap = policy::OnOffSchedule::constant(1.0);
};

/// Deterministic per-proxy fault timeline for a whole observation window.
///
/// The schedule is immutable once traffic starts and every query is a pure
/// function of (proxy, time), so it is safe to consult from concurrent
/// generation shards and cannot perturb the pipeline's thread-count
/// invariance (DESIGN.md §4.6). An empty schedule answers "healthy" to
/// every query — the strictly-opt-in contract the `none` profile relies on.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Proxy is hard-down throughout [start, end).
  void add_outage(std::size_t proxy_index, std::int64_t start,
                  std::int64_t end);

  /// Proxy stays up over [start, end) but its network-error rates are
  /// multiplied by `error_multiplier` (> 0; values > 1 degrade).
  void add_brownout(std::size_t proxy_index, std::int64_t start,
                    std::int64_t end, double error_multiplier);

  /// Proxy alternates up/down over [start, end): time is cut into
  /// `period_seconds` windows and each is independently up with probability
  /// `up_fraction`, decided by hashing the window index with `seed`.
  void add_flapping(std::size_t proxy_index, std::int64_t start,
                    std::int64_t end, std::int64_t period_seconds,
                    double up_fraction, std::uint64_t seed);

  bool empty() const noexcept { return windows_.empty(); }

  /// True when the proxy routes no traffic at `time`.
  bool is_down(std::size_t proxy_index, std::int64_t time) const noexcept;

  /// Product of the brownout multipliers covering (proxy, time); 1.0 when
  /// healthy. Only meaningful while the proxy is up.
  double error_multiplier(std::size_t proxy_index,
                          std::int64_t time) const noexcept;

  /// True if any window (of any kind) ever touches the proxy.
  bool affects(std::size_t proxy_index) const noexcept;

  const std::vector<FaultWindow>& windows() const noexcept { return windows_; }

  /// One line per window, for reports and the CLI.
  std::string describe() const;

 private:
  void check_window(std::int64_t start, std::int64_t end) const;

  std::vector<FaultWindow> windows_;
};

}  // namespace syrwatch::fault
