#include "fault/schedule.h"

#include <cstdio>
#include <stdexcept>

#include "util/simtime.h"

namespace syrwatch::fault {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kOutage: return "outage";
    case FaultKind::kBrownout: return "brownout";
    case FaultKind::kFlapping: return "flapping";
  }
  return "?";
}

void FaultSchedule::check_window(std::int64_t start, std::int64_t end) const {
  if (end <= start)
    throw std::invalid_argument("FaultSchedule: window end must be > start");
}

void FaultSchedule::add_outage(std::size_t proxy_index, std::int64_t start,
                               std::int64_t end) {
  check_window(start, end);
  FaultWindow window;
  window.proxy_index = proxy_index;
  window.start = start;
  window.end = end;
  window.kind = FaultKind::kOutage;
  windows_.push_back(std::move(window));
}

void FaultSchedule::add_brownout(std::size_t proxy_index, std::int64_t start,
                                 std::int64_t end, double error_multiplier) {
  check_window(start, end);
  if (error_multiplier <= 0.0)
    throw std::invalid_argument("FaultSchedule: multiplier must be > 0");
  FaultWindow window;
  window.proxy_index = proxy_index;
  window.start = start;
  window.end = end;
  window.kind = FaultKind::kBrownout;
  window.error_multiplier = error_multiplier;
  windows_.push_back(std::move(window));
}

void FaultSchedule::add_flapping(std::size_t proxy_index, std::int64_t start,
                                 std::int64_t end,
                                 std::int64_t period_seconds,
                                 double up_fraction, std::uint64_t seed) {
  check_window(start, end);
  FaultWindow window;
  window.proxy_index = proxy_index;
  window.start = start;
  window.end = end;
  window.kind = FaultKind::kFlapping;
  // Off-windows of the schedule are the proxy's down-periods; intensity is
  // irrelevant, only on/off matters.
  window.flap =
      policy::OnOffSchedule{seed, period_seconds, up_fraction, 1.0, 1.0};
  windows_.push_back(std::move(window));
}

bool FaultSchedule::is_down(std::size_t proxy_index,
                            std::int64_t time) const noexcept {
  for (const FaultWindow& window : windows_) {
    if (window.proxy_index != proxy_index) continue;
    if (time < window.start || time >= window.end) continue;
    if (window.kind == FaultKind::kOutage) return true;
    if (window.kind == FaultKind::kFlapping && !window.flap.on(time))
      return true;
  }
  return false;
}

double FaultSchedule::error_multiplier(std::size_t proxy_index,
                                       std::int64_t time) const noexcept {
  double multiplier = 1.0;
  for (const FaultWindow& window : windows_) {
    if (window.proxy_index != proxy_index ||
        window.kind != FaultKind::kBrownout)
      continue;
    if (time >= window.start && time < window.end)
      multiplier *= window.error_multiplier;
  }
  return multiplier;
}

bool FaultSchedule::affects(std::size_t proxy_index) const noexcept {
  for (const FaultWindow& window : windows_) {
    if (window.proxy_index == proxy_index) return true;
  }
  return false;
}

std::string FaultSchedule::describe() const {
  if (windows_.empty()) return "no faults scheduled\n";
  std::string out;
  for (const FaultWindow& window : windows_) {
    out += "proxy " + std::to_string(window.proxy_index) + ": " +
           std::string(to_string(window.kind)) + " " +
           util::format_datetime(window.start) + " .. " +
           util::format_datetime(window.end);
    if (window.kind == FaultKind::kBrownout) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, " (errors x%.2f)",
                    window.error_multiplier);
      out += buffer;
    } else if (window.kind == FaultKind::kFlapping) {
      out += " (period " + std::to_string(window.flap.window_seconds()) + "s)";
    }
    out += '\n';
  }
  return out;
}

}  // namespace syrwatch::fault
