#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace syrwatch::fault {

/// Damage model for an on-disk log, mimicking what the Telecomix leak
/// actually looks like: a degraded system's output, copied under pressure.
struct CorruptionConfig {
  std::uint64_t seed = 0;
  /// Probability a line is cut short at a random byte (torn write).
  double truncate_prob = 0.0;
  /// Probability a line has 1-4 random bytes overwritten (media damage).
  double garble_prob = 0.0;
  /// Probability a line vanishes entirely.
  double drop_prob = 0.0;
  /// Civil-date prefixes ("2011-08-03") whose lines vanish wholesale — the
  /// leak's missing day-files (Table 1 lists uneven per-day coverage).
  std::vector<std::string> drop_day_prefixes;
};

struct CorruptionStats {
  std::uint64_t lines = 0;
  std::uint64_t truncated = 0;
  std::uint64_t garbled = 0;
  std::uint64_t dropped = 0;       // by drop_prob
  std::uint64_t dropped_days = 0;  // by drop_day_prefixes
  std::uint64_t intact() const noexcept {
    return lines - truncated - garbled - dropped - dropped_days;
  }
};

/// Applies CorruptionConfig to a line stream, deterministically: each line's
/// fate is drawn from a child RNG split off the seed by line ordinal, so the
/// same (config, line sequence) always damages the same lines the same way —
/// corruption tests are exactly reproducible.
class LogCorruptor {
 public:
  explicit LogCorruptor(CorruptionConfig config);

  /// Damages the next line. Returns std::nullopt when the line is dropped.
  /// At most one damage kind applies per line (drop-day, drop, truncate,
  /// garble — checked in that order).
  std::optional<std::string> corrupt(std::string_view line);

  /// Convenience: damages every line of a whole log text (lines split on
  /// '\n'); dropped lines disappear from the output.
  std::string corrupt_log(std::string_view text);

  const CorruptionStats& stats() const noexcept { return stats_; }

 private:
  CorruptionConfig config_;
  util::Rng root_;
  std::uint64_t ordinal_ = 0;
  CorruptionStats stats_;
};

}  // namespace syrwatch::fault
