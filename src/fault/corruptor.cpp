#include "fault/corruptor.h"

namespace syrwatch::fault {

LogCorruptor::LogCorruptor(CorruptionConfig config)
    : config_(std::move(config)), root_(util::mix64(config_.seed ^ 0xC0BB)) {}

std::optional<std::string> LogCorruptor::corrupt(std::string_view line) {
  ++stats_.lines;
  util::Rng rng = root_.split(ordinal_++);

  for (const std::string& prefix : config_.drop_day_prefixes) {
    if (line.substr(0, prefix.size()) == prefix) {
      ++stats_.dropped_days;
      return std::nullopt;
    }
  }
  if (rng.bernoulli(config_.drop_prob)) {
    ++stats_.dropped;
    return std::nullopt;
  }
  if (!line.empty() && rng.bernoulli(config_.truncate_prob)) {
    ++stats_.truncated;
    return std::string(line.substr(0, rng.uniform(line.size())));
  }
  if (!line.empty() && rng.bernoulli(config_.garble_prob)) {
    ++stats_.garbled;
    std::string damaged(line);
    const std::uint64_t bytes = 1 + rng.uniform(4);
    for (std::uint64_t i = 0; i < bytes; ++i) {
      // Any byte but '\n', which would silently split the line in two.
      char byte;
      do {
        byte = static_cast<char>(rng.uniform(256));
      } while (byte == '\n');
      damaged[rng.uniform(damaged.size())] = byte;
    }
    return damaged;
  }
  return std::string(line);
}

std::string LogCorruptor::corrupt_log(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t newline = text.find('\n', pos);
    const std::size_t end = newline == std::string_view::npos ? text.size()
                                                              : newline;
    if (end > pos || newline != std::string_view::npos) {
      if (const auto line = corrupt(text.substr(pos, end - pos))) {
        out += *line;
        out += '\n';
      }
    }
    if (newline == std::string_view::npos) break;
    pos = newline + 1;
  }
  return out;
}

}  // namespace syrwatch::fault
