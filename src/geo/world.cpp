#include "geo/world.h"

#include <stdexcept>

namespace syrwatch::geo {

namespace {

net::Ipv4Subnet subnet(const char* text) {
  const auto parsed = net::Ipv4Subnet::parse(text);
  if (!parsed) throw std::logic_error(std::string("bad subnet literal: ") + text);
  return *parsed;
}

}  // namespace

const std::vector<net::Ipv4Subnet>& israeli_table12_subnets() {
  static const std::vector<net::Ipv4Subnet> subnets = {
      subnet("84.229.0.0/16"),   subnet("46.120.0.0/15"),
      subnet("89.138.0.0/15"),   subnet("212.235.64.0/19"),
      subnet("212.150.0.0/16"),
  };
  return subnets;
}

const std::vector<net::Ipv4Subnet>& israeli_extra_subnets() {
  static const std::vector<net::Ipv4Subnet> subnets = {
      subnet("80.179.0.0/16"),
      subnet("62.219.0.0/16"),
      subnet("192.114.0.0/15"),
  };
  return subnets;
}

GeoIpDb build_world_geoip() {
  GeoIpDb db;
  for (const auto& s : israeli_table12_subnets()) db.add(s, kIsrael);
  for (const auto& s : israeli_extra_subnets()) db.add(s, kIsrael);

  // Representative blocks for the remaining countries of Table 11 plus
  // filler hosting space. The precise ranges are synthetic; the analysis
  // only needs a stable subnet -> country mapping.
  db.add(subnet("168.187.0.0/16"), kKuwait);
  db.add(subnet("77.88.0.0/18"), kRussia);
  db.add(subnet("95.163.32.0/19"), kRussia);
  db.add(subnet("212.58.224.0/19"), kUnitedKingdom);
  db.add(subnet("94.75.192.0/18"), kNetherlands);
  db.add(subnet("31.204.128.0/17"), kNetherlands);
  db.add(subnet("103.10.60.0/22"), kSingapore);
  db.add(subnet("78.128.0.0/17"), kBulgaria);
  db.add(subnet("8.8.0.0/16"), kUnitedStates);
  db.add(subnet("64.4.0.0/16"), kUnitedStates);
  db.add(subnet("199.59.148.0/22"), kUnitedStates);
  db.add(subnet("217.160.0.0/16"), kGermany);
  db.add(subnet("88.190.0.0/16"), kFrance);
  db.add(subnet("31.9.0.0/16"), kSyria);
  db.add(subnet("82.137.192.0/18"), kSyria);  // STE backbone incl. the proxies
  return db;
}

}  // namespace syrwatch::geo
