#pragma once

#include <string>
#include <vector>

#include "geo/geoip.h"

namespace syrwatch::geo {

/// Country names used across the library (kept as plain strings to mirror
/// the GeoIP database the paper uses).
inline constexpr const char* kIsrael = "Israel";
inline constexpr const char* kSyria = "Syria";
inline constexpr const char* kKuwait = "Kuwait";
inline constexpr const char* kRussia = "Russian Federation";
inline constexpr const char* kUnitedKingdom = "United Kingdom";
inline constexpr const char* kNetherlands = "Netherlands";
inline constexpr const char* kSingapore = "Singapore";
inline constexpr const char* kBulgaria = "Bulgaria";
inline constexpr const char* kUnitedStates = "United States";
inline constexpr const char* kGermany = "Germany";
inline constexpr const char* kFrance = "France";

/// The five Israeli subnets of the paper's Table 12, in table order.
const std::vector<net::Ipv4Subnet>& israeli_table12_subnets();

/// Additional Israeli blocks (beyond Table 12) used so that allowed Israeli
/// traffic exists — Table 11 records 72,416 *allowed* Israeli requests.
const std::vector<net::Ipv4Subnet>& israeli_extra_subnets();

/// Builds the synthetic world registry: Israeli blocks (Table 12 + extras)
/// and representative blocks for every country of Table 11 plus common
/// hosting countries. This is the database both the policy (to pick Israeli
/// targets) and the analysis (to compute censorship ratios) consult — the
/// same role MaxMind plays in the paper.
GeoIpDb build_world_geoip();

}  // namespace syrwatch::geo
