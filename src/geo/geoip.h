#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "net/subnet.h"

namespace syrwatch::geo {

/// Offline IP-geolocation database (our stand-in for MaxMind GeoIP, which
/// the paper uses to geo-localize direct-IP requests in §5.4).
///
/// Lookup is longest-prefix match over registered CIDR blocks, implemented
/// as one hash map per populated prefix length probed from /32 down — at
/// most 33 probes, in practice 3–4 for our synthetic registry.
class GeoIpDb {
 public:
  /// Registers a block. Later registrations of the same exact block
  /// overwrite earlier ones; overlapping blocks resolve by longest prefix.
  void add(net::Ipv4Subnet subnet, std::string country);

  /// Country of the longest matching block, or nullopt when unregistered.
  std::optional<std::string_view> lookup(net::Ipv4Addr addr) const noexcept;

  /// All blocks registered for a country (order of registration).
  std::vector<net::Ipv4Subnet> blocks_of(std::string_view country) const;

  std::size_t block_count() const noexcept;

 private:
  // prefix length -> (masked network value -> country)
  std::unordered_map<int, std::unordered_map<std::uint32_t, std::string>>
      by_prefix_;
  std::vector<std::pair<net::Ipv4Subnet, std::string>> blocks_;
};

}  // namespace syrwatch::geo
