#include "geo/geoip.h"

namespace syrwatch::geo {

void GeoIpDb::add(net::Ipv4Subnet subnet, std::string country) {
  by_prefix_[subnet.prefix_len()][subnet.network().value()] = country;
  blocks_.emplace_back(subnet, std::move(country));
}

std::optional<std::string_view> GeoIpDb::lookup(
    net::Ipv4Addr addr) const noexcept {
  for (int len = 32; len >= 0; --len) {
    const auto level = by_prefix_.find(len);
    if (level == by_prefix_.end()) continue;
    const std::uint32_t mask =
        len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
    const auto hit = level->second.find(addr.value() & mask);
    if (hit != level->second.end()) return std::string_view{hit->second};
  }
  return std::nullopt;
}

std::vector<net::Ipv4Subnet> GeoIpDb::blocks_of(
    std::string_view country) const {
  std::vector<net::Ipv4Subnet> out;
  for (const auto& [subnet, name] : blocks_) {
    if (name == country) out.push_back(subnet);
  }
  return out;
}

std::size_t GeoIpDb::block_count() const noexcept { return blocks_.size(); }

}  // namespace syrwatch::geo
