#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ipv4.h"
#include "util/rng.h"

namespace syrwatch::tor {

/// One Tor relay as described by the network-status documents the paper
/// matches against (§7.1): IP, OR port for circuit traffic, optional
/// directory port for unencrypted HTTP signaling.
struct Relay {
  net::Ipv4Addr address;
  std::uint16_t or_port = 9001;
  std::uint16_t dir_port = 9030;  // 0 when the relay serves no directory
  bool is_authority = false;
};

/// Synthetic equivalent of the Tor metrics server descriptors / consensus
/// archives: a dated registry of <IP, port> endpoints. The paper extracts
/// <node IP, port, date> triplets from those archives and matches them
/// against the logs to label Tor traffic; `contains()` provides exactly
/// that predicate. Dates are omitted from the synthetic registry because
/// the simulated window (9 days) is far shorter than relay churn.
class RelayDirectory {
 public:
  /// Builds `relay_count` relays deterministically from the seed.
  /// OR ports follow the real-world mixture (mostly 9001, some 443/9002),
  /// ~70% of relays publish a directory port, and the first ten relays are
  /// marked as directory authorities.
  static RelayDirectory synthesize(std::size_t relay_count,
                                   std::uint64_t seed);

  const std::vector<Relay>& relays() const noexcept { return relays_; }
  std::size_t size() const noexcept { return relays_.size(); }

  /// True when <ip, port> is a known relay endpoint (OR or directory port).
  bool contains(net::Ipv4Addr ip, std::uint16_t port) const noexcept;

  /// The relay behind an endpoint, if any.
  std::optional<Relay> find(net::Ipv4Addr ip, std::uint16_t port) const;

  /// Uniformly random relay.
  const Relay& sample(util::Rng& rng) const noexcept;

 private:
  std::vector<Relay> relays_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_endpoint_;

  static std::uint64_t endpoint_key(net::Ipv4Addr ip,
                                    std::uint16_t port) noexcept {
    return (std::uint64_t{ip.value()} << 16) | port;
  }
};

/// Directory-request path grammar (Torhttp). These are the URL prefixes the
/// paper greps for ("/tor/server/...", "/tor/keys").
std::string directory_path(util::Rng& rng);
bool is_directory_path(std::string_view path) noexcept;

}  // namespace syrwatch::tor
