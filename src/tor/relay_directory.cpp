#include "tor/relay_directory.h"

#include "util/strings.h"

namespace syrwatch::tor {

RelayDirectory RelayDirectory::synthesize(std::size_t relay_count,
                                          std::uint64_t seed) {
  RelayDirectory dir;
  util::Rng rng{seed};
  std::unordered_set<std::uint32_t> used_ips;
  dir.relays_.reserve(relay_count);
  for (std::size_t i = 0; i < relay_count; ++i) {
    Relay relay;
    // Relays live in "western" unicast space, disjoint from the workload's
    // other address pools; retry on collision so endpoints stay unique.
    do {
      const auto a = static_cast<std::uint8_t>(rng.uniform_range(5, 95));
      const auto b = static_cast<std::uint8_t>(rng.uniform(256));
      const auto c = static_cast<std::uint8_t>(rng.uniform(256));
      const auto d = static_cast<std::uint8_t>(rng.uniform_range(1, 254));
      relay.address = net::Ipv4Addr{a, b, c, d};
    } while (!used_ips.insert(relay.address.value()).second);

    const double port_pick = rng.uniform01();
    if (port_pick < 0.80) relay.or_port = 9001;
    else if (port_pick < 0.90) relay.or_port = 443;
    else if (port_pick < 0.95) relay.or_port = 9002;
    else relay.or_port = static_cast<std::uint16_t>(rng.uniform_range(9003, 9099));

    relay.dir_port = rng.bernoulli(0.70)
                         ? (rng.bernoulli(0.8) ? std::uint16_t{9030}
                                               : std::uint16_t{80})
                         : std::uint16_t{0};
    relay.is_authority = i < 10;
    if (relay.is_authority && relay.dir_port == 0) relay.dir_port = 9030;

    const auto idx = static_cast<std::uint32_t>(dir.relays_.size());
    dir.by_endpoint_.emplace(endpoint_key(relay.address, relay.or_port), idx);
    if (relay.dir_port != 0)
      dir.by_endpoint_.emplace(endpoint_key(relay.address, relay.dir_port),
                               idx);
    dir.relays_.push_back(relay);
  }
  return dir;
}

bool RelayDirectory::contains(net::Ipv4Addr ip,
                              std::uint16_t port) const noexcept {
  return by_endpoint_.count(endpoint_key(ip, port)) != 0;
}

std::optional<Relay> RelayDirectory::find(net::Ipv4Addr ip,
                                          std::uint16_t port) const {
  const auto it = by_endpoint_.find(endpoint_key(ip, port));
  if (it == by_endpoint_.end()) return std::nullopt;
  return relays_[it->second];
}

const Relay& RelayDirectory::sample(util::Rng& rng) const noexcept {
  return relays_[rng.uniform(relays_.size())];
}

std::string directory_path(util::Rng& rng) {
  static const char* kPaths[] = {
      "/tor/server/authority.z",
      "/tor/server/all.z",
      "/tor/status-vote/current/consensus.z",
      "/tor/keys/all.z",
      "/tor/keys/authority.z",
      "/tor/server/fp/0123456789abcdef.z",
  };
  return kPaths[rng.uniform(std::size(kPaths))];
}

bool is_directory_path(std::string_view path) noexcept {
  return util::starts_with(path, "/tor/");
}

}  // namespace syrwatch::tor
