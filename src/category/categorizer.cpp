#include "category/categorizer.h"

#include "util/strings.h"

namespace syrwatch::category {

std::string_view to_string(Category c) noexcept {
  switch (c) {
    case Category::kUncategorized: return "NA";
    case Category::kContentServer: return "Content Server";
    case Category::kStreamingMedia: return "Streaming Media";
    case Category::kInstantMessaging: return "Instant Messaging";
    case Category::kPortalSites: return "Portal Sites";
    case Category::kGeneralNews: return "General News";
    case Category::kSocialNetworking: return "Social Networking";
    case Category::kGames: return "Games";
    case Category::kEducationReference: return "Education/Reference";
    case Category::kOnlineShopping: return "Online Shopping";
    case Category::kInternetServices: return "Internet Services";
    case Category::kEntertainment: return "Entertainment";
    case Category::kForums: return "Forum/Bulletin Boards";
    case Category::kAnonymizer: return "Anonymizer";
    case Category::kSearchEngines: return "Search Engines";
    case Category::kSoftwareHardware: return "Software/Hardware";
    case Category::kPornography: return "Pornography";
    case Category::kAdsMarketing: return "Ads/Marketing";
    case Category::kFileSharing: return "File Sharing";
    case Category::kGovernment: return "Government";
    case Category::kTravel: return "Travel";
    case Category::kReligion: return "Religion";
    case Category::kCount: break;
  }
  return "NA";
}

void Categorizer::add(std::string_view domain, Category category) {
  by_domain_[util::to_lower(domain)] = category;
}

Category Categorizer::classify(std::string_view host) const {
  const std::string lowered = util::to_lower(host);
  std::string_view probe{lowered};
  while (!probe.empty()) {
    const auto it = by_domain_.find(std::string{probe});
    if (it != by_domain_.end()) return it->second;
    const auto dot = probe.find('.');
    if (dot == std::string_view::npos) break;
    probe.remove_prefix(dot + 1);
  }
  return Category::kUncategorized;
}

}  // namespace syrwatch::category
