#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace syrwatch::category {

/// Website content categories. The paper could not use Blue Coat's own
/// database (the Syrian proxies had no access to it) and fell back on
/// McAfee TrustedSource to label censored hosts; this enum covers every
/// category named in Fig. 3, Table 9 and §7.2.
enum class Category : std::uint8_t {
  kUncategorized = 0,
  kContentServer,       // CDNs: cloudfront.net, googleusercontent.com, ...
  kStreamingMedia,
  kInstantMessaging,
  kPortalSites,
  kGeneralNews,
  kSocialNetworking,
  kGames,
  kEducationReference,
  kOnlineShopping,
  kInternetServices,
  kEntertainment,
  kForums,
  kAnonymizer,          // web proxies / VPN endpoints (§7.2)
  kSearchEngines,
  kSoftwareHardware,
  kPornography,
  kAdsMarketing,
  kFileSharing,         // BitTorrent trackers etc. (§7.3)
  kGovernment,
  kTravel,
  kReligion,
  kCount,               // sentinel; keep last
};

inline constexpr std::size_t kCategoryCount =
    static_cast<std::size_t>(Category::kCount);

/// Human-readable label matching the paper's terminology
/// ("Instant Messaging", "Streaming Media", ...).
std::string_view to_string(Category c) noexcept;

/// Suffix-matching domain categorizer — our stand-in for McAfee
/// TrustedSource. Exact hosts win over parent-domain entries
/// ("upload.youtube.com" may differ from "youtube.com"); unknown hosts
/// report kUncategorized, which analyses render as "NA" as the paper does.
class Categorizer {
 public:
  /// Registers a domain (and implicitly its subdomains).
  void add(std::string_view domain, Category category);

  /// Longest-suffix lookup: exact host, then each parent domain.
  Category classify(std::string_view host) const;

  /// True when the host classifies as kAnonymizer.
  bool is_anonymizer(std::string_view host) const {
    return classify(host) == Category::kAnonymizer;
  }

  std::size_t size() const noexcept { return by_domain_.size(); }

 private:
  std::unordered_map<std::string, Category> by_domain_;
};

}  // namespace syrwatch::category
