#include "policy/schedule.h"

#include <stdexcept>

#include "util/rng.h"

namespace syrwatch::policy {

OnOffSchedule::OnOffSchedule(std::uint64_t seed, std::int64_t window_seconds,
                             double on_fraction, double min_intensity,
                             double max_intensity)
    : seed_(seed),
      window_(window_seconds),
      on_fraction_(on_fraction),
      min_intensity_(min_intensity),
      max_intensity_(max_intensity),
      constant_(false) {
  if (window_seconds <= 0)
    throw std::invalid_argument("OnOffSchedule: window must be positive");
  if (on_fraction < 0.0 || on_fraction > 1.0)
    throw std::invalid_argument("OnOffSchedule: on_fraction outside [0,1]");
  if (min_intensity > max_intensity)
    throw std::invalid_argument("OnOffSchedule: min > max intensity");
}

OnOffSchedule OnOffSchedule::constant(double intensity) {
  OnOffSchedule s;
  s.min_intensity_ = s.max_intensity_ = intensity;
  s.constant_ = true;
  return s;
}

double OnOffSchedule::intensity(std::int64_t time) const noexcept {
  if (constant_) return max_intensity_;
  const auto window_index =
      static_cast<std::uint64_t>(time / window_) ;
  const std::uint64_t h = util::mix64(seed_ ^ util::mix64(window_index));
  const double on_draw =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
  if (on_draw >= on_fraction_) return 0.0;
  const std::uint64_t h2 = util::mix64(h);
  const double level = static_cast<double>(h2 >> 11) * 0x1.0p-53;
  return min_intensity_ + level * (max_intensity_ - min_intensity_);
}

}  // namespace syrwatch::policy
