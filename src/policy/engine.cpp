#include "policy/engine.h"

#include "util/strings.h"

namespace syrwatch::policy {

std::string_view to_string(PolicyAction action) noexcept {
  switch (action) {
    case PolicyAction::kAllow: return "allow";
    case PolicyAction::kDeny: return "deny";
    case PolicyAction::kRedirect: return "redirect";
  }
  return "allow";
}

namespace {

/// Visitor deciding whether one matcher fires for a request.
struct MatchVisitor {
  const FilterRequest& request;
  util::Rng& rng;

  bool operator()(const KeywordRule& r) const {
    return util::icontains(request.url->filter_text(), r.keyword);
  }
  bool operator()(const DomainRule& r) const {
    return util::host_matches_domain(request.url->host, r.domain);
  }
  bool operator()(const SubnetRule& r) const {
    return request.dest_ip && r.subnet.contains(*request.dest_ip);
  }
  bool operator()(const IpRule& r) const {
    return request.dest_ip && *request.dest_ip == r.address;
  }
  bool operator()(const CategoryRule& r) const {
    return !request.custom_category.empty() &&
           request.custom_category == r.category;
  }
  bool operator()(const PortRule& r) const {
    return request.url->port == r.port;
  }
  bool operator()(const EndpointSetRule& r) const {
    if (!request.dest_ip || !r.endpoints) return false;
    if (!r.endpoints->contains(
            EndpointSetRule::key(*request.dest_ip, request.url->port)))
      return false;
    const double p = r.schedule.intensity(request.time);
    return p >= 1.0 || rng.bernoulli(p);
  }
};

}  // namespace

PolicyEngine::PolicyEngine(std::vector<Rule> rules)
    : rules_(std::move(rules)) {}

std::uint32_t PolicyEngine::add(Rule rule) {
  rules_.push_back(std::move(rule));
  return static_cast<std::uint32_t>(rules_.size() - 1);
}

PolicyDecision PolicyEngine::evaluate(const FilterRequest& request,
                                      util::Rng& rng) const noexcept {
  for (std::uint32_t i = 0; i < rules_.size(); ++i) {
    if (std::visit(MatchVisitor{request, rng}, rules_[i].matcher))
      return {rules_[i].action, i};
  }
  return {};
}

bool PolicyEngine::rule_matches(std::uint32_t index,
                                const FilterRequest& request,
                                util::Rng& rng) const {
  return std::visit(MatchVisitor{request, rng}, rules_.at(index).matcher);
}

}  // namespace syrwatch::policy
