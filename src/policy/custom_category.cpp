#include "policy/custom_category.h"

#include <algorithm>

#include "util/strings.h"

namespace syrwatch::policy {

void CustomCategoryList::add_host(std::string_view host,
                                  std::string_view category) {
  hosts_[util::to_lower(host)] = std::string(category);
}

void CustomCategoryList::add_page(std::string_view host, std::string_view path,
                                  std::vector<std::string> queries,
                                  std::string_view category) {
  PageEntry entry{std::move(queries), std::string(category)};
  pages_[util::to_lower(host)][std::string(path)] = std::move(entry);
}

std::string_view CustomCategoryList::classify(
    const net::Url& url) const noexcept {
  const auto host_it = hosts_.find(url.host);
  if (host_it != hosts_.end()) return host_it->second;

  const auto site_it = pages_.find(url.host);
  if (site_it == pages_.end()) return {};
  const auto page_it = site_it->second.find(url.path);
  if (page_it == site_it->second.end()) return {};
  const PageEntry& entry = page_it->second;
  if (entry.queries.empty())
    return url.query.empty() ? std::string_view{entry.category}
                             : std::string_view{};
  const bool hit = std::find(entry.queries.begin(), entry.queries.end(),
                             url.query) != entry.queries.end();
  return hit ? std::string_view{entry.category} : std::string_view{};
}

std::size_t CustomCategoryList::entry_count() const noexcept {
  std::size_t n = hosts_.size();
  for (const auto& [host, paths] : pages_) n += paths.size();
  return n;
}

}  // namespace syrwatch::policy
