#pragma once

#include <cstdint>
#include <vector>

#include "policy/rule.h"
#include "util/rng.h"

namespace syrwatch::policy {

/// The outcome of evaluating a request against the policy.
struct PolicyDecision {
  PolicyAction action = PolicyAction::kAllow;
  /// Index of the matched rule in the engine, or kNoRule when allowed by
  /// default.
  static constexpr std::uint32_t kNoRule = ~std::uint32_t{0};
  std::uint32_t rule_index = kNoRule;

  bool censored() const noexcept { return action != PolicyAction::kAllow; }
};

/// First-match policy evaluator (Blue Coat layer semantics): rules are
/// checked in insertion order and the first matching rule decides the
/// request. The Rng parameter feeds scheduled (probabilistic) rules only;
/// deterministic rules never consume randomness, so a policy without
/// scheduled rules is a pure function of the request.
class PolicyEngine {
 public:
  PolicyEngine() = default;
  explicit PolicyEngine(std::vector<Rule> rules);

  /// Appends a rule; returns its index.
  std::uint32_t add(Rule rule);

  const std::vector<Rule>& rules() const noexcept { return rules_; }
  const Rule& rule(std::uint32_t index) const { return rules_.at(index); }

  PolicyDecision evaluate(const FilterRequest& request,
                          util::Rng& rng) const noexcept;

  /// True when any single rule (evaluated in isolation) matches — used by
  /// tests and the rule-order ablation.
  bool rule_matches(std::uint32_t index, const FilterRequest& request,
                    util::Rng& rng) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace syrwatch::policy
