#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "category/categorizer.h"
#include "policy/custom_category.h"
#include "policy/engine.h"
#include "tor/relay_directory.h"

namespace syrwatch::policy {

/// Number of leaked proxies (SG-42 ... SG-48) and their display names.
inline constexpr std::size_t kProxyCount = 7;
std::string proxy_name(std::size_t proxy_index);  // 0 -> "SG-42"

/// The five blacklisted keywords recovered in §5.4 (Table 10).
const std::vector<std::string>& censored_keywords();

/// A domain on the URL-filter blacklist, labelled with the TrustedSource
/// category the paper assigns in Table 9.
struct SuspectedDomain {
  std::string domain;
  category::Category category = category::Category::kUncategorized;
};

/// The 105-entry suspected-domain blacklist of §5.4: every domain the paper
/// names, padded with synthetic domains so the per-category counts track
/// Table 9's distribution (General News and uncategorized hosts dominate).
const std::vector<SuspectedDomain>& suspected_domains();

/// A Facebook page targeted by the "Blocked sites" custom category
/// (Table 14), with the observed redirect/allowed/proxied request counts
/// that the workload model uses as mixture weights.
struct BlockedPage {
  std::string page;             // path component, e.g. "Syrian.Revolution"
  std::uint32_t censored = 0;   // requests hitting the categorized form
  std::uint32_t allowed = 0;    // requests with uncategorized query variants
  std::uint32_t proxied = 0;
};
const std::vector<BlockedPage>& facebook_blocked_pages();

/// Whole hosts carried by the same custom category (Table 7):
/// upload.youtube.com, competition.mbc.net, sharek.aljazeera.net.
const std::vector<std::string>& redirected_hosts();

/// Anonymizer-service endpoints blocked by destination address — §4 finds
/// that 82% of censored HTTPS requests address IPs belonging to an Israeli
/// AS or an Anonymizer service. Shared with the HTTPS workload component.
const std::vector<net::Ipv4Addr>& anonymizer_endpoint_ips();

/// Canonical label the policy matches on; proxies render it with their own
/// configured naming (see ProxyPolicy).
inline constexpr const char* kBlockedSitesLabel = "Blocked sites";

/// One proxy's filtering configuration. The leak shows two configuration
/// families: SG-43/SG-48 name the default category "none" and the custom
/// one "Blocked sites"; the other five use "unavailable" and
/// "Blocked sites; unavailable" (§4, §5.2).
struct ProxyPolicy {
  PolicyEngine engine;
  std::string default_category_label;
  std::string blocked_category_label;
};

/// The full inferred Summer-2011 deployment: a shared custom-category URL
/// list plus seven per-proxy engines. All proxies share the base rules
/// (custom category -> redirect; 5 keywords; 105 domains; .il; Israeli
/// subnets/IPs); SG-44 additionally carries the scheduled Tor-relay
/// endpoint rule (99.9% of censored Tor traffic, Fig. 8/9) and SG-48 a
/// trace-level one (the remaining 0.1%).
struct SyriaPolicy {
  CustomCategoryList custom_categories;
  std::array<ProxyPolicy, kProxyCount> proxies;
};

SyriaPolicy build_syria_policy(const tor::RelayDirectory& relays,
                               std::uint64_t seed);

/// The December 2012 escalation (paper's Remarks: "Starting December 2012,
/// Tor relays and bridges have reportedly been blocked"): every proxy gets
/// an always-on rule denying all known relay endpoints (OR *and* directory
/// ports, killing Torhttp too) plus a blanket rule for the default OR port
/// — the behaviour the Tor censorship wiki records. Returns the number of
/// rules added.
std::size_t apply_december_2012_update(SyriaPolicy& policy,
                                       const tor::RelayDirectory& relays);

/// Indices of the proxies carrying Tor rules, for tests and analyses.
inline constexpr std::size_t kTorCensorProxy = 2;   // SG-44
inline constexpr std::size_t kTorTraceProxy = 6;    // SG-48
/// Proxy receiving domain-affinity redirected traffic (metacafe, skype
/// surges) — SG-48, per §5.2.
inline constexpr std::size_t kAffinityProxy = 6;

}  // namespace syrwatch::policy
