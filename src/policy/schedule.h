#pragma once

#include <cstdint>

namespace syrwatch::policy {

/// Deterministic on/off intensity schedule.
///
/// Divides time into fixed windows; each window is independently "on" with
/// probability `on_fraction` (decided by hashing the window index with the
/// seed), and an on-window applies a hash-derived intensity in
/// [min_intensity, max_intensity]. Off-windows have intensity 0. This is
/// the minimal machinery that reproduces the paper's Fig. 9: a rule whose
/// enforcement alternates between aggressive, mild, and absent over hours.
class OnOffSchedule {
 public:
  OnOffSchedule() = default;
  OnOffSchedule(std::uint64_t seed, std::int64_t window_seconds,
                double on_fraction, double min_intensity,
                double max_intensity);

  /// Always-on schedule with fixed intensity.
  static OnOffSchedule constant(double intensity);

  /// Enforcement probability in [0, 1] at the given time.
  double intensity(std::int64_t time) const noexcept;

  /// Whether the window covering `time` is an on-window. Rules read the
  /// graded intensity(); consumers that only need the binary state — e.g.
  /// fault::FaultSchedule's flapping windows, where off means the proxy is
  /// down — use this.
  bool on(std::int64_t time) const noexcept { return intensity(time) > 0.0; }

  std::int64_t window_seconds() const noexcept { return window_; }

 private:
  std::uint64_t seed_ = 0;
  std::int64_t window_ = 3600;
  double on_fraction_ = 1.0;
  double min_intensity_ = 1.0;
  double max_intensity_ = 1.0;
  bool constant_ = true;
};

}  // namespace syrwatch::policy
