#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/url.h"

namespace syrwatch::policy {

/// Blue Coat local custom-category list.
///
/// The Syrian proxies had no access to Blue Coat's category database; the
/// only category at work was a locally configured one ("Blocked sites")
/// that targeted a *narrow* set of URLs — specific Facebook pages under
/// specific path+query combinations, plus a few whole hosts
/// (upload.youtube.com, competition.mbc.net, sharek.aljazeera.net). The
/// paper shows the same page slipping through when extra query parameters
/// are appended (§6), which is why entries here match path and query
/// *exactly* rather than by prefix.
class CustomCategoryList {
 public:
  /// Categorizes every URL on `host` (any path/query).
  void add_host(std::string_view host, std::string_view category);

  /// Categorizes exact (host, path, query) combinations. An empty query
  /// list means "path with empty query only".
  void add_page(std::string_view host, std::string_view path,
                std::vector<std::string> queries, std::string_view category);

  /// The category label for a URL, or empty when uncategorized.
  std::string_view classify(const net::Url& url) const noexcept;

  std::size_t entry_count() const noexcept;

 private:
  std::unordered_map<std::string, std::string> hosts_;
  // host -> path -> exact query strings -> category
  struct PageEntry {
    std::vector<std::string> queries;
    std::string category;
  };
  std::unordered_map<std::string, std::unordered_map<std::string, PageEntry>>
      pages_;
};

}  // namespace syrwatch::policy
