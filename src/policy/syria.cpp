#include "policy/syria.h"

#include <memory>
#include <stdexcept>
#include <unordered_set>

namespace syrwatch::policy {

namespace {

using category::Category;

net::Ipv4Subnet subnet(const char* text) {
  const auto parsed = net::Ipv4Subnet::parse(text);
  if (!parsed) throw std::logic_error("bad subnet literal");
  return *parsed;
}

net::Ipv4Addr addr(const char* text) {
  const auto parsed = net::Ipv4Addr::parse(text);
  if (!parsed) throw std::logic_error("bad address literal");
  return *parsed;
}

}  // namespace

std::string proxy_name(std::size_t proxy_index) {
  if (proxy_index >= kProxyCount)
    throw std::out_of_range("proxy_name: index out of range");
  return "SG-" + std::to_string(42 + proxy_index);
}

const std::vector<std::string>& censored_keywords() {
  static const std::vector<std::string> keywords = {
      "proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"};
  return keywords;
}

const std::vector<SuspectedDomain>& suspected_domains() {
  // The paper recovers 105 domains for which *no* request is ever allowed
  // (§5.4, Tables 8 and 9). Every domain the paper names is pinned below;
  // the remainder are synthetic stand-ins distributed so the per-category
  // counts follow Table 9's shape (General News and uncategorized hosts
  // dominate the list even though IM/Streaming dominate request volume).
  static const std::vector<SuspectedDomain> domains = [] {
    std::vector<SuspectedDomain> d;
    // --- Named in the paper -------------------------------------------
    d.push_back({"metacafe.com", Category::kStreamingMedia});
    d.push_back({"skype.com", Category::kInstantMessaging});
    d.push_back({"messenger.live.com", Category::kInstantMessaging});
    d.push_back({"wikimedia.org", Category::kEducationReference});
    d.push_back({"amazon.com", Category::kOnlineShopping});
    d.push_back({"aawsat.com", Category::kGeneralNews});
    d.push_back({"jumblo.com", Category::kInternetServices});
    d.push_back({"jeddahbikers.com", Category::kForums});
    d.push_back({"badoo.com", Category::kSocialNetworking});
    d.push_back({"islamway.com", Category::kReligion});
    d.push_back({"netlog.com", Category::kSocialNetworking});
    d.push_back({"all4syria.info", Category::kGeneralNews});
    d.push_back({"new-syria.com", Category::kGeneralNews});
    d.push_back({"islammemo.cc", Category::kGeneralNews});
    d.push_back({"alquds.co.uk", Category::kGeneralNews});
    d.push_back({"free-syria.com", Category::kGeneralNews});
    d.push_back({"hotsptshld.com", Category::kInternetServices});
    d.push_back({"ceipmsn.com", Category::kInternetServices});
    d.push_back({"conduitapps.com", Category::kInternetServices});
    d.push_back({"trafficholder.com", Category::kEntertainment});
    d.push_back({"dailymotion.com", Category::kStreamingMedia});
    d.push_back({"mtn.com.sy", Category::kInternetServices});
    d.push_back({"news.bbc.co.uk", Category::kGeneralNews});
    // --- Synthetic fillers, Table 9 shape -----------------------------
    auto fill = [&d](const char* stem, const char* tld, int count,
                     Category c) {
      for (int i = 1; i <= count; ++i) {
        d.push_back({std::string(stem) + std::to_string(i) + tld, c});
      }
    };
    fill("syrnews", ".net", 34, Category::kGeneralNews);        // news: 40
    fill("site", ".info", 25, Category::kUncategorized);        // NA: 25
    fill("shamtube", ".tv", 4, Category::kStreamingMedia);      // stream: 6
    fill("arabrefs", ".org", 3, Category::kEducationReference); // edu: 4
    fill("souq-mashreq", ".com", 1, Category::kOnlineShopping); // shop: 2
    fill("voipdamas", ".net", 1, Category::kInternetServices);  // svc: 6
    fill("shambook", ".net", 4, Category::kSocialNetworking);   // osn: 6
    fill("funsham", ".com", 3, Category::kEntertainment);       // fun: 4
    fill("majlis", ".net", 7, Category::kForums);               // forum: 8
    return d;
  }();
  return domains;
}

const std::vector<BlockedPage>& facebook_blocked_pages() {
  // Table 14, verbatim.
  static const std::vector<BlockedPage> pages = {
      {"Syrian.Revolution", 1461, 891, 16},
      {"Syrian.revolution", 0, 0, 25},
      {"syria.news.F.N.N", 191, 165, 1},
      {"ShaamNews", 114, 3944, 7},
      {"fffm14", 42, 18, 0},
      {"barada.channel", 25, 9, 0},
      {"DaysOfRage", 19, 2, 0},
      {"Syrian.R.V", 10, 6, 0},
      {"YouthFreeSyria", 6, 0, 0},
      {"sooryoon", 3, 0, 0},
      {"Freedom.Of.Syria", 3, 0, 0},
      {"SyrianDayOfRage", 1, 0, 0},
  };
  return pages;
}

const std::vector<std::string>& redirected_hosts() {
  static const std::vector<std::string> hosts = {
      "upload.youtube.com", "competition.mbc.net", "sharek.aljazeera.net"};
  return hosts;
}

const std::vector<net::Ipv4Addr>& anonymizer_endpoint_ips() {
  static const std::vector<net::Ipv4Addr> ips = {
      addr("68.68.96.12"),   addr("74.115.0.40"),  addr("199.59.148.21"),
      addr("64.4.17.88"),    addr("94.75.200.14"), addr("31.204.150.77"),
      addr("77.88.21.30"),   addr("8.8.130.5"),
  };
  return ips;
}

namespace {

std::vector<Rule> base_rules() {
  std::vector<Rule> rules;
  rules.push_back({CategoryRule{kBlockedSitesLabel}, PolicyAction::kRedirect,
                   "category:blocked-sites"});
  for (const auto& kw : censored_keywords())
    rules.push_back({KeywordRule{kw}, PolicyAction::kDeny, "keyword:" + kw});
  for (const auto& sd : suspected_domains())
    rules.push_back(
        {DomainRule{sd.domain}, PolicyAction::kDeny, "domain:" + sd.domain});
  rules.push_back({DomainRule{".il"}, PolicyAction::kDeny, "tld:.il"});
  // Israeli subnets (Table 12). The first three blocks are blacklisted
  // wholesale; 212.235.64.0/19 is blocked only in its lower /20 (the paper
  // observes one allowed host inside the /19); in 212.150.0.0/16 only three
  // individual hosts are blocked, which reproduces the censored-but-mostly-
  // allowed second group.
  // Table 12 lists only the *top* censored subnets; the long tail of
  // smaller blocked Israeli blocks (the paper's 5,191 censored direct-IP
  // requests exceed the table's sum) is represented by 62.219.128.0/17.
  for (const char* s : {"84.229.0.0/16", "46.120.0.0/15", "89.138.0.0/15",
                        "212.235.64.0/20", "62.219.128.0/17"})
    rules.push_back({SubnetRule{subnet(s)}, PolicyAction::kDeny,
                     std::string("subnet:") + s});
  for (const char* ip : {"212.150.1.10", "212.150.7.33", "212.150.100.2"})
    rules.push_back(
        {IpRule{addr(ip)}, PolicyAction::kDeny, std::string("ip:") + ip});
  // Anonymizer service endpoints blocked by destination address (§4):
  // these catch HTTPS CONNECTs whose URL exposes only an IP.
  for (const net::Ipv4Addr ip : anonymizer_endpoint_ips())
    rules.push_back({IpRule{ip}, PolicyAction::kDeny,
                     "ip:anonymizer:" + ip.to_string()});
  return rules;
}

std::shared_ptr<const std::unordered_set<std::uint64_t>> or_endpoints(
    const tor::RelayDirectory& relays) {
  auto set = std::make_shared<std::unordered_set<std::uint64_t>>();
  for (const auto& relay : relays.relays())
    set->insert(EndpointSetRule::key(relay.address, relay.or_port));
  return set;
}

std::shared_ptr<const std::unordered_set<std::uint64_t>> all_endpoints(
    const tor::RelayDirectory& relays) {
  auto set = std::make_shared<std::unordered_set<std::uint64_t>>();
  for (const auto& relay : relays.relays()) {
    set->insert(EndpointSetRule::key(relay.address, relay.or_port));
    if (relay.dir_port != 0)
      set->insert(EndpointSetRule::key(relay.address, relay.dir_port));
  }
  return set;
}

}  // namespace

SyriaPolicy build_syria_policy(const tor::RelayDirectory& relays,
                               std::uint64_t seed) {
  SyriaPolicy policy;

  for (const auto& host : redirected_hosts())
    policy.custom_categories.add_host(host, kBlockedSitesLabel);
  for (const auto& page : facebook_blocked_pages()) {
    for (const char* host : {"www.facebook.com", "ar-ar.facebook.com"}) {
      policy.custom_categories.add_page(host, "/" + page.page, {"ref=ts"},
                                        kBlockedSitesLabel);
    }
  }

  const auto onion = or_endpoints(relays);
  for (std::size_t i = 0; i < kProxyCount; ++i) {
    ProxyPolicy& pp = policy.proxies[i];
    // SG-43 (index 1) and SG-48 (index 6) run the "none"-style naming.
    const bool none_style = (i == 1 || i == 6);
    pp.default_category_label = none_style ? "none" : "unavailable";
    pp.blocked_category_label =
        none_style ? "Blocked sites" : "Blocked sites; unavailable";

    PolicyEngine engine{base_rules()};
    if (i == kTorCensorProxy) {
      // SG-44's scheduled Tor experiment: hour-scale windows alternating
      // between absent, mild, and aggressive enforcement (Fig. 9).
      engine.add({EndpointSetRule{onion,
                                  OnOffSchedule{seed ^ 0x44, 2 * 3600, 0.55,
                                                0.20, 1.0}},
                  PolicyAction::kDeny, "tor:sg44-experiment"});
    }
    if (i == kTorTraceProxy) {
      engine.add({EndpointSetRule{onion, OnOffSchedule::constant(0.0015)},
                  PolicyAction::kDeny, "tor:sg48-trace"});
    }
    pp.engine = std::move(engine);
  }
  return policy;
}

std::size_t apply_december_2012_update(SyriaPolicy& policy,
                                       const tor::RelayDirectory& relays) {
  const auto endpoints = all_endpoints(relays);
  std::size_t added = 0;
  for (auto& pp : policy.proxies) {
    pp.engine.add({EndpointSetRule{endpoints, OnOffSchedule::constant(1.0)},
                   PolicyAction::kDeny, "tor:dec2012-relays"});
    pp.engine.add(
        {PortRule{9001}, PolicyAction::kDeny, "tor:dec2012-orport"});
    added += 2;
  }
  return added;
}

}  // namespace syrwatch::policy
