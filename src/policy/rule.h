#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <variant>

#include "net/ipv4.h"
#include "net/subnet.h"
#include "net/url.h"
#include "policy/schedule.h"

namespace syrwatch::policy {

/// What a matched rule does with the request. Maps one-to-one onto the
/// policy exceptions in the logs: kDeny raises policy_denied, kRedirect
/// raises policy_redirect (the "Blocked sites" Facebook-page mechanism).
enum class PolicyAction : std::uint8_t { kAllow, kDeny, kRedirect };

std::string_view to_string(PolicyAction action) noexcept;

/// The request view a rule can match against: the decomposed URL, the
/// resolved (or literal) destination IP when available, the wall-clock
/// time, and the custom category the proxy assigned before filtering.
struct FilterRequest {
  const net::Url* url = nullptr;
  std::optional<net::Ipv4Addr> dest_ip;
  std::int64_t time = 0;
  std::string_view custom_category;  // empty, or e.g. "Blocked sites"
};

/// Substring keyword match over host+path+query (case-insensitive) — the
/// mechanism behind the paper's Table 10 and its collateral damage.
struct KeywordRule {
  std::string keyword;
};

/// Domain (or, with a leading dot, TLD) suffix match on cs-host:
/// "skype.com" blocks skype.com and every subdomain; ".il" blocks the
/// whole Israeli TLD.
struct DomainRule {
  std::string domain;
};

/// Destination-IP CIDR match — the subnet blocking of Table 12.
struct SubnetRule {
  net::Ipv4Subnet subnet;
};

/// Exact destination-IP match, for the handful of individually blocked
/// hosts inside otherwise-allowed subnets (e.g. 212.150.0.0/16).
struct IpRule {
  net::Ipv4Addr address;
};

/// Matches the custom category assigned by the proxy's local URL list.
struct CategoryRule {
  std::string category;
};

/// Destination port match (e.g. an experiment blocking 9001 outright).
struct PortRule {
  std::uint16_t port = 0;
};

/// Matches <dest IP, port> endpoints from a fixed set, gated by a
/// time-varying intensity schedule. This models SG-44's inconsistent Tor
/// blocking (§7.1, Fig. 9): even when the endpoint matches, the rule only
/// fires with the schedule's current probability, reproducing relays that
/// alternate between blocked and allowed.
struct EndpointSetRule {
  std::shared_ptr<const std::unordered_set<std::uint64_t>> endpoints;
  OnOffSchedule schedule;

  static std::uint64_t key(net::Ipv4Addr ip, std::uint16_t port) noexcept {
    return (std::uint64_t{ip.value()} << 16) | port;
  }
};

using RuleMatcher = std::variant<KeywordRule, DomainRule, SubnetRule, IpRule,
                                 CategoryRule, PortRule, EndpointSetRule>;

/// Rule-kind labels indexed by RuleMatcher::index() — the taxonomy the
/// observability layer's per-rule-kind hit counters report under
/// (`policy.rule_hit.<kind>`).
inline constexpr std::size_t kRuleKindCount =
    std::variant_size_v<RuleMatcher>;
inline constexpr std::array<std::string_view, kRuleKindCount> kRuleKindNames{
    "keyword", "domain", "subnet", "ip", "category", "port", "endpoint_set"};

/// A named policy rule: matcher + action. Rules are evaluated in list
/// order, first match wins (Blue Coat layer semantics).
struct Rule {
  RuleMatcher matcher;
  PolicyAction action = PolicyAction::kDeny;
  std::string name;

  std::string_view kind() const noexcept {
    return kRuleKindNames[matcher.index()];
  }
};

}  // namespace syrwatch::policy
