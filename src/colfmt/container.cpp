#include "colfmt/container.h"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "colfmt/varint.h"
#include "util/checksum.h"

namespace syrwatch::colfmt {

namespace {

constexpr std::size_t kBlockHeaderBytes = 16;
constexpr std::size_t kPageHeaderBytes = 8;
constexpr std::size_t kIndexEntryBytes = 16;
// LogRecord::proxy_address() maps index i to s-ip octet 42+i; the leak has
// seven proxies (SG-42..SG-48), and the CSV reader enforces the same range.
constexpr std::uint8_t kMaxProxyIndex = 6;

constexpr std::array<std::string_view, kPageCount> kPageNames = {
    "dict",   "time",       "proxy",  "user",      "method",    "scheme",
    "host",   "port",       "path",   "query",     "agent",     "categories",
    "status", "filter",     "exception", "dest",
};

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>(value >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>(value >> (8 * i)));
}

std::uint32_t get_u32(const char* p) noexcept {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i)
    value |= std::uint32_t{static_cast<std::uint8_t>(p[i])} << (8 * i);
  return value;
}

std::uint64_t get_u64(const char* p) noexcept {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i)
    value |= std::uint64_t{static_cast<std::uint8_t>(p[i])} << (8 * i);
  return value;
}

/// Varint-or-raw-bytes cursor for the dictionary page.
struct ByteCursor {
  std::string_view data;
  std::size_t pos = 0;
  const char* context;

  std::uint64_t varint() {
    std::uint64_t value = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
      if (pos == data.size())
        throw std::runtime_error(std::string(context) + ": truncated varint");
      const auto byte = static_cast<std::uint8_t>(data[pos++]);
      value |= std::uint64_t{byte & 0x7Fu} << shift;
      if ((byte & 0x80u) == 0) return value;
      shift += 7;
    }
    throw std::runtime_error(std::string(context) + ": varint overflow");
  }

  std::string_view take(std::size_t n) {
    if (data.size() - pos < n)
      throw std::runtime_error(std::string(context) + ": truncated bytes");
    const auto view = data.substr(pos, n);
    pos += n;
    return view;
  }

  bool done() const noexcept { return pos == data.size(); }
};

/// One block's structural framing: header fields + a view per page.
struct BlockFrame {
  std::uint32_t rows = 0;
  std::uint32_t dict_new = 0;
  std::array<std::string_view, kPageCount> pages;
  std::array<std::uint32_t, kPageCount> page_crc{};
  std::uint64_t end = 0;  // offset one past the block
};

/// Parses the block starting at `offset` (which must be < `limit`). When
/// `check_page_crc` is set every page payload is checksummed; the header
/// CRC is always checked. Returns false with `error` set on any damage.
bool parse_block_frame(std::string_view file, std::uint64_t offset,
                       std::uint64_t limit, BlockFrame& frame,
                       std::string& error, bool check_page_crc) {
  if (limit - offset < kBlockHeaderBytes) {
    error = "truncated block header";
    return false;
  }
  const char* head = file.data() + offset;
  if (get_u32(head) != kBlockMagic) {
    error = "bad block magic";
    return false;
  }
  frame.rows = get_u32(head + 4);
  frame.dict_new = get_u32(head + 8);
  if (util::crc32_of(std::string_view(head, 12)) != get_u32(head + 12)) {
    error = "block header checksum mismatch";
    return false;
  }
  std::uint64_t cursor = offset + kBlockHeaderBytes;
  for (std::size_t page = 0; page < kPageCount; ++page) {
    if (limit - cursor < kPageHeaderBytes) {
      error = "truncated page header (" + std::string(kPageNames[page]) + ")";
      return false;
    }
    const char* ph = file.data() + cursor;
    const std::uint32_t size = get_u32(ph);
    frame.page_crc[page] = get_u32(ph + 4);
    cursor += kPageHeaderBytes;
    if (limit - cursor < size) {
      error = "truncated page payload (" + std::string(kPageNames[page]) + ")";
      return false;
    }
    frame.pages[page] = file.substr(cursor, size);
    cursor += size;
    if (check_page_crc &&
        util::crc32_of(frame.pages[page]) != frame.page_crc[page]) {
      error = "page checksum mismatch (" + std::string(kPageNames[page]) + ")";
      return false;
    }
  }
  frame.end = cursor;
  return true;
}

/// Appends the dict-delta strings of one block to `dict` as views into the
/// mapping. The page CRC must have been verified by the caller.
void parse_dict_page(std::string_view payload, std::uint32_t dict_new,
                     std::vector<std::string_view>& dict) {
  ByteCursor cursor{payload, 0, "colfmt dict page"};
  for (std::uint32_t i = 0; i < dict_new; ++i) {
    const auto length = cursor.varint();
    if (length > payload.size())
      throw std::runtime_error("colfmt dict page: string length overflow");
    dict.push_back(cursor.take(static_cast<std::size_t>(length)));
  }
  if (!cursor.done())
    throw std::runtime_error("colfmt dict page: trailing bytes");
}

/// Everything the footer + index describe, validated without touching any
/// block bytes.
struct FooterParse {
  std::vector<BlockInfo> blocks;
  std::uint64_t rows = 0;
  std::uint64_t dict_count = 0;
  std::uint64_t index_offset = 0;
};

bool parse_footer(std::string_view file, FooterParse& out, std::string& error) {
  if (file.size() < kMagic.size() + kFooterBytes) {
    error = "file too small for a footer";
    return false;
  }
  const char* footer = file.data() + file.size() - kFooterBytes;
  if (std::string_view(footer + 52, 8) != kMagic) {
    error = "missing footer magic";
    return false;
  }
  if (util::crc32_of(std::string_view(footer, 48)) != get_u32(footer + 48)) {
    error = "footer checksum mismatch";
    return false;
  }
  out.index_offset = get_u64(footer);
  const std::uint64_t block_count = get_u64(footer + 8);
  out.rows = get_u64(footer + 16);
  out.dict_count = get_u64(footer + 24);
  const std::uint64_t index_crc = get_u64(footer + 32);
  const std::uint64_t version = get_u64(footer + 40);
  if (version != kVersion) {
    error = "unsupported container version";
    return false;
  }
  if (out.index_offset < kMagic.size() ||
      out.index_offset + block_count * kIndexEntryBytes + kFooterBytes !=
          file.size()) {
    error = "footer geometry does not match file size";
    return false;
  }
  const auto index = file.substr(static_cast<std::size_t>(out.index_offset),
                                 static_cast<std::size_t>(block_count) *
                                     kIndexEntryBytes);
  if (util::crc32_of(index) != index_crc) {
    error = "index checksum mismatch";
    return false;
  }
  out.blocks.reserve(static_cast<std::size_t>(block_count));
  std::uint64_t expected_offset = kMagic.size();
  std::uint64_t row_base = 0;
  std::uint64_t dict_base = 1;  // id 0 = "" is implicit
  for (std::uint64_t i = 0; i < block_count; ++i) {
    const char* entry = index.data() + i * kIndexEntryBytes;
    BlockInfo info;
    info.offset = get_u64(entry);
    info.rows = get_u32(entry + 8);
    info.dict_new = get_u32(entry + 12);
    info.row_base = row_base;
    info.dict_base = dict_base;
    if (info.offset < expected_offset || info.offset >= out.index_offset) {
      error = "index entry offset out of order";
      return false;
    }
    expected_offset = info.offset + kBlockHeaderBytes;
    row_base += info.rows;
    dict_base += info.dict_new;
    out.blocks.push_back(info);
  }
  if (row_base != out.rows || dict_base != out.dict_count) {
    error = "index totals disagree with footer";
    return false;
  }
  return true;
}

[[noreturn]] void fail_open(const std::string& path, const std::string& why) {
  throw std::runtime_error("colfmt " + path + ": " + why);
}

}  // namespace

std::string_view page_name(std::size_t page) noexcept {
  return page < kPageCount ? kPageNames[page] : "?";
}

bool looks_like_container(std::string_view bytes) noexcept {
  return bytes.size() >= kMagic.size() &&
         bytes.substr(0, kMagic.size()) == kMagic;
}

bool file_looks_like_container(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char head[8] = {};
  in.read(head, sizeof head);
  return in.gcount() == static_cast<std::streamsize>(kMagic.size()) &&
         looks_like_container(std::string_view(head, sizeof head));
}

// ---------------------------------------------------------------------------
// Writer

struct Writer::DictIndex {
  std::unordered_map<std::string, std::uint32_t> ids;
};

struct Writer::BlockBuilder {
  std::array<std::string, kPageCount> pages;
  std::uint32_t rows = 0;
  std::uint32_t dict_new = 0;
  std::int64_t prev_time = 0;
};

Writer::Writer(std::string path, WriterOptions options)
    : out_(std::make_unique<util::AtomicFileWriter>(std::move(path),
                                                    options.vfs)),
      options_(options),
      dict_(std::make_unique<DictIndex>()) {
  if (options_.block_rows == 0)
    throw std::invalid_argument("colfmt: block_rows must be positive");
  out_->write(kMagic);
}

Writer::~Writer() = default;

void Writer::add(const proxy::LogRecord& record) {
  if (finished_) throw std::logic_error("colfmt: add() after finish()");
  if (record.proxy_index > kMaxProxyIndex)
    throw std::invalid_argument("colfmt: proxy index out of range");
  if (!block_) block_ = std::make_unique<BlockBuilder>();
  BlockBuilder& b = *block_;

  const auto intern = [&](const std::string& text) -> std::uint32_t {
    if (text.empty()) return 0;
    const auto it = dict_->ids.find(text);
    if (it != dict_->ids.end()) return it->second;
    if (dict_count_ > 0xFFFFFFFFull)
      throw std::runtime_error("colfmt: dictionary overflow");
    const auto id = static_cast<std::uint32_t>(dict_count_++);
    dict_->ids.emplace(text, id);
    put_varint(b.pages[kPageDict], text.size());
    b.pages[kPageDict].append(text);
    ++b.dict_new;
    return id;
  };

  if (b.rows == 0)
    put_varint_signed(b.pages[kPageTime], record.time);
  else
    put_varint_signed(b.pages[kPageTime], record.time - b.prev_time);
  b.prev_time = record.time;

  b.pages[kPageProxy].push_back(static_cast<char>(record.proxy_index));
  put_varint(b.pages[kPageUserHash], record.user_hash);
  put_varint(b.pages[kPageMethod], intern(record.method));
  b.pages[kPageScheme].push_back(
      static_cast<char>(static_cast<std::uint8_t>(record.url.scheme)));
  put_varint(b.pages[kPageHost], intern(record.url.host));
  put_varint(b.pages[kPagePort], record.url.port);
  put_varint(b.pages[kPagePath], intern(record.url.path));
  put_varint(b.pages[kPageQuery], intern(record.url.query));
  put_varint(b.pages[kPageAgent], intern(record.user_agent));
  put_varint(b.pages[kPageCategories], intern(record.categories));
  put_varint(b.pages[kPageStatus], record.status);
  b.pages[kPageFilterResult].push_back(
      static_cast<char>(static_cast<std::uint8_t>(record.filter_result)));
  b.pages[kPageException].push_back(
      static_cast<char>(static_cast<std::uint8_t>(record.exception)));
  put_varint(b.pages[kPageDestIp],
             record.dest_ip ? std::uint64_t{record.dest_ip->value()} + 1 : 0);

  ++b.rows;
  ++rows_;
  if (b.rows >= options_.block_rows) flush_block();
}

void Writer::flush_block() {
  BlockBuilder& b = *block_;
  put_u64(index_, out_->bytes_written());
  put_u32(index_, b.rows);
  put_u32(index_, b.dict_new);

  std::string header;
  header.reserve(kBlockHeaderBytes);
  put_u32(header, kBlockMagic);
  put_u32(header, b.rows);
  put_u32(header, b.dict_new);
  put_u32(header, util::crc32_of(header));
  out_->write(header);
  for (std::size_t page = 0; page < kPageCount; ++page) {
    std::string page_header;
    put_u32(page_header, static_cast<std::uint32_t>(b.pages[page].size()));
    put_u32(page_header, util::crc32_of(b.pages[page]));
    out_->write(page_header);
    out_->write(b.pages[page]);
  }
  ++block_count_;
  block_.reset();
}

util::ArtifactInfo Writer::finish() {
  if (finished_) throw std::logic_error("colfmt: finish() called twice");
  finished_ = true;
  if (block_ && block_->rows > 0) flush_block();
  block_.reset();

  const std::uint64_t index_offset = out_->bytes_written();
  out_->write(index_);

  std::string footer;
  footer.reserve(kFooterBytes);
  put_u64(footer, index_offset);
  put_u64(footer, block_count_);
  put_u64(footer, rows_);
  put_u64(footer, dict_count_);
  put_u64(footer, util::crc32_of(index_));
  put_u64(footer, kVersion);
  put_u32(footer, util::crc32_of(footer));
  footer.append(kMagic);
  out_->write(footer);
  return out_->commit();
}

void Writer::abandon() noexcept { out_->abandon(); }

// ---------------------------------------------------------------------------
// Reader

Reader Reader::open(const std::string& path) {
  Reader reader;
  reader.map_ = util::MappedFile::open(path);
  const auto file = reader.map_.bytes();
  if (!looks_like_container(file)) fail_open(path, "not a SYRCOL1 container");

  FooterParse footer;
  std::string error;
  if (!parse_footer(file, footer, error)) fail_open(path, error);

  reader.blocks_ = std::move(footer.blocks);
  reader.rows_ = footer.rows;
  reader.dict_.reserve(static_cast<std::size_t>(footer.dict_count));
  reader.dict_.push_back(std::string_view{});  // id 0 = ""
  std::uint64_t expected = kMagic.size();
  for (std::size_t i = 0; i < reader.blocks_.size(); ++i) {
    const BlockInfo& info = reader.blocks_[i];
    if (info.offset != expected)
      fail_open(path, "block " + std::to_string(i) +
                          " is not where the index says");
    BlockFrame frame;
    if (!parse_block_frame(file, info.offset, footer.index_offset, frame,
                           error, /*check_page_crc=*/false))
      fail_open(path, "block " + std::to_string(i) + ": " + error);
    if (frame.rows != info.rows || frame.dict_new != info.dict_new)
      fail_open(path, "block " + std::to_string(i) +
                          " header disagrees with the index");
    // decode() re-checks column pages; the dictionary is materialized here,
    // so its page must prove itself now.
    if (util::crc32_of(frame.pages[kPageDict]) != frame.page_crc[kPageDict])
      fail_open(path, "block " + std::to_string(i) +
                          ": page checksum mismatch (dict)");
    try {
      parse_dict_page(frame.pages[kPageDict], frame.dict_new, reader.dict_);
    } catch (const std::runtime_error& e) {
      fail_open(path, "block " + std::to_string(i) + ": " + e.what());
    }
    expected = frame.end;
  }
  if (expected != footer.index_offset)
    fail_open(path, "blocks do not end at the index");
  if (reader.dict_.size() != footer.dict_count)
    fail_open(path, "dictionary size disagrees with the footer");
  return reader;
}

Reader Reader::open_lenient(const std::string& path, RecoveryStats* stats) {
  Reader reader;
  reader.map_ = util::MappedFile::open(path);
  const auto file = reader.map_.bytes();
  RecoveryStats local;
  RecoveryStats& s = stats ? *stats : local;
  s = RecoveryStats{};
  s.file_bytes = file.size();
  if (!looks_like_container(file)) fail_open(path, "not a SYRCOL1 container");

  FooterParse footer;
  std::string footer_error;
  const bool footer_parsed = parse_footer(file, footer, footer_error);
  const std::uint64_t limit =
      footer_parsed ? footer.index_offset : file.size();

  reader.dict_.push_back(std::string_view{});
  std::uint64_t cursor = kMagic.size();
  std::string error;
  while (cursor < limit) {
    BlockFrame frame;
    if (!parse_block_frame(file, cursor, limit, frame, error,
                           /*check_page_crc=*/true)) {
      s.damage = "block " + std::to_string(reader.blocks_.size()) + " at " +
                 "offset " + std::to_string(cursor) + ": " + error;
      break;
    }
    try {
      parse_dict_page(frame.pages[kPageDict], frame.dict_new, reader.dict_);
    } catch (const std::runtime_error& e) {
      s.damage = "block " + std::to_string(reader.blocks_.size()) + ": " +
                 e.what();
      break;
    }
    BlockInfo info;
    info.offset = cursor;
    info.rows = frame.rows;
    info.dict_new = frame.dict_new;
    info.row_base = reader.rows_;
    info.dict_base = reader.dict_.size() - frame.dict_new;
    reader.blocks_.push_back(info);
    reader.rows_ += frame.rows;
    cursor = frame.end;
  }

  s.blocks_recovered = reader.blocks_.size();
  s.rows_recovered = reader.rows_;
  s.bytes_recovered = cursor;
  const bool scan_clean = s.damage.empty() && cursor == limit;
  s.footer_ok = footer_parsed && scan_clean &&
                reader.blocks_.size() == footer.blocks.size() &&
                reader.rows_ == footer.rows &&
                reader.dict_.size() == footer.dict_count;
  if (s.footer_ok) {
    s.bytes_recovered = file.size();
  } else {
    s.truncated_tail = true;
    if (s.damage.empty())
      s.damage = footer_parsed ? "blocks disagree with the footer"
                               : footer_error;
  }
  return reader;
}

DictDelta Reader::dict_entries(std::size_t block_index) const {
  const BlockInfo& info = blocks_.at(block_index);
  DictDelta delta;
  delta.base = info.dict_base;
  delta.count = info.dict_new;
  delta.entries =
      info.dict_new == 0
          ? nullptr
          : dict_.data() + static_cast<std::size_t>(info.dict_base);
  return delta;
}

DecodedBlock Reader::decode(std::size_t block_index) const {
  const BlockInfo& info = blocks_.at(block_index);
  const auto file = map_.bytes();
  const auto where = [&](const char* what) {
    return "colfmt " + map_.path() + ": block " +
           std::to_string(block_index) + ": " + what;
  };

  BlockFrame frame;
  std::string error;
  // The block is self-delimiting; its pages may extend to wherever the
  // next block (or the index) begins, so the whole file is the limit.
  if (!parse_block_frame(file, info.offset, file.size(), frame, error,
                         /*check_page_crc=*/true))
    throw std::runtime_error(where(error.c_str()));
  if (frame.rows != info.rows)
    throw std::runtime_error(where("row count changed under the reader"));

  DecodedBlock block;
  const std::size_t rows = info.rows;
  block.rows = rows;
  // Ids minted in this block or any earlier one are valid; later ones are
  // evidence of damage the CRC happened to miss (or an adversarial file).
  const std::uint64_t dict_limit = info.dict_base + info.dict_new;

  {
    VarintReader in(frame.pages[kPageTime], "colfmt time page");
    block.time.resize(rows);
    std::int64_t prev = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      prev = (i == 0) ? in.get_signed() : prev + in.get_signed();
      block.time[i] = prev;
    }
    in.expect_end();
  }

  const auto raw_u8 = [&](Page page, std::vector<std::uint8_t>& out,
                          std::uint8_t max_value) {
    const auto payload = frame.pages[page];
    if (payload.size() != rows)
      throw std::runtime_error(where("raw page has wrong row count"));
    out.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const auto v = static_cast<std::uint8_t>(payload[i]);
      if (v > max_value)
        throw std::runtime_error(where("enum value out of range"));
      out[i] = v;
    }
  };
  raw_u8(kPageProxy, block.proxy_index, kMaxProxyIndex);
  raw_u8(kPageScheme, block.scheme,
         static_cast<std::uint8_t>(net::Scheme::kTcp));
  raw_u8(kPageFilterResult, block.filter_result,
         static_cast<std::uint8_t>(proxy::FilterResult::kDenied));
  raw_u8(kPageException, block.exception,
         static_cast<std::uint8_t>(proxy::kExceptionCount - 1));

  {
    VarintReader in(frame.pages[kPageUserHash], "colfmt user page");
    block.user_hash.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) block.user_hash[i] = in.get();
    in.expect_end();
  }

  const auto dict_column = [&](Page page, std::vector<std::uint32_t>& out) {
    VarintReader in(frame.pages[page], "colfmt dict-id page");
    out.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const auto id = in.get();
      if (id >= dict_limit)
        throw std::runtime_error(where("dictionary id out of range"));
      out[i] = static_cast<std::uint32_t>(id);
    }
    in.expect_end();
  };
  dict_column(kPageMethod, block.method);
  dict_column(kPageHost, block.host);
  dict_column(kPagePath, block.path);
  dict_column(kPageQuery, block.query);
  dict_column(kPageAgent, block.agent);
  dict_column(kPageCategories, block.categories);

  const auto u16_column = [&](Page page, std::vector<std::uint16_t>& out,
                              const char* label) {
    VarintReader in(frame.pages[page], label);
    out.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const auto v = in.get();
      if (v > 0xFFFF)
        throw std::runtime_error(where("16-bit value out of range"));
      out[i] = static_cast<std::uint16_t>(v);
    }
    in.expect_end();
  };
  u16_column(kPagePort, block.port, "colfmt port page");
  u16_column(kPageStatus, block.status, "colfmt status page");

  {
    VarintReader in(frame.pages[kPageDestIp], "colfmt dest page");
    block.dest_ip.resize(rows);
    block.has_dest.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) {
      const auto v = in.get();
      if (v == 0) {
        block.has_dest[i] = 0;
        block.dest_ip[i] = 0;
      } else {
        if (v - 1 > 0xFFFFFFFFull)
          throw std::runtime_error(where("destination ip out of range"));
        block.has_dest[i] = 1;
        block.dest_ip[i] = static_cast<std::uint32_t>(v - 1);
      }
    }
    in.expect_end();
  }
  return block;
}

proxy::LogRecord Reader::record(const DecodedBlock& block,
                                std::size_t row) const {
  proxy::LogRecord r;
  r.time = block.time.at(row);
  r.proxy_index = block.proxy_index[row];
  r.user_hash = block.user_hash[row];
  r.user_agent = std::string(view(block.agent[row]));
  r.method = std::string(view(block.method[row]));
  r.url.scheme = static_cast<net::Scheme>(block.scheme[row]);
  r.url.host = std::string(view(block.host[row]));
  r.url.port = block.port[row];
  r.url.path = std::string(view(block.path[row]));
  r.url.query = std::string(view(block.query[row]));
  r.categories = std::string(view(block.categories[row]));
  r.filter_result = static_cast<proxy::FilterResult>(block.filter_result[row]);
  r.exception = static_cast<proxy::ExceptionId>(block.exception[row]);
  r.status = block.status[row];
  if (block.has_dest[row]) r.dest_ip = net::Ipv4Addr(block.dest_ip[row]);
  return r;
}

// ---------------------------------------------------------------------------
// verify_file

VerifyReport verify_file(const std::string& path) {
  VerifyReport report;
  const auto map = util::MappedFile::open(path);
  const auto file = map.bytes();
  if (!looks_like_container(file)) {
    report.first_error = "not a SYRCOL1 container";
    return report;
  }

  FooterParse footer;
  std::string error;
  report.footer_ok = parse_footer(file, footer, error);
  if (!report.footer_ok) report.first_error = "footer: " + error;
  const std::uint64_t limit =
      report.footer_ok ? footer.index_offset : file.size();

  const auto note = [&](std::uint64_t block, const std::string& why) {
    if (report.first_error.empty())
      report.first_error = "block " + std::to_string(block) + ": " + why;
  };

  std::uint64_t cursor = kMagic.size();
  bool structure_complete = true;
  while (cursor < limit) {
    BlockFrame frame;
    // Structure first (no CRCs) so one bad page doesn't hide the pages
    // after it; then each page is judged on its own checksum.
    if (!parse_block_frame(file, cursor, limit, frame, error,
                           /*check_page_crc=*/false)) {
      note(report.blocks, error);
      structure_complete = false;
      break;
    }
    for (std::size_t page = 0; page < kPageCount; ++page) {
      ++report.pages_checked;
      if (util::crc32_of(frame.pages[page]) != frame.page_crc[page]) {
        ++report.bad_pages;
        note(report.blocks, "page checksum mismatch (" +
                                std::string(kPageNames[page]) + ")");
      }
    }
    ++report.blocks;
    report.rows += frame.rows;
    cursor = frame.end;
  }

  report.ok = report.footer_ok && structure_complete &&
              report.bad_pages == 0 && cursor == limit &&
              report.blocks == footer.blocks.size() &&
              report.rows == footer.rows;
  if (!report.ok && report.first_error.empty())
    report.first_error = "blocks disagree with the footer";
  return report;
}

}  // namespace syrwatch::colfmt
