#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace syrwatch::colfmt {

/// LEB128 varints + zigzag — the integer encodings of the columnar pages.
/// Small values (dictionary ids, one-second timestamp deltas, status
/// codes, the all-zero user-hash column outside Duser days) take one byte;
/// nothing in the log schema needs more than ten.

inline void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(value | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Maps signed to unsigned so small negative deltas stay small: 0, -1, 1,
/// -2, ... → 0, 1, 2, 3, ...
inline std::uint64_t zigzag(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t unzigzag(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

inline void put_varint_signed(std::string& out, std::int64_t value) {
  put_varint(out, zigzag(value));
}

/// Bounds-checked varint cursor over one page payload. Throws
/// std::runtime_error on overrun or a varint longer than 10 bytes — both
/// mean the page is damaged in a way its CRC did not cover (i.e. a logic
/// error or an adversarial file), so failing loudly is correct.
class VarintReader {
 public:
  VarintReader(std::string_view bytes, const char* context)
      : cursor_(bytes.data()),
        end_(bytes.data() + bytes.size()),
        context_(context) {}

  std::uint64_t get() {
    std::uint64_t value = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
      if (cursor_ == end_)
        throw std::runtime_error(std::string(context_) +
                                 ": truncated varint in page");
      const auto byte = static_cast<std::uint8_t>(*cursor_++);
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
    throw std::runtime_error(std::string(context_) + ": varint overflow");
  }

  std::int64_t get_signed() { return unzigzag(get()); }

  bool exhausted() const noexcept { return cursor_ == end_; }

  /// Call when the page should have been fully consumed.
  void expect_end() const {
    if (!exhausted())
      throw std::runtime_error(std::string(context_) +
                               ": trailing bytes in page");
  }

 private:
  const char* cursor_;
  const char* end_;
  const char* context_;
};

}  // namespace syrwatch::colfmt
