#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "proxy/log_record.h"
#include "util/atomic_io.h"
#include "util/mmap_file.h"

namespace syrwatch::colfmt {

/// `SYRCOL1` — a checksummed, block-structured columnar container for
/// proxy logs, the on-disk analogue of analysis::Dataset's interned row
/// store. The design goals, in order: (1) mmap-friendly — a reader maps
/// the file once and hands out zero-copy string_views into it; (2) damage
/// evidence — every page carries a CRC32 (util::Crc32, the same polynomial
/// the run manifests use), so a flipped byte is detected at the page that
/// holds it; (3) tail recovery — blocks are self-delimiting and carry
/// *dictionary deltas* (only the strings first seen in that block), so a
/// file whose index/footer was lost to a crash is recoverable block by
/// block from the front, mirroring LogReadStats::truncated_tail for CSV.
///
/// Layout:
///
///   "SYRCOL1\n"                                  file magic (8 bytes)
///   block*                                       self-delimiting blocks
///   index: {u64 offset, u32 rows, u32 dict_new}* one entry per block
///   footer (60 bytes, fixed):
///     u64 index_offset, u64 block_count, u64 row_count, u64 dict_count,
///     u64 index_crc32, u64 version; u32 footer_crc32 (of the previous
///     48 bytes); "SYRCOL1\n"
///
///   block:
///     u32 "SYRB", u32 rows, u32 dict_new, u32 header_crc32
///     page[kPageCount]: u32 payload_bytes, u32 payload_crc32, payload
///
/// Pages (fixed order; one column each, plus the dictionary delta):
///   dict     — dict_new strings, each varint length + bytes; ids are
///              assigned globally in block order, id 0 is always ""
///   time     — zigzag varints: first value absolute, then deltas
///   proxy    — raw u8 per row
///   user     — varint u64 (0 = suppressed c-ip, the common case)
///   method/host/port/path/query/agent/categories/status — varints
///   scheme/result/exception — raw u8 per row
///   dest     — varint u64: 0 = no r-ip, else ip value + 1
///
/// Everything CSV round-trips is preserved: csv → records → col → records
/// → csv is byte-identical (cs-uri-ext is derived from the path in both
/// formats).

inline constexpr std::string_view kMagic = "SYRCOL1\n";
inline constexpr std::uint32_t kBlockMagic = 0x42525953u;  // "SYRB"
inline constexpr std::uint64_t kVersion = 1;
inline constexpr std::size_t kFooterBytes = 60;

/// Page order inside a block.
enum Page : std::size_t {
  kPageDict = 0,
  kPageTime,
  kPageProxy,
  kPageUserHash,
  kPageMethod,
  kPageScheme,
  kPageHost,
  kPagePort,
  kPagePath,
  kPageQuery,
  kPageAgent,
  kPageCategories,
  kPageStatus,
  kPageFilterResult,
  kPageException,
  kPageDestIp,
  kPageCount,
};

std::string_view page_name(std::size_t page) noexcept;

/// True when `bytes` begins with the container magic — the cheap format
/// sniff the CLI uses to route a file to the right reader.
bool looks_like_container(std::string_view bytes) noexcept;
bool file_looks_like_container(const std::string& path);

struct WriterOptions {
  /// Rows per block. Larger blocks amortize page framing and improve
  /// delta/varint locality; smaller blocks bound the damage a bad page
  /// costs and give parallel scans more grains. 64K rows ≈ 1-2 MB of
  /// encoded pages on the Syria workload.
  std::size_t block_rows = 64 * 1024;
  /// Storage layer for the container bytes (nullptr = process default);
  /// tests inject a FaultyVfs to exercise storage-failure paths.
  util::Vfs* vfs = nullptr;
};

/// Streaming writer: add() records in log order, finish() seals the file.
/// Writes through util::AtomicFileWriter — the container appears complete
/// at `path` or not at all, and finish() returns the artifact digest for
/// manifest bookkeeping.
class Writer {
 public:
  explicit Writer(std::string path, WriterOptions options = {});
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void add(const proxy::LogRecord& record);

  /// Flushes the tail block, writes index + footer, commits the file.
  /// At most once; add() after finish() is a logic error.
  util::ArtifactInfo finish();

  /// Drops the temp file without touching `path`.
  void abandon() noexcept;

  std::uint64_t rows() const noexcept { return rows_; }

 private:
  struct BlockBuilder;
  void flush_block();

  std::unique_ptr<util::AtomicFileWriter> out_;
  std::unique_ptr<BlockBuilder> block_;
  WriterOptions options_;
  // Dictionary: string → id, id order = first sight across the file.
  // (A std::vector of map iterators would dangle; the deque-backed pool
  // idiom from util::StringPool is overkill here because the writer never
  // reads strings back — it only needs the forward map and the pending
  // delta list.)
  std::vector<std::string> pending_dict_;  // strings not yet flushed
  struct DictIndex;
  std::unique_ptr<DictIndex> dict_;
  std::uint64_t dict_count_ = 1;  // id 0 = "" is implicit, never written
  std::uint64_t rows_ = 0;
  std::string index_;  // accumulated index entries
  std::uint64_t block_count_ = 0;
  bool finished_ = false;
};

/// One block's columns, decoded (CRC-verified) out of the mapping into
/// dense arrays. Strings stay behind dictionary ids — resolve through
/// Reader::view(). ~26 bytes/row decoded, allocated per scan grain, so a
/// parallel scan touches blocks, not the whole dataset.
struct DecodedBlock {
  std::size_t rows = 0;
  std::vector<std::int64_t> time;
  std::vector<std::uint64_t> user_hash;
  std::vector<std::uint32_t> method, host, path, query, agent, categories;
  std::vector<std::uint16_t> port, status;
  std::vector<std::uint8_t> proxy_index, scheme, filter_result, exception;
  std::vector<std::uint32_t> dest_ip;   // meaningful where has_dest != 0
  std::vector<std::uint8_t> has_dest;
};

struct BlockInfo {
  std::uint64_t offset = 0;     // file offset of the block header
  std::uint32_t rows = 0;
  std::uint32_t dict_new = 0;
  std::uint64_t dict_base = 0;  // ids [dict_base, dict_base+dict_new) born here
  std::uint64_t row_base = 0;   // global ordinal of the block's first row
};

/// One block's contribution to the file-global dictionary: the entries for
/// ids [base, base + count), resolved as zero-copy views into the mapping.
/// This is the per-block resolution surface the analysis scan layer
/// partitions dictionary-derived work by (Reader::dict_entries).
struct DictDelta {
  std::uint64_t base = 0;  // first id born in the block
  const std::string_view* entries = nullptr;
  std::uint32_t count = 0;
};

/// What a lenient open saw — the columnar mirror of proxy::LogReadStats.
struct RecoveryStats {
  /// Footer + index parsed and their CRCs matched; blocks came from the
  /// index. False = the file was recovered by a front-to-back block scan.
  bool footer_ok = false;
  /// The file ends in damage: a missing/corrupt footer, a torn final
  /// block, or trailing bytes that are not a whole block. Analyses should
  /// surface this exactly like a torn CSV tail.
  bool truncated_tail = false;
  std::uint64_t blocks_recovered = 0;
  std::uint64_t rows_recovered = 0;
  /// Bytes of the file covered by recovered blocks (+ header magic).
  std::uint64_t bytes_recovered = 0;
  std::uint64_t file_bytes = 0;
  /// Human-readable reason recovery stopped; empty for a clean file.
  std::string damage;
};

/// mmap-backed reader. open() demands an intact footer/index and verifies
/// the dictionary pages it materializes (column pages are verified by
/// decode()); open_lenient() additionally accepts damaged files, keeping
/// every intact leading block — the columnar analogue of
/// proxy::read_log_lenient. The Reader owns the mapping; every
/// string_view it hands out lives exactly as long as the Reader.
class Reader {
 public:
  static Reader open(const std::string& path);
  static Reader open_lenient(const std::string& path, RecoveryStats* stats);

  std::size_t block_count() const noexcept { return blocks_.size(); }
  const std::vector<BlockInfo>& blocks() const noexcept { return blocks_; }
  std::uint64_t rows() const noexcept { return rows_; }
  std::uint64_t dict_size() const noexcept { return dict_.size(); }
  const std::string& path() const noexcept { return map_.path(); }

  /// The dictionary string behind an id — a zero-copy view into the
  /// mapping. Throws std::out_of_range on an id the file never defined.
  std::string_view view(std::uint32_t id) const { return dict_.at(id); }

  /// The dictionary delta block `block_index` contributed — the strings
  /// first seen in that block, already materialized by open(). Lets a
  /// parallel scan resolve per-dictionary-id derived values block by
  /// block instead of over the whole file dictionary at once.
  DictDelta dict_entries(std::size_t block_index) const;

  /// Decodes (and CRC-verifies) one block. Throws std::runtime_error on a
  /// corrupt page or out-of-range column value. Safe to call from many
  /// threads concurrently — the reader is immutable after open.
  DecodedBlock decode(std::size_t block_index) const;

  /// Reassembles one row as a LogRecord (the CSV writer's input shape) —
  /// the conversion path of `syrwatchctl convert`.
  proxy::LogRecord record(const DecodedBlock& block, std::size_t row) const;

 private:
  Reader() = default;

  util::MappedFile map_;
  std::vector<std::string_view> dict_;  // id → bytes inside the mapping
  std::vector<BlockInfo> blocks_;
  std::uint64_t rows_ = 0;
};

/// Integrity report of verify_file: every page of every block re-checked
/// against its CRC32, plus the footer/index framing.
struct VerifyReport {
  bool ok = false;
  bool footer_ok = false;
  std::uint64_t blocks = 0;
  std::uint64_t rows = 0;
  std::uint64_t pages_checked = 0;
  std::uint64_t bad_pages = 0;
  /// First failure, as "block B page NAME: reason"; empty when ok.
  std::string first_error;
};

/// Re-checks the whole container: footer, index CRC, every block header
/// and page CRC. Detects a single flipped byte anywhere in the file.
VerifyReport verify_file(const std::string& path);

}  // namespace syrwatch::colfmt
