#!/usr/bin/env bash
# ci-sanitize.sh — build and test syrwatch under both sanitizer
# configurations the project supports:
#
#   1. SYRWATCH_SANITIZE=thread             (TSan: parallel pipeline races)
#   2. SYRWATCH_SANITIZE=address,undefined  (ASan+UBSan: memory / UB bugs,
#                                            incl. the fault-injection and
#                                            corrupted-log parsing paths)
#
# Usage:
#   tools/ci-sanitize.sh [ctest -R filter]
#
# With no argument the full ctest suite runs in each configuration. Pass a
# regex to narrow it, e.g. the fault-injection, log-parsing, and columnar
# container tests only (colfmt exercises mmap reads, checksum failure
# paths, and the parallel block scanners under both sanitizers):
#
#   tools/ci-sanitize.sh 'fault|log_io|colfmt|parallel'
#
# The observability layer is concurrency-sensitive by construction (relaxed
# atomics on every hot path) — the TSan pass over 'obs|parallel|scenario'
# is the race check for it:
#
#   tools/ci-sanitize.sh 'obs|cli|parallel|scenario'
#
# Build trees live in build-tsan/ and build-asan/ next to the source tree,
# so a regular build/ directory is left untouched.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
filter="${1:-}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" sanitize="$2"
  local build_dir="${repo_root}/build-${name}"
  echo "==> [${name}] configure (SYRWATCH_SANITIZE=${sanitize})"
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DSYRWATCH_SANITIZE="${sanitize}" >/dev/null
  echo "==> [${name}] build"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "==> [${name}] ctest"
  if [[ -n "${filter}" ]]; then
    (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}" -R "${filter}")
  else
    (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}")
  fi
}

run_config tsan thread
run_config asan address,undefined

# The durability layer's crash/resume path under ASan+UBSan: forced
# mid-run abort, manifest verification, resume, byte-identity diff.
echo "==> [asan] crash/resume smoke"
"${repo_root}/tools/ci-crash-resume.sh" "${repo_root}/build-asan"

# The storage-fault schedule sweep (--storage-fault, DESIGN.md §4.13)
# under ASan+UBSan: every named schedule through generate → crash →
# verify → resume, asserting the durability contract end to end.
echo "==> [asan] storage chaos sweep"
"${repo_root}/tools/ci-storage-chaos.sh" "${repo_root}/build-asan"

echo "==> all sanitizer configurations green"
