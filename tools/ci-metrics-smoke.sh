#!/usr/bin/env bash
# ci-metrics-smoke.sh — end-to-end check of the observability surface:
# runs syrwatchctl with --metrics and validates the emitted
# syrwatch.metrics.v1 JSON (schema tag, required keys, non-negative
# counts, pipeline counter identities, phases summing to roughly the
# total). Exercises both a full simulate→analyze run (profile) and the
# generate→stats log round trip.
#
# Usage:
#   tools/ci-metrics-smoke.sh [build-dir]   # default: build/
#
# Needs a built tree (cmake --build build) and python3 for the JSON
# validation.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
ctl="${build_dir}/tools/syrwatchctl"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

[[ -x "${ctl}" ]] || { echo "error: ${ctl} not built" >&2; exit 1; }
command -v python3 >/dev/null || { echo "error: python3 required" >&2; exit 1; }

validate() {
  local file="$1" command="$2" mode="$3"
  python3 - "$file" "$command" "$mode" <<'PY'
import json, sys

path, command, mode = sys.argv[1], sys.argv[2], sys.argv[3]
with open(path) as handle:
    doc = json.load(handle)

def die(message):
    sys.exit(f"{path}: {message}")

for key in ("schema", "command", "counters", "gauges", "stages", "phases",
            "total_seconds"):
    if key not in doc:
        die(f"missing key {key!r}")
if doc["schema"] != "syrwatch.metrics.v1":
    die(f"unexpected schema {doc['schema']!r}")
if doc["command"] != command:
    die(f"command is {doc['command']!r}, expected {command!r}")

counters = doc["counters"]
for name, value in counters.items():
    if not isinstance(value, int) or value < 0:
        die(f"counter {name!r} is not a non-negative integer: {value!r}")
for name, stage in doc["stages"].items():
    if stage["count"] <= 0:
        die(f"stage {name!r} recorded no calls")
    if not (0 <= stage["min_seconds"] <= stage["max_seconds"]):
        die(f"stage {name!r} has inverted extrema")
    if stage["total_seconds"] < stage["max_seconds"]:
        die(f"stage {name!r} total below max")

total = doc["total_seconds"]
phase_sum = sum(p["seconds"] for p in doc["phases"])
if total <= 0:
    die("total_seconds not positive")
if not doc["phases"]:
    die("no phases recorded")
if phase_sum > total * 1.001:
    die(f"phases sum {phase_sum:.3f}s exceeds total {total:.3f}s")
# Phases cover the bulk of the run; the remainder is I/O + process setup.
if phase_sum < total * 0.25:
    die(f"phases sum {phase_sum:.3f}s is <25% of total {total:.3f}s")

if mode == "pipeline":
    c = lambda name: counters.get(name, 0)
    requests = c("proxy.requests")
    if requests <= 0:
        die("pipeline run saw no proxy requests")
    if c("farm.route.calls") != requests:
        die("farm.route.calls != proxy.requests")
    if c("proxy.cache.hit") + c("proxy.cache.miss") != requests:
        die("cache hit+miss != requests")
    if c("proxy.cache.miss") != (c("proxy.policy.denied") +
                                 c("proxy.policy.redirect") +
                                 c("proxy.error.dest_unreachable") +
                                 c("proxy.error.draws")):
        die("cache misses do not decompose into outcomes")
    if c("proxy.error.draws") != c("proxy.error.failures") + c("proxy.served"):
        die("error draws != failures + served")
    rule_hits = sum(v for k, v in counters.items()
                    if k.startswith("policy.rule_hit."))
    if rule_hits != c("proxy.policy.denied") + c("proxy.policy.redirect"):
        die("per-kind rule hits do not sum to policy verdicts")
elif mode == "reader":
    if c := counters.get("cli.rows_loaded", 0):
        pass
    else:
        die("reader run loaded no rows")

print(f"ok: {path} ({command}, {len(counters)} counters, "
      f"{len(doc['stages'])} stages, {phase_sum:.2f}/{total:.2f}s in phases)")
PY
}

echo "==> profile --metrics (full simulate -> analyze pipeline)"
"${ctl}" profile --requests 60000 --metrics "${workdir}/profile.json" \
    >/dev/null
validate "${workdir}/profile.json" profile pipeline

echo "==> generate --metrics (simulate -> log)"
"${ctl}" generate --out "${workdir}/leak.csv" --requests 60000 \
    --metrics "${workdir}/generate.json" >/dev/null
validate "${workdir}/generate.json" generate pipeline

echo "==> stats --metrics (log reader path)"
"${ctl}" stats "${workdir}/leak.csv" --metrics "${workdir}/stats.json" \
    >/dev/null
validate "${workdir}/stats.json" stats reader

echo "==> metrics smoke green"
