#!/usr/bin/env bash
# ci-crash-resume.sh — end-to-end check of the durability layer: force a
# mid-run abort of `syrwatchctl generate` (via the --abort-after-batches
# test hook, which _Exit(3)s right after a durable checkpoint commit),
# verify the checkpoint's manifest + CRCs, resume at a different thread
# count, and diff the resumed log byte-for-byte against an uninterrupted
# run. Also checks that `syrwatchctl verify` catches a single flipped
# byte in a manifest-listed artifact, and that cancellation (SIGTERM)
# exits 0 with a resumable checkpoint.
#
# The sharded legs exercise the multi-process farm (--workers): real
# SIGKILLed workers (--worker-chaos) must restart and merge byte-identical
# to the single-process run; an exhausted restart budget must complete
# degraded (exit 0, explicit [DEGRADED DATA]); and SIGTERM must stop the
# whole farm gracefully into a resumable set of per-shard checkpoints.
#
# Usage:
#   tools/ci-crash-resume.sh [build-dir]   # default: build/
#
# Needs a built tree (cmake --build build).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
build_dir="$(cd "${build_dir}" && pwd)"  # the verify-from-cwd leg cd's away
ctl="${build_dir}/tools/syrwatchctl"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

[[ -x "${ctl}" ]] || { echo "error: ${ctl} not built" >&2; exit 1; }

requests=60000

crash_resume_case() {
  local profile="$1"
  local tag="${profile:-none}"
  local dir="${workdir}/${tag}"
  mkdir -p "${dir}"
  local profile_args=()
  [[ -n "${profile}" ]] && profile_args=(--fault-profile "${profile}")

  echo "==> [${tag}] clean reference run (1 thread)"
  "${ctl}" generate --out "${dir}/clean.csv" --requests "${requests}" \
      --threads 1 "${profile_args[@]+"${profile_args[@]}"}" >/dev/null

  echo "==> [${tag}] crash after 2 committed batches (4 threads)"
  local status=0
  "${ctl}" generate --out "${dir}/resumed.csv" --requests "${requests}" \
      --threads 4 --checkpoint-dir "${dir}/ckpt" --checkpoint-interval 1 \
      --abort-after-batches 2 \
      "${profile_args[@]+"${profile_args[@]}"}" >/dev/null 2>&1 || status=$?
  [[ "${status}" -eq 3 ]] || {
    echo "error: forced abort exited ${status}, expected 3" >&2; exit 1; }
  [[ ! -e "${dir}/resumed.csv" ]] || {
    echo "error: aborted run left a torn output file" >&2; exit 1; }

  echo "==> [${tag}] verify interrupted checkpoint"
  "${ctl}" verify "${dir}/ckpt" >/dev/null

  echo "==> [${tag}] resume to completion (8 threads)"
  "${ctl}" generate --out "${dir}/resumed.csv" --requests "${requests}" \
      --threads 8 --checkpoint-dir "${dir}/ckpt" --resume \
      "${profile_args[@]+"${profile_args[@]}"}" >/dev/null

  echo "==> [${tag}] verify completed checkpoint (incl. output artifact)"
  (cd "${dir}" && "${ctl}" verify ckpt >/dev/null)

  echo "==> [${tag}] diff resumed log against the clean run"
  cmp "${dir}/clean.csv" "${dir}/resumed.csv" || {
    echo "error: resumed log differs from uninterrupted run" >&2; exit 1; }
  echo "==> [${tag}] byte-identical"
}

crash_resume_case ""
crash_resume_case rolling-brownout

echo "==> tamper detection: flip one byte of the recorded output"
tamper_dir="${workdir}/none"
printf '\x58' | dd of="${tamper_dir}/resumed.csv" bs=1 seek=100 \
    conv=notrunc 2>/dev/null
if "${ctl}" verify "${tamper_dir}/ckpt" >/dev/null 2>&1; then
  echo "error: verify accepted a tampered output artifact" >&2; exit 1
fi
echo "==> tamper detected (verify exited non-zero)"

echo "==> graceful stop: SIGTERM mid-run flushes a resumable checkpoint"
stop_dir="${workdir}/sigterm"
mkdir -p "${stop_dir}"
"${ctl}" generate --out "${stop_dir}/out.csv" --requests 400000 \
    --threads 2 --checkpoint-dir "${stop_dir}/ckpt" \
    --checkpoint-interval 2 >"${stop_dir}/log" &
pid=$!
# Signal only once the run has demonstrably committed — a farm-state
# blob appears at the first durable commit (commits alternate between the
# two state slots, so check both). A blind sleep races against both fast
# and heavily loaded machines.
while kill -0 "${pid}" 2>/dev/null &&
      [[ ! -e "${stop_dir}/ckpt/farm_state.bin" &&
         ! -e "${stop_dir}/ckpt/farm_state.alt.bin" ]]; do
  sleep 0.05
done
kill -TERM "${pid}" 2>/dev/null || true
status=0
wait "${pid}" || status=$?
[[ "${status}" -eq 0 ]] || {
  echo "error: interrupted generate exited ${status}, expected 0" >&2
  exit 1
}
grep -q -- "--resume" "${stop_dir}/log" || {
  echo "error: interrupted run printed no resume hint" >&2; exit 1; }
"${ctl}" verify "${stop_dir}/ckpt" >/dev/null
"${ctl}" generate --out "${stop_dir}/out.csv" --requests 400000 \
    --threads 2 --checkpoint-dir "${stop_dir}/ckpt" --resume >/dev/null
[[ -s "${stop_dir}/out.csv" ]] || {
  echo "error: resumed run produced no output" >&2; exit 1; }

echo "==> sharded farm: worker-chaos kills workers, merge stays identical"
shard_dir="${workdir}/sharded"
mkdir -p "${shard_dir}"
"${ctl}" generate --out "${shard_dir}/single.csv" --requests "${requests}" \
    --threads 1 >/dev/null
"${ctl}" generate --out "${shard_dir}/merged.csv" --requests "${requests}" \
    --workers 4 --checkpoint-dir "${shard_dir}/ckpt" \
    --worker-chaos worker-chaos --restart-budget 3 --backoff-ms 20 \
    >"${shard_dir}/log"
grep -qE " [1-9][0-9]* restarts" "${shard_dir}/log" || {
  echo "error: worker-chaos run reported no restarts" >&2; exit 1; }
cmp "${shard_dir}/single.csv" "${shard_dir}/merged.csv" || {
  echo "error: sharded merge differs from single-process run" >&2; exit 1; }
echo "==> sharded verify: one invocation covers every per-worker checkpoint"
"${ctl}" verify "${shard_dir}/ckpt" | grep -q "sharded run: 4 workers" || {
  echo "error: verify did not recurse into the sharded run" >&2; exit 1; }

echo "==> degraded farm: exhausted restart budget still completes (exit 0)"
deg_dir="${workdir}/degraded"
mkdir -p "${deg_dir}"
"${ctl}" generate --out "${deg_dir}/merged.csv" --requests "${requests}" \
    --workers 4 --checkpoint-dir "${deg_dir}/ckpt" \
    --worker-chaos worker-chaos --restart-budget 0 --backoff-ms 20 \
    --checkpoint-interval 1 >"${deg_dir}/log"
grep -q "DEGRADED DATA" "${deg_dir}/log" || {
  echo "error: degraded run printed no [DEGRADED DATA] annotation" >&2
  exit 1
}
"${ctl}" verify "${deg_dir}/ckpt" | grep -q "degraded shard:" || {
  echo "error: verify did not surface the degraded shard" >&2; exit 1; }

echo "==> sharded graceful stop: SIGTERM fans out, farm resumes identically"
sstop_dir="${workdir}/sharded_sigterm"
mkdir -p "${sstop_dir}"
"${ctl}" generate --out "${sstop_dir}/merged.csv" --requests 400000 \
    --workers 2 --checkpoint-dir "${sstop_dir}/ckpt" \
    >"${sstop_dir}/log" &
pid=$!
while kill -0 "${pid}" 2>/dev/null &&
      [[ ! -e "${sstop_dir}/ckpt/shard-00/farm_state.bin" &&
         ! -e "${sstop_dir}/ckpt/shard-00/farm_state.alt.bin" ]]; do
  sleep 0.05
done
kill -TERM "${pid}" 2>/dev/null || true
status=0
wait "${pid}" || status=$?
[[ "${status}" -eq 0 ]] || {
  echo "error: interrupted sharded generate exited ${status}, expected 0" >&2
  exit 1
}
if grep -q -- "--resume" "${sstop_dir}/log"; then
  "${ctl}" generate --out "${sstop_dir}/merged.csv" --requests 400000 \
      --workers 2 --checkpoint-dir "${sstop_dir}/ckpt" --resume >/dev/null
fi
cmp "${stop_dir}/out.csv" "${sstop_dir}/merged.csv" || {
  echo "error: resumed sharded run differs from single-process run" >&2
  exit 1
}

echo "==> crash/resume green"
