#!/usr/bin/env bash
# ci-storage-chaos.sh — end-to-end sweep of the storage-fault schedules
# (DESIGN.md §4.13) through the real CLI: run `syrwatchctl generate`
# under every named `--storage-fault` schedule, then check the §4.8
# durability contract held:
#
#   * benign schedules (none, short-writes, eintr-storm) complete with
#     exit 0 and an output byte-identical to a fault-free run;
#   * enospc degrades gracefully — exit 0, an "interrupted" resumable
#     checkpoint with a resume hint — and a fault-free --resume finishes
#     byte-identical;
#   * fsync-fail fails loud (non-zero exit), but the checkpoint it leaves
#     verifies and resumes byte-identical;
#   * power-cut / torn-tail die with exit 9 (SimulatedPowerLoss), and the
#     surviving checkpoint describes only durable bytes: verify passes and
#     a fault-free --resume is byte-identical. No schedule may ever leave
#     a committed-but-empty or committed-but-torn manifested artifact.
#
# Usage:
#   tools/ci-storage-chaos.sh [build-dir]   # default: build/
#
# Needs a built tree (cmake --build build).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
build_dir="$(cd "${build_dir}" && pwd)"
ctl="${build_dir}/tools/syrwatchctl"
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

[[ -x "${ctl}" ]] || { echo "error: ${ctl} not built" >&2; exit 1; }

requests=60000

echo "==> clean reference run"
"${ctl}" generate --out "${workdir}/clean.csv" --requests "${requests}" \
    --threads 2 >/dev/null
clean_bytes="$(wc -c < "${workdir}/clean.csv")"

# generate under a schedule; $2 = expected exit status.
run_faulted() {
  local spec="$1" expected="$2" dir="$3"
  mkdir -p "${dir}"
  local status=0
  "${ctl}" generate --out "${dir}/out.csv" --requests "${requests}" \
      --threads 2 --checkpoint-dir "${dir}/ckpt" --checkpoint-interval 2 \
      --storage-fault "${spec}" >"${dir}/log" 2>&1 || status=$?
  [[ "${status}" -eq "${expected}" ]] || {
    echo "error: [${spec}] generate exited ${status}, expected ${expected}" >&2
    cat "${dir}/log" >&2
    exit 1
  }
}

resume_and_diff() {
  local spec="$1" dir="$2"
  echo "==> [${spec}] verify checkpoint, resume fault-free, diff"
  "${ctl}" verify "${dir}/ckpt" >/dev/null || {
    echo "error: [${spec}] interrupted checkpoint failed verify" >&2; exit 1; }
  "${ctl}" generate --out "${dir}/out.csv" --requests "${requests}" \
      --threads 2 --checkpoint-dir "${dir}/ckpt" --resume >/dev/null
  cmp "${workdir}/clean.csv" "${dir}/out.csv" || {
    echo "error: [${spec}] resumed output differs from fault-free run" >&2
    exit 1
  }
}

echo "==> benign schedules complete byte-identical"
for spec in none short-writes:4096 eintr-storm:3; do
  dir="${workdir}/benign-${spec%%:*}"
  run_faulted "${spec}" 0 "${dir}"
  cmp "${workdir}/clean.csv" "${dir}/out.csv" || {
    echo "error: [${spec}] output differs from fault-free run" >&2; exit 1; }
  echo "==> [${spec}] byte-identical"
done

echo "==> enospc: graceful interrupted checkpoint + resume"
# A budget of a third of the clean output guarantees the modeled disk
# fills mid-run while the early commits still land.
budget=$(( clean_bytes / 3 ))
dir="${workdir}/enospc"
run_faulted "enospc:${budget}" 0 "${dir}"
grep -q "storage degraded" "${dir}/log" || {
  echo "error: [enospc] no degradation notice in output" >&2; exit 1; }
grep -q -- "--resume" "${dir}/log" || {
  echo "error: [enospc] no resume hint in output" >&2; exit 1; }
[[ ! -e "${dir}/out.csv" ]] || {
  echo "error: [enospc] interrupted run left a torn output file" >&2; exit 1; }
resume_and_diff "enospc:${budget}" "${dir}"

echo "==> fsync-fail: loud failure, resumable checkpoint"
# Fsync #7 is the second commit's state snapshot — at least one commit is
# durable when it fires.
dir="${workdir}/fsync-fail"
run_faulted "fsync-fail:7" 1 "${dir}"
resume_and_diff "fsync-fail:7" "${dir}"

for spec in power-cut:4 torn-tail:4; do
  echo "==> ${spec}: simulated power loss (exit 9), durable prefix resumes"
  dir="${workdir}/${spec%%:*}"
  run_faulted "${spec}" 9 "${dir}"
  [[ ! -e "${dir}/out.csv" ]] || {
    echo "error: [${spec}] power cut left a promoted output file" >&2
    exit 1
  }
  resume_and_diff "${spec}" "${dir}"
done

echo "==> storage chaos sweep green"
