#!/usr/bin/env bash
# ci-bench-baseline.sh — build the Release tree and record the benchmark
# baselines the storage and pipeline layers are held to:
#
#   bench_parallel_pipeline  -> BENCH_pipeline.json
#   bench_colfmt_scan        -> BENCH_colfmt.json
#   bench_analyzer_matrix    -> BENCH_analysis.json
#   bench_shard_farm         -> BENCH_shard.json
#   bench_stream_sketch      -> BENCH_stream.json
#
# Each JSON file is google-benchmark's machine-readable output; the colfmt
# baseline carries the CSV-vs-SYRCOL1 scan timings behind the size and
# speedup budgets in EXPERIMENTS.md, and the analysis baseline the
# analyzer-matrix (backend x threads vs bridge) timings behind the scan
# layer's speedup table. The human-readable reproduction
# tables (size ratio, byte-identity cross-check) print to stdout and the
# run fails if either bench binary fails.
#
# Usage:
#   tools/ci-bench-baseline.sh [output-dir]
#
# Output defaults to the repository root. A regular build/ directory is
# left untouched; benches build in build-bench/.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out_dir="${1:-${repo_root}}"
build_dir="${repo_root}/build-bench"
jobs="$(nproc 2>/dev/null || echo 4)"

mkdir -p "${out_dir}"

echo "==> [bench] configure (Release)"
cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=Release >/dev/null
echo "==> [bench] build"
cmake --build "${build_dir}" -j "${jobs}" \
      --target bench_parallel_pipeline bench_colfmt_scan \
               bench_analyzer_matrix bench_shard_farm bench_stream_sketch

run_bench() {
  local name="$1" json="$2"
  echo "==> [bench] ${name} -> ${json}"
  "${build_dir}/bench/${name}" \
      --benchmark_out="${out_dir}/${json}" \
      --benchmark_out_format=json \
      --benchmark_repetitions=1
}

run_bench bench_parallel_pipeline BENCH_pipeline.json
run_bench bench_colfmt_scan BENCH_colfmt.json
run_bench bench_analyzer_matrix BENCH_analysis.json
run_bench bench_shard_farm BENCH_shard.json
run_bench bench_stream_sketch BENCH_stream.json

echo "==> benchmark baselines written to ${out_dir}"
