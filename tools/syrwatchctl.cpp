// syrwatchctl — command-line front end for the syrwatch library.
//
//   syrwatchctl generate --out leak.csv [--requests N] [--seed S]
//                        [--format csv|col|both] [--no-leak-filter]
//                        [--fault-profile NAME]
//                        [--checkpoint-dir DIR [--resume]]
//                        [--checkpoint-interval K] [--deadline SECONDS]
//                        [--workers N [--restart-budget K]
//                         [--heartbeat-ms T] [--backoff-ms B]
//                         [--worker-chaos NAME]]
//       Simulate the deployment and write the log in Blue Coat csv form
//       (atomically: temp + rename, never a torn csv). --format=col writes
//       the checksummed columnar container (SYRCOL1) instead; both writes
//       the csv at --out plus the container next to it (.col). --fault-profile
//       injects proxy outages/brownouts/flapping (see fault::make_profile
//       for the named profiles). With --checkpoint-dir the run appends
//       each batch to a crash-safe spool and commits a durable manifest
//       every K batches (default 8): SIGINT or an expired --deadline
//       flushes the last complete batch and exits 0 with a resume hint,
//       and --resume continues the run to a log bit-identical to an
//       uninterrupted one (any --threads value).
//       --workers N shards the farm across N supervised worker processes
//       (requires --checkpoint-dir, csv format): each worker owns a
//       deterministic subset of the proxies with its own durable
//       checkpoint, a dead worker is restarted with capped exponential
//       backoff and resumes from its own manifest, and the surviving
//       spools k-way merge into --out — byte-identical to --workers 1 and
//       to the single-process path when every shard survives. A shard
//       that exhausts --restart-budget (default 3) is abandoned: the run
//       still completes (exit 0) with its committed prefix merged and
//       explicit [DEGRADED DATA] annotations. --heartbeat-ms T also
//       SIGKILLs+restarts a worker silent for T ms; --worker-chaos
//       injects real process faults (fault::make_worker_chaos) for drills.
//       --storage-fault NAME[:N] routes every durable write through a
//       seeded FaultyVfs (DESIGN.md §4.13): enospc, short-writes,
//       eintr-storm, fsync-fail, power-cut, torn-tail. Out-of-space
//       degrades to a resumable interrupted checkpoint (exit 0); a
//       simulated power cut exits 9 after dropping un-fsynced bytes.
//
//   syrwatchctl verify DIR|MANIFEST|CONTAINER
//       Integrity-check every artifact a run manifest lists (size +
//       CRC32) — detects a single flipped byte in the committed spool,
//       farm state blob, or recorded output file. A sharded run's
//       manifest recurses into every per-worker checkpoint in the same
//       invocation, naming the failing shard on mismatch. Given a
//       columnar container instead, re-checks its footer, index, and
//       every page checksum.
//
//   syrwatchctl convert IN OUT
//       Convert between the csv log and the columnar container (the
//       direction is inferred from IN's bytes). csv -> col -> csv
//       round-trips byte-identically.
//
//   syrwatchctl inspect FILE [--bin-hours H]
//       Damage-tolerant triage of an on-disk log: parse statistics
//       (lines recovered/skipped by reason — or blocks/rows recovered for
//       a columnar container) plus the per-proxy/per-day coverage table
//       and gap windows.
//
//   syrwatchctl report FILE [--overview] [--seed S]
//       Render the paper-order report (or just the headline overview with
//       --overview) straight from a log file. The Dsample/Duser/Ddenied
//       views are carved out of the file-backed Dfull as scan-layer
//       masks — no row materialization — and the GeoIP/relay/torrent
//       lookups come from a fresh scenario environment built at --seed
//       (pass the log's generate seed so they match the traffic).
//
//   syrwatchctl stats FILE
//       Table 3-style traffic breakdown.
//
//   syrwatchctl top FILE [--class censored|allowed|error] [--k N]
//       Top domains per traffic class (Table 4/5 style).
//
//   syrwatchctl discover FILE [--min-count N]
//       Run the §5.4 iterative censored-string discovery.
//
//   syrwatchctl users FILE
//       User-based analysis (Fig. 4 style; needs hashed client ids).
//
//   syrwatchctl redirects FILE
//       policy_redirect hosts (Table 7 style).
//
//   syrwatchctl weather FILE --keyword WORD [--bin-hours H]
//       Per-window enforcement intensity for one keyword.
//
//   syrwatchctl profile [--requests N] [--seed S] [--threads T]
//                       [--fault-profile NAME]
//       Run a reduced study end to end with the observability layer
//       attached and print where the time went: run phases, per-stage
//       wall-time breakdown, and the pipeline event counters.
//
// Every subcommand also accepts `--metrics FILE`, which writes the run's
// counters, stage timings, and phase breakdown as a syrwatch.metrics.v1
// JSON document (see src/obs/export.h for the schema).
//
// All analysis subcommands accept any csv produced by `generate` (or by
// proxy::write_log) as well as any columnar container produced by
// `generate --format=col` or `convert`: one shared loader sniffs the
// format from the file's first bytes (pin it with `--format csv|col`),
// and every analyzer runs as the same partitioned parallel scan on either
// backend, so `--threads T` is accepted uniformly and yields identical
// output at any value.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/columnar.h"
#include "analysis/coverage.h"
#include "analysis/redirects.h"
#include "analysis/scan.h"
#include "analysis/stream.h"
#include "analysis/stream_report.h"
#include "analysis/string_discovery.h"
#include "analysis/top_domains.h"
#include "analysis/traffic_stats.h"
#include "analysis/user_stats.h"
#include "analysis/weather.h"
#include "colfmt/container.h"
#include "core/report.h"
#include "core/study.h"
#include "durable/checkpoint.h"
#include "durable/manifest.h"
#include "fault/profiles.h"
#include "obs/context.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "policy/syria.h"
#include "proxy/log_io.h"
#include "shard/coordinator.h"
#include "util/atomic_io.h"
#include "util/cancel.h"
#include "util/checksum.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simtime.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/vfs.h"
#include "workload/scenario.h"

namespace {

using namespace syrwatch;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  syrwatchctl generate --out FILE [--requests N] [--seed S]"
      " [--threads T] [--format csv|col|both] [--no-leak-filter]"
      " [--fault-profile NAME]"
      " [--checkpoint-dir DIR [--resume]] [--deadline SECONDS]"
      " [--storage-fault SCHEDULE[:N]]"
      " [--workers N [--restart-budget K] [--heartbeat-ms T]"
      " [--backoff-ms B] [--worker-chaos NAME]]\n"
      "  syrwatchctl verify DIR|MANIFEST|CONTAINER\n"
      "  syrwatchctl convert IN OUT\n"
      "  syrwatchctl inspect FILE [--bin-hours H]\n"
      "  syrwatchctl report FILE [--overview] [--seed S]\n"
      "  syrwatchctl stats FILE\n"
      "  syrwatchctl top FILE [--class censored|allowed|error] [--k N]\n"
      "  syrwatchctl discover FILE [--min-count N]\n"
      "  syrwatchctl users FILE\n"
      "  syrwatchctl redirects FILE\n"
      "  syrwatchctl weather FILE --keyword WORD [--bin-hours H]\n"
      "  syrwatchctl watch DIR|SPOOL [--interval S] [--bin S]"
      " [--window-bins N] [--top K] [--json FILE] [--once] [--follow]"
      " [--deadline SECONDS]\n"
      "  syrwatchctl profile [--requests N] [--seed S] [--threads T]"
      " [--fault-profile NAME]\n"
      "every subcommand also accepts: --metrics FILE (write"
      " syrwatch.metrics.v1 JSON); every analysis subcommand also accepts"
      " --threads T and --format auto|csv|col\n");
  return 2;
}

int flag_error(const char* command, const util::CliFlags& flags) {
  std::fprintf(stderr, "syrwatchctl %s: %s\n", command, flags.error().c_str());
  return usage();
}

double seconds_since(std::uint64_t start_nanos) {
  return static_cast<double>(obs::monotonic_nanos() - start_nanos) * 1e-9;
}

/// The --metrics plumbing every subcommand funnels through: one registry
/// plus the coarse phase list, flushed as syrwatch.metrics.v1 JSON when the
/// user asked for a file (and kept entirely in memory otherwise).
class MetricsOutput {
 public:
  explicit MetricsOutput(const util::CliFlags& flags)
      : path_(flags.get("--metrics").value_or("")),
        start_(obs::monotonic_nanos()) {}

  obs::Context* context() noexcept { return &context_; }
  obs::MetricsRegistry& registry() noexcept { return registry_; }
  std::vector<obs::PhaseTiming>& phases() noexcept { return phases_; }

  void add_phase(std::string name, double seconds, std::uint64_t items) {
    phases_.push_back({std::move(name), seconds, items});
  }

  double total_seconds() const { return seconds_since(start_); }

  /// Writes the document when --metrics was given — atomically, so a
  /// crash or full disk never leaves a torn half-document that downstream
  /// dashboards would misparse. Returns false on I/O failure (the
  /// subcommand should exit non-zero).
  bool write(const char* command) {
    if (path_.empty()) return true;
    try {
      util::atomic_write_file(path_,
                              obs::to_json(registry_.snapshot(), command,
                                           phases_, total_seconds()));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "cannot write %s: %s\n", path_.c_str(),
                   error.what());
      return false;
    }
    return true;
  }

 private:
  obs::MetricsRegistry registry_;
  obs::Context context_{&registry_};
  std::vector<obs::PhaseTiming> phases_;
  std::string path_;
  std::uint64_t start_;
};

/// --out sibling for the container when --format=both: leak.csv ->
/// leak.col, anything else gets .col appended.
std::string sibling_col_path(const std::string& out_path) {
  if (out_path.size() > 4 &&
      out_path.compare(out_path.size() - 4, 4, ".csv") == 0)
    return out_path.substr(0, out_path.size() - 4) + ".col";
  return out_path + ".col";
}

/// analysis::open_source() plus the shared "load" phase record and row
/// counter; the format override comes from the subcommand's --format
/// flag. A strict open refused only for a torn tail gets actionable
/// advice appended: the typed error code is what lets us say that
/// `inspect` (a lenient load) would recover the intact prefix.
analysis::OpenedSource load_source_phase(const std::string& path,
                                         const util::CliFlags& flags,
                                         MetricsOutput& metrics,
                                         std::size_t threads,
                                         bool lenient = false) {
  const std::string format{flags.get("--format").value_or("auto")};
  const std::uint64_t start = obs::monotonic_nanos();
  auto loaded = [&] {
    try {
      return analysis::open_source(
          path, {.format = format, .lenient = lenient, .threads = threads});
    } catch (const analysis::SourceOpenError& err) {
      if (err.code() == analysis::SourceOpenErrorCode::kTornTail)
        throw std::runtime_error(std::string(err.what()) +
                                 " — `syrwatchctl inspect` recovers the "
                                 "intact prefix");
      throw;
    }
  }();
  obs::add(obs::counter(metrics.context(), "cli.rows_loaded"),
           loaded.rows());
  metrics.add_phase("load", seconds_since(start), loaded.rows());
  return loaded;
}

/// Parses the shared shape `subcommand FILE [flags]`: one positional
/// argument, or a usage error naming what went wrong.
bool single_input(const char* command, const util::CliFlags& flags,
                  std::string& path) {
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "syrwatchctl %s: expected exactly one input file\n",
                 command);
    return false;
  }
  path = flags.positional().front();
  return true;
}

/// Process-wide cancellation token SIGINT/SIGTERM flip (via
/// util::install_stop_signals — sigaction without SA_RESTART, so a
/// coordinator blocked in poll() wakes immediately; forked shard workers
/// reinstall onto their own token).
util::CancelToken g_cancel;

/// The --workers path of `generate`: instead of running the scenario
/// in-process, forks the shard farm under the supervising coordinator
/// (src/shard). Shares the single-process resume contract — an interrupt
/// leaves every shard checkpointed and exits 0 with a hint — and renders
/// the [DEGRADED DATA] block plus coverage gaps when a shard exhausted its
/// restart budget and was abandoned.
int cmd_generate_sharded(const util::CliFlags& flags,
                         const workload::ScenarioConfig& config,
                         const std::string& out_path,
                         const std::string& checkpoint_dir,
                         std::size_t workers) {
  shard::CoordinatorOptions options;
  options.config = config;
  options.directory = checkpoint_dir;
  options.out_path = out_path;
  options.workers = workers;
  options.resume = flags.has("--resume");
  options.commit_interval =
      static_cast<std::size_t>(flags.get_u64("--checkpoint-interval", 8));
  if (options.commit_interval == 0) {
    std::fprintf(stderr,
                 "syrwatchctl generate: --checkpoint-interval must be "
                 ">= 1\n");
    return usage();
  }
  options.restart_budget =
      static_cast<std::size_t>(flags.get_u64("--restart-budget", 3));
  options.heartbeat_ms = flags.get_u64("--heartbeat-ms", 0);
  options.restart_backoff_ms = flags.get_u64("--backoff-ms", 200);
  options.worker_chaos =
      std::string(flags.get("--worker-chaos").value_or("none"));
  if (const auto deadline = flags.get("--deadline"))
    g_cancel.set_deadline_after(std::stod(std::string(*deadline)));
  // ^C, SIGTERM, or the deadline stop the whole farm gracefully: the
  // coordinator fans SIGTERM out to every worker, each shard flushes its
  // last complete batch, and the run resumes bit-identically later.
  util::install_stop_signals(g_cancel);
  options.cancel = &g_cancel;

  MetricsOutput metrics{flags};
  options.obs = metrics.context();

  const std::uint64_t start = obs::monotonic_nanos();
  const shard::ShardedRun result = shard::run_sharded(options);
  metrics.add_phase("generate", seconds_since(start), result.records);

  if (!result.completed) {
    std::printf(
        "interrupted — every shard checkpointed under %s\n"
        "resume with: syrwatchctl generate --out %s --checkpoint-dir %s "
        "--workers %zu --resume\n",
        checkpoint_dir.c_str(), out_path.c_str(), checkpoint_dir.c_str(),
        workers);
    return metrics.write("generate") ? 0 : 1;
  }

  std::printf("wrote %s records to %s (seed %llu, crc32 %s)\n",
              util::with_commas(result.records).c_str(), out_path.c_str(),
              static_cast<unsigned long long>(config.seed),
              util::to_hex32(result.output.crc32).c_str());
  std::printf("sharded across %zu workers: %s spawns, %s restarts, "
              "%s heartbeat misses, %s chaos kills\n",
              workers, util::with_commas(result.spawns).c_str(),
              util::with_commas(result.restarts).c_str(),
              util::with_commas(result.heartbeat_misses).c_str(),
              util::with_commas(result.kills_injected).c_str());

  if (!result.degraded_shards.empty()) {
    std::printf(
        "[DEGRADED DATA] %zu shard(s) abandoned after exhausting the "
        "restart budget: %s — the merge holds their committed prefixes "
        "only\n",
        result.degraded_shards.size(),
        shard::describe_degraded(result.shards).c_str());
    // The coverage view of the damage, in the same shape the study report
    // uses: re-read the merged log and bin it so the abandoned shard's
    // missing tail surfaces as per-proxy gaps, with the folded read stats
    // marking any torn tail the lenient merge recovered over.
    const auto merged = analysis::open_source(out_path);
    const auto coverage = analysis::request_coverage(
        merged.source(),
        {.bin = {3600}, .min_farm_bin_requests = 25,
         .read_stats = &result.read_stats});
    util::TextTable gaps{{"Proxy", "Gap start", "Gap end",
                          "Farm reqs in gap"}};
    for (const auto& gap : coverage.gaps)
      gaps.add_row({policy::proxy_name(gap.proxy_index),
                    util::format_datetime(gap.start),
                    util::format_datetime(gap.end),
                    util::with_commas(gap.farm_requests)});
    if (!coverage.gaps.empty())
      std::fputs(
          util::titled_block("DEGRADED DATA — coverage gaps", gaps).c_str(),
          stdout);
    if (coverage.truncated_tail)
      std::printf(
          "[DEGRADED DATA] torn spool tail recovered leniently in an "
          "abandoned shard\n");
  }
  return metrics.write("generate") ? 0 : 1;
}

int cmd_generate(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--out");
  flags.value_flag("--requests");
  flags.value_flag("--seed");
  flags.value_flag("--threads");
  flags.value_flag("--fault-profile");
  flags.value_flag("--metrics");
  flags.value_flag("--checkpoint-dir");
  flags.value_flag("--checkpoint-interval");
  flags.value_flag("--deadline");
  flags.value_flag("--abort-after-batches");
  flags.value_flag("--format");
  flags.value_flag("--workers");
  flags.value_flag("--restart-budget");
  flags.value_flag("--heartbeat-ms");
  flags.value_flag("--backoff-ms");
  flags.value_flag("--worker-chaos");
  flags.value_flag("--storage-fault");
  flags.bool_flag("--no-leak-filter");
  flags.bool_flag("--resume");
  if (!flags.parse(argc, argv)) return flag_error("generate", flags);
  const auto out_flag = flags.get("--out");
  if (!out_flag) {
    std::fprintf(stderr, "syrwatchctl generate: --out FILE is required\n");
    return usage();
  }
  const std::string out_path{*out_flag};
  const std::string format{flags.get("--format").value_or("csv")};
  if (format != "csv" && format != "col" && format != "both") {
    std::fprintf(stderr,
                 "syrwatchctl generate: --format must be csv, col, or both "
                 "(got \"%s\")\n",
                 format.c_str());
    return usage();
  }
  const bool want_csv = format != "col";
  const bool want_col = format != "csv";
  const std::string col_path =
      format == "col" ? out_path : sibling_col_path(out_path);
  const std::string checkpoint_dir{
      flags.get("--checkpoint-dir").value_or("")};
  if (flags.has("--resume") && checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "syrwatchctl generate: --resume requires --checkpoint-dir\n");
    return usage();
  }

  // Storage chaos hook (tools/ci-storage-chaos.sh): install a seeded
  // FaultyVfs as the process default so every durable writer in the run —
  // spool, farm state, manifest, csv/col artifacts — is exercised.
  static std::unique_ptr<util::FaultyVfs> storage_chaos;
  if (const auto fault_spec = flags.get("--storage-fault")) {
    try {
      storage_chaos = std::make_unique<util::FaultyVfs>(
          util::system_vfs(),
          util::StorageFaultSchedule::parse(*fault_spec));
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "syrwatchctl generate: %s\n", error.what());
      return usage();
    }
    util::set_default_vfs(storage_chaos.get());
  }

  workload::ScenarioConfig config;
  config.total_requests = flags.get_u64("--requests", 500'000);
  config.seed = flags.get_u64("--seed", config.seed);
  // Worker count for the pipeline; the emitted log is identical for any
  // value (0 = one per hardware thread) — including across an
  // interrupt/resume pair that changes it.
  config.threads = flags.get_u64("--threads", 0);
  if (flags.has("--no-leak-filter")) config.apply_leak_filter = false;
  if (const auto profile = flags.get("--fault-profile"))
    config.fault_profile = *profile;  // make_profile rejects unknown names

  if (flags.get("--workers")) {
    const std::size_t workers =
        static_cast<std::size_t>(flags.get_u64("--workers", 2));
    if (workers == 0) {
      std::fprintf(stderr, "syrwatchctl generate: --workers must be >= 1\n");
      return usage();
    }
    if (checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "syrwatchctl generate: --workers requires "
                   "--checkpoint-dir (each shard checkpoints there)\n");
      return usage();
    }
    if (format != "csv") {
      std::fprintf(stderr,
                   "syrwatchctl generate: --workers writes csv only (the "
                   "shard merge is byte-level); drop --format %s\n",
                   format.c_str());
      return usage();
    }
    if (flags.get("--abort-after-batches")) {
      std::fprintf(stderr,
                   "syrwatchctl generate: --abort-after-batches is a "
                   "single-process crash hook; use --worker-chaos to kill "
                   "real workers\n");
      return usage();
    }
    return cmd_generate_sharded(flags, config, out_path, checkpoint_dir,
                                workers);
  }

  const util::CancelToken* cancel = nullptr;
  if (const auto deadline = flags.get("--deadline")) {
    g_cancel.set_deadline_after(std::stod(std::string(*deadline)));
    cancel = &g_cancel;
  }
  if (!checkpoint_dir.empty()) {
    // Graceful stop: first ^C flushes the last complete batch and exits
    // cleanly with a resume hint (a second ^C during the flush still
    // kills the process the hard way — the checkpoint stays consistent,
    // that is the whole point of the commit ordering).
    util::install_stop_signals(g_cancel);
    cancel = &g_cancel;
  }

  MetricsOutput metrics{flags};
  workload::SyriaScenario scenario{config};
  scenario.set_obs(metrics.context());

  // The output csv lands via temp + rename: readers never see a torn
  // file, and an interrupted run leaves no half-written artifact behind.
  // With a checkpoint the records are already serialized into the spool,
  // so the run streams nothing per record and --out is the spool itself,
  // promoted by rename once the run completes.
  std::unique_ptr<util::AtomicFileWriter> out;
  if (want_csv && checkpoint_dir.empty()) {
    out = std::make_unique<util::AtomicFileWriter>(out_path);
    out->write(proxy::log_csv_header());
    out->write("\n");
  }
  // The columnar container is fed straight from the sink — under a
  // checkpoint the sink sees replayed + fresh records in deterministic
  // order, so a resumed run still produces a complete container.
  std::unique_ptr<colfmt::Writer> col;
  if (want_col) col = std::make_unique<colfmt::Writer>(col_path);
  std::uint64_t written = 0;
  const auto sink = [&](const proxy::LogRecord& record) {
    if (out) {
      out->write(proxy::to_csv(record));
      out->write("\n");
    }
    if (col) col->add(record);
    ++written;
  };

  const std::uint64_t start = obs::monotonic_nanos();
  bool completed;
  std::string stop_reason;
  durable::RunManifest manifest;
  if (checkpoint_dir.empty()) {
    workload::RunControl control;
    control.cancel = cancel;
    completed = scenario.run(sink, control);
  } else {
    durable::CheckpointOptions checkpoint;
    checkpoint.directory = checkpoint_dir;
    checkpoint.resume = flags.has("--resume");
    checkpoint.cancel = cancel;
    checkpoint.commit_interval =
        static_cast<std::size_t>(flags.get_u64("--checkpoint-interval", 8));
    if (checkpoint.commit_interval == 0) {
      std::fprintf(stderr,
                   "syrwatchctl generate: --checkpoint-interval must be "
                   ">= 1\n");
      return usage();
    }
    if (const std::uint64_t abort_after =
            flags.get_u64("--abort-after-batches", 0);
        abort_after > 0) {
      // Crash-injection hook for tools/ci-crash-resume.sh: die without
      // unwinding once N batches are durable, like a kill -9 would.
      checkpoint.after_commit = [abort_after,
                                 count = std::uint64_t{0}](std::size_t) mutable {
        if (++count >= abort_after) {
          std::fprintf(stderr,
                       "aborting after %llu committed batches (test hook)\n",
                       static_cast<unsigned long long>(count));
          std::_Exit(3);
        }
      };
    }
    durable::CheckpointedRun run =
        durable::run_checkpointed(scenario, checkpoint, sink);
    completed = run.completed;
    stop_reason = std::move(run.stop_reason);
    manifest = std::move(run.manifest);
  }
  metrics.add_phase("generate", seconds_since(start), written);

  if (!completed) {
    if (out) out->abandon();  // no torn csv — the checkpoint owns progress
    if (col) col->abandon();  // ditto: a resumed run rewrites the container
    if (checkpoint_dir.empty()) {
      std::fprintf(stderr,
                   "interrupted after %s records — no --checkpoint-dir, "
                   "progress discarded\n",
                   util::with_commas(written).c_str());
      return 1;
    }
    if (!stop_reason.empty())
      std::printf("storage degraded (%s) — stopped at the last durable "
                  "commit\n",
                  stop_reason.c_str());
    std::printf(
        "interrupted after %s records — checkpoint flushed to %s\n"
        "resume with: syrwatchctl generate --out %s --checkpoint-dir %s "
        "--resume\n",
        util::with_commas(written).c_str(), checkpoint_dir.c_str(),
        out_path.c_str(), checkpoint_dir.c_str());
    return metrics.write("generate") ? 0 : 1;
  }

  util::ArtifactInfo info{};
  util::ArtifactInfo col_info{};
  bool col_written = false;
  if (col) {
    try {
      col_info = col->finish();
      col_written = true;
    } catch (const util::VfsError& error) {
      // The container is a derived artifact: when the disk fills while
      // sealing it in a checkpointed csv run, the run itself is still
      // complete (the spool is the log) — warn and skip the container
      // rather than failing a finished run. A col-only run has nothing
      // else to deliver, so there it stays fatal.
      if (!error.out_of_space() || checkpoint_dir.empty() || !want_csv)
        throw;
      std::fprintf(stderr,
                   "warning: columnar container %s skipped (%s)\n",
                   col_path.c_str(), error.what());
    }
  }
  if (checkpoint_dir.empty()) {
    if (out) info = out->commit();
  } else if (want_csv) {
    info = durable::finalize_output(checkpoint_dir, manifest, out_path);
  }
  if (!checkpoint_dir.empty() && col_written) {
    // Record the container in the manifest so `syrwatchctl verify` covers
    // it like any other output artifact.
    manifest.upsert_artifact(
        {col_path, "output", col_info.bytes, col_info.crc32, -1});
    manifest.save(checkpoint_dir + "/" +
                  std::string(durable::RunManifest::kFileName));
  }
  if (format == "col") info = col_info;
  std::printf("wrote %s records to %s (seed %llu, crc32 %s)\n",
              util::with_commas(written).c_str(), out_path.c_str(),
              static_cast<unsigned long long>(config.seed),
              util::to_hex32(info.crc32).c_str());
  if (format == "both" && col_written)
    std::printf("wrote columnar container %s (%s bytes, crc32 %s)\n",
                col_path.c_str(), util::with_commas(col_info.bytes).c_str(),
                util::to_hex32(col_info.crc32).c_str());
  if (!scenario.faults().empty()) {
    std::printf("fault profile %s: %s\n", config.fault_profile.c_str(),
                scenario.faults().describe().c_str());
    std::printf("failovers: %s requests diverted off their home proxy\n",
                util::with_commas(scenario.farm().failover_total()).c_str());
  }
  return metrics.write("generate") ? 0 : 1;
}

int cmd_verify(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("verify", flags);
  std::string path;
  if (!single_input("verify", flags, path)) return usage();
  MetricsOutput metrics{flags};

  // A columnar container verifies against its own framing: footer, index
  // CRC, and every page checksum in every block.
  if (colfmt::file_looks_like_container(path)) {
    const std::uint64_t start = obs::monotonic_nanos();
    const auto report = colfmt::verify_file(path);
    metrics.add_phase("verify", seconds_since(start), report.rows);
    obs::add(obs::counter(metrics.context(), "verify.pages_checked"),
             report.pages_checked);
    obs::add(obs::counter(metrics.context(), "verify.failures"),
             report.bad_pages);
    std::printf("%s: columnar container, %s blocks, %s rows, %s pages\n",
                path.c_str(), util::with_commas(report.blocks).c_str(),
                util::with_commas(report.rows).c_str(),
                util::with_commas(report.pages_checked).c_str());
    const bool metrics_ok = metrics.write("verify");
    if (!report.ok) {
      std::fprintf(stderr, "container verification FAILED: %s\n",
                   report.first_error.c_str());
      return 1;
    }
    std::printf("container verified: footer, index, and all page "
                "checksums intact\n");
    return metrics_ok ? 0 : 1;
  }

  // Accept either the checkpoint directory or the manifest file itself.
  namespace fs = std::filesystem;
  fs::path manifest_path{path};
  std::error_code ec;
  if (fs::is_directory(manifest_path, ec))
    manifest_path /= durable::RunManifest::kFileName;
  const std::string base_dir = manifest_path.parent_path().string();

  const auto manifest = durable::RunManifest::load(manifest_path.string());
  std::printf("%s: %s run, seed %llu, %s/%s batches, fingerprint %s\n",
              manifest_path.string().c_str(), manifest.state.c_str(),
              static_cast<unsigned long long>(manifest.seed),
              util::with_commas(manifest.next_batch).c_str(),
              util::with_commas(manifest.total_batches).c_str(),
              manifest.config_fingerprint.c_str());

  const auto report =
      durable::verify_artifacts(manifest, base_dir.empty() ? "." : base_dir);
  util::TextTable table{{"Artifact", "Role", "Bytes", "CRC32", "Status"}};
  std::size_t failures = 0;
  for (const auto& check : report.checks) {
    if (!check.ok()) ++failures;
    table.add_row({check.expected.path, check.expected.role,
                   util::with_commas(check.expected.bytes),
                   util::to_hex32(check.expected.crc32),
                   std::string(check.status())});
  }
  std::fputs(util::titled_block("Artifact integrity", table).c_str(), stdout);

  // A sharded run's coordinator manifest lists each per-worker checkpoint
  // as a "shard" artifact; recurse into every one so a single `verify` of
  // the top-level directory covers the whole farm — and names the failing
  // shard rather than a bare count.
  std::size_t checked = report.checks.size();
  std::string failing_shard;
  if (manifest.workers > 0) {
    std::printf("sharded run: %llu workers%s\n",
                static_cast<unsigned long long>(manifest.workers),
                manifest.degraded_shards.empty() ? "" : ", [DEGRADED DATA]");
    for (const auto& degraded : manifest.degraded_shards)
      std::printf("  degraded shard: %s (abandoned — committed prefix "
                  "only)\n",
                  degraded.c_str());
    for (const auto& artifact : manifest.artifacts) {
      if (artifact.role != "shard") continue;
      const fs::path shard_manifest_path =
          fs::path(base_dir.empty() ? "." : base_dir) / artifact.path;
      const std::string shard_name =
          shard_manifest_path.parent_path().filename().string();
      std::size_t shard_failures = 0;
      try {
        const auto shard_manifest =
            durable::RunManifest::load(shard_manifest_path.string());
        const auto shard_report = durable::verify_artifacts(
            shard_manifest, shard_manifest_path.parent_path().string());
        checked += shard_report.checks.size();
        for (const auto& check : shard_report.checks)
          if (!check.ok()) ++shard_failures;
        std::printf("  %s: %s run, %zu artifacts, %zu failed\n",
                    shard_name.c_str(), shard_manifest.state.c_str(),
                    shard_report.checks.size(), shard_failures);
      } catch (const std::exception& error) {
        std::printf("  %s: unreadable manifest (%s)\n", shard_name.c_str(),
                    error.what());
        shard_failures = 1;
      }
      if (shard_failures > 0 && failing_shard.empty())
        failing_shard = shard_name;
      failures += shard_failures;
    }
  }

  obs::add(obs::counter(metrics.context(), "verify.artifacts_checked"),
           checked);
  obs::add(obs::counter(metrics.context(), "verify.failures"), failures);
  const bool metrics_ok = metrics.write("verify");
  if (failures > 0) {
    std::fprintf(stderr, "%zu of %zu artifacts failed verification%s%s\n",
                 failures, checked,
                 failing_shard.empty() ? "" : " — first failing shard: ",
                 failing_shard.c_str());
    return 1;
  }
  std::printf("all %zu artifacts verified\n", checked);
  return metrics_ok ? 0 : 1;
}

int cmd_convert(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--metrics");
  flags.value_flag("--block-rows");
  if (!flags.parse(argc, argv)) return flag_error("convert", flags);
  if (flags.positional().size() != 2) {
    std::fprintf(stderr, "syrwatchctl convert: expected IN OUT\n");
    return usage();
  }
  const std::string in_path = flags.positional()[0];
  const std::string out_path = flags.positional()[1];

  MetricsOutput metrics{flags};
  const std::uint64_t start = obs::monotonic_nanos();
  std::uint64_t rows = 0;
  util::ArtifactInfo info;
  const char* direction;
  if (colfmt::file_looks_like_container(in_path)) {
    direction = "col -> csv";
    const auto reader = colfmt::Reader::open(in_path);
    util::AtomicFileWriter out{out_path};
    out.write(proxy::log_csv_header());
    out.write("\n");
    for (std::size_t b = 0; b < reader.block_count(); ++b) {
      const auto block = reader.decode(b);
      for (std::size_t r = 0; r < block.rows; ++r) {
        out.write(proxy::to_csv(reader.record(block, r)));
        out.write("\n");
        ++rows;
      }
    }
    info = out.commit();
  } else {
    direction = "csv -> col";
    std::ifstream in{in_path};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
      return 1;
    }
    std::string line;
    if (!std::getline(in, line)) {
      std::fprintf(stderr, "syrwatchctl convert: %s is empty\n",
                   in_path.c_str());
      return 1;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line != proxy::log_csv_header()) {
      std::fprintf(stderr, "syrwatchctl convert: %s: not a syrwatch log "
                           "(bad csv header)\n",
                   in_path.c_str());
      return 1;
    }
    colfmt::WriterOptions options;
    options.block_rows = static_cast<std::size_t>(
        flags.get_u64("--block-rows", options.block_rows));
    colfmt::Writer writer{out_path, options};
    std::uint64_t line_no = 1;
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      proxy::ParseDiagnosis diagnosis;
      const auto record = proxy::from_csv(line, &diagnosis);
      if (!record) {
        writer.abandon();
        std::fprintf(stderr,
                     "syrwatchctl convert: %s line %llu: %s — conversion "
                     "must be lossless, refusing to drop the row\n",
                     in_path.c_str(),
                     static_cast<unsigned long long>(line_no),
                     std::string(proxy::to_string(diagnosis.error)).c_str());
        return 1;
      }
      writer.add(*record);
      ++rows;
    }
    info = writer.finish();
  }
  metrics.add_phase("convert", seconds_since(start), rows);
  obs::add(obs::counter(metrics.context(), "convert.rows"), rows);
  std::printf("converted %s records (%s) into %s (%s bytes, crc32 %s)\n",
              util::with_commas(rows).c_str(), direction, out_path.c_str(),
              util::with_commas(info.bytes).c_str(),
              util::to_hex32(info.crc32).c_str());
  return metrics.write("convert") ? 0 : 1;
}

int cmd_inspect(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--bin-hours");
  flags.value_flag("--threads");
  flags.value_flag("--format");
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("inspect", flags);
  std::string path;
  if (!single_input("inspect", flags, path)) return usage();
  const std::int64_t bin = 3600 * flags.get_i64("--bin-hours", 1);
  const auto threads =
      static_cast<std::size_t>(flags.get_u64("--threads", 1));

  MetricsOutput metrics{flags};
  const auto loaded =
      load_source_phase(path, flags, metrics, threads, /*lenient=*/true);
  const std::uint64_t record_count = loaded.rows();
  obs::add(obs::counter(metrics.context(), "inspect.records_recovered"),
           record_count);
  bool damaged = false;
  if (loaded.is_columnar()) {
    std::printf("columnar container: %s blocks, %s rows, %s dictionary "
                "strings\n",
                util::with_commas(loaded.columnar().block_count()).c_str(),
                util::with_commas(loaded.columnar().rows()).c_str(),
                util::with_commas(loaded.columnar().reader().dict_size())
                    .c_str());
    if (loaded.recovery().truncated_tail) {
      damaged = true;
      std::printf("recovered %s of %s bytes (%s intact blocks); damage: "
                  "%s\n",
                  util::with_commas(loaded.recovery().bytes_recovered).c_str(),
                  util::with_commas(loaded.recovery().file_bytes).c_str(),
                  util::with_commas(loaded.recovery().blocks_recovered)
                      .c_str(),
                  loaded.recovery().damage.c_str());
    }
  } else {
    obs::add(obs::counter(metrics.context(), "inspect.lines_skipped"),
             loaded.read_stats().skipped_total());
    std::fputs(loaded.read_stats().summary().c_str(), stdout);
    damaged = loaded.read_stats().skipped_total() > 0;
  }
  if (record_count == 0) {
    std::printf("no usable records — nothing to inspect\n");
    if (!metrics.write("inspect")) return 1;
    return damaged ? 1 : 0;
  }

  const std::uint64_t analyze_start = obs::monotonic_nanos();
  analysis::CoverageOptions cov_options{.bin = {bin},
                                        .min_farm_bin_requests = 25};
  if (loaded.is_columnar())
    cov_options.recovery = &loaded.recovery();
  else
    cov_options.read_stats = &loaded.read_stats();
  const analysis::CoverageReport coverage =
      analysis::request_coverage(loaded.source(), cov_options, threads);
  metrics.add_phase("analyze", seconds_since(analyze_start), record_count);
  util::TextTable days{[&] {
    std::vector<std::string> header{"Day"};
    for (std::size_t p = 0; p < policy::kProxyCount; ++p)
      header.emplace_back(policy::proxy_name(p));
    header.emplace_back("Total");
    return header;
  }()};
  for (const auto& day : coverage.days) {
    std::vector<std::string> cells{util::format_date(day.day_start)};
    std::uint64_t total = 0;
    for (const std::uint64_t count : day.requests) {
      cells.push_back(count == 0 ? "-" : util::with_commas(count));
      total += count;
    }
    cells.push_back(util::with_commas(total));
    days.add_row(cells);
  }
  std::fputs(util::titled_block("Per-proxy daily coverage", days).c_str(),
             stdout);

  if (coverage.truncated_tail) {
    std::printf(
        "WARNING: log ends mid-record — the trailing edge of the window is "
        "an artifact boundary (torn write?), not a traffic boundary\n");
  }
  if (!coverage.gaps.empty()) {
    util::TextTable gaps{{"Proxy", "Gap start", "Gap end", "Farm reqs"}};
    for (const auto& gap : coverage.gaps) {
      gaps.add_row({std::string(policy::proxy_name(gap.proxy_index)),
                    util::format_datetime(gap.start),
                    util::format_datetime(gap.end),
                    util::with_commas(gap.farm_requests)});
    }
    std::fputs(util::titled_block("Coverage gaps (farm active, proxy silent)",
                                  gaps)
                   .c_str(),
               stdout);
  } else {
    std::printf("no coverage gaps at %lld-second bins\n",
                static_cast<long long>(bin));
  }
  return metrics.write("inspect") ? 0 : 1;
}

int cmd_stats(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--threads");
  flags.value_flag("--format");
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("stats", flags);
  std::string path;
  if (!single_input("stats", flags, path)) return usage();
  const auto threads =
      static_cast<std::size_t>(flags.get_u64("--threads", 1));

  MetricsOutput metrics{flags};
  const auto loaded = load_source_phase(path, flags, metrics, threads);
  const std::uint64_t analyze_start = obs::monotonic_nanos();
  const auto stats = analysis::traffic_stats(loaded.source(), threads);
  metrics.add_phase("analyze", seconds_since(analyze_start), loaded.rows());
  util::TextTable table{{"Class", "# Requests", "%"}};
  table.add_row({"allowed", util::with_commas(stats.observed),
                 util::percent(stats.share(stats.observed))});
  table.add_row({"proxied", util::with_commas(stats.proxied),
                 util::percent(stats.share(stats.proxied))});
  table.add_row({"denied", util::with_commas(stats.denied),
                 util::percent(stats.share(stats.denied))});
  table.add_row({"  censored", util::with_commas(stats.censored()),
                 util::percent(stats.share(stats.censored()))});
  table.add_row({"  errors", util::with_commas(stats.errors()),
                 util::percent(stats.share(stats.errors()))});
  for (std::size_t i = 1; i < proxy::kExceptionCount; ++i) {
    const auto id = static_cast<proxy::ExceptionId>(i);
    if (stats.at(id) == 0) continue;
    table.add_row({"    " + std::string(proxy::to_string(id)),
                   util::with_commas(stats.at(id)),
                   util::percent(stats.share(stats.at(id)))});
  }
  std::fputs(util::titled_block("Traffic breakdown — " + path + " (" +
                                    util::with_commas(stats.total) +
                                    " records)",
                                table)
                 .c_str(),
             stdout);
  return metrics.write("stats") ? 0 : 1;
}

int cmd_top(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--class");
  flags.value_flag("--k");
  flags.value_flag("--threads");
  flags.value_flag("--format");
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("top", flags);
  std::string path;
  if (!single_input("top", flags, path)) return usage();
  const auto threads =
      static_cast<std::size_t>(flags.get_u64("--threads", 1));

  analysis::TopDomainsOptions options{proxy::TrafficClass::kCensored, 10,
                                      std::nullopt};
  if (const auto klass = flags.get("--class")) {
    if (*klass == "allowed")
      options.cls = proxy::TrafficClass::kAllowed;
    else if (*klass == "error")
      options.cls = proxy::TrafficClass::kError;
    else if (*klass != "censored") {
      std::fprintf(stderr,
                   "syrwatchctl top: --class must be censored, allowed, or "
                   "error (got \"%s\")\n",
                   std::string(*klass).c_str());
      return usage();
    }
  }
  options.k = flags.get_u64("--k", 10);

  MetricsOutput metrics{flags};
  const auto loaded = load_source_phase(path, flags, metrics, threads);
  const std::uint64_t analyze_start = obs::monotonic_nanos();
  const auto top = analysis::top_domains(loaded.source(), options, threads);
  metrics.add_phase("analyze", seconds_since(analyze_start), loaded.rows());
  util::TextTable table{{"#", "Domain", "# Requests", "%"}};
  for (std::size_t i = 0; i < top.size(); ++i) {
    table.add_row({std::to_string(i + 1), top[i].domain,
                   util::with_commas(top[i].count),
                   util::percent(top[i].share)});
  }
  std::fputs(util::titled_block(std::string("Top ") +
                                    std::string(proxy::to_string(options.cls)) +
                                    " domains",
                                table)
                 .c_str(),
             stdout);
  return metrics.write("top") ? 0 : 1;
}

int cmd_discover(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--min-count");
  flags.value_flag("--threads");
  flags.value_flag("--format");
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("discover", flags);
  std::string path;
  if (!single_input("discover", flags, path)) return usage();
  const auto threads =
      static_cast<std::size_t>(flags.get_u64("--threads", 1));

  MetricsOutput metrics{flags};
  const auto loaded = load_source_phase(path, flags, metrics, threads);
  analysis::DiscoveryOptions options;
  options.min_count = flags.get_u64("--min-count", options.min_count);

  const std::uint64_t analyze_start = obs::monotonic_nanos();
  const auto result = analysis::discover_censored_strings(loaded.source(),
                                                          options, threads);
  metrics.add_phase("analyze", seconds_since(analyze_start), loaded.rows());
  util::TextTable keywords{{"Keyword", "Censored", "Proxied"}};
  for (const auto& kw : result.keywords) {
    keywords.add_row({kw.text, util::with_commas(kw.censored),
                      util::with_commas(kw.proxied)});
  }
  std::fputs(util::titled_block("Censored keywords", keywords).c_str(),
             stdout);
  util::TextTable domains{{"Domain", "Censored", "Proxied"}};
  for (const auto& domain : result.domains) {
    domains.add_row({domain.text, util::with_commas(domain.censored),
                     util::with_commas(domain.proxied)});
  }
  std::fputs(util::titled_block("Suspected domains", domains).c_str(),
             stdout);
  std::printf("explained %s of %s censored requests\n",
              util::with_commas(result.censored_requests_explained).c_str(),
              util::with_commas(result.censored_requests_total).c_str());
  return metrics.write("discover") ? 0 : 1;
}

int cmd_users(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--threads");
  flags.value_flag("--format");
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("users", flags);
  std::string path;
  if (!single_input("users", flags, path)) return usage();
  const auto threads =
      static_cast<std::size_t>(flags.get_u64("--threads", 1));

  MetricsOutput metrics{flags};
  const auto loaded = load_source_phase(path, flags, metrics, threads);
  const std::uint64_t analyze_start = obs::monotonic_nanos();
  const auto stats = analysis::user_stats(loaded.source(), threads);
  metrics.add_phase("analyze", seconds_since(analyze_start), loaded.rows());
  if (stats.total_users == 0) {
    std::printf("no attributable users (client hashes suppressed in this "
                "log slice; Duser covers July 22-23 only)\n");
    return metrics.write("users") ? 0 : 1;
  }
  util::TextTable table{{"Metric", "Value"}};
  table.add_row({"users", util::with_commas(stats.total_users)});
  table.add_row({"censored users", util::with_commas(stats.censored_users)});
  table.add_row({"censored-user share",
                 util::percent(double(stats.censored_users) /
                               double(stats.total_users))});
  table.add_row({"censored users with >100 requests",
                 util::percent(stats.active_share_censored(100.0))});
  table.add_row({"clean users with >100 requests",
                 util::percent(stats.active_share_clean(100.0))});
  std::fputs(util::titled_block("User analysis", table).c_str(), stdout);
  return metrics.write("users") ? 0 : 1;
}

int cmd_redirects(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--threads");
  flags.value_flag("--format");
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("redirects", flags);
  std::string path;
  if (!single_input("redirects", flags, path)) return usage();
  const auto threads =
      static_cast<std::size_t>(flags.get_u64("--threads", 1));

  MetricsOutput metrics{flags};
  const auto loaded = load_source_phase(path, flags, metrics, threads);
  const std::uint64_t analyze_start = obs::monotonic_nanos();
  const auto hosts = analysis::redirect_hosts(loaded.source(), {.k = 0}, threads);
  metrics.add_phase("analyze", seconds_since(analyze_start), loaded.rows());
  util::TextTable table{{"Host", "# Redirects", "%"}};
  for (const auto& host : hosts) {
    table.add_row({host.host, util::with_commas(host.requests),
                   util::percent(host.share)});
  }
  std::fputs(util::titled_block("policy_redirect hosts", table).c_str(),
             stdout);
  return metrics.write("redirects") ? 0 : 1;
}

int cmd_weather(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--keyword");
  flags.value_flag("--bin-hours");
  flags.value_flag("--threads");
  flags.value_flag("--format");
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("weather", flags);
  std::string path;
  if (!single_input("weather", flags, path)) return usage();
  const auto keyword = flags.get("--keyword");
  if (!keyword) {
    std::fprintf(stderr, "syrwatchctl weather: --keyword WORD is required\n");
    return usage();
  }
  const std::int64_t bin = 3600 * flags.get_i64("--bin-hours", 1);
  const auto threads =
      static_cast<std::size_t>(flags.get_u64("--threads", 1));

  MetricsOutput metrics{flags};
  const auto loaded = load_source_phase(path, flags, metrics, threads);
  const analysis::LogSource source = loaded.source();
  if (source.rows() == 0) {
    std::printf("empty log\n");
    return metrics.write("weather") ? 0 : 1;
  }
  const auto bounds = source.time_bounds(threads);
  const std::int64_t start = bounds.first;
  const std::int64_t end = bounds.last + 1;
  const std::vector<std::string> keywords{std::string(*keyword)};
  const std::uint64_t analyze_start = obs::monotonic_nanos();
  const auto reports = analysis::keyword_weather(
      source, keywords, {{start, end}, {bin}}, threads);
  metrics.add_phase("analyze", seconds_since(analyze_start), source.rows());
  const auto& report = reports.front();

  util::TextTable table{{"Window start", "Matched", "Censored", "Intensity"}};
  for (std::size_t b = 0; b < report.matched.size(); ++b) {
    if (report.matched[b] == 0) continue;
    table.add_row({util::format_datetime(
                       report.origin + static_cast<std::int64_t>(b) * bin),
                   util::with_commas(report.matched[b]),
                   util::with_commas(report.censored[b]),
                   util::percent(report.intensity(b))});
  }
  std::fputs(util::titled_block("Censorship weather — \"" +
                                    std::string(*keyword) + "\" (" +
                                    std::to_string(report.active_bins()) +
                                    " active windows, " +
                                    std::to_string(
                                        report.fully_enforced_bins()) +
                                    " fully enforced)",
                                table)
                 .c_str(),
             stdout);
  return metrics.write("weather") ? 0 : 1;
}

/// Online mode (DESIGN.md §4.12): tail a run's WAL spool — or any CSV
/// log being appended to — and print a rolling sketch report every
/// --interval seconds. Given a checkpoint directory the manifest doubles
/// as the stop signal: once the run leaves "in_progress" the watcher
/// drains whatever the final commit appended and exits (unless --follow
/// keeps it tailing, e.g. across a resume).
int cmd_watch(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--interval");
  flags.value_flag("--bin");
  flags.value_flag("--window-bins");
  flags.value_flag("--top");
  flags.value_flag("--json");
  flags.value_flag("--metrics");
  flags.value_flag("--deadline");
  flags.bool_flag("--once");
  flags.bool_flag("--follow");
  if (!flags.parse(argc, argv)) return flag_error("watch", flags);
  std::string path;
  if (!single_input("watch", flags, path)) return usage();

  namespace fs = std::filesystem;
  std::error_code ec;
  std::string spool_path = path;
  std::string manifest_path;
  if (fs::is_directory(fs::path{path}, ec)) {
    spool_path = (fs::path{path} / durable::kSpoolFile).string();
    manifest_path =
        (fs::path{path} / durable::RunManifest::kFileName).string();
  }

  analysis::StreamReportOptions options;
  options.bin = {flags.get_i64("--bin", 300)};
  options.window_bins =
      static_cast<std::size_t>(flags.get_u64("--window-bins", 288));
  options.top_k = static_cast<std::size_t>(flags.get_u64("--top", 10));
  const std::int64_t interval = flags.get_i64("--interval", 5);
  const std::string json_path{flags.get("--json").value_or("")};

  if (const auto deadline = flags.get("--deadline"))
    g_cancel.set_deadline_after(std::stod(std::string(*deadline)));
  util::install_stop_signals(g_cancel);

  MetricsOutput metrics{flags};
  analysis::StreamSource stream{spool_path};
  analysis::StreamAnalyzer analyzer{options, metrics.context()};

  const std::uint64_t watch_start = obs::monotonic_nanos();
  std::uint64_t high_water = 0;
  bool finishing = flags.has("--once");
  while (true) {
    stream.poll();
    high_water = analysis::scan_increment(
        stream.source(), high_water,
        [&](const analysis::Record& r) { analyzer.ingest(r); });
    auto report = analyzer.snapshot();
    report.spool_offset = stream.tail().offset();
    report.spool_pending_bytes = stream.tail().pending_bytes();
    report.spool_skipped_lines = stream.tail().stats().skipped_total();
    report.spool_gaps = stream.tail().gaps();
    std::fputs(analysis::render_stream_report(report).c_str(), stdout);
    std::fflush(stdout);
    if (!json_path.empty())
      util::atomic_write_file(json_path,
                              analysis::stream_report_json(report));

    if (finishing || g_cancel.cancelled()) break;
    if (!manifest_path.empty() && !flags.has("--follow") &&
        fs::exists(manifest_path, ec)) {
      // The run appends spool bytes *before* it commits the manifest, so
      // a terminal state can postdate our poll: drain once more, report,
      // then exit. A torn manifest mid-write just means "try next tick".
      try {
        if (durable::RunManifest::load(manifest_path).state !=
            "in_progress") {
          finishing = true;
          continue;
        }
      } catch (const std::exception&) {
      }
    }
    // Sleep in short slices so SIGINT/--deadline interrupts promptly.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::seconds(interval);
    while (std::chrono::steady_clock::now() < until &&
           !g_cancel.cancelled())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  metrics.add_phase("watch", seconds_since(watch_start), analyzer.records());
  return metrics.write("watch") ? 0 : 1;
}

int cmd_report(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--seed");
  flags.value_flag("--threads");
  flags.value_flag("--format");
  flags.value_flag("--metrics");
  flags.bool_flag("--overview");
  if (!flags.parse(argc, argv)) return flag_error("report", flags);
  std::string path;
  if (!single_input("report", flags, path)) return usage();
  const auto threads =
      static_cast<std::size_t>(flags.get_u64("--threads", 1));

  MetricsOutput metrics{flags};
  const auto loaded = load_source_phase(path, flags, metrics, threads);
  const analysis::LogSource full = loaded.source();
  if (full.rows() == 0) {
    std::printf("empty log\n");
    return metrics.write("report") ? 0 : 1;
  }

  // The report's analyzers consult scenario resources (GeoIP ranges, the
  // Tor relay directory, the torrent registry) that are deterministic in
  // the seed — build a fresh environment at --seed, which must match the
  // log's generate seed for the lookups to line up with the traffic.
  workload::ScenarioConfig config;
  config.seed = flags.get_u64("--seed", config.seed);
  const std::uint64_t env_start = obs::monotonic_nanos();
  const workload::SyriaScenario scenario{config};
  metrics.add_phase("environment", seconds_since(env_start), 0);

  // Carve the paper's derived datasets out of the file-backed Dfull as
  // scan-layer views — the same selections DatasetBundle::derive
  // materializes (including the sequential Bernoulli draw for Dsample),
  // without copying a single row.
  const std::uint64_t derive_start = obs::monotonic_nanos();
  auto sample_mask =
      std::make_shared<std::vector<std::uint8_t>>(full.rows(), 0);
  {
    // DatasetBundle::derive draws one Bernoulli per row of the
    // *time-sorted* full dataset (Dataset::finalize stable-sorts), while
    // SYRCOL1 containers preserve emission order. Apply the draw through a
    // stable time-sorted permutation of base ordinals so `report log.csv`
    // and `report log.col` of the same log select the same records.
    std::vector<std::int64_t> times(sample_mask->size());
    full.prepare(threads);
    util::parallel_for(full.partitions(), threads, [&](std::size_t p) {
      full.scan_partition(p, [&](const analysis::Record& r) {
        times[static_cast<std::size_t>(r.ordinal)] = r.time;
      });
    });
    std::vector<std::uint64_t> order(times.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint64_t a, std::uint64_t b) {
                       return times[a] < times[b];
                     });
    util::Rng rng{util::mix64(config.seed ^ 0x5A3D1E)};
    for (const auto ordinal : order)
      (*sample_mask)[ordinal] = rng.bernoulli(0.04) ? 1 : 0;
  }
  const analysis::LogSource sample =
      full.masked(std::move(sample_mask), threads);
  const analysis::LogSource user = full.filtered(
      [](const analysis::Record& r) {
        if (r.proxy_index != 0 || r.user_hash == 0) return false;
        const auto c = util::to_civil(r.time);
        return c.month == 7 && (c.day == 22 || c.day == 23);
      },
      threads);
  const analysis::LogSource denied = full.filtered(
      [](const analysis::Record& r) {
        return r.exception != proxy::ExceptionId::kNone;
      },
      threads);
  metrics.add_phase("derive", seconds_since(derive_start), full.rows());

  const core::ReportSources sources{full,
                                    sample,
                                    user,
                                    denied,
                                    &scenario.geoip(),
                                    &scenario.relays(),
                                    &scenario.torrents(),
                                    threads,
                                    metrics.context()};
  const std::uint64_t analyze_start = obs::monotonic_nanos();
  const std::string report = flags.has("--overview")
                                 ? core::render_overview(sources)
                                 : core::render_full_report(sources);
  metrics.add_phase("analyze", seconds_since(analyze_start), full.rows());
  std::fputs(report.c_str(), stdout);
  return metrics.write("report") ? 0 : 1;
}

int cmd_profile(int argc, char** argv) {
  util::CliFlags flags;
  flags.value_flag("--requests");
  flags.value_flag("--seed");
  flags.value_flag("--threads");
  flags.value_flag("--fault-profile");
  flags.value_flag("--metrics");
  if (!flags.parse(argc, argv)) return flag_error("profile", flags);
  if (!flags.positional().empty()) {
    std::fprintf(stderr, "syrwatchctl profile: unexpected argument \"%s\"\n",
                 flags.positional().front().c_str());
    return usage();
  }

  workload::ScenarioConfig config;
  config.total_requests = flags.get_u64("--requests", 200'000);
  config.seed = flags.get_u64("--seed", config.seed);
  config.threads = flags.get_u64("--threads", 0);
  if (const auto profile = flags.get("--fault-profile"))
    config.fault_profile = *profile;

  MetricsOutput metrics{flags};
  core::Study study{config};
  study.set_obs(metrics.context());
  const auto result = study.run();
  // Drive every analyzer once so the analysis.* stages have samples; the
  // report text itself is `syrwatchctl` territory already covered by the
  // other subcommands, so profile only keeps the timings.
  const std::uint64_t analyze_start = obs::monotonic_nanos();
  const std::string report = core::render_full_report(study);
  metrics.phases() = result.metrics.phases;
  metrics.add_phase("analyze", seconds_since(analyze_start),
                    result.metrics.log_records);
  std::printf("profiled %s requests (seed %llu, %s)\n",
              util::with_commas(result.metrics.log_records).c_str(),
              static_cast<unsigned long long>(config.seed),
              config.fault_profile == "none"
                  ? "no faults"
                  : ("fault profile " + config.fault_profile).c_str());
  std::fputs(obs::render_text(metrics.registry().snapshot(),
                              metrics.phases(), metrics.total_seconds())
                 .c_str(),
             stdout);
  std::printf("report bytes rendered: %s\n",
              util::with_commas(report.size()).c_str());
  return metrics.write("profile") ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view command{argv[1]};
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "verify") return cmd_verify(argc, argv);
    if (command == "convert") return cmd_convert(argc, argv);
    if (command == "inspect") return cmd_inspect(argc, argv);
    if (command == "report") return cmd_report(argc, argv);
    if (command == "stats") return cmd_stats(argc, argv);
    if (command == "top") return cmd_top(argc, argv);
    if (command == "discover") return cmd_discover(argc, argv);
    if (command == "users") return cmd_users(argc, argv);
    if (command == "redirects") return cmd_redirects(argc, argv);
    if (command == "weather") return cmd_weather(argc, argv);
    if (command == "watch") return cmd_watch(argc, argv);
    if (command == "profile") return cmd_profile(argc, argv);
  } catch (const util::SimulatedPowerLoss& loss) {
    // --storage-fault power-cut/torn-tail: the FaultyVfs has already
    // applied the damage model; die like the power did — no unwinding
    // cleanup, distinct exit code for the chaos harness.
    std::fprintf(stderr, "syrwatchctl: %s\n", loss.what());
    std::_Exit(9);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "syrwatchctl: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "syrwatchctl: unknown subcommand \"%s\"\n", argv[1]);
  return usage();
}
